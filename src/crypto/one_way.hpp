// One-way function F for P-SSP-OWF (Algorithm 3).
//
// The stack canary is C = F(ret || n, C): a randomized MAC over the return
// address under the TLS canary C as key, with nonce n (the timestamp
// counter). The paper instantiates F with AES-NI because the 128-bit block
// conveniently holds nonce||ret; it also names SHA-1 as an alternative.
// Both instantiations are provided behind one interface so benches can
// compare them and tests can check the shared contract:
//   * determinism:  same (key, ret, nonce) -> same canary;
//   * key binding:  different key -> different canary (w.h.p.);
//   * frame binding: different ret or nonce -> different canary (w.h.p.).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pssp::crypto {

enum class owf_kind : std::uint8_t {
    aes128,  // AES-NI analog: canary = low 64 bits of AES_C(nonce || ret)
    sha1,    // hash analog:   canary = first 64 bits of SHA1(key || nonce || ret)
};

class one_way_function {
  public:
    virtual ~one_way_function() = default;

    // Evaluates F keyed by (key_lo, key_hi) over (ret, nonce); returns the
    // 64-bit stack canary. Must be deterministic.
    [[nodiscard]] virtual std::uint64_t evaluate(std::uint64_t key_lo,
                                                 std::uint64_t key_hi,
                                                 std::uint64_t ret,
                                                 std::uint64_t nonce) const = 0;

    // Full 128-bit output where available (AES); the high half is zero for
    // SHA-1 truncated output. P-SSP-OWF stores the full ciphertext (Code 8
    // uses movdqu of xmm15), so the 128-bit form is what lands on the stack.
    struct output128 {
        std::uint64_t lo;
        std::uint64_t hi;
        friend bool operator==(const output128&, const output128&) = default;
    };
    [[nodiscard]] virtual output128 evaluate128(std::uint64_t key_lo,
                                                std::uint64_t key_hi,
                                                std::uint64_t ret,
                                                std::uint64_t nonce) const = 0;

    [[nodiscard]] virtual owf_kind kind() const noexcept = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

// Factory for the chosen instantiation.
[[nodiscard]] std::unique_ptr<one_way_function> make_owf(owf_kind kind);

}  // namespace pssp::crypto
