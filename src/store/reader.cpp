#include "store/reader.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/bytes.hpp"
#include "util/fsio.hpp"

namespace pssp::store {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error{"store: " + what};
}

// Rows destined for one damaged segment's rebuild.
struct rebuild_buffer {
    std::size_t segment = 0;  // index into manifest.segments
    std::vector<block_row> blocks;
    std::vector<round_row> rounds;
};

}  // namespace

store_data load_store(const std::string& dir, const load_options& options) {
    store_data data;
    data.directory = dir;

    std::string manifest_text;
    if (!util::read_file(dir + "/store.json", manifest_text))
        fail(dir + " is not a result store (missing store.json)");
    data.meta = decode_manifest(dir + "/store.json", manifest_text);
    data.complete = data.meta.complete;

    // Segments in manifest order; verify each file hash, queue damaged
    // ones for rebuild from the log.
    std::vector<rebuild_buffer> damaged;
    std::vector<std::vector<block_row>> seg_blocks(data.meta.segments.size());
    std::vector<std::vector<round_row>> seg_rounds(data.meta.segments.size());
    for (std::size_t i = 0; i < data.meta.segments.size(); ++i) {
        const auto& info = data.meta.segments[i];
        const std::string path = dir + "/" + info.file;
        std::string bytes;
        const bool present = util::read_file(path, bytes);
        if (present && util::fnv1a64(bytes) == info.fnv) {
            decode_segment(path, bytes, seg_blocks[i], seg_rounds[i]);
            if (seg_blocks[i].size() != info.block_rows ||
                seg_rounds[i].size() != info.round_rows)
                fail(path + " row counts disagree with the manifest");
            continue;
        }
        rebuild_buffer buf;
        buf.segment = i;
        damaged.push_back(std::move(buf));
    }
    auto damaged_for = [&](std::uint64_t seq) -> rebuild_buffer* {
        for (auto& buf : damaged) {
            const auto& info = data.meta.segments[buf.segment];
            if (seq >= info.first_seq && seq <= info.last_seq) return &buf;
        }
        return nullptr;
    };

    // The log: rows past the compaction frontier are served directly;
    // rows at or before it only matter when a damaged segment needs them.
    const std::string log_path = dir + "/ingest.log";
    std::uint64_t max_seq = data.meta.compacted_seq;
    for (const auto& s : data.meta.segments)
        max_seq = std::max(max_seq, s.last_seq);
    std::vector<block_row> tail_blocks;
    std::vector<round_row> tail_rounds;
    util::line_scan_result scan;
    util::scan_lines(
        log_path,
        [&](std::size_t line_no, std::string_view line) {
            auto entry = decode_log_line(log_path, line_no, line);
            max_seq = std::max(max_seq, entry.seq);
            const bool compacted = entry.seq <= data.meta.compacted_seq;
            rebuild_buffer* rebuild =
                compacted ? damaged_for(entry.seq) : nullptr;
            switch (entry.kind) {
                case entry_kind::blocks: {
                    std::vector<block_row>* dest =
                        !compacted ? &tail_blocks
                        : rebuild  ? &rebuild->blocks
                                   : nullptr;
                    if (dest == nullptr) break;  // intact segment holds it
                    for (const auto& b : entry.blocks)
                        dest->push_back(block_row{entry.seq, entry.round, b});
                    break;
                }
                case entry_kind::round: {
                    std::vector<round_row>* dest =
                        !compacted ? &tail_rounds
                        : rebuild  ? &rebuild->rounds
                                   : nullptr;
                    if (dest != nullptr)
                        dest->push_back(round_row{entry.seq, entry.summary});
                    break;
                }
                case entry_kind::metrics:
                    data.metrics = std::move(entry.metrics);
                    break;
                case entry_kind::complete:
                    data.complete = true;
                    data.done = entry.done;
                    break;
            }
        },
        scan);
    if (scan.torn_tail) data.dropped_torn_tail = true;
    data.next_seq = max_seq + 1;

    // Rebuild damaged segments: identical rows must reproduce identical
    // bytes, so the manifest hash is the acceptance test for the repair.
    for (auto& buf : damaged) {
        const auto& info = data.meta.segments[buf.segment];
        const auto bytes = encode_segment(buf.blocks, buf.rounds);
        if (util::fnv1a64(bytes) != info.fnv)
            fail(dir + "/" + info.file +
                 " is damaged and the ingest log cannot reproduce it "
                 "(rebuilt hash mismatch) — the store is corrupt");
        if (options.repair) util::write_file_atomic(dir, info.file, bytes);
        seg_blocks[buf.segment] = std::move(buf.blocks);
        seg_rounds[buf.segment] = std::move(buf.rounds);
        data.repaired_segments += 1;
    }

    for (std::size_t i = 0; i < data.meta.segments.size(); ++i) {
        data.blocks.insert(data.blocks.end(), seg_blocks[i].begin(),
                           seg_blocks[i].end());
        data.rounds.insert(data.rounds.end(), seg_rounds[i].begin(),
                           seg_rounds[i].end());
    }
    data.blocks.insert(data.blocks.end(), tail_blocks.begin(),
                       tail_blocks.end());
    data.rounds.insert(data.rounds.end(), tail_rounds.begin(),
                       tail_rounds.end());
    return data;
}

store_tailer::store_tailer(std::string dir)
    : log_path_{std::move(dir) + "/ingest.log"} {}

std::vector<log_entry> store_tailer::poll() {
    std::vector<log_entry> out;
    int fd = -1;
    while ((fd = ::open(log_path_.c_str(), O_RDONLY)) < 0 && errno == EINTR) {
    }
    if (fd < 0) {
        if (errno == ENOENT) return out;  // campaign not started yet
        throw std::runtime_error{"store: cannot open " + log_path_ + " (" +
                                 std::strerror(errno) + ")"};
    }
    char buf[1 << 16];
    for (;;) {
        const ssize_t n =
            ::pread(fd, buf, sizeof buf, static_cast<off_t>(offset_));
        if (n < 0 && errno == EINTR) continue;
        if (n < 0) {
            const int err = errno;
            ::close(fd);
            throw std::runtime_error{"store: cannot read " + log_path_ + " (" +
                                     std::strerror(err) + ")"};
        }
        if (n == 0) break;
        offset_ += static_cast<std::uint64_t>(n);
        pending_.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t start = 0;
    for (;;) {
        const auto nl = pending_.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string_view line{pending_.data() + start, nl - start};
        auto entry = decode_log_line(log_path_, ++line_no_, line);
        if (entry.kind == entry_kind::complete) complete_ = true;
        out.push_back(std::move(entry));
        start = nl + 1;
    }
    pending_.erase(0, start);
    return out;
}

}  // namespace pssp::store
