// Campaign types: the declarative spec a caller hands the engine and the
// reduced report it gets back.
//
// A campaign is a full cross product — scheme kinds x attack strategies x
// workload targets — with `trials_per_cell` independent Monte-Carlo trials
// per cell. Each trial boots a fresh fork server (new master, new TLS
// canary C) and runs one attack to completion, so the per-cell reduction
// measures the paper's statistical claims as *distributions*: detection
// probability with a Wilson interval, guesses-to-compromise, residual
// leak value. One-shot runs (bench/security_effectiveness.cpp) show a
// sample; a campaign shows the curve.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attack/strategy.hpp"
#include "core/scheme.hpp"
#include "util/stats.hpp"
#include "workload/victim.hpp"

namespace pssp::campaign {

struct campaign_spec {
    std::vector<core::scheme_kind> schemes;
    std::vector<attack::attack_kind> attacks;
    std::vector<workload::target_kind> targets;
    std::uint64_t trials_per_cell = 100;
    std::uint64_t master_seed = 2018;
    // Host worker threads. 0 = one per hardware thread. Never part of the
    // report: a campaign is bit-reproducible at any jobs level.
    unsigned jobs = 1;
    // Reuse booted masters across trials via each victim's master_pool
    // (snapshot-restore reboot) instead of constructing a fork server per
    // trial. Purely an execution-speed knob: pooled and fresh oracles are
    // byte-identical for equal seeds, so — like jobs — this is never part
    // of the report.
    bool reuse_masters = true;
    std::uint64_t query_budget = 4096;  // oracle queries per trial
    unsigned brute_unknown_bits = 12;   // entropy-reduction harness setting
    core::scheme_options scheme_options{};

    // ---- Adaptive allocation (campaign/allocator.hpp) ----
    // When true, the campaign runs in fixed rounds over the canonical block
    // space: after each round every cell's Wilson CIs are recomputed from
    // its merged block partials, cells whose half-width has dropped below
    // `target_ci_halfwidth` stop, and the next round's blocks go to the
    // widest-CI cells first. trials_per_cell becomes the per-cell *budget*
    // (the hard cap); converged cells spend less of it. Unlike jobs and
    // reuse_masters these four knobs ARE outcome-relevant — they decide
    // which trials run — so they are part of the report, the wire spec,
    // and the spec digest.
    bool adaptive = false;
    // Stop a cell once BOTH its detection and hijack Wilson 95% CI
    // half-widths are at or below this. 0 never stops early (a Wilson
    // half-width on n >= 1 trials is strictly positive), which makes the
    // adaptive run degenerate to the fixed allocation.
    double target_ci_halfwidth = 0.05;
    // Reduction blocks handed out per round. 0 = one block per cell
    // (cell_count), the natural breadth-first default. Never derived from
    // jobs or shard count: the round schedule is part of the
    // reproducibility contract.
    std::uint64_t round_blocks = 0;
    // A cell may not stop before running at least this many trials (capped
    // by trials_per_cell), so a lucky first block cannot freeze a cell's
    // estimate at 3 trials.
    std::uint64_t min_trials_per_cell = 64;

    [[nodiscard]] std::uint64_t cell_count() const noexcept {
        return schemes.size() * attacks.size() * targets.size();
    }
    [[nodiscard]] std::uint64_t trial_count() const noexcept {
        return cell_count() * trials_per_cell;
    }
};

// The default acceptance matrix: {ssp, raf_ssp, p_ssp} x all attacks on the
// forking nginx analog.
[[nodiscard]] campaign_spec default_spec();

// The wide matrix: every campaign-capable scheme — default_spec's three
// plus dynaguard, dcr and p_ssp_owf — against {byte_by_byte, leak_replay}.
// brute_force is deliberately absent: its payload model needs DCR's
// per-victim link offset, which campaigns do not model (the engine rejects
// the pairing rather than reporting a fake 0.0 hijack rate).
[[nodiscard]] campaign_spec full_spec();

// Resolves a spec's `jobs` knob to a worker count: 0 means one per
// hardware thread, clamped to at least 1 (hardware_concurrency() may
// legitimately return 0). Every consumer of spec.jobs — the engine, the
// dist orchestrator's per-shard sizing — goes through this.
[[nodiscard]] unsigned resolve_jobs(unsigned requested) noexcept;

// One trial's reduced record (a flattened attack::attack_outcome).
struct trial_result {
    bool hijacked = false;
    bool detected = false;
    std::uint64_t oracle_queries = 0;
    std::uint64_t canary_detections = 0;
    std::uint64_t other_crashes = 0;
    unsigned leaked_bytes_valid = 0;
};

// Mergeable partial reduction over some of a cell's trials. This is the
// unit that crosses process boundaries in sharded campaigns: integer
// tallies sum, the Welford accumulators merge (Chan et al.), and nothing
// here is a rate — rates and Wilson intervals are recomputed from the
// merged integers in finalize_cell(), so they are exact whatever the
// partition was.
struct cell_partial {
    std::uint64_t trials = 0;
    std::uint64_t hijacks = 0;
    std::uint64_t detections = 0;
    std::uint64_t canary_detections = 0;
    std::uint64_t other_crashes = 0;
    util::welford_accumulator queries;
    util::welford_accumulator queries_to_compromise;
    util::welford_accumulator leaked_bytes_valid;

    void add(const trial_result& t);
    void merge(const cell_partial& other);
};

// The canonical reduction block: every cell's trials are grouped into
// consecutive runs of this many (the last block ragged), each reduced by
// sequential add()s in trial order, and a cell's statistics are ALWAYS the
// in-order merge of its block partials — in the single-process engine and
// in every sharded run alike. Identical float operations in an identical
// order is what makes a merged shard report byte-identical to the
// single-process report at any shard count.
inline constexpr std::uint64_t reduce_block_trials = 64;

// One cell of the cross product, in canonical (target-major, then scheme,
// then attack) order.
struct cell_id {
    workload::target_kind target{};
    core::scheme_kind scheme{};
    attack::attack_kind attack{};
};
[[nodiscard]] std::vector<cell_id> cells_for(const campaign_spec& spec);

// One canonical reduction block: `trials` consecutive trials of cell
// `cell` starting at global trial index `first_trial`. blocks_for() lists
// every block of the campaign in canonical order; `index` is the position
// in that list, and is what shard planners partition. Degenerate specs are
// well-defined, not UB: trials_per_cell == 0 or any empty axis yields an
// empty block list, and assemble_report over it is a valid zero-cell (or
// zero-trial) report.
struct block_ref {
    std::uint64_t index = 0;
    std::uint64_t cell = 0;
    std::uint64_t first_trial = 0;
    std::uint64_t trials = 0;
};
[[nodiscard]] std::vector<block_ref> blocks_for(const campaign_spec& spec);

// Per-cell statistics over trials_per_cell trials.
struct cell_report {
    core::scheme_kind scheme{};
    attack::attack_kind attack{};
    workload::target_kind target{};
    std::uint64_t trials = 0;
    std::uint64_t hijacks = 0;
    std::uint64_t detections = 0;
    double hijack_rate = 0.0;
    double detection_rate = 0.0;
    util::interval detection_ci{};        // Wilson 95%
    util::interval hijack_ci{};           // Wilson 95%
    util::welford_accumulator queries;    // oracle queries, all trials
    util::welford_accumulator queries_to_compromise;  // hijacked trials only
    util::welford_accumulator leaked_bytes_valid;     // residual leak value
    std::uint64_t canary_detections = 0;  // __stack_chk_fail deaths, summed
    std::uint64_t other_crashes = 0;      // segv / cf / fuel deaths, summed
};

struct campaign_report {
    campaign_spec spec;
    std::vector<cell_report> cells;  // target-major, then scheme, then attack

    // Trials actually executed. Equals spec.trial_count() for fixed
    // allocation; less when adaptive stopping saved budget — the quantity
    // the savings benchmark compares.
    [[nodiscard]] std::uint64_t total_trials() const noexcept {
        std::uint64_t total = 0;
        for (const auto& c : cells) total += c.trials;
        return total;
    }

    // Deterministic serialization: fixed key order, fixed float formatting,
    // no scheduling-dependent fields (spec.jobs is deliberately absent), so
    // byte-equality across --jobs levels is the reproducibility check.
    [[nodiscard]] std::string to_json() const;

    // Human-readable outcome matrix (text_table rendering).
    [[nodiscard]] std::string to_table() const;
};

// Rates + Wilson intervals from a cell's fully merged partial.
[[nodiscard]] cell_report finalize_cell(const cell_id& id,
                                        const cell_partial& merged);

// The canonical reduction: per-block partials (one per blocks_for(spec)
// entry, in that order) -> merged cells -> finalized report. The engine's
// run() and the dist orchestrator's shard merge both end here, which is
// why their outputs cannot differ.
[[nodiscard]] campaign_report assemble_report(const campaign_spec& spec,
                                              std::span<const block_ref> blocks,
                                              std::span<const cell_partial> partials);

// Reduces trial records (in trial-index order) into one cell report, via
// the same block structure as assemble_report. Exposed separately from the
// engine so tests can feed synthetic trials.
[[nodiscard]] cell_report reduce_cell(core::scheme_kind scheme,
                                      attack::attack_kind attack,
                                      workload::target_kind target,
                                      std::span<const trial_result> trials);

}  // namespace pssp::campaign
