// Run-summary telemetry: one JSON line per campaign round.
//
// The convergence view that makes adaptive allocation auditable: each
// line records what a round issued (blocks, trials), where the campaign
// stands (cumulative trials, the widest remaining Wilson half-width and
// which cell owns it), and where the time went (round wall seconds;
// per-shard wall/user/sys for fork/exec runs). Fixed-allocation runs emit
// a single line with round 0. Produced by `--telemetry <file>` on
// tools_campaign_shard and bench_campaign_curves; both the in-process
// engine and the dist orchestrator feed the same struct, so the two
// execution paths are diffable line by line.
//
// Deliberately NOT compiled out under PSSP_OBS=0: this writer runs only
// when a caller passes --telemetry, costs nothing otherwise, and a
// stripped-telemetry build should still honor an explicit flag. The
// side-channel invariant is unchanged either way — nothing here is read
// back into a trial or a report.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pssp::obs {

struct shard_time {
    std::uint32_t shard = 0;
    double wall_seconds = 0.0;
    double user_seconds = 0.0;  // rusage ru_utime of the worker process
    double sys_seconds = 0.0;   // rusage ru_stime of the worker process
    // Network campaigns: which remote worker ran the shard. Emitted as a
    // "worker" field only when non-empty, so local runs' telemetry bytes
    // are unchanged.
    std::string worker;
};

struct round_summary {
    std::uint64_t round = 0;   // 1-based allocator round; 0 = fixed run
    std::uint64_t blocks = 0;  // blocks issued this round
    std::uint64_t trials = 0;  // trials executed this round
    std::uint64_t cumulative_trials = 0;
    // Widest per-cell Wilson half-width after this round and the
    // "target/scheme/attack" cell that owns it; 0 / "" for an empty run.
    double max_halfwidth = 0.0;
    std::string widest_cell;
    double wall_seconds = 0.0;
    std::vector<shard_time> shards;  // empty for in-process runs
    // Supervision recovery totals for the round (dist runs only). Emitted
    // as a "recovery" object only when any of them is nonzero, so clean
    // runs' telemetry is byte-identical with and without supervision.
    std::uint64_t retries = 0;          // worker attempts beyond the first
    std::uint64_t requeued_blocks = 0;  // blocks re-dispatched by retries
    std::uint64_t timeouts = 0;         // deadline SIGKILLs
    // Network transport only (always 0 over local pipes):
    std::uint64_t evictions = 0;   // workers dropped mid-round
    std::uint64_t reconnects = 0;  // re-registrations accepted
    // True when the round was replayed from a checkpoint instead of run.
    bool resumed = false;
};

// Appending JSONL writer; one line per round so a killed run keeps every
// completed round's record. Each line (including its trailing newline)
// goes down in a single write(2) on an unbuffered fd, so a concurrent
// tailer — `campaign_query --follow`, `tail -f`, the store ingester —
// never observes a torn line: POSIX appends of one write are atomic with
// respect to readers seeing a prefix of the data, and a line is either
// entirely present (newline and all) or entirely absent.
class telemetry_writer {
  public:
    telemetry_writer() = default;
    ~telemetry_writer();
    telemetry_writer(const telemetry_writer&) = delete;
    telemetry_writer& operator=(const telemetry_writer&) = delete;

    // Truncates and opens `path` ("-" = stderr). Returns false (with a
    // message on stderr) on failure; append() on a failed open is a no-op.
    bool open(const std::string& path);
    [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

    void append(const round_summary& round);

  private:
    int fd_ = -1;
    bool owned_ = false;  // false when writing to stderr
};

// The JSON line (no trailing newline); exposed for tests.
[[nodiscard]] std::string round_summary_json(const round_summary& round);

}  // namespace pssp::obs
