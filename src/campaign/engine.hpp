// The parallel Monte-Carlo campaign engine.
//
// Execution model: the spec's cross product is flattened into one global
// trial index space (cell-major). A fixed pool of host threads pops trial
// indices off an atomic counter; each trial derives two independent PRNG
// streams (server-side and attacker-side) purely from (master_seed, trial
// index) via splitmix64, boots its own fork server from the cell's shared
// victim build, runs one attack strategy, and stores its record at its own
// slot of a pre-sized results vector. The reduction then walks that vector
// in index order on the calling thread. Nothing observable depends on
// scheduling, so a 10k-trial campaign is bit-reproducible at any --jobs
// level — the property tests/campaign/engine_test.cpp pins down.
#pragma once

#include <cstdint>
#include <functional>

#include "campaign/campaign.hpp"

namespace pssp::campaign {

// Per-trial PRNG streams, split from the master seed. Exposed for tests:
// the derivation is part of the reproducibility contract.
struct trial_seeds {
    std::uint64_t server = 0;  // fork-server master (TLS canary C, ...)
    std::uint64_t attacker = 0;  // attack strategy nondeterminism
};
[[nodiscard]] trial_seeds seeds_for_trial(std::uint64_t master_seed,
                                          std::uint64_t trial_index);

class engine {
  public:
    explicit engine(campaign_spec spec);

    // Runs the whole campaign and reduces it. Victim builds (one compile +
    // link per (target, scheme)) happen up front on the calling thread;
    // trials fan out across spec.jobs workers. Throws if any trial threw.
    [[nodiscard]] campaign_report run();

    // Optional observer, called after every finished trial with
    // (completed, total). Invoked under a mutex from worker threads.
    void set_progress(std::function<void(std::uint64_t, std::uint64_t)> fn) {
        progress_ = std::move(fn);
    }

  private:
    campaign_spec spec_;
    std::function<void(std::uint64_t, std::uint64_t)> progress_;
};

}  // namespace pssp::campaign
