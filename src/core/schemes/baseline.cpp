// Baseline schemes: no protection, classic SSP, and RAF-SSP.
//
// RAF-SSP (Marco-Gisbert & Ripoll, "renew-after-fork") shares SSP's code
// generation entirely; it differs only in the fork wrapper, which installs
// a *fresh TLS canary* in the child. That stops the byte-by-byte attack but
// re-introduces the correctness bug the paper's Section II-C caveat
// describes: frames inherited from the parent still hold the old canary,
// so the child crashes as soon as control returns into them. We reproduce
// the bug faithfully — Table I's "Correctness: No" row is measured.

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/schemes/schemes_internal.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core::detail {

using namespace vm::isa;
using vm::reg;

namespace {

class none_scheme final : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::none; }
    std::string name() const override { return "native (no canary)"; }
    bool wants_protection(const std::vector<local_desc>&) const override { return false; }
    std::int32_t stack_canary_bytes() const noexcept override { return 0; }
    void emit_prologue(binfmt::bin_function&, binfmt::image&,
                       const frame_plan&) const override {}
    void emit_epilogue(binfmt::bin_function&, binfmt::image&,
                       const frame_plan&) const override {}
    void runtime_setup(vm::machine&, crypto::xoshiro256&) const override {
        // Not even a TLS canary: pure native execution.
    }
};

class ssp_scheme : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::ssp; }
    std::string name() const override { return "SSP (stock stack protector)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    // Code 1, lines 4-5: copy the TLS canary into the frame.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rax, fs(tls_canary)), mov_mr(mem(reg::rbp, slot), reg::rax)});
    }

    // Code 2: xor against the TLS canary; mismatch calls __stack_chk_fail.
    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rdx, mem(reg::rbp, slot)), xor_rm(reg::rdx, fs(tls_canary))});
        emit_check_tail(f, img);
    }
};

class raf_ssp_scheme final : public ssp_scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::raf_ssp; }
    std::string name() const override { return "RAF-SSP (renew canary after fork)"; }

    void runtime_on_fork_child(vm::machine& child, crypto::xoshiro256& rng) const override {
        // The whole scheme: a new TLS canary for the child. Frames created
        // before the fork keep the parent's canary and will now fail their
        // epilogue check — the documented incorrectness.
        tls_store(child, tls_canary, fresh_tls_canary(rng));
        child.charge(4);
    }

    bool updates_tls_on_fork() const noexcept override { return true; }
};

}  // namespace

std::unique_ptr<scheme> make_none() { return std::make_unique<none_scheme>(); }
std::unique_ptr<scheme> make_ssp() { return std::make_unique<ssp_scheme>(); }
std::unique_ptr<scheme> make_raf_ssp() { return std::make_unique<raf_ssp_scheme>(); }

}  // namespace pssp::core::detail
