// Virtual memory of a simulated process.
//
// A small set of byte-addressable regions with W^X-style access checks:
//   * stack   — grows downward from stack_top; where canaries live and
//               where every overflow in this library actually lands;
//   * tls     — the thread-local storage block addressed via %fs. The TLS
//               canary C sits at fs+0x28 and the P-SSP shadow canary pair
//               (C0, C1) at fs+0x2a8..0x2b7, mirroring Section V-A;
//   * globals — .data/.bss analog for workload state and request buffers.
// Code is NOT mapped here: instruction fetch goes through the program
// object, so stray data writes can never modify text (and reads/writes to
// text addresses fault, as under a standard W^X policy).
//
// Every access is bounds-checked; a violation raises mem_fault, which the
// interpreter converts into a segfault trap — the observable "crash" signal
// the byte-by-byte attacker drives its oracle with.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pssp::vm {

// Default layout; chosen to look like a Linux x86-64 process.
inline constexpr std::uint64_t default_globals_base = 0x0000000000601000ull;
inline constexpr std::uint64_t default_globals_size = 256 * 1024;
inline constexpr std::uint64_t default_stack_top = 0x00007ffffffff000ull;
inline constexpr std::uint64_t default_stack_size = 256 * 1024;
inline constexpr std::uint64_t default_tls_base = 0x00007f7700000000ull;
inline constexpr std::uint64_t default_tls_size = 4096;

// Thrown on out-of-bounds or permission-violating access.
class mem_fault : public std::runtime_error {
  public:
    mem_fault(std::uint64_t addr, std::size_t size, const std::string& what)
        : std::runtime_error{what}, addr_{addr}, size_{size} {}
    [[nodiscard]] std::uint64_t addr() const noexcept { return addr_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

  private:
    std::uint64_t addr_;
    std::size_t size_;
};

// Region layout of a process image. At namespace scope (not nested) so it
// can serve as a defaulted constructor argument.
struct mem_layout {
    std::uint64_t globals_base = default_globals_base;
    std::uint64_t globals_size = default_globals_size;
    std::uint64_t stack_top = default_stack_top;
    std::uint64_t stack_size = default_stack_size;
    std::uint64_t tls_base = default_tls_base;
    std::uint64_t tls_size = default_tls_size;
};

class memory {
  public:
    using layout = mem_layout;

    explicit memory(const layout& lay = layout{});

    // Value accessors. Multi-byte accesses are little-endian and must lie
    // entirely inside one region.
    [[nodiscard]] std::uint8_t load8(std::uint64_t addr) const;
    [[nodiscard]] std::uint32_t load32(std::uint64_t addr) const;
    [[nodiscard]] std::uint64_t load64(std::uint64_t addr) const;
    void store8(std::uint64_t addr, std::uint8_t value);
    void store32(std::uint64_t addr, std::uint32_t value);
    void store64(std::uint64_t addr, std::uint64_t value);

    // Bulk accessors for native helpers and the attack harness.
    void read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const;
    void write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);

    // True if [addr, addr+size) is mapped within a single region.
    [[nodiscard]] bool contains(std::uint64_t addr, std::size_t size = 1) const noexcept;

    [[nodiscard]] const layout& regions() const noexcept { return layout_; }

    // Direct spans, used by fork (memcpy of the whole region) and by tests
    // that inspect raw stack bytes around the canary.
    [[nodiscard]] std::span<const std::uint8_t> stack_bytes() const noexcept;
    [[nodiscard]] std::span<const std::uint8_t> tls_bytes() const noexcept;
    [[nodiscard]] std::span<const std::uint8_t> globals_bytes() const noexcept;

    // Resident set analog: bytes of backing store, for Table IV's memory
    // usage column.
    [[nodiscard]] std::size_t resident_bytes() const noexcept;

  private:
    struct region {
        std::uint64_t base;
        std::vector<std::uint8_t> bytes;
        [[nodiscard]] bool contains(std::uint64_t addr, std::size_t size) const noexcept {
            return addr >= base && addr + size <= base + bytes.size() && addr + size >= addr;
        }
    };

    layout layout_;
    region globals_;
    region stack_;
    region tls_;

    [[nodiscard]] const region* find(std::uint64_t addr, std::size_t size) const noexcept;
    [[nodiscard]] region* find(std::uint64_t addr, std::size_t size) noexcept;
};

}  // namespace pssp::vm
