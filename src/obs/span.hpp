// Scoped-span tracer with per-thread lock-free rings, Chrome trace_event
// export, and a crash flight recorder.
//
// A span is a named interval on the monotonic clock: construct an
// obs::span at the top of a scope and its destructor records
// {name, category, start, duration, arg, thread} into the calling
// thread's ring buffer. Rings are fixed-capacity and strictly
// thread-local for writes (one store per field, an index bump, no CAS
// loop, no allocation after ring creation), so tracing a campaign round
// or a 64-trial block costs nanoseconds and never contends. Overflow
// overwrites the oldest entry — the ring always holds the newest N
// completed spans, which is exactly what a post-mortem wants.
//
// Tracing is off by default (spans early-out on one relaxed load);
// enable_tracing(true) arms it process-wide. Exports:
//
//   chrome_trace_json()   all threads' rings as Chrome trace_event JSON
//                         ("ph":"X" complete events, microsecond
//                         timestamps) — load the file in chrome://tracing
//                         or https://ui.perfetto.dev.
//   flight_record_json()  the newest spans across rings as a compact
//                         bounded JSON object; workers checkpoint this to
//                         the path in set_flight_path() (tmp + rename, so
//                         a crash mid-write never leaves a torn file) and
//                         the orchestrator embeds it in
//                         obs-postmortem-<shard>.json for dead shards.
//
// Like the registry, this is a side channel: span contents never feed
// back into trial outcomes or report bytes, and PSSP_OBS=0 compiles the
// whole thing down to empty inline stubs.
#pragma once

#include <cstdint>
#include <string>

#ifndef PSSP_OBS
#define PSSP_OBS 1
#endif

namespace pssp::obs {

#if PSSP_OBS

// Process-wide arm/disarm. Disabled spans cost one relaxed atomic load.
void enable_tracing(bool on) noexcept;
[[nodiscard]] bool tracing_enabled() noexcept;

// Nanoseconds on the same steady clock spans use; for manual emission.
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

// Records a completed span directly — for intervals that don't nest as a
// C++ scope, e.g. a worker process's lifetime measured in the
// orchestrator across fork and waitpid.
void emit_span(const char* name, const char* category,
               std::uint64_t start_ns, std::uint64_t duration_ns,
               std::int64_t arg = -1) noexcept;

// RAII scoped span. `name` is copied (truncated to an inline buffer);
// `category` must be a string literal or otherwise outlive the export.
// `arg` lands in the trace event's args object when >= 0 (block index,
// shard id, round number, ...).
class span {
  public:
    explicit span(const char* name, const char* category = "pssp",
                  std::int64_t arg = -1) noexcept;
    ~span();
    span(const span&) = delete;
    span& operator=(const span&) = delete;

    // Attach/replace the arg after construction (e.g. a result count).
    void set_arg(std::int64_t arg) noexcept { arg_ = arg; }

  private:
    std::uint64_t start_ns_ = 0;
    std::int64_t arg_ = -1;
    const char* category_ = nullptr;
    char name_[48] = {};
    bool armed_ = false;
};

// Spans per thread ring before the oldest is overwritten. Applies to
// rings created after the call; test hook.
void set_ring_capacity(std::uint32_t spans);

// Drops all recorded spans (rings stay allocated). Test isolation.
void clear_spans_for_test();

// Number of spans currently buffered across all rings.
[[nodiscard]] std::uint64_t buffered_span_count();

// Full export: Chrome trace_event JSON document. `process_name` labels
// this process's track in the viewer (e.g. "shard 3").
[[nodiscard]] std::string chrome_trace_json(
    const std::string& process_name = "");

// Bounded export: the newest `max_spans` spans (across all rings, by end
// time) as {"spans":[{name,cat,start_ns,dur_ns,tid,arg},...]}.
[[nodiscard]] std::string flight_record_json(std::size_t max_spans = 256);

// Flight recorder: when a path is set, flight_checkpoint() atomically
// rewrites it with flight_record_json(). Workers call this at protocol
// milestones so the file is near-current whenever the process dies.
void set_flight_path(std::string path);
void flight_checkpoint() noexcept;

#else  // PSSP_OBS == 0: tracing compiles to nothing.

inline void enable_tracing(bool) noexcept {}
[[nodiscard]] inline bool tracing_enabled() noexcept { return false; }
[[nodiscard]] inline std::uint64_t trace_now_ns() noexcept { return 0; }
inline void emit_span(const char*, const char*, std::uint64_t, std::uint64_t,
                      std::int64_t = -1) noexcept {}

class span {
  public:
    explicit span(const char*, const char* = "pssp", std::int64_t = -1) noexcept {}
    span(const span&) = delete;
    span& operator=(const span&) = delete;
    void set_arg(std::int64_t) noexcept {}
};

inline void set_ring_capacity(std::uint32_t) {}
inline void clear_spans_for_test() {}
[[nodiscard]] inline std::uint64_t buffered_span_count() { return 0; }
[[nodiscard]] inline std::string chrome_trace_json(const std::string& = "") {
    return "{\"traceEvents\": []}";
}
[[nodiscard]] inline std::string flight_record_json(std::size_t = 256) {
    return "{\"spans\": []}";
}
inline void set_flight_path(std::string) {}
inline void flight_checkpoint() noexcept {}

#endif  // PSSP_OBS

}  // namespace pssp::obs
