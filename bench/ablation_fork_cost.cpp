// Ablation: the cost of fork-time canary consistency — the quantitative
// version of the paper's "elegance" argument (Section III-D).
//
// DynaGuard and DCR renew the TLS canary on fork and must therefore *fix
// every live stack canary* in the child: DynaGuard walks its canary
// address buffer, DCR walks the in-stack linked list. That work grows with
// the number of live frames at fork time. P-SSP refreshes two TLS words —
// O(1) no matter how deep the stack — and RAF-SSP does even less (which is
// exactly why it is broken).
//
// Method: a recursive VM function forks at the bottom of an N-deep chain
// of protected frames; we charge-account the child-side fork hook per
// scheme across N.

#include "bench_util.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

// rec(depth): if depth == 0 { fork(); return pid } else return rec(depth-1)
compiler::ir_module recursive_module() {
    compiler::ir_module mod;
    mod.name = "deep_fork";
    auto& fn = mod.add_function("rec");
    fn.param_count = 1;
    const int depth = compiler::add_local(fn, "depth");
    (void)compiler::add_local(fn, "buf", 24, /*is_buffer=*/true);
    const int out = compiler::add_local(fn, "out");

    compiler::if_stmt base{compiler::local_ref{depth}, compiler::relop::eq,
                           compiler::const_ref{0}, {}, {}};
    base.then_body.push_back(compiler::call_stmt{"fork", {}, out});
    base.then_body.push_back(compiler::return_stmt{compiler::local_ref{out}});
    fn.body.push_back(base);
    const int next = compiler::add_local(fn, "next");
    fn.body.push_back(compiler::compute_stmt{next, compiler::local_ref{depth},
                                             compiler::binop::sub,
                                             compiler::const_ref{1}});
    fn.body.push_back(compiler::call_stmt{"rec", {compiler::local_ref{next}}, out});
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{out}});
    return mod;
}

// Runs the parent to its fork at recursion depth N; returns the modeled
// cycles the child spends inside the scheme's fork hook.
std::uint64_t fork_fixup_cycles(scheme_kind kind, std::uint64_t depth) {
    const auto mod = recursive_module();
    const auto binary = compiler::build_module(mod, core::make_scheme(kind));
    proc::process_manager manager{core::make_scheme(kind), 500 + depth};
    auto parent = manager.create_process(binary);
    parent.set(vm::reg::rdi, depth);
    parent.call_function(binary.symbols.at("rec"));
    parent.set_fuel(10'000'000);
    const auto r = parent.run();
    if (r.status != vm::exec_status::syscalled) return ~0ull;  // never forked

    // fork_child copies the parent (cycles included) and then runs the
    // hook, which charges the child for its fix-up work.
    auto child = manager.fork_child(parent);
    const std::uint64_t fixup = child.cycles() - parent.cycles();

    // Sanity: the child must still unwind the whole chain successfully.
    child.complete_syscall(0);
    child.set_fuel(child.steps() + 10'000'000);
    if (child.run().status != vm::exec_status::exited) return ~0ull;
    return fixup;
}

}  // namespace

int main() {
    bench::print_header(
        "Ablation — fork-time canary-consistency cost vs live stack depth",
        "Section III-D ('does not have to deal with canary consistency')");

    const std::uint64_t depths[] = {1, 4, 16, 64, 128};
    util::text_table table{{"live frames at fork", "SSP", "P-SSP", "DynaGuard", "DCR"}};
    for (const auto depth : depths) {
        std::vector<std::string> row{std::to_string(depth + 1)};
        for (const auto kind : {scheme_kind::ssp, scheme_kind::p_ssp,
                                scheme_kind::dynaguard, scheme_kind::dcr}) {
            const auto cycles = fork_fixup_cycles(kind, depth);
            row.push_back(cycles == ~0ull ? "FAILED" : std::to_string(cycles));
        }
        table.add_row(std::move(row));
    }
    std::printf("%s\n",
                table.render("Child-side fork-hook cycles (lower = better)").c_str());
    std::printf("expected shape: SSP 0 (inherits everything), P-SSP constant\n"
                "(one Algorithm-1 split regardless of depth), DynaGuard and DCR\n"
                "linear in the number of live canaries they must rewrite — the\n"
                "bookkeeping P-SSP's design eliminates.\n");
    return 0;
}
