// The TCP coordinator, end to end: a real localhost fleet of
// tools_campaign_node daemons (each fork/execing the real
// tools_campaign_worker per lease) must produce campaign reports
// byte-identical to the in-process engine — at every worker count, in
// fixed and adaptive allocation, under every network fault class the
// chaos harness can inject, and after a worker vanishes for good. Plus
// the protocol edges: version-mismatch handshake rejection with the
// pinned message, and the loud register-wait failure when no fleet ever
// connects.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/chaos.hpp"
#include "dist/coordinator.hpp"
#include "dist/orchestrator.hpp"
#include "obs/registry.hpp"

namespace pssp {
namespace {

struct scoped_fault_plan {
    explicit scoped_fault_plan(const char* plan) {
        ::setenv(dist::fault_plan_env, plan, /*overwrite=*/1);
    }
    ~scoped_fault_plan() { ::unsetenv(dist::fault_plan_env); }
};

// Two cells, one 6-trial block each: the smallest campaign where two
// workers both own real work.
campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 6;
    spec.master_seed = 23;
    spec.query_budget = 512;
    return spec;
}

// Fleet-mode options: shards-many leases per round, workers-many node
// daemons, fast heartbeats and tiny backoffs so recovery paths finish
// inside sanitizer-slowed CI.
dist::sharded_options fleet_options(unsigned shards, unsigned workers) {
    dist::sharded_options options;
    options.shards = shards;
    options.flight_recorder = false;
    options.postmortem_dir = ::testing::TempDir();
    options.faults.max_attempts = 4;
    options.faults.backoff_base_seconds = 0.001;
    options.faults.backoff_cap_seconds = 0.01;
    dist::net_options net;
    net.fleet_workers = workers;
    net.heartbeat_seconds = 0.1;
    options.net = net;
    return options;
}

std::uint64_t counter_value(const char* name) {
    return obs::value(obs::counter(name));
}

TEST(dist_coordinator, fleet_reports_byte_identical_at_every_worker_count) {
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    for (unsigned workers : {1u, 2u, 4u}) {
        const auto options = fleet_options(workers, workers);
        const auto report = dist::run_sharded(spec, options);
        EXPECT_EQ(report.to_json(), reference) << "workers: " << workers;
    }
}

TEST(dist_coordinator, adaptive_fleet_is_byte_identical_across_rounds) {
    // Two deterministic allocator rounds; workers persist across rounds
    // on the same connections — per-round re-registration would show up
    // as extra connections (and nondeterminism) here.
    auto spec = small_spec();
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.0;
    spec.trials_per_cell = 96;
    spec.round_blocks = 2;
    spec.min_trials_per_cell = 32;
    const auto reference = campaign::engine{spec}.run().to_json();
    const auto connections_before = counter_value("dist.net.connections");
    const auto report = dist::run_sharded(spec, fleet_options(2, 2));
    EXPECT_EQ(report.to_json(), reference);
    EXPECT_EQ(counter_value("dist.net.connections") - connections_before, 2u);
}

TEST(dist_coordinator, every_net_fault_class_heals_byte_identically) {
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    struct chaos_case {
        const char* plan;
        unsigned workers;
        const char* recovery_counter;  // must have moved, or nullptr
    };
    // Every fault strikes attempt 1 only (the default coordinate), so
    // the requeue heals it within the 4-attempt budget. Process faults
    // (crash) ride the same plan to prove the node still exports the
    // chaos coordinates to its compute children. The reconnect cases run
    // a single-worker fleet: the campaign then cannot complete at all
    // unless the dropped worker really reconnects, re-registers, and is
    // re-leased — the counter cannot be satisfied by a lucky survivor.
    const chaos_case cases[] = {
        {"net-drop:0", 1, "dist.net.reconnects"},
        {"net-garble:1", 2, "dist.net.evictions"},
        {"net-delay=100:0", 2, nullptr},
        {"net-partition=200:1", 1, "dist.net.reconnects"},
        {"net-stall-hb:0", 2, "dist.net.evictions"},
        {"crash:0,net-drop:1", 1, "dist.net.reconnects"},
    };
    for (const auto& c : cases) {
        scoped_fault_plan plan{c.plan};
        const auto before =
            c.recovery_counter ? counter_value(c.recovery_counter) : 0;
        const auto report = dist::run_sharded(spec, fleet_options(2, c.workers));
        EXPECT_EQ(report.to_json(), reference) << "plan: " << c.plan;
        if (c.recovery_counter) {
            EXPECT_GT(counter_value(c.recovery_counter), before)
                << "plan injected nothing: " << c.plan << " ("
                << c.recovery_counter << " unmoved)";
        }
    }
}

TEST(dist_coordinator, vanished_worker_degrades_to_requeue_on_survivors) {
    // net-die makes node 1's daemon exit for good the first time it takes
    // shard 1. The fleet shrinks to one worker; the requeued lease must
    // land on the survivor and the report must not move a byte.
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    scoped_fault_plan plan{"net-die:1"};
    const auto evictions_before = counter_value("dist.net.evictions");
    const auto report = dist::run_sharded(spec, fleet_options(2, 2));
    EXPECT_EQ(report.to_json(), reference);
    EXPECT_GT(counter_value("dist.net.evictions"), evictions_before);
}

TEST(dist_coordinator, version_mismatch_handshake_is_rejected_with_the_pinned_error) {
    // Speak the wire by hand: a v999 hello must be answered with exactly
    // version_mismatch_error(999) in an error frame, the connection
    // closed, and the worker never registered.
    dist::net_options net;  // no fleet — we are the only "worker"
    const dist::fault_policy policy;
    dist::coordinator coord{net, policy, /*spec_digest=*/1};
    ASSERT_NE(coord.port(), 0);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(coord.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

    dist::hello_msg hello;
    hello.version = 999;
    hello.name = "time-traveler";
    const auto wire = dist::encode_frame(dist::frame_type::hello,
                                         dist::hello_to_json(hello));
    ASSERT_EQ(::write(fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));

    // Let the coordinator accept, read the hello, and refuse us.
    for (int i = 0; i < 50 && coord.registered_workers() == 0; ++i)
        coord.pump(/*wait_ms=*/20);
    EXPECT_EQ(coord.registered_workers(), 0u);

    // The refusal arrives as an error frame, then EOF.
    dist::frame_reader reader;
    char buf[4096];
    std::vector<dist::frame> frames;
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n <= 0) break;
        reader.feed(buf, static_cast<std::size_t>(n));
        while (auto f = reader.next()) frames.push_back(std::move(*f));
    }
    ::close(fd);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, dist::frame_type::error);
    EXPECT_EQ(frames[0].payload, dist::coordinator::version_mismatch_error(999));
    EXPECT_EQ(frames[0].payload,
              "coordinator: protocol version mismatch (worker speaks v999, "
              "coordinator speaks v1)");
}

TEST(dist_coordinator, no_workers_within_register_wait_fails_loudly) {
    // Listen-only mode with nobody told to connect: the run must fail
    // with the starvation message, not hang.
    const auto spec = small_spec();
    auto options = fleet_options(2, /*workers=*/0);
    options.net->register_wait_seconds = 0.2;
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "run completed with no workers";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(),
                     "run_sharded: no registered workers within 0.2s — fleet "
                     "lost or never connected");
    }
}

}  // namespace
}  // namespace pssp
