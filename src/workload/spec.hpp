// SPEC CPU2006-like synthetic suite: 28 mini-programs with the call-density
// spread that determines canary overhead (Figure 5's x-axis).
//
// Each program is main() driving a few compute kernels in a loop. What
// varies per program — mirroring what actually differs across SPEC for a
// stack-protector study — is:
//   * inner_iters        : work per kernel invocation (call-heavy programs
//                          like perlbench sit at the low end, loop-heavy
//                          ones like lbm at the high end);
//   * kernels            : call-graph width;
//   * protected_kernels  : how many kernels contain a stack buffer and
//                          therefore receive a canary under
//                          -fstack-protector (SPEC programs differ wildly
//                          in their array-in-frame density).
// Absolute cycle counts are meaningless; the per-program *ratio* between a
// scheme build and the native build is the reproduced quantity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ir.hpp"

namespace pssp::workload {

struct spec_profile {
    std::string name;
    std::uint64_t inner_iters;   // arithmetic rounds per kernel call
    int kernels;                 // number of kernel functions
    int protected_kernels;       // kernels containing a stack buffer
    std::uint64_t outer_iters;   // main-loop trips (sized for bench speed)
    bool integer_suite;          // CINT2006 vs CFP2006 (labeling only)
};

// The 28 benchmark profiles used throughout (12 SPECint + 16 SPECfp).
[[nodiscard]] const std::vector<spec_profile>& spec2006_profiles();

// Builds the module for one profile. Entry point: "main".
[[nodiscard]] compiler::ir_module make_spec_module(const spec_profile& profile);

}  // namespace pssp::workload
