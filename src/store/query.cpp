#include "store/query.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "util/json.hpp"
#include "util/table.hpp"

namespace pssp::store {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error{"store: " + what};
}

template <class T>
bool axis_matches(const std::vector<T>& allowed, T value) {
    if (allowed.empty()) return true;
    return std::find(allowed.begin(), allowed.end(), value) != allowed.end();
}

std::string fmt_rate_ci(double rate, const util::interval& ci) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f [%.4f,%.4f]", rate, ci.lo, ci.hi);
    return buf;
}

}  // namespace

bool query_filter::matches(const campaign::cell_id& id) const {
    return axis_matches(schemes, id.scheme) && axis_matches(attacks, id.attack) &&
           axis_matches(targets, id.target);
}

void add_scheme(query_filter& filter, const std::string& name) {
    filter.schemes.push_back(core::scheme_kind_from_string(name));
}

void add_attack(query_filter& filter, const std::string& name) {
    filter.attacks.push_back(attack::attack_kind_from_string(name));
}

void add_target(query_filter& filter, const std::string& name) {
    filter.targets.push_back(workload::target_kind_from_string(name));
}

std::string cell_name(const campaign::cell_id& id) {
    return workload::to_string(id.target) + "/" + core::to_string(id.scheme) +
           "/" + attack::to_string(id.attack);
}

std::vector<block_row> dedup_blocks(const store_data& data) {
    // Lowest ingest seq wins; later copies of a block index are replay
    // echoes of the identical value (and the writer skips them anyway).
    std::unordered_map<std::uint64_t, const block_row*> best;
    best.reserve(data.blocks.size());
    for (const auto& r : data.blocks) {
        auto [it, inserted] = best.try_emplace(r.block.index, &r);
        if (!inserted && r.seq < it->second->seq) it->second = &r;
    }
    std::vector<block_row> rows;
    rows.reserve(best.size());
    for (const auto& [index, row] : best) rows.push_back(*row);
    std::sort(rows.begin(), rows.end(),
              [](const block_row& a, const block_row& b) {
                  return a.block.index < b.block.index;
              });
    return rows;
}

std::vector<cell_aggregate> aggregate_cells(const store_data& data,
                                            const query_filter& filter) {
    const auto ids = campaign::cells_for(data.meta.spec);
    const auto rows = dedup_blocks(data);

    struct bucket {
        campaign::cell_partial merged;
        std::uint64_t block_rows = 0;
        std::uint64_t first_round = 0;
        std::uint64_t last_round = 0;
    };
    std::map<std::uint64_t, bucket> buckets;  // cell index, canonical order
    for (const auto& r : rows) {
        if (r.round < filter.min_round || r.round > filter.max_round) continue;
        if (r.block.cell >= ids.size())
            fail(data.directory + ": block " + std::to_string(r.block.index) +
                 " names cell " + std::to_string(r.block.cell) +
                 " outside the campaign's cell space");
        if (!filter.matches(ids[r.block.cell])) continue;
        auto& b = buckets[r.block.cell];
        if (b.block_rows == 0) {
            b.first_round = r.round;
            b.last_round = r.round;
        } else {
            b.first_round = std::min(b.first_round, r.round);
            b.last_round = std::max(b.last_round, r.round);
        }
        // Rows arrive ascending block index — the canonical merge order.
        b.merged.merge(r.block.partial);
        b.block_rows += 1;
    }

    std::vector<cell_aggregate> out;
    out.reserve(buckets.size());
    for (const auto& [cell, b] : buckets) {
        cell_aggregate agg;
        agg.cell = cell;
        agg.id = ids[cell];
        agg.report = campaign::finalize_cell(ids[cell], b.merged);
        agg.block_rows = b.block_rows;
        agg.first_round = b.first_round;
        agg.last_round = b.last_round;
        out.push_back(std::move(agg));
    }
    return out;
}

campaign::campaign_report reconstruct_report(const store_data& data) {
    const auto& spec = data.meta.spec;
    const auto canonical = campaign::blocks_for(spec);
    const auto rows = dedup_blocks(data);

    std::vector<campaign::block_ref> refs;
    std::vector<campaign::cell_partial> partials;
    refs.reserve(rows.size());
    partials.reserve(rows.size());
    for (const auto& r : rows) {
        if (r.block.index >= canonical.size())
            fail(data.directory + ": block " + std::to_string(r.block.index) +
                 " does not exist in this campaign's block space");
        const auto& ref = canonical[r.block.index];
        if (r.block.cell != ref.cell || r.block.partial.trials != ref.trials)
            fail(data.directory + ": block " + std::to_string(r.block.index) +
                 " disagrees with the canonical block space — the store "
                 "belongs to a different campaign");
        refs.push_back(ref);
        partials.push_back(r.block.partial);
    }
    // Adaptive executed blocks are always per-cell prefixes of the
    // canonical space, and refs are ascending by index — exactly the
    // reduction the allocator's report() performs.
    return campaign::assemble_report(spec, refs, partials);
}

std::string aggregate_table(std::span<const cell_aggregate> cells) {
    util::text_table table{{"target/scheme/attack", "trials", "hijacks",
                            "detections", "detection [95% CI]",
                            "hijack [95% CI]", "blocks", "rounds"}};
    for (const auto& c : cells) {
        const std::string rounds =
            c.first_round == c.last_round
                ? std::to_string(c.first_round)
                : std::to_string(c.first_round) + "-" +
                      std::to_string(c.last_round);
        table.add_row({cell_name(c.id), std::to_string(c.report.trials),
                       std::to_string(c.report.hijacks),
                       std::to_string(c.report.detections),
                       fmt_rate_ci(c.report.detection_rate,
                                   c.report.detection_ci),
                       fmt_rate_ci(c.report.hijack_rate, c.report.hijack_ci),
                       std::to_string(c.block_rows), rounds});
    }
    return table.render("result store aggregate");
}

std::string aggregate_json(const store_data& data,
                           std::span<const cell_aggregate> cells) {
    std::string out = "{\"aggregate\":{";
    util::append_kv(out, "spec_digest", data.meta.spec_digest);
    util::append_kv_bool(out, "complete", data.complete);
    std::uint64_t trials = 0;
    for (const auto& c : cells) trials += c.report.trials;
    util::append_kv(out, "trials", trials);
    out += "\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        if (i > 0) out += ',';
        out += '{';
        util::append_kv(out, "target",
                        std::string{workload::to_string(c.id.target)});
        util::append_kv(out, "scheme", std::string{core::to_string(c.id.scheme)});
        util::append_kv(out, "attack",
                        std::string{attack::to_string(c.id.attack)});
        util::append_kv(out, "trials", c.report.trials);
        util::append_kv(out, "hijacks", c.report.hijacks);
        util::append_kv(out, "detections", c.report.detections);
        util::append_kv(out, "hijack_rate", c.report.hijack_rate);
        util::append_interval(out, "hijack_ci95", c.report.hijack_ci);
        util::append_kv(out, "detection_rate", c.report.detection_rate);
        util::append_interval(out, "detection_ci95", c.report.detection_ci);
        util::append_accumulator(out, "oracle_queries", c.report.queries);
        util::append_kv(out, "canary_detections", c.report.canary_detections);
        util::append_kv(out, "other_crashes", c.report.other_crashes);
        util::append_kv(out, "block_rows", c.block_rows);
        util::append_kv(out, "first_round", c.first_round);
        util::append_kv(out, "last_round", c.last_round, /*comma=*/false);
        out += '}';
    }
    out += "]}}";
    return out;
}

std::string comparison_table(std::span<const store_data> stores,
                             std::span<const std::string> names,
                             const query_filter& filter) {
    if (stores.size() != names.size())
        throw std::invalid_argument{
            "comparison_table: one name per store required"};

    // Cell key -> per-store aggregate. Keys keep first-appearance order
    // (store 0's canonical order, then later stores' extras).
    std::vector<std::string> order;
    std::map<std::string, std::vector<const cell_aggregate*>> by_name;
    std::vector<std::vector<cell_aggregate>> all;
    all.reserve(stores.size());
    for (const auto& s : stores) all.push_back(aggregate_cells(s, filter));
    for (std::size_t i = 0; i < all.size(); ++i) {
        for (const auto& c : all[i]) {
            auto [it, inserted] =
                by_name.try_emplace(cell_name(c.id),
                                    std::vector<const cell_aggregate*>(
                                        stores.size(), nullptr));
            if (inserted) order.push_back(it->first);
            it->second[i] = &c;
        }
    }

    std::vector<std::string> header{"target/scheme/attack"};
    for (const auto& n : names) {
        header.push_back(n + " detection");
        header.push_back(n + " hijack");
        header.push_back(n + " trials");
    }
    util::text_table table{std::move(header)};
    for (const auto& key : order) {
        std::vector<std::string> row{key};
        for (const auto* agg : by_name.at(key)) {
            if (agg == nullptr) {
                row.insert(row.end(), {"-", "-", "-"});
                continue;
            }
            row.push_back(fmt_rate_ci(agg->report.detection_rate,
                                      agg->report.detection_ci));
            row.push_back(
                fmt_rate_ci(agg->report.hijack_rate, agg->report.hijack_ci));
            row.push_back(std::to_string(agg->report.trials));
        }
        table.add_row(std::move(row));
    }
    return table.render("cross-campaign comparison");
}

}  // namespace pssp::store
