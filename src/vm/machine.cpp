#include "vm/machine.hpp"

#include <cassert>
#include <stdexcept>

namespace pssp::vm {

std::string to_string(exec_status status) {
    switch (status) {
        case exec_status::running: return "running";
        case exec_status::exited: return "exited";
        case exec_status::trapped: return "trapped";
        case exec_status::syscalled: return "syscalled";
        case exec_status::out_of_fuel: return "out_of_fuel";
    }
    return "?";
}

std::string to_string(trap_kind trap) {
    switch (trap) {
        case trap_kind::none: return "none";
        case trap_kind::stack_smash: return "stack_smash";
        case trap_kind::segfault: return "segfault";
        case trap_kind::invalid_jump: return "invalid_jump";
        case trap_kind::stack_overrun: return "stack_overrun";
    }
    return "?";
}

machine::machine(std::shared_ptr<const program> prog, memory::layout layout,
                 std::uint64_t entropy_seed)
    : prog_{std::move(prog)},
      mem_{layout},
      fs_base_{layout.tls_base},
      entropy_{entropy_seed} {
    if (!prog_) throw std::invalid_argument{"machine requires a program"};
    gpr_[static_cast<std::size_t>(reg::rsp)] = layout.stack_top - initial_stack_headroom;
}

std::uint64_t machine::get(reg r) const noexcept {
    assert(r != reg::none);
    return gpr_[static_cast<std::size_t>(r)];
}

void machine::set(reg r, std::uint64_t value) noexcept {
    assert(r != reg::none);
    gpr_[static_cast<std::size_t>(r)] = value;
}

machine::xmm_value machine::get_x(xreg x) const noexcept {
    assert(x != xreg::none);
    return xmm_[static_cast<std::size_t>(x)];
}

void machine::set_x(xreg x, xmm_value value) noexcept {
    assert(x != xreg::none);
    xmm_[static_cast<std::size_t>(x)] = value;
}

std::uint64_t machine::effective_address(const mem_operand& m) const noexcept {
    std::uint64_t addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(m.disp));
    if (m.base != reg::none) addr += get(m.base);
    if (m.seg == segment::fs) addr += fs_base_;
    return addr;
}

void machine::push64(std::uint64_t value) {
    const std::uint64_t rsp = get(reg::rsp) - 8;
    set(reg::rsp, rsp);
    mem_.store64(rsp, value);
}

std::uint64_t machine::pop64() {
    const std::uint64_t rsp = get(reg::rsp);
    const std::uint64_t value = mem_.load64(rsp);
    set(reg::rsp, rsp + 8);
    return value;
}

bool machine::jump_to(std::uint64_t addr, run_result& out) {
    const std::uint32_t index = prog_->index_of(addr);
    if (index == no_id) {
        out.status = exec_status::trapped;
        out.trap = trap_kind::invalid_jump;
        out.fault_addr = addr;
        return false;
    }
    rip_ = index;
    return true;
}

void machine::call_function(std::uint64_t entry) {
    finished_valid_ = false;
    set(reg::rsp, mem_.regions().stack_top - initial_stack_headroom);
    push64(return_sentinel);
    const std::uint32_t index = prog_->index_of(entry);
    if (index == no_id)
        throw std::invalid_argument{"call_function: entry is not an instruction start"};
    rip_ = index;
    rip_valid_ = true;
}

void machine::complete_syscall(std::uint64_t rax_value) {
    set(reg::rax, rax_value);
}

void machine::set_alu_flags(std::uint64_t result) noexcept {
    flags_.zf = result == 0;
}

run_result machine::step() {
    run_result out;
    const instruction& insn = prog_->insns[rip_];
    cycles_ += costs_.cost_of(insn);
    ++steps_;

    // Most instructions fall through; control flow overrides this.
    std::uint32_t next_rip = rip_ + 1;

    switch (insn.op) {
        case opcode::nop:
            break;
        case opcode::push_r:
            push64(get(insn.r1));
            break;
        case opcode::push_i:
            push64(insn.imm);
            break;
        case opcode::pop_r:
            set(insn.r1, pop64());
            break;
        case opcode::mov_rr:
            set(insn.r1, get(insn.r2));
            break;
        case opcode::mov_ri:
            set(insn.r1, insn.imm);
            break;
        case opcode::mov_rm:
            set(insn.r1, mem_.load64(effective_address(insn.mem)));
            break;
        case opcode::mov_mr:
            mem_.store64(effective_address(insn.mem), get(insn.r2));
            break;
        case opcode::mov_mi:
            mem_.store64(effective_address(insn.mem), insn.imm);
            break;
        case opcode::mov32_rm:
            set(insn.r1, mem_.load32(effective_address(insn.mem)));
            break;
        case opcode::mov32_mr:
            mem_.store32(effective_address(insn.mem),
                         static_cast<std::uint32_t>(get(insn.r2)));
            break;
        case opcode::movzx8_rm:
            set(insn.r1, mem_.load8(effective_address(insn.mem)));
            break;
        case opcode::mov8_mr:
            mem_.store8(effective_address(insn.mem),
                        static_cast<std::uint8_t>(get(insn.r2)));
            break;
        case opcode::lea:
            set(insn.r1, effective_address(insn.mem));
            break;
        case opcode::add_rr: {
            const std::uint64_t v = get(insn.r1) + get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::add_ri: {
            const std::uint64_t v = get(insn.r1) + insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::sub_rr: {
            const std::uint64_t v = get(insn.r1) - get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::sub_ri: {
            const std::uint64_t v = get(insn.r1) - insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_rr: {
            const std::uint64_t v = get(insn.r1) ^ get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_ri: {
            const std::uint64_t v = get(insn.r1) ^ insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_rm: {
            const std::uint64_t v = get(insn.r1) ^ mem_.load64(effective_address(insn.mem));
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::or_rr: {
            const std::uint64_t v = get(insn.r1) | get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::and_ri: {
            const std::uint64_t v = get(insn.r1) & insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::shl_ri:
            set(insn.r1, get(insn.r1) << (insn.imm & 63));
            set_alu_flags(get(insn.r1));
            break;
        case opcode::shr_ri:
            set(insn.r1, get(insn.r1) >> (insn.imm & 63));
            set_alu_flags(get(insn.r1));
            break;
        case opcode::imul_rr:
            set(insn.r1, get(insn.r1) * get(insn.r2));
            break;
        case opcode::imul_ri:
            set(insn.r1, get(insn.r1) * insn.imm);
            break;
        case opcode::cmp_rr:
        case opcode::cmp_ri:
        case opcode::cmp_rm: {
            const std::uint64_t a = get(insn.r1);
            std::uint64_t b = 0;
            if (insn.op == opcode::cmp_rr)
                b = get(insn.r2);
            else if (insn.op == opcode::cmp_ri)
                b = insn.imm;
            else
                b = mem_.load64(effective_address(insn.mem));
            flags_.zf = a == b;
            flags_.lt_unsigned = a < b;
            flags_.lt_signed = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
            break;
        }
        case opcode::test_rr:
            flags_.zf = (get(insn.r1) & get(insn.r2)) == 0;
            break;
        case opcode::je:
            if (flags_.zf && !jump_to(insn.imm, out)) return out;
            if (flags_.zf) next_rip = rip_;
            break;
        case opcode::jne:
            if (!flags_.zf && !jump_to(insn.imm, out)) return out;
            if (!flags_.zf) next_rip = rip_;
            break;
        case opcode::jb:
            if (flags_.lt_unsigned && !jump_to(insn.imm, out)) return out;
            if (flags_.lt_unsigned) next_rip = rip_;
            break;
        case opcode::jae:
            if (!flags_.lt_unsigned && !jump_to(insn.imm, out)) return out;
            if (!flags_.lt_unsigned) next_rip = rip_;
            break;
        case opcode::jl:
            if (flags_.lt_signed && !jump_to(insn.imm, out)) return out;
            if (flags_.lt_signed) next_rip = rip_;
            break;
        case opcode::jge:
            if (!flags_.lt_signed && !jump_to(insn.imm, out)) return out;
            if (!flags_.lt_signed) next_rip = rip_;
            break;
        case opcode::jnc:
            if (!flags_.cf && !jump_to(insn.imm, out)) return out;
            if (!flags_.cf) next_rip = rip_;
            break;
        case opcode::jmp:
            if (!jump_to(insn.imm, out)) return out;
            next_rip = rip_;
            break;
        case opcode::call: {
            const std::uint64_t return_addr =
                prog_->addrs[rip_] + encoded_length(insn);
            const auto native_it = prog_->natives.find(insn.imm);
            if (native_it != prog_->natives.end()) {
                // Native helper: model the full call/ret round trip so the
                // helper can observe a genuine frame (return address on the
                // stack) while executing host-side.
                push64(return_addr);
                native_it->second(*this);
                const std::uint64_t back = pop64();
                if (back != return_addr && !jump_to(back, out)) return out;
                if (back != return_addr) next_rip = rip_;
                break;
            }
            push64(return_addr);
            if (!jump_to(insn.imm, out)) return out;
            next_rip = rip_;
            break;
        }
        case opcode::ret: {
            const std::uint64_t target = pop64();
            if (target == return_sentinel) {
                out.status = exec_status::exited;
                out.exit_code = static_cast<std::int64_t>(get(reg::rax));
                return out;
            }
            if (!jump_to(target, out)) return out;
            next_rip = rip_;
            break;
        }
        case opcode::leave:
            set(reg::rsp, get(reg::rbp));
            set(reg::rbp, pop64());
            break;
        case opcode::rdrand_r: {
            std::uint64_t value = 0;
            flags_.cf = entropy_.rdrand64(value);
            if (flags_.cf) set(insn.r1, value);
            break;
        }
        case opcode::rdtsc: {
            const std::uint64_t tsc = tsc_base_ + cycles_;
            set(reg::rax, tsc & 0xffffffffull);
            set(reg::rdx, tsc >> 32);
            break;
        }
        case opcode::movq_xr: {
            xmm_value x = get_x(insn.x1);
            x.lo = get(insn.r2);
            x.hi = 0;
            set_x(insn.x1, x);
            break;
        }
        case opcode::movq_rx:
            set(insn.r1, get_x(insn.x2).lo);
            break;
        case opcode::movhps_xm: {
            xmm_value x = get_x(insn.x1);
            x.hi = mem_.load64(effective_address(insn.mem));
            set_x(insn.x1, x);
            break;
        }
        case opcode::punpckhqdq_xr: {
            xmm_value x = get_x(insn.x1);
            x.hi = get(insn.r2);
            set_x(insn.x1, x);
            break;
        }
        case opcode::movdqu_mx: {
            const std::uint64_t addr = effective_address(insn.mem);
            const xmm_value x = get_x(insn.x2);
            mem_.store64(addr, x.lo);
            mem_.store64(addr + 8, x.hi);
            break;
        }
        case opcode::movdqu_xm: {
            const std::uint64_t addr = effective_address(insn.mem);
            set_x(insn.x1, {mem_.load64(addr), mem_.load64(addr + 8)});
            break;
        }
        case opcode::cmp128_xm: {
            const std::uint64_t addr = effective_address(insn.mem);
            const xmm_value x = get_x(insn.x1);
            flags_.zf = x.lo == mem_.load64(addr) && x.hi == mem_.load64(addr + 8);
            break;
        }
        case opcode::syscall_i: {
            const auto number = static_cast<std::uint32_t>(insn.imm);
            switch (static_cast<syscall_no>(number)) {
                case syscall_no::sys_exit:
                    out.status = exec_status::exited;
                    out.exit_code = static_cast<std::int64_t>(get(reg::rdi));
                    return out;
                case syscall_no::sys_getpid:
                    set(reg::rax, pid_);
                    break;
                case syscall_no::sys_write: {
                    const std::uint64_t buf = get(reg::rsi);
                    const std::uint64_t count = get(reg::rdx);
                    std::string data(count, '\0');
                    mem_.read_bytes(buf, std::span{reinterpret_cast<std::uint8_t*>(
                                                       data.data()),
                                                   data.size()});
                    output_ += data;
                    set(reg::rax, count);
                    break;
                }
                case syscall_no::sys_fork:
                    // Serviced by the process layer: stop with rip already
                    // advanced so both parent and child resume after the
                    // syscall once complete_syscall() fills in rax.
                    rip_ = next_rip;
                    out.status = exec_status::syscalled;
                    out.syscall_number = number;
                    return out;
            }
            break;
        }
        case opcode::trap_abort:
            out.status = exec_status::trapped;
            out.trap = trap_kind::stack_smash;
            out.fault_addr = prog_->addrs[rip_];
            return out;
        case opcode::hlt:
            out.status = exec_status::exited;
            out.exit_code = static_cast<std::int64_t>(get(reg::rax));
            return out;
        case opcode::sim_delay:
            break;  // cost-model artifact; no architectural effect
    }

    rip_ = next_rip;
    out.status = exec_status::running;
    return out;
}

run_result machine::run(std::uint64_t max_steps) {
    if (finished_valid_) return finished_;
    if (!rip_valid_) throw std::logic_error{"machine::run before call_function"};

    run_result out;
    std::uint64_t executed = 0;
    for (;;) {
        if (fuel_ != 0 && steps_ >= fuel_) {
            out.status = exec_status::out_of_fuel;
            break;
        }
        if (max_steps != 0 && executed >= max_steps) {
            out.status = exec_status::running;
            return out;  // resumable: not a terminal state
        }
        if (rip_ >= prog_->insns.size()) {
            out.status = exec_status::trapped;
            out.trap = trap_kind::invalid_jump;
            out.fault_addr = current_address();
            break;
        }
        try {
            out = step();
        } catch (const mem_fault& fault) {
            out.status = exec_status::trapped;
            out.trap = trap_kind::segfault;
            out.fault_addr = fault.addr();
        } catch (const native_trap& trap) {
            out.status = exec_status::trapped;
            out.trap = trap.kind;
            out.fault_addr = current_address();
        }
        ++executed;
        if (out.status == exec_status::syscalled) return out;  // resumable
        if (out.status != exec_status::running) break;
    }
    finished_ = out;
    finished_valid_ = true;
    return out;
}

std::uint64_t machine::current_address() const noexcept {
    if (rip_ < prog_->addrs.size()) return prog_->addrs[rip_];
    return 0;
}

}  // namespace pssp::vm
