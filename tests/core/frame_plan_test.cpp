// Frame-planning invariants, swept over random local-variable sets:
// non-overlap, alignment, canary placement relative to buffers, and the
// P-SSP-LV interleaving of Algorithm 2.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/scheme.hpp"
#include "crypto/prng.hpp"

namespace pssp {
namespace {

using core::frame_plan;
using core::local_desc;
using core::scheme_kind;

struct extent {
    std::int32_t lo;  // inclusive
    std::int32_t hi;  // exclusive
    std::string what;
};

// Gathers every occupied byte range in the plan.
std::vector<extent> extents_of(const frame_plan& plan,
                               const std::vector<local_desc>& locals) {
    std::vector<extent> out;
    for (std::size_t i = 0; i < locals.size(); ++i)
        out.push_back({plan.local_offsets[i],
                       plan.local_offsets[i] + static_cast<std::int32_t>(locals[i].size),
                       "local " + std::to_string(i)});
    for (const auto& c : plan.canaries)
        out.push_back({c.offset, c.offset + c.bytes, "canary"});
    return out;
}

// Random local sets: size 8..64, some buffers, some criticals.
std::vector<local_desc> random_locals(crypto::xoshiro256& rng) {
    std::vector<local_desc> out;
    const auto n = 1 + rng.below(6);
    for (std::uint64_t i = 0; i < n; ++i) {
        local_desc d;
        d.size = static_cast<std::uint32_t>(8 * (1 + rng.below(8)));
        d.is_buffer = rng.below(2) == 0;
        d.is_critical = rng.below(3) == 0;
        out.push_back(d);
    }
    // Guarantee at least one buffer so protection triggers.
    out.front().is_buffer = true;
    return out;
}

class frame_plan_test : public ::testing::TestWithParam<scheme_kind> {};

INSTANTIATE_TEST_SUITE_P(
    all_protecting, frame_plan_test,
    ::testing::Values(scheme_kind::ssp, scheme_kind::raf_ssp, scheme_kind::dynaguard,
                      scheme_kind::dcr, scheme_kind::p_ssp, scheme_kind::p_ssp_nt,
                      scheme_kind::p_ssp_lv, scheme_kind::p_ssp_owf,
                      scheme_kind::p_ssp32, scheme_kind::p_ssp_gb,
                      scheme_kind::p_ssp_c0tls),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
        std::string name = core::to_string(info.param);
        for (char& c : name)
            if (c == '-') c = '_';
        return name;
    });

TEST_P(frame_plan_test, slots_never_overlap_and_fit_in_frame) {
    const auto sch = core::make_scheme(GetParam());
    crypto::xoshiro256 rng{2718};
    for (int round = 0; round < 200; ++round) {
        const auto locals = random_locals(rng);
        const auto plan = sch->plan_frame(locals);
        auto spans = extents_of(plan, locals);
        std::sort(spans.begin(), spans.end(),
                  [](const extent& a, const extent& b) { return a.lo < b.lo; });
        for (std::size_t i = 0; i + 1 < spans.size(); ++i)
            EXPECT_LE(spans[i].hi, spans[i + 1].lo)
                << spans[i].what << " overlaps " << spans[i + 1].what;
        for (const auto& s : spans) {
            EXPECT_GE(s.lo, -plan.frame_bytes) << s.what << " escapes the frame";
            EXPECT_LE(s.hi, 0) << s.what << " above rbp";
        }
        EXPECT_EQ(plan.frame_bytes % 16, 0) << "frame must stay 16-aligned";
    }
}

TEST_P(frame_plan_test, return_guard_is_the_topmost_slot) {
    const auto sch = core::make_scheme(GetParam());
    crypto::xoshiro256 rng{3141};
    for (int round = 0; round < 100; ++round) {
        const auto locals = random_locals(rng);
        const auto plan = sch->plan_frame(locals);
        ASSERT_FALSE(plan.canaries.empty());
        const auto& guard = plan.return_guard();
        EXPECT_EQ(guard.guards, -1);
        // Nothing may sit between the return guard's top and rbp.
        EXPECT_EQ(guard.offset + guard.bytes, 0);
    }
}

TEST_P(frame_plan_test, scalar_only_frames_are_unprotected) {
    const auto sch = core::make_scheme(GetParam());
    const std::vector<local_desc> scalars{{8, false, false}, {8, false, false}};
    if (GetParam() == scheme_kind::p_ssp_lv) return;  // criticals may differ
    const auto plan = sch->plan_frame(scalars);
    EXPECT_FALSE(plan.protected_frame);
    EXPECT_TRUE(plan.canaries.empty());
}

// The -fstack-protector contract: buffers sit between the canary and the
// scalars, so an overflowing buffer must cross the canary before reaching
// saved registers. (P-SSP-LV is exempt: it does not reorder — it guards.)
TEST_P(frame_plan_test, buffers_sit_above_scalars) {
    if (GetParam() == scheme_kind::p_ssp_lv) return;
    const auto sch = core::make_scheme(GetParam());
    const std::vector<local_desc> locals{
        {8, false, false}, {32, true, false}, {8, false, false}, {16, true, false}};
    const auto plan = sch->plan_frame(locals);
    const auto top_scalar = std::max(plan.local_offsets[0], plan.local_offsets[2]);
    const auto low_buffer = std::min(plan.local_offsets[1], plan.local_offsets[3]);
    EXPECT_LT(top_scalar, low_buffer);
}

TEST(frame_plan_lv, every_critical_has_an_adjacent_lower_canary) {
    const auto sch = core::make_scheme(scheme_kind::p_ssp_lv);
    crypto::xoshiro256 rng{1618};
    for (int round = 0; round < 200; ++round) {
        const auto locals = random_locals(rng);
        const auto plan = sch->plan_frame(locals);
        for (std::size_t i = 0; i < locals.size(); ++i) {
            if (!locals[i].is_critical) continue;
            const auto it = std::find_if(
                plan.canaries.begin(), plan.canaries.end(),
                [&](const core::canary_slot& c) {
                    return c.guards == static_cast<std::int32_t>(i);
                });
            ASSERT_NE(it, plan.canaries.end()) << "critical local " << i << " unguarded";
            // "an adjacent memory word with a lower address" (Section IV-B).
            EXPECT_EQ(it->offset + it->bytes, plan.local_offsets[i]);
        }
    }
}

TEST(frame_plan_lv, canary_count_is_criticals_plus_return_guard) {
    const auto sch = core::make_scheme(scheme_kind::p_ssp_lv);
    for (int criticals = 0; criticals <= 5; ++criticals) {
        std::vector<local_desc> locals{{32, true, false}};
        for (int i = 0; i < criticals; ++i) locals.push_back({8, false, true});
        const auto plan = sch->plan_frame(locals);
        EXPECT_EQ(plan.canaries.size(), static_cast<std::size_t>(criticals) + 1);
    }
}

TEST(frame_plan_lv, declaration_order_is_preserved) {
    const auto sch = core::make_scheme(scheme_kind::p_ssp_lv);
    const std::vector<local_desc> locals{{8, true, true}, {32, true, false}};
    const auto plan = sch->plan_frame(locals);
    // First declared local sits at the higher address (nearest rbp).
    EXPECT_GT(plan.local_offsets[0], plan.local_offsets[1]);
}

TEST(frame_plan_widths, canary_area_matches_scheme) {
    EXPECT_EQ(core::make_scheme(scheme_kind::ssp)->stack_canary_bytes(), 8);
    EXPECT_EQ(core::make_scheme(scheme_kind::p_ssp)->stack_canary_bytes(), 16);
    EXPECT_EQ(core::make_scheme(scheme_kind::p_ssp_nt)->stack_canary_bytes(), 16);
    EXPECT_EQ(core::make_scheme(scheme_kind::p_ssp_owf)->stack_canary_bytes(), 24);
    EXPECT_EQ(core::make_scheme(scheme_kind::p_ssp32)->stack_canary_bytes(), 8);
    EXPECT_EQ(core::make_scheme(scheme_kind::p_ssp_gb)->stack_canary_bytes(), 8);
}

}  // namespace
}  // namespace pssp
