#include "dist/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/chaos.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace pssp::dist {

namespace {

using steady_clock = std::chrono::steady_clock;

// ---- obs counters (side channel; registered once per process) ----
struct dist_counters {
    obs::metric_id retries = obs::counter("dist.retries");
    obs::metric_id requeued_blocks = obs::counter("dist.requeued_blocks");
    obs::metric_id timeouts = obs::counter("dist.timeouts");
    obs::metric_id crashes = obs::counter("dist.crashes");
    obs::metric_id bad_partials = obs::counter("dist.bad_partials");
    obs::metric_id spawned = obs::counter("dist.spawned_workers");
};

const dist_counters& counters() {
    static const dist_counters ids;
    return ids;
}

[[noreturn]] void exec_worker(const std::string& path,
                              const supervised_job& job, unsigned attempt,
                              int in_fd, int out_fd) {
    ::dup2(in_fd, STDIN_FILENO);
    ::dup2(out_fd, STDOUT_FILENO);
    // stderr stays inherited: worker diagnostics surface on the parent's.
    ::close(in_fd);
    ::close(out_fd);
    // Flight-recorder plumbing: the worker reads this at startup, enables
    // tracing, and checkpoints its span ring to the named file.
    if (!job.flight_path.empty())
        ::setenv("PSSP_OBS_FLIGHT", job.flight_path.c_str(), /*overwrite=*/1);
    // Chaos coordinates: the fault plan (if any) keys on (shard, round,
    // attempt); shard travels on argv, these two by environment.
    ::setenv(fault_round_env, std::to_string(job.manifest.round).c_str(),
             /*overwrite=*/1);
    ::setenv(fault_attempt_env, std::to_string(attempt).c_str(),
             /*overwrite=*/1);
    std::vector<const char*> argv;
    argv.reserve(job.args.size() + 2);
    argv.push_back(path.c_str());
    for (const auto& a : job.args) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    ::execv(path.c_str(), const_cast<char* const*>(argv.data()));
    // Exec failed; 127 is the conventional "command not found" status the
    // parent turns into a pointed, non-retryable error.
    std::fprintf(stderr, "campaign worker exec failed: %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::_exit(127);
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

enum class job_state : std::uint8_t { pending, running, finished };

struct job_slot {
    job_state state = job_state::pending;
    unsigned attempts_started = 0;
    steady_clock::time_point release{};  // pending: earliest next spawn

    // Running-attempt state.
    pid_t pid = -1;
    int in_fd = -1;   // non-blocking write end of the worker's stdin
    int out_fd = -1;  // non-blocking read end of the worker's stdout
    std::size_t in_off = 0;
    std::string input_error;
    std::string output;
    bool timed_out = false;
    steady_clock::time_point spawned{};
    steady_clock::time_point deadline{};
    std::uint64_t spawned_ns = 0;
};

class pool {
  public:
    pool(const std::string& worker, const std::vector<supervised_job>& jobs,
         const fault_policy& policy, const supervise_hooks& hooks,
         supervise_stats& stats)
        : worker_{worker},
          jobs_{jobs},
          policy_{policy},
          hooks_{hooks},
          stats_{stats},
          slots_(jobs.size()),
          results_(jobs.size()) {}

    std::vector<job_result> run() {
        const auto now = steady_clock::now();
        for (auto& slot : slots_) slot.release = now;
        std::size_t unfinished = slots_.size();
        while (unfinished > 0) {
            spawn_ready();
            wait_for_events();
            const auto tick = steady_clock::now();
            for (std::size_t k = 0; k < slots_.size(); ++k) {
                auto& slot = slots_[k];
                if (slot.state != job_state::running) continue;
                if (policy_.timeout_seconds > 0.0 && !slot.timed_out &&
                    tick >= slot.deadline) {
                    // Per-round deadline expired: SIGKILL, then let the
                    // stdout EOF drive the normal reap/classify path.
                    ::kill(slot.pid, SIGKILL);
                    slot.timed_out = true;
                }
                if (slot.out_fd < 0) {
                    finalize_attempt(k);
                    if (slots_[k].state == job_state::finished) --unfinished;
                }
            }
        }
        return std::move(results_);
    }

  private:
    void spawn_ready() {
        const auto now = steady_clock::now();
        for (std::size_t k = 0; k < slots_.size(); ++k) {
            auto& slot = slots_[k];
            if (slot.state != job_state::pending || slot.release > now)
                continue;
            spawn(k);
        }
    }

    void spawn(std::size_t k) {
        auto& slot = slots_[k];
        int in_pipe[2];
        int out_pipe[2];
        // O_CLOEXEC: a worker must not inherit its siblings' pipe ends —
        // a write end surviving in another child would hold a worker's
        // stdin open past the parent's close and stall its EOF.
        if (::pipe2(in_pipe, O_CLOEXEC) != 0)
            abort_all(std::string{"pipe() failed ("} + std::strerror(errno) +
                      ")");
        if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
            const int err = errno;
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            abort_all(std::string{"pipe() failed ("} + std::strerror(err) +
                      ")");
        }
        const unsigned attempt = slot.attempts_started + 1;
        const pid_t pid = ::fork();
        if (pid < 0) {
            const int err = errno;
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            abort_all(std::string{"fork() failed ("} + std::strerror(err) +
                      ")");
        }
        if (pid == 0) {
            exec_worker(worker_, jobs_[k], attempt, in_pipe[0], out_pipe[1]);
        }
        ::close(in_pipe[0]);
        ::close(out_pipe[1]);
        set_nonblocking(in_pipe[1]);
        set_nonblocking(out_pipe[0]);
        slot.state = job_state::running;
        slot.attempts_started = attempt;
        slot.pid = pid;
        slot.in_fd = in_pipe[1];
        slot.out_fd = out_pipe[0];
        slot.in_off = 0;
        slot.input_error.clear();
        slot.output.clear();
        slot.timed_out = false;
        slot.spawned = steady_clock::now();
        slot.spawned_ns = obs::trace_now_ns();
        if (policy_.timeout_seconds > 0.0)
            slot.deadline =
                slot.spawned + std::chrono::duration_cast<steady_clock::duration>(
                                   std::chrono::duration<double>(
                                       policy_.timeout_seconds));
        obs::add(counters().spawned, 1);
        if (jobs_[k].input.empty()) close_input(slot);
    }

    void close_input(job_slot& slot) {
        if (slot.in_fd >= 0) {
            ::close(slot.in_fd);
            slot.in_fd = -1;
        }
    }

    // One poll() pass over every running worker's pipes, bounded by the
    // nearest deadline or backoff release. EINTR is a normal wakeup.
    void wait_for_events() {
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;  // fds[i] belongs to slots_[owner[i]]
        const auto now = steady_clock::now();
        int wait_ms = -1;
        auto consider = [&wait_ms, &now](steady_clock::time_point when) {
            const auto dt = std::chrono::duration_cast<std::chrono::milliseconds>(
                                when - now)
                                .count();
            const int ms = dt <= 0 ? 0 : static_cast<int>(
                                             std::min<long long>(dt + 1, 60000));
            if (wait_ms < 0 || ms < wait_ms) wait_ms = ms;
        };
        for (std::size_t k = 0; k < slots_.size(); ++k) {
            auto& slot = slots_[k];
            if (slot.state == job_state::pending) {
                consider(slot.release);
                continue;
            }
            if (slot.state != job_state::running) continue;
            if (policy_.timeout_seconds > 0.0 && !slot.timed_out)
                consider(slot.deadline);
            if (slot.in_fd >= 0) {
                fds.push_back(pollfd{slot.in_fd, POLLOUT, 0});
                owner.push_back(k);
            }
            if (slot.out_fd >= 0) {
                fds.push_back(pollfd{slot.out_fd, POLLIN, 0});
                owner.push_back(k);
            }
        }
        if (fds.empty() && wait_ms < 0) return;  // nothing left to wait on
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                              wait_ms);
        if (rc < 0) {
            if (errno == EINTR) return;
            abort_all(std::string{"poll() failed ("} + std::strerror(errno) +
                      ")");
        }
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0) continue;
            auto& slot = slots_[owner[i]];
            if (fds[i].fd == slot.in_fd)
                drive_input(jobs_[owner[i]], slot);
            else if (fds[i].fd == slot.out_fd)
                drive_output(slot);
        }
    }

    // Feed as much stdin as the pipe accepts right now; EINTR retries,
    // EAGAIN yields back to poll, EPIPE records the delivery failure (the
    // wait status decides what it means).
    void drive_input(const supervised_job& job, job_slot& slot) {
        while (slot.in_off < job.input.size()) {
            const ssize_t n = ::write(slot.in_fd, job.input.data() + slot.in_off,
                                      job.input.size() - slot.in_off);
            if (n > 0) {
                slot.in_off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
            if (slot.input_error.empty())
                slot.input_error = std::string{"input write failed: "} +
                                   std::strerror(errno);
            close_input(slot);
            return;
        }
        close_input(slot);
    }

    // Drain stdout until EAGAIN; EOF (or a hard read error) ends the
    // attempt's I/O, which the main loop turns into a reap + classify.
    void drive_output(job_slot& slot) {
        char buf[1 << 16];
        for (;;) {
            const ssize_t n = ::read(slot.out_fd, buf, sizeof buf);
            if (n > 0) {
                slot.output.append(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
            ::close(slot.out_fd);
            slot.out_fd = -1;
            return;
        }
    }

    void finalize_attempt(std::size_t k) {
        auto& slot = slots_[k];
        const auto& job = jobs_[k];
        auto& result = results_[k];
        close_input(slot);
        int status = 0;
        struct rusage ru {};
        while (::wait4(slot.pid, &status, 0, &ru) < 0 && errno == EINTR) {
        }
        slot.pid = -1;
        result.attempts = slot.attempts_started;
        result.wall_seconds =
            std::chrono::duration<double>(steady_clock::now() - slot.spawned)
                .count();
        result.user_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                              static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
        result.sys_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                             static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
        // One lifetime span per worker attempt on the orchestrator's
        // timeline (arg = shard index) — spawn to reap, pipe drain included.
        obs::emit_span("shard.worker", "dist", slot.spawned_ns,
                       obs::trace_now_ns() - slot.spawned_ns,
                       static_cast<std::int64_t>(job.shard));

        attempt_classification c;
        bool retryable = true;
        if (slot.timed_out) {
            c.kind = failure_kind::timeout;
            char why[96];
            std::snprintf(why, sizeof why,
                          "worker exceeded the %.1fs deadline (SIGKILLed)",
                          policy_.timeout_seconds);
            c.why = why;
        } else {
            c = classify_attempt(job, status, slot.output, slot.input_error);
            // A missing or unrunnable binary does not heal on retry.
            if (is_exec_failure(status)) retryable = false;
        }
        slot.output.clear();

        if (c.kind == failure_kind::none) {
            result.ok = true;
            result.partial = std::move(c.partial);
            if (hooks_.on_job_success) hooks_.on_job_success(job, result.partial);
            slot.state = job_state::finished;
            return;
        }

        if (c.kind == failure_kind::timeout) {
            stats_.timeouts += 1;
            obs::add(counters().timeouts, 1);
        } else if (c.kind == failure_kind::crash ||
                   c.kind == failure_kind::input) {
            obs::add(counters().crashes, 1);
        } else {
            obs::add(counters().bad_partials, 1);
        }
        result.failures.push_back(attempt_record{slot.attempts_started, c.kind,
                                                 std::move(c.why), status});
        if (hooks_.on_attempt_failure)
            hooks_.on_attempt_failure(job, result.failures.back());

        if (retryable && slot.attempts_started < policy_.max_attempts) {
            stats_.retries += 1;
            stats_.requeued_blocks += job.manifest.blocks.size();
            obs::add(counters().retries, 1);
            obs::add(counters().requeued_blocks, job.manifest.blocks.size());
            slot.state = job_state::pending;
            slot.release = steady_clock::now() +
                           std::chrono::duration_cast<steady_clock::duration>(
                               std::chrono::duration<double>(policy_.backoff_for(
                                   slot.attempts_started)));
            return;
        }
        slot.state = job_state::finished;  // retry budget exhausted
    }

    // Infrastructure failure (pipe/fork/poll): the pool cannot continue.
    // Kill and reap every launched worker, then throw an error that names
    // what failed AND what happened to each already-launched worker — a
    // spawn failure mid-loop must not silently discard their fates.
    [[noreturn]] void abort_all(const std::string& what) {
        std::string aborted;
        std::size_t launched = 0;
        for (std::size_t k = 0; k < slots_.size(); ++k) {
            auto& slot = slots_[k];
            if (slot.pid < 0) continue;
            ::kill(slot.pid, SIGKILL);
            close_input(slot);
            if (slot.out_fd >= 0) {
                ::close(slot.out_fd);
                slot.out_fd = -1;
            }
            int status = 0;
            while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
            }
            slot.pid = -1;
            ++launched;
            std::string fate = describe_wait_status(status);
            if (fate.empty()) fate = "exited cleanly (result discarded)";
            if (!aborted.empty()) aborted += "; ";
            aborted += "shard " + std::to_string(jobs_[k].shard) + ": " + fate;
        }
        std::string message = "run_sharded: " + what;
        if (launched > 0)
            message += "; killed and reaped " + std::to_string(launched) +
                       " already-launched worker(s) [" + aborted + "]";
        throw std::runtime_error{message};
    }

    const std::string& worker_;
    const std::vector<supervised_job>& jobs_;
    const fault_policy& policy_;
    const supervise_hooks& hooks_;
    supervise_stats& stats_;
    std::vector<job_slot> slots_;
    std::vector<job_result> results_;
};

}  // namespace

double fault_policy::backoff_for(unsigned failed_attempts) const noexcept {
    double delay = backoff_base_seconds;
    for (unsigned i = 1; i < failed_attempts; ++i) delay *= 2.0;
    return std::min(delay, backoff_cap_seconds);
}

std::string describe_wait_status(int status) {
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) return {};
        if (code == 127) return "worker exec failed (bad worker path?)";
        return "worker exited with status " + std::to_string(code);
    }
    if (WIFSIGNALED(status))
        return std::string{"worker killed by signal "} +
               std::to_string(WTERMSIG(status)) + " (" +
               strsignal(WTERMSIG(status)) + ")";
    return "worker ended abnormally";
}

bool is_exec_failure(int wait_status) noexcept {
    return WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 127;
}

attempt_classification classify_attempt(const supervised_job& job,
                                        int wait_status,
                                        std::string_view output,
                                        std::string_view input_error) {
    attempt_classification c;
    if (std::string exited = describe_wait_status(wait_status);
        !exited.empty()) {
        c.kind = failure_kind::crash;
        c.why = std::move(exited);
        if (!input_error.empty()) c.why += "; " + std::string{input_error};
        return c;
    }
    try {
        c.partial = partial_from_json(output);
    } catch (const std::exception& e) {
        // Undelivered input is the root cause when both failed.
        if (!input_error.empty()) {
            c.kind = failure_kind::input;
            c.why = input_error;
        } else {
            c.kind = failure_kind::bad_partial;
            c.why = std::string{"emitted a bad partial: "} + e.what();
        }
        return c;
    }
    if (c.partial.shard_index != job.shard ||
        c.partial.shard_count != job.shard_count) {
        c.kind = failure_kind::bad_partial;
        c.why = "identified as shard " + std::to_string(c.partial.shard_index) +
                "/" + std::to_string(c.partial.shard_count);
        return c;
    }
    if (c.partial.digest != job.manifest.digest) {
        c.kind = failure_kind::bad_partial;
        c.why = "emitted a partial for a different spec (digest mismatch)";
        return c;
    }
    if (c.partial.round != job.manifest.round) {
        c.kind = failure_kind::bad_partial;
        c.why = "reported round " + std::to_string(c.partial.round) +
                ", expected " + std::to_string(job.manifest.round);
        return c;
    }
    if (c.partial.blocks.size() != job.manifest.blocks.size()) {
        c.kind = failure_kind::wrong_blocks;
        c.why = "covered " + std::to_string(c.partial.blocks.size()) +
                " blocks, manifest assigned " +
                std::to_string(job.manifest.blocks.size());
        return c;
    }
    for (std::size_t i = 0; i < job.manifest.blocks.size(); ++i) {
        const auto& got = c.partial.blocks[i];
        const auto& want = job.manifest.blocks[i];
        if (got.index != want.index || got.cell != want.cell ||
            got.partial.trials != want.trials) {
            c.kind = failure_kind::wrong_blocks;
            c.why = "covered block " + std::to_string(got.index) +
                    " where the manifest assigned block " +
                    std::to_string(want.index);
            return c;
        }
    }
    return c;
}

const char* to_string(failure_kind kind) noexcept {
    switch (kind) {
        case failure_kind::none: return "none";
        case failure_kind::input: return "input";
        case failure_kind::crash: return "crash";
        case failure_kind::timeout: return "timeout";
        case failure_kind::bad_partial: return "bad-partial";
        case failure_kind::wrong_blocks: return "wrong-blocks";
    }
    return "?";
}

std::vector<job_result> supervise_jobs(const std::string& worker,
                                       const std::vector<supervised_job>& jobs,
                                       const fault_policy& policy,
                                       const supervise_hooks& hooks,
                                       supervise_stats& stats) {
    if (jobs.empty()) return {};
    if (policy.max_attempts == 0)
        throw std::invalid_argument{"supervise_jobs: max_attempts must be >= 1"};
    // A worker that dies before reading its input must surface as its wait
    // status, not as SIGPIPE killing the orchestrator.
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    struct sigaction old_pipe {};
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);
    try {
        auto results = pool{worker, jobs, policy, hooks, stats}.run();
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        return results;
    } catch (...) {
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        throw;
    }
}

}  // namespace pssp::dist
