// Deterministic JSON, both directions.
//
// Emit: append-style helpers producing byte-stable output — fixed key
// order is the caller's responsibility, float formatting is fixed here.
// Two float channels exist on purpose: append_kv(double) uses "%.9g" for
// human-facing report JSON (stable width, plenty for a rate), while
// append_kv_exact() emits the full bit pattern as a quoted C99 hexfloat
// ("0x1.91eb851eb851fp+1") for wire formats that must round-trip doubles
// losslessly across processes.
//
// Parse: a minimal recursive-descent parser for the subset these emitters
// produce (objects, arrays, strings with \"\\ escapes, numbers, booleans,
// null). Object members keep insertion order. Accessors throw
// std::runtime_error with the offending key so wire-format validation
// errors point at the field, not just "bad JSON".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace pssp::util {

// ---------------------------------------------------------------------------
// Emit
// ---------------------------------------------------------------------------

// "%.9g"-formatted number (no key). Byte-stable across runs.
void append_number(std::string& out, double value);

// JSON string-literal escaping for arbitrary text (quotes, backslashes,
// control characters as \u00xx). The append_kv(string) overload skips this
// on purpose for identifier-like names; free-form text (error messages,
// argv, paths) goes through here.
[[nodiscard]] std::string json_escape(std::string_view text);

void append_kv(std::string& out, const char* key, double value, bool comma = true);
void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool comma = true);
void append_kv(std::string& out, const char* key, const std::string& value,
               bool comma = true);
void append_kv_bool(std::string& out, const char* key, bool value,
                    bool comma = true);

// Lossless double: quoted hexfloat string value (JSON-legal, bit-exact).
void append_kv_exact(std::string& out, const char* key, double value,
                     bool comma = true);

void append_interval(std::string& out, const char* key, const interval& iv,
                     bool comma = true);

// Summary view of an accumulator ("%.9g" floats) — report JSON.
void append_accumulator(std::string& out, const char* key,
                        const welford_accumulator& acc, bool comma = true);

// Full recurrence state of an accumulator (hexfloat) — wire JSON.
void append_accumulator_exact(std::string& out, const char* key,
                              const welford_accumulator& acc, bool comma = true);

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

class json_value {
  public:
    enum class kind : std::uint8_t { object, array, string, number, boolean, null };

    [[nodiscard]] kind type() const noexcept { return kind_; }

    // Object access. at() throws if this is not an object or the key is
    // missing; find() returns nullptr for a missing key.
    [[nodiscard]] const json_value& at(std::string_view key) const;
    [[nodiscard]] const json_value* find(std::string_view key) const noexcept;
    [[nodiscard]] const std::vector<std::pair<std::string, json_value>>& members()
        const;

    // Array access.
    [[nodiscard]] const std::vector<json_value>& elements() const;

    // Scalar access, each validating the type.
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::uint64_t as_u64() const;
    [[nodiscard]] double as_double() const;
    // A double from either a plain number or a quoted hexfloat string —
    // the inverse of append_kv_exact().
    [[nodiscard]] double as_double_exact() const;

  private:
    friend class json_parser;

    kind kind_ = kind::null;
    bool bool_ = false;
    // Numbers keep their source token so integer access never goes through
    // a double, and doubles parse once, on demand.
    std::string scalar_;
    std::vector<std::pair<std::string, json_value>> members_;
    std::vector<json_value> elements_;
};

// Parses one JSON document; trailing non-whitespace or any syntax error
// throws std::runtime_error with a byte offset.
[[nodiscard]] json_value parse_json(std::string_view text);

}  // namespace pssp::util
