// Per-instruction cycle cost model.
//
// Benchmark overheads in this reproduction are reported in *modeled cycles*,
// not host wall-clock: an interpreter's dispatch overhead (tens of host
// cycles per simulated instruction) would drown the sub-1% effects the
// paper measures. The constants below are calibrated against the paper's
// own measurements (Table V):
//   * "the rdrand instruction ... costs about 340 more CPU cycles";
//   * "the AES operations in P-SSP-OWF cost about 272 more CPU cycles"
//     across the two evaluations in the prologue and epilogue;
//   * plain mov/xor prologue+epilogue work is single-digit cycles.
// Everything else uses textbook x86 latencies (ALU 1, call/ret ~2,
// rdtsc ~24). The model is deliberately simple — no superscalar or cache
// effects — because the paper's comparisons are between straight-line
// prologue/epilogue sequences where instruction count dominates.
#pragma once

#include <array>
#include <cstdint>

#include "vm/isa.hpp"

namespace pssp::vm {

// Per-opcode cycle costs flattened into one table, so the interpreter's
// hot loop charges cycles with a single indexed load instead of a switch.
// The sim_delay entry holds only the dbi_tax component — its per-site cost
// lives in the instruction's immediate and is added by the interpreter.
struct cost_table {
    std::array<std::uint64_t, opcode_count> per_op{};

    [[nodiscard]] std::uint64_t operator[](opcode op) const noexcept {
        return per_op[static_cast<std::size_t>(op)];
    }
};

struct cost_model {
    std::uint64_t alu = 1;         // mov/add/xor/cmp/lea/push/pop...
    std::uint64_t branch = 1;      // jcc/jmp
    std::uint64_t call = 2;        // call/ret/leave
    std::uint64_t rdrand = 330;    // hardware DRNG read (Table V calibration)
    std::uint64_t rdtsc = 24;      // timestamp counter read
    std::uint64_t sse = 1;         // xmm moves/compares
    std::uint64_t syscall = 150;   // kernel entry/exit
    std::uint64_t aes_helper = 118;  // one AES_ENCRYPT_128 evaluation
                                     // (two per OWF frame => ~236 + setup,
                                     // matching the paper's ~272)

    // Charged per executed instruction when running under the modeled
    // dynamic-binary-instrumentation engine (DynaGuard's PIN deployment);
    // 0 for everything else. Calibrated in workload/dbi_model.
    std::uint64_t dbi_tax = 0;

    // Cycle cost of one instruction (excluding native-helper bodies, which
    // charge via machine::charge_native).
    [[nodiscard]] std::uint64_t cost_of(const instruction& insn) const noexcept;

    // Snapshot of the current parameters as a flat per-opcode table. The
    // machine caches the flattened table behind a shared pointer keyed on
    // these parameters (rechecked at every run() entry, so mutations
    // between runs — e.g. workload code enabling dbi_tax — still apply),
    // and snapshot/fork paths share the pointer instead of copying the
    // table.
    [[nodiscard]] cost_table table() const noexcept;

    // Parameter equality — the cache key for the machine's flattened-table
    // reuse across runs, snapshots, and forked workers.
    friend bool operator==(const cost_model&, const cost_model&) = default;
};

}  // namespace pssp::vm
