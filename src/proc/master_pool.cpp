#include "proc/master_pool.hpp"

#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"

namespace pssp::proc {

master_pool::master_pool(std::shared_ptr<const binfmt::linked_binary> binary,
                         core::scheme_kind kind, core::scheme_options options,
                         server_config config,
                         std::shared_ptr<const vm::program> program)
    : binary_{std::move(binary)},
      program_{std::move(program)},
      kind_{kind},
      options_{options},
      config_{std::move(config)} {
    if (!binary_) throw std::invalid_argument{"master_pool: null binary"};
    if (program_ == nullptr) program_ = binary_->make_program();
    config_.reusable = true;  // the whole point of pooled servers
}

master_pool::lease master_pool::acquire(std::uint64_t seed) {
    std::unique_ptr<fork_server> server;
    {
        std::lock_guard lock{mutex_};
        if (!idle_.empty()) {
            server = std::move(idle_.back());
            idle_.pop_back();
        }
    }
    // Mirrored into the obs registry so pool effectiveness shows up next
    // to the VM and campaign metrics without plumbing a pool pointer out.
    static const auto c_boots = obs::counter("proc.pool.boots");
    static const auto c_reuses = obs::counter("proc.pool.reuses");
    if (server != nullptr) {
        server->reboot(seed);
        reuses_.fetch_add(1, std::memory_order_relaxed);
        obs::add(c_reuses, 1);
    } else {
        server = std::make_unique<fork_server>(
            *binary_, core::make_scheme(kind_, options_), seed, config_, program_);
        boots_.fetch_add(1, std::memory_order_relaxed);
        obs::add(c_boots, 1);
    }
    return lease{this, std::move(server)};
}

void master_pool::release(std::unique_ptr<fork_server> server) {
    {
        std::lock_guard lock{mutex_};
        if (idle_.size() < idle_limit_) {
            idle_.push_back(std::move(server));
            return;
        }
    }
    // Over the cap: let `server` die here, outside the lock.
}

void master_pool::set_idle_limit(std::size_t limit) {
    std::vector<std::unique_ptr<fork_server>> evicted;
    std::lock_guard lock{mutex_};
    idle_limit_ = limit;
    while (idle_.size() > idle_limit_) {
        evicted.push_back(std::move(idle_.back()));
        idle_.pop_back();
    }
}

std::size_t master_pool::idle_limit() const {
    std::lock_guard lock{mutex_};
    return idle_limit_;
}

std::size_t master_pool::idle() const {
    std::lock_guard lock{mutex_};
    return idle_.size();
}

}  // namespace pssp::proc
