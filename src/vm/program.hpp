// A linked, executable program: the output of binfmt::link_image and the
// input to vm::machine.
//
// Instructions are kept as decoded structs, but each carries the virtual
// byte address its x86-64 encoding would occupy. Control flow (call/ret/
// jmp targets, and crucially *return addresses stored on the simulated
// stack*) operates on those byte addresses, so an attacker who overwrites
// a saved return address redirects execution exactly as on real hardware —
// or crashes on a non-instruction-boundary target.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/dispatch.hpp"
#include "vm/isa.hpp"

namespace pssp::vm {

// Pre-resolved control flow for one instruction, computed once at load
// time by program::finalize(). The interpreter's jmp/jcc/call dispatch
// reads these fields instead of hashing the target address per transfer;
// only ret (whose target comes off the — possibly attacker-controlled —
// simulated stack) still resolves dynamically through index_of().
struct resolved_flow {
    std::uint32_t target = no_id;       // jmp/jcc/call: target instruction index
    std::uint64_t return_addr = 0;      // call: address of the next instruction
    const native_fn* native = nullptr;  // call: bound native helper, if any
};

struct program {
    std::vector<instruction> insns;
    std::vector<std::uint64_t> addrs;  // parallel to insns: start address
    std::vector<resolved_flow> flow;   // parallel to insns; see finalize()

    // The direct-threaded execution stream: one decoded op per instruction
    // (indices coincide with insns) plus the trapping end-of-stream
    // sentinel at code[insns.size()]. Hot positions carry fused
    // superinstruction handlers; see vm/dispatch.hpp. Built by finalize(),
    // immutable afterwards, and shared by every machine running this
    // program — snapshots and forks never copy it.
    std::vector<decoded_op> code;

    // Exact-start address -> instruction index (control transfers only land
    // on instruction starts; anything else is an invalid-jump trap).
    std::unordered_map<std::uint64_t, std::uint32_t> addr_to_index;

    // Native helper bindings, keyed by the callable's entry address.
    std::unordered_map<std::uint64_t, native_fn> natives;

    // Symbol table: function name -> entry address (includes native stubs).
    std::unordered_map<std::string, std::uint64_t> symbols;

    std::uint64_t text_base = 0;
    std::uint64_t text_size = 0;  // bytes, including any appended sections

    // Entry address of `name`; throws std::out_of_range if absent.
    [[nodiscard]] std::uint64_t entry_of(const std::string& name) const {
        return symbols.at(name);
    }

    [[nodiscard]] bool has_symbol(const std::string& name) const {
        return symbols.contains(name);
    }

    // Index of the instruction starting at `addr`, or no_id.
    [[nodiscard]] std::uint32_t index_of(std::uint64_t addr) const {
        const auto it = addr_to_index.find(addr);
        return it == addr_to_index.end() ? no_id : it->second;
    }

    // Pre-resolves control flow into `flow` (see resolved_flow), then
    // lowers the instruction stream into the decoded `code` array (1:1
    // records, the superinstruction fusion pass, the end-of-stream
    // sentinel). Must be called after insns/addrs/addr_to_index/natives are
    // final — the loader (linked_binary::make_program) does this; a machine
    // refuses to run a program whose flow or code table is missing or
    // stale.
    void finalize();
};

// Returned by ret when the initial (harness-provided) frame returns:
// popping this sentinel ends execution normally. Outside every mapped
// region and the text segment.
inline constexpr std::uint64_t return_sentinel = 0x00005e7712e70000ull;

}  // namespace pssp::vm
