#include "dist/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <limits.h>
#include <unistd.h>

#include "attack/strategy.hpp"
#include "campaign/allocator.hpp"
#include "core/scheme.hpp"
#include "dist/checkpoint.hpp"
#include "dist/supervisor.hpp"
#include "dist/wire.hpp"
#include "obs/span.hpp"
#include "util/json.hpp"
#include "workload/victim.hpp"

namespace pssp::dist {

namespace {

// ---- Failure context: flight recordings, postmortems ----

std::string join_path(const std::string& dir, const std::string& name) {
    if (dir.empty()) return name;
    return dir.back() == '/' ? dir + name : dir + "/" + name;
}

std::string flight_file_path(const sharded_options& options, std::uint32_t k) {
    return join_path(options.postmortem_dir,
                     "obs-flight-" + std::to_string(::getpid()) + "-" +
                         std::to_string(k) + ".json");
}

// Attempt 1 keeps the historical obs-postmortem-<shard>.json name; retries
// get -attempt<N> suffixes so no attempt's evidence overwrites another's.
std::string postmortem_file_path(const sharded_options& options,
                                 std::uint32_t k, unsigned attempt) {
    std::string name = "obs-postmortem-" + std::to_string(k);
    if (attempt > 1) name += "-attempt" + std::to_string(attempt);
    return join_path(options.postmortem_dir, name + ".json");
}

void remove_flight_files(const std::vector<supervised_job>& jobs) {
    for (const auto& job : jobs)
        if (!job.flight_path.empty()) ::unlink(job.flight_path.c_str());
}

// The worker's full command line, for the failure message and postmortem.
std::string format_argv(const std::string& worker, const supervised_job& job) {
    std::string argv = worker;
    for (const auto& a : job.args) {
        argv += ' ';
        argv += a;
    }
    return argv;
}

std::string format_blocks(const supervised_job& job) {
    std::string out;
    for (const auto& b : job.manifest.blocks) {
        if (!out.empty()) out += ',';
        out += std::to_string(b.index);
    }
    return out;
}

// Dumps everything known about one failed attempt next to the report the
// attempt failed to advance: identity (shard, round, attempt, argv), the
// failure classification and decoded wait status, the block manifest the
// worker owned, and its last flight-recorder checkpoint (the newest spans
// its ring held when it last wrote — embedded verbatim, or null if the
// worker died before its first checkpoint).
void write_postmortem(const sharded_options& options, const std::string& worker,
                      const supervised_job& job, const attempt_record& rec) {
    const auto path = postmortem_file_path(options, job.shard, rec.attempt);
    std::string flight = "null";
    if (!job.flight_path.empty()) {
        std::ifstream in{job.flight_path, std::ios::binary};
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            // flight_checkpoint writes tmp+rename, so a file that exists is
            // a complete JSON document.
            std::string doc = buf.str();
            while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' '))
                doc.pop_back();
            if (!doc.empty()) flight = std::move(doc);
        }
    }
    std::string doc = "{\n  \"shard\": " + std::to_string(job.shard) +
                      ",\n  \"round\": " + std::to_string(job.manifest.round) +
                      ",\n  \"attempt\": " + std::to_string(rec.attempt) +
                      ",\n  \"failure_kind\": \"" + to_string(rec.kind) +
                      "\",\n  \"worker\": \"" + util::json_escape(worker) +
                      "\",\n  \"argv\": [";
    for (std::size_t i = 0; i < job.args.size(); ++i) {
        if (i != 0) doc += ", ";
        doc += "\"" + util::json_escape(job.args[i]) + "\"";
    }
    doc += "],\n  \"error\": \"" + util::json_escape(rec.why) +
           "\",\n  \"raw_wait_status\": " + std::to_string(rec.wait_status) +
           ",\n  \"blocks\": [";
    for (std::size_t i = 0; i < job.manifest.blocks.size(); ++i) {
        if (i != 0) doc += ", ";
        doc += std::to_string(job.manifest.blocks[i].index);
    }
    doc += "],\n  \"flight\": " + flight + "\n}\n";

    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    if (!out) {
        std::fprintf(stderr, "dist: cannot write postmortem %s\n", path.c_str());
        return;
    }
    out << doc;
    std::fprintf(stderr, "dist: wrote %s\n", path.c_str());
}

std::string cell_name(const campaign::cell_id& id) {
    return workload::to_string(id.target) + "/" + core::to_string(id.scheme) +
           "/" + attack::to_string(id.attack);
}

void emit_round(const sharded_options& options, obs::telemetry_writer* writer,
                const obs::round_summary& summary) {
    if (writer != nullptr) writer->append(summary);
    if (options.round_observer) options.round_observer(summary);
}

campaign::campaign_spec shard_execution_spec(
    const campaign::campaign_spec& spec, const sharded_options& options) {
    // Per-shard execution knobs: split the requested parallelism across
    // the shard processes (each then also caps its master pools to that).
    campaign::campaign_spec shard_spec = spec;
    shard_spec.jobs =
        options.jobs_per_shard != 0
            ? options.jobs_per_shard
            : std::max(1u, campaign::resolve_jobs(spec.jobs) / options.shards);
    return shard_spec;
}

// One supervised manifest job per shard for one round: the round's block
// list split round-robin by position, every worker told exactly which
// canonical blocks it owns. A shard with no blocks is not spawned (late
// adaptive rounds routinely have fewer active blocks than shards), so
// every job is requeueable and resumable as a pure block manifest.
std::vector<supervised_job> build_round_jobs(
    const sharded_options& options, const campaign::campaign_spec& shard_spec,
    std::uint64_t digest, std::uint64_t round_number,
    std::span<const campaign::block_ref> blocks) {
    const auto count = static_cast<std::uint32_t>(
        std::min<std::size_t>(options.shards, blocks.size()));
    std::vector<supervised_job> jobs(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        round_job rj;
        rj.spec = shard_spec;
        rj.manifest.round = round_number;
        rj.manifest.digest = digest;
        for (std::size_t p = k; p < blocks.size(); p += count)
            rj.manifest.blocks.push_back(blocks[p]);
        jobs[k].args = {"--round", "--shard", std::to_string(k), "--shards",
                        std::to_string(count)};
        jobs[k].input = round_job_to_json(rj);
        jobs[k].manifest = std::move(rj.manifest);
        jobs[k].shard = k;
        jobs[k].shard_count = count;
        if (options.flight_recorder)
            jobs[k].flight_path = flight_file_path(options, k);
    }
    return jobs;
}

struct round_outcome {
    std::vector<partial_report> partials;  // one per spawned job
    std::vector<obs::shard_time> times;
    supervise_stats stats;
};

// How a round's supervised jobs actually execute: local fork/exec pipes
// (supervise_jobs) or TCP leases to remote workers (coordinator::run_jobs).
// Both return the same terminal job_results, so everything downstream —
// failure aggregation, checkpointing, the merge — is transport-blind.
using round_executor = std::function<std::vector<job_result>(
    const std::vector<supervised_job>&, const supervise_hooks&,
    supervise_stats&)>;

// Runs one round's jobs under supervision. Failed attempts get
// postmortems and retries; a job that exhausts its budget fails the run
// with an aggregated error naming every exhausted shard's round, last
// failure, argv, and block manifest. `ckpt` non-null appends each job's
// validated partial as it lands (the fixed path's durable unit);
// `ingest` non-null feeds the same partials to the result store. Both are
// per-job hooks, so only the fixed path passes them — the adaptive path
// persists/ingests whole accepted rounds in its caller instead.
round_outcome execute_round(
    const sharded_options& options, const round_executor& exec,
    const std::string& worker, const campaign::campaign_spec& shard_spec,
    std::uint64_t digest, std::uint64_t round_number,
    std::span<const campaign::block_ref> blocks, checkpoint_log* ckpt,
    const std::function<void(std::uint64_t, std::span<const partial_block>)>*
        ingest) {
    const auto jobs =
        build_round_jobs(options, shard_spec, digest, round_number, blocks);
    supervise_hooks hooks;
    hooks.on_attempt_failure = [&options, &worker](const supervised_job& job,
                                                   const attempt_record& rec) {
        write_postmortem(options, worker, job, rec);
    };
    if (ckpt != nullptr || ingest != nullptr)
        hooks.on_job_success = [ckpt, ingest, round_number](
                                   const supervised_job&,
                                   const partial_report& p) {
            if (ckpt != nullptr) ckpt->append(round_number, p.blocks);
            if (ingest != nullptr) (*ingest)(round_number, p.blocks);
        };
    round_outcome outcome;
    std::vector<job_result> results;
    try {
        results = exec(jobs, hooks, outcome.stats);
    } catch (...) {
        remove_flight_files(jobs);
        throw;
    }
    std::string failure;
    for (std::size_t k = 0; k < results.size(); ++k) {
        if (results[k].ok) continue;
        const auto& last = results[k].failures.back();
        if (!failure.empty()) failure += "; ";
        failure += "shard " + std::to_string(jobs[k].shard) + " (round " +
                   std::to_string(round_number) + "): " + last.why + " after " +
                   std::to_string(results[k].attempts) + " attempt(s) [argv: " +
                   format_argv(worker, jobs[k]) +
                   "] [blocks: " + format_blocks(jobs[k]) + "]";
    }
    remove_flight_files(jobs);
    if (!failure.empty()) throw std::runtime_error{"run_sharded: " + failure};
    outcome.partials.reserve(results.size());
    outcome.times.reserve(results.size());
    for (std::size_t k = 0; k < results.size(); ++k) {
        outcome.partials.push_back(std::move(results[k].partial));
        outcome.times.push_back(obs::shard_time{
            jobs[k].shard, results[k].wall_seconds, results[k].user_seconds,
            results[k].sys_seconds, std::move(results[k].worker_name)});
    }
    return outcome;
}

// ---- Checkpoint plumbing shared by the fixed and adaptive paths ----

// Opens (resume) or creates the checkpoint named by the options; null
// when checkpointing is off.
std::optional<checkpoint_log> open_checkpoint(const sharded_options& options,
                                              std::uint64_t digest) {
    if (options.checkpoint_dir.empty()) {
        if (options.resume)
            throw std::invalid_argument{
                "run_sharded: resume requires a checkpoint directory"};
        return std::nullopt;
    }
    if (options.resume)
        return checkpoint_log::open_for_resume(options.checkpoint_dir, digest);
    return checkpoint_log::create(options.checkpoint_dir, digest);
}

// ---- The adaptive round loop ----
//
// The allocator runs in the parent; each round's block list becomes
// supervised manifest jobs. Allocation decisions consume only merged
// partials, and block partials are pure functions of (master_seed, block),
// so this reproduces engine{spec}.run() byte for byte at any shard count,
// any retry pattern, and across any kill/resume boundary: a round is
// checkpointed only after record_round() accepted it, and replaying the
// checkpointed rounds rebuilds the allocator state bit for bit.
campaign::campaign_report run_sharded_adaptive(
    const campaign::campaign_spec& spec, const sharded_options& options,
    const round_executor& exec, const std::string& worker,
    obs::telemetry_writer* telemetry, std::optional<checkpoint_log>& ckpt) {
    const auto shard_spec = shard_execution_spec(spec, options);
    const auto digest = spec_digest(spec);
    const auto ids = campaign::cells_for(spec);
    campaign::adaptive_allocator allocator{spec};

    const bool emit_summaries =
        telemetry != nullptr || static_cast<bool>(options.round_observer);
    auto emit_summary = [&](std::uint64_t round_blocks,
                            std::uint64_t round_trials, double wall,
                            std::vector<obs::shard_time> times,
                            const supervise_stats& stats, bool resumed) {
        if (!emit_summaries) return;
        obs::round_summary summary;
        summary.round = allocator.rounds_completed();
        summary.blocks = round_blocks;
        summary.trials = round_trials;
        summary.cumulative_trials = allocator.trials_run();
        for (std::uint64_t c = 0; c < ids.size(); ++c) {
            if (allocator.cell_converged(c)) continue;
            const double hw = allocator.cell_halfwidth(c);
            if (hw > summary.max_halfwidth) {
                summary.max_halfwidth = hw;
                summary.widest_cell = cell_name(ids[c]);
            }
        }
        summary.wall_seconds = wall;
        summary.shards = std::move(times);
        summary.retries = stats.retries;
        summary.requeued_blocks = stats.requeued_blocks;
        summary.timeouts = stats.timeouts;
        summary.evictions = stats.evictions;
        summary.reconnects = stats.reconnects;
        summary.resumed = resumed;
        emit_round(options, telemetry, summary);
    };

    // Replay checkpointed rounds instead of running them. replay_round
    // re-plans each round and validates the checkpoint against the plan,
    // so a checkpoint from a different spec fails loudly here.
    if (ckpt.has_value()) {
        for (const auto& entry : ckpt->recorded()) {
            std::vector<campaign::block_ref> blocks;
            std::vector<campaign::cell_partial> partials;
            blocks.reserve(entry.blocks.size());
            partials.reserve(entry.blocks.size());
            std::uint64_t trials = 0;
            for (const auto& b : entry.blocks) {
                blocks.push_back(campaign::block_ref{b.index, b.cell, 0,
                                                     b.partial.trials});
                partials.push_back(b.partial);
                trials += b.partial.trials;
            }
            allocator.replay_round(entry.round, blocks, partials);
            if (options.block_ingest)
                options.block_ingest(entry.round, entry.blocks);
            emit_summary(entry.blocks.size(), trials, 0.0, {}, {},
                         /*resumed=*/true);
        }
    }

    for (;;) {
        const auto round = allocator.plan_round();
        if (round.empty()) break;
        const std::uint64_t round_number = allocator.rounds_completed() + 1;
        obs::span sp{"campaign.round", "dist",
                     static_cast<std::int64_t>(round_number)};
        const auto round_start = std::chrono::steady_clock::now();
        auto outcome = execute_round(options, exec, worker, shard_spec, digest,
                                     round_number, round, /*ckpt=*/nullptr,
                                     /*ingest=*/nullptr);
        allocator.record_round(
            round,
            collect_block_partials(spec, round, outcome.partials, round_number));
        if (ckpt.has_value() || options.block_ingest) {
            // The durable unit is one *accepted* round, persisted before
            // any observer runs — so a --kill-after-round harness (or a
            // real death between rounds) always leaves the round it just
            // saw on disk. Blocks are reassembled into round order from
            // the round-robin job split. The store ingests the identical
            // round-ordered list, after the checkpoint append.
            const std::size_t count = outcome.partials.size();
            std::vector<partial_block> entry_blocks;
            entry_blocks.reserve(round.size());
            for (std::size_t p = 0; p < round.size(); ++p)
                entry_blocks.push_back(
                    outcome.partials[p % count].blocks[p / count]);
            if (ckpt.has_value()) ckpt->append(round_number, entry_blocks);
            if (options.block_ingest)
                options.block_ingest(round_number, entry_blocks);
        }
        std::uint64_t round_trials = 0;
        for (const auto& b : round) round_trials += b.trials;
        emit_summary(round.size(), round_trials,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - round_start)
                         .count(),
                     std::move(outcome.times), outcome.stats,
                     /*resumed=*/false);
    }
    return allocator.report();
}

// ---- The fixed path ----
//
// One supervised manifest job per shard over blocks_for(spec), round 0.
// With a checkpoint, each shard job's validated partial is appended as it
// lands; resume re-runs only the blocks the log does not already hold and
// merges the checkpointed blocks as one synthesized partial — the merge
// validates exactly-once coverage either way.
campaign::campaign_report run_sharded_fixed(
    const campaign::campaign_spec& spec, const sharded_options& options,
    const round_executor& exec, const std::string& worker,
    obs::telemetry_writer* telemetry, std::optional<checkpoint_log>& ckpt) {
    obs::span sp{"campaign.run", "dist"};
    const auto start = std::chrono::steady_clock::now();
    const auto shard_spec = shard_execution_spec(spec, options);
    const auto digest = spec_digest(spec);
    const auto all_blocks = campaign::blocks_for(spec);

    // Blocks already durable in the checkpoint, validated against the
    // canonical block space before they are trusted.
    std::vector<partial_block> restored;
    std::vector<bool> recorded(all_blocks.size(), false);
    if (ckpt.has_value()) {
        for (const auto& entry : ckpt->recorded()) {
            if (entry.round != 0)
                throw std::runtime_error{
                    "checkpoint: " + options.checkpoint_dir +
                    " records adaptive round " + std::to_string(entry.round) +
                    " but this run is fixed-allocation — checkpoint belongs "
                    "to a different campaign"};
            for (const auto& b : entry.blocks) {
                if (b.index >= all_blocks.size() ||
                    b.cell != all_blocks[b.index].cell ||
                    b.partial.trials != all_blocks[b.index].trials)
                    throw std::runtime_error{
                        "checkpoint: " + options.checkpoint_dir +
                        " records block " + std::to_string(b.index) +
                        " that does not exist in this campaign's block "
                        "space — checkpoint belongs to a different campaign"};
                if (recorded[b.index])
                    throw std::runtime_error{
                        "checkpoint: " + options.checkpoint_dir +
                        " records block " + std::to_string(b.index) +
                        " twice — the log is damaged"};
                recorded[b.index] = true;
                restored.push_back(b);
            }
        }
    }
    std::vector<campaign::block_ref> remaining;
    for (const auto& b : all_blocks)
        if (!recorded[b.index]) remaining.push_back(b);

    round_outcome outcome;
    if (!remaining.empty())
        outcome = execute_round(options, exec, worker, shard_spec, digest,
                                /*round_number=*/0, remaining,
                                ckpt.has_value() ? &*ckpt : nullptr,
                                options.block_ingest ? &options.block_ingest
                                                     : nullptr);

    auto partials = std::move(outcome.partials);
    if (!restored.empty()) {
        std::sort(restored.begin(), restored.end(),
                  [](const partial_block& a, const partial_block& b) {
                      return a.index < b.index;
                  });
        // Checkpoint-restored blocks reach the store too (a resumed run's
        // store may predate the kill, so most of these dedup away).
        if (options.block_ingest) options.block_ingest(0, restored);
        partial_report replayed;
        replayed.round = 0;
        replayed.digest = digest;
        replayed.blocks = std::move(restored);
        partials.push_back(std::move(replayed));
    }
    auto report = merge_partials(spec, partials);

    if (telemetry != nullptr || options.round_observer) {
        // Fixed allocation has no rounds; telemetry reports round 0.
        obs::round_summary summary;
        summary.round = 0;
        summary.blocks = all_blocks.size();
        summary.trials = report.total_trials();
        summary.cumulative_trials = summary.trials;
        const auto ids = campaign::cells_for(spec);
        for (std::size_t c = 0; c < report.cells.size(); ++c) {
            const double hw = std::max(report.cells[c].detection_ci.half_width(),
                                       report.cells[c].hijack_ci.half_width());
            if (hw > summary.max_halfwidth) {
                summary.max_halfwidth = hw;
                summary.widest_cell = cell_name(ids[c]);
            }
        }
        summary.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        summary.shards = std::move(outcome.times);
        summary.retries = outcome.stats.retries;
        summary.requeued_blocks = outcome.stats.requeued_blocks;
        summary.timeouts = outcome.stats.timeouts;
        summary.evictions = outcome.stats.evictions;
        summary.reconnects = outcome.stats.reconnects;
        summary.resumed = options.resume;
        emit_round(options, telemetry, summary);
    }
    return report;
}

}  // namespace

std::string default_worker_path() {
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path{buf};
        const auto slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + "tools_campaign_worker";
    }
    return "./tools_campaign_worker";
}

campaign::campaign_report run_sharded(const campaign::campaign_spec& spec,
                                      const sharded_options& options) {
    if (options.shards == 0)
        throw std::invalid_argument{"run_sharded: shards must be >= 1"};
    const std::string worker = options.worker_path.empty()
                                   ? default_worker_path()
                                   : options.worker_path;
    obs::telemetry_writer writer;
    obs::telemetry_writer* telemetry = nullptr;
    if (!options.telemetry_path.empty() && writer.open(options.telemetry_path))
        telemetry = &writer;

    auto ckpt = open_checkpoint(options, spec_digest(spec));

    // The transport: local fork/exec pipes, or a TCP coordinator whose
    // workers persist across rounds. Same jobs, same classification, same
    // merge — the report cannot tell them apart.
    std::optional<coordinator> coord;
    sharded_options effective = options;
    round_executor exec;
    if (options.net.has_value()) {
        net_options net = *options.net;
        if (net.worker_path.empty()) net.worker_path = worker;
        coord.emplace(net, options.faults, spec_digest(spec));
        // Flight recording rides the local transport's environment plumbing;
        // remote compute children are postmortem'd from their wait status
        // and output alone.
        effective.flight_recorder = false;
        exec = [&coord](const std::vector<supervised_job>& jobs,
                        const supervise_hooks& hooks, supervise_stats& stats) {
            return coord->run_jobs(jobs, hooks, stats);
        };
    } else {
        exec = [&worker, &options](const std::vector<supervised_job>& jobs,
                                   const supervise_hooks& hooks,
                                   supervise_stats& stats) {
            return supervise_jobs(worker, jobs, options.faults, hooks, stats);
        };
    }

    if (spec.adaptive)
        return run_sharded_adaptive(spec, effective, exec, worker, telemetry,
                                    ckpt);
    return run_sharded_fixed(spec, effective, exec, worker, telemetry, ckpt);
}

}  // namespace pssp::dist
