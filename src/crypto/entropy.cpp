#include "crypto/entropy.hpp"

namespace pssp::crypto {

bool entropy_source::rdrand64(std::uint64_t& out) noexcept {
    if (fail_one_in_ != 0 && prng_.below(fail_one_in_) == 0) return false;
    out = prng_();
    ++reads_;
    return true;
}

std::uint64_t entropy_source::next64() noexcept {
    std::uint64_t value = 0;
    while (!rdrand64(value)) {
        // Real code retries a bounded number of times; transient failures in
        // the model are rare enough that an unbounded retry always ends.
    }
    return value;
}

}  // namespace pssp::crypto
