#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "util/json.hpp"
#include "util/table.hpp"

namespace pssp::campaign {

campaign_spec default_spec() {
    campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::raf_ssp,
                    core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::brute_force,
                    attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    return spec;
}

campaign_spec full_spec() {
    campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp,      core::scheme_kind::raf_ssp,
                    core::scheme_kind::dynaguard, core::scheme_kind::dcr,
                    core::scheme_kind::p_ssp,    core::scheme_kind::p_ssp_owf};
    // No brute_force: it needs DCR's per-victim link offset (see the
    // engine's constructor check).
    spec.attacks = {attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    return spec;
}

unsigned resolve_jobs(unsigned requested) noexcept {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void cell_partial::add(const trial_result& t) {
    ++trials;
    if (t.hijacked) {
        ++hijacks;
        queries_to_compromise.add(static_cast<double>(t.oracle_queries));
    }
    if (t.detected) ++detections;
    queries.add(static_cast<double>(t.oracle_queries));
    leaked_bytes_valid.add(static_cast<double>(t.leaked_bytes_valid));
    canary_detections += t.canary_detections;
    other_crashes += t.other_crashes;
}

void cell_partial::merge(const cell_partial& other) {
    trials += other.trials;
    hijacks += other.hijacks;
    detections += other.detections;
    canary_detections += other.canary_detections;
    other_crashes += other.other_crashes;
    queries.merge(other.queries);
    queries_to_compromise.merge(other.queries_to_compromise);
    leaked_bytes_valid.merge(other.leaked_bytes_valid);
}

std::vector<cell_id> cells_for(const campaign_spec& spec) {
    std::vector<cell_id> cells;
    cells.reserve(spec.cell_count());
    for (const auto target : spec.targets)
        for (const auto scheme : spec.schemes)
            for (const auto atk : spec.attacks)
                cells.push_back(cell_id{target, scheme, atk});
    return cells;
}

std::vector<block_ref> blocks_for(const campaign_spec& spec) {
    const std::uint64_t cell_count = spec.cell_count();
    const std::uint64_t per_cell =
        (spec.trials_per_cell + reduce_block_trials - 1) / reduce_block_trials;
    std::vector<block_ref> blocks;
    blocks.reserve(cell_count * per_cell);
    for (std::uint64_t cell = 0; cell < cell_count; ++cell) {
        for (std::uint64_t b = 0; b < per_cell; ++b) {
            const std::uint64_t offset = b * reduce_block_trials;
            blocks.push_back(block_ref{
                .index = blocks.size(),
                .cell = cell,
                .first_trial = cell * spec.trials_per_cell + offset,
                .trials = std::min(reduce_block_trials,
                                   spec.trials_per_cell - offset),
            });
        }
    }
    return blocks;
}

cell_report finalize_cell(const cell_id& id, const cell_partial& merged) {
    cell_report cell;
    cell.scheme = id.scheme;
    cell.attack = id.attack;
    cell.target = id.target;
    cell.trials = merged.trials;
    cell.hijacks = merged.hijacks;
    cell.detections = merged.detections;
    cell.canary_detections = merged.canary_detections;
    cell.other_crashes = merged.other_crashes;
    cell.queries = merged.queries;
    cell.queries_to_compromise = merged.queries_to_compromise;
    cell.leaked_bytes_valid = merged.leaked_bytes_valid;
    if (cell.trials > 0) {
        cell.hijack_rate =
            static_cast<double>(cell.hijacks) / static_cast<double>(cell.trials);
        cell.detection_rate =
            static_cast<double>(cell.detections) / static_cast<double>(cell.trials);
    }
    cell.hijack_ci = util::wilson_interval(cell.hijacks, cell.trials);
    cell.detection_ci = util::wilson_interval(cell.detections, cell.trials);
    return cell;
}

campaign_report assemble_report(const campaign_spec& spec,
                                std::span<const block_ref> blocks,
                                std::span<const cell_partial> partials) {
    if (blocks.size() != partials.size())
        throw std::invalid_argument{
            "assemble_report: one partial per block required"};
    const auto cells = cells_for(spec);
    std::vector<cell_partial> merged(cells.size());
    // blocks is in canonical order, so within each cell the merge happens
    // in block order — the float-determinism invariant.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].cell >= cells.size())
            throw std::invalid_argument{"assemble_report: block cell out of range"};
        merged[blocks[b].cell].merge(partials[b]);
    }
    campaign_report report;
    report.spec = spec;
    report.cells.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c)
        report.cells.push_back(finalize_cell(cells[c], merged[c]));
    return report;
}

cell_report reduce_cell(core::scheme_kind scheme, attack::attack_kind attack,
                        workload::target_kind target,
                        std::span<const trial_result> trials) {
    cell_partial cell;
    for (std::size_t start = 0; start < trials.size();
         start += reduce_block_trials) {
        const std::size_t n = std::min<std::size_t>(
            reduce_block_trials, trials.size() - start);
        cell_partial block;
        for (std::size_t i = 0; i < n; ++i) block.add(trials[start + i]);
        cell.merge(block);
    }
    return finalize_cell(cell_id{target, scheme, attack}, cell);
}

std::string campaign_report::to_json() const {
    std::string out;
    out.reserve(1024 + cells.size() * 512);
    out += "{\"campaign\":{";
    util::append_kv(out, "master_seed", spec.master_seed);
    util::append_kv(out, "trials_per_cell", spec.trials_per_cell);
    util::append_kv(out, "query_budget", spec.query_budget);
    util::append_kv(out, "brute_unknown_bits",
                    static_cast<std::uint64_t>(spec.brute_unknown_bits));
    // The adaptive knobs are outcome-relevant (they decide which trials
    // ran), so the report records them — unlike jobs/reuse_masters, which
    // stay absent by design.
    util::append_kv_bool(out, "adaptive", spec.adaptive);
    util::append_kv(out, "target_ci_halfwidth", spec.target_ci_halfwidth);
    util::append_kv(out, "round_blocks", spec.round_blocks);
    util::append_kv(out, "min_trials_per_cell", spec.min_trials_per_cell,
                    /*comma=*/false);
    out += "},\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        if (i) out += ',';
        out += '{';
        util::append_kv(out, "target", workload::to_string(c.target));
        util::append_kv(out, "scheme", core::to_string(c.scheme));
        util::append_kv(out, "attack", attack::to_string(c.attack));
        util::append_kv(out, "trials", c.trials);
        util::append_kv(out, "hijacks", c.hijacks);
        util::append_kv(out, "detections", c.detections);
        util::append_kv(out, "hijack_rate", c.hijack_rate);
        util::append_interval(out, "hijack_ci95", c.hijack_ci);
        util::append_kv(out, "detection_rate", c.detection_rate);
        util::append_interval(out, "detection_ci95", c.detection_ci);
        util::append_accumulator(out, "oracle_queries", c.queries);
        util::append_accumulator(out, "queries_to_compromise",
                                 c.queries_to_compromise);
        util::append_accumulator(out, "leaked_bytes_valid", c.leaked_bytes_valid);
        util::append_kv(out, "canary_detections", c.canary_detections);
        util::append_kv(out, "other_crashes", c.other_crashes, /*comma=*/false);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string campaign_report::to_table() const {
    util::text_table t{{"target", "scheme", "attack", "hijack rate",
                        "detect rate [95% CI]", "mean queries",
                        "mean q-to-compromise", "leak bytes valid"}};
    char buf[96];
    for (const auto& c : cells) {
        std::snprintf(buf, sizeof buf, "%.3f", c.hijack_rate);
        std::string hijack = buf;
        std::snprintf(buf, sizeof buf, "%.3f [%.3f, %.3f]", c.detection_rate,
                      c.detection_ci.lo, c.detection_ci.hi);
        std::string detect = buf;
        std::snprintf(buf, sizeof buf, "%.1f", c.queries.mean());
        std::string queries = buf;
        std::string compromise = "-";
        if (c.queries_to_compromise.count() > 0) {
            std::snprintf(buf, sizeof buf, "%.1f", c.queries_to_compromise.mean());
            compromise = buf;
        }
        std::snprintf(buf, sizeof buf, "%.2f", c.leaked_bytes_valid.mean());
        std::string leak = buf;
        t.add_row({workload::to_string(c.target), core::to_string(c.scheme),
                   attack::to_string(c.attack), hijack, detect, queries,
                   compromise, leak});
    }
    return t.render("Campaign outcome matrix");
}

}  // namespace pssp::campaign
