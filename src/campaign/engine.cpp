#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <chrono>

#include "campaign/allocator.hpp"
#include "core/tls_layout.hpp"
#include "crypto/prng.hpp"
#include "obs/span.hpp"

namespace pssp::campaign {

trial_seeds seeds_for_trial(std::uint64_t master_seed, std::uint64_t trial_index) {
    // splitmix64 over a per-trial state: the golden-ratio stride keeps
    // neighboring trials' states far apart, and splitmix's full-avalanche
    // output decorrelates the two streams from each other and from the raw
    // master seed. Purely a function of (master_seed, trial_index) — never
    // of which worker thread picked the trial up.
    std::uint64_t state = master_seed + 0x9e3779b97f4a7c15ull * (trial_index + 1);
    trial_seeds s;
    s.server = crypto::splitmix64_next(state);
    s.attacker = crypto::splitmix64_next(state);
    return s;
}

namespace {

struct cell_key {
    workload::target_kind target;
    core::scheme_kind scheme;
    attack::attack_kind attack;
    const workload::victim* victim = nullptr;
};

trial_result run_trial(const cell_key& cell, const campaign_spec& spec,
                       const trial_seeds& seeds) {
    // Pooled and fresh oracles are byte-identical for a given seed (the
    // master_pool contract), so this branch affects wall-clock only.
    std::optional<proc::master_pool::lease> lease;
    std::optional<proc::fork_server> fresh;
    if (spec.reuse_masters)
        lease.emplace(cell.victim->lease_server(seeds.server));
    else
        fresh.emplace(cell.victim->make_server(seeds.server));
    proc::fork_server& oracle = lease.has_value() ? lease->server() : *fresh;

    attack::attack_context ctx{
        .oracle = oracle,
        .scheme = cell.scheme,
        .prefix_bytes = cell.victim->prefix_bytes,
        .canary_bytes = cell.victim->canary_bytes,
        .ret_target = cell.victim->ret_target,
        .saved_rbp = cell.victim->saved_rbp,
        .seed = seeds.attacker,
        .query_budget = spec.query_budget,
        .true_canary_hint = 0,
        .unknown_bits = spec.brute_unknown_bits,
        .dcr_offset = 0,
    };
    if (cell.attack == attack::attack_kind::brute_force) {
        // The entropy-reduction harness (Section III-C-1): leak the top
        // bits of the booted master's true canary so the residual search
        // space is 2^unknown_bits and trials finish inside the budget.
        ctx.true_canary_hint = core::tls_load(oracle.master(), core::tls_canary);
    }

    const auto strategy = attack::make_strategy(cell.attack);
    const auto outcome = strategy->execute(ctx);

    return trial_result{
        .hijacked = outcome.hijacked,
        .detected = outcome.detected,
        .oracle_queries = outcome.oracle_queries,
        .canary_detections = outcome.canary_detections,
        .other_crashes = outcome.other_crashes,
        .leaked_bytes_valid = outcome.leaked_bytes_valid,
    };
}

std::string cell_name(const cell_id& id) {
    return workload::to_string(id.target) + "/" + core::to_string(id.scheme) +
           "/" + attack::to_string(id.attack);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

}  // namespace

engine::engine(campaign_spec spec) : spec_{std::move(spec)} {
    if (spec_.schemes.empty() || spec_.attacks.empty() || spec_.targets.empty())
        throw std::invalid_argument{
            "campaign::engine: spec needs >= 1 scheme, attack and target"};
    if (spec_.trials_per_cell == 0)
        throw std::invalid_argument{"campaign::engine: trials_per_cell == 0"};
    if (spec_.adaptive && (!std::isfinite(spec_.target_ci_halfwidth) ||
                           spec_.target_ci_halfwidth < 0.0))
        throw std::invalid_argument{
            "campaign::engine: target_ci_halfwidth must be finite and >= 0"};
    // DCR's brute-force model needs the victim's true link offset in the
    // low canary half; no static victim property supplies it, and running
    // with a wrong offset reports a hijack rate of 0 that is
    // indistinguishable from genuine prevention. Refuse to measure garbage.
    const bool has_brute =
        std::find(spec_.attacks.begin(), spec_.attacks.end(),
                  attack::attack_kind::brute_force) != spec_.attacks.end();
    const bool has_dcr = std::find(spec_.schemes.begin(), spec_.schemes.end(),
                                   core::scheme_kind::dcr) != spec_.schemes.end();
    if (has_brute && has_dcr)
        throw std::invalid_argument{
            "campaign::engine: brute_force x dcr needs the per-victim link "
            "offset, which campaigns do not model yet"};
}

campaign_report engine::run() {
    if (!spec_.adaptive) {
        obs::span sp{"campaign.run", "campaign"};
        const auto start = std::chrono::steady_clock::now();
        const auto blocks = blocks_for(spec_);
        const auto partials = run_blocks(blocks);
        auto report = assemble_report(spec_, blocks, partials);
        if (round_observer_) {
            // One line for the whole fixed campaign (round 0); the widest
            // cell is the one adaptive allocation would have fed first.
            obs::round_summary summary;
            summary.round = 0;
            summary.blocks = blocks.size();
            summary.trials = report.total_trials();
            summary.cumulative_trials = summary.trials;
            const auto ids = cells_for(spec_);
            for (std::size_t c = 0; c < report.cells.size(); ++c) {
                const double hw =
                    std::max(report.cells[c].detection_ci.half_width(),
                             report.cells[c].hijack_ci.half_width());
                if (hw > summary.max_halfwidth) {
                    summary.max_halfwidth = hw;
                    summary.widest_cell = cell_name(ids[c]);
                }
            }
            summary.wall_seconds = seconds_since(start);
            round_observer_(summary);
        }
        return report;
    }
    // Adaptive round loop: plan -> execute -> record until every cell has
    // converged or exhausted its budget. The allocator's decisions are pure
    // functions of the merged partials, and run_blocks partials are pure
    // functions of (master_seed, block), so this loop reproduces the dist
    // orchestrator's sharded round loop byte for byte.
    adaptive_allocator allocator{spec_};
    const auto ids = cells_for(spec_);
    for (;;) {
        const auto round = allocator.plan_round();
        if (round.empty()) break;
        obs::span sp{"campaign.round", "campaign",
                     static_cast<std::int64_t>(allocator.rounds_completed() + 1)};
        const auto start = std::chrono::steady_clock::now();
        const auto partials = run_blocks(round);
        allocator.record_round(round, partials);
        if (round_observer_) {
            obs::round_summary summary;
            summary.round = allocator.rounds_completed();
            summary.blocks = round.size();
            for (const auto& b : round) summary.trials += b.trials;
            summary.cumulative_trials = allocator.trials_run();
            for (std::uint64_t c = 0; c < ids.size(); ++c) {
                if (allocator.cell_converged(c)) continue;
                const double hw = allocator.cell_halfwidth(c);
                if (hw > summary.max_halfwidth) {
                    summary.max_halfwidth = hw;
                    summary.widest_cell = cell_name(ids[c]);
                }
            }
            summary.wall_seconds = seconds_since(start);
            round_observer_(summary);
        }
    }
    return allocator.report();
}

std::vector<cell_partial> engine::run_blocks(std::span<const block_ref> blocks) {
    const auto ids = cells_for(spec_);
    const std::size_t n_attacks = spec_.attacks.size();
    for (const auto& b : blocks)
        if (b.cell >= ids.size())
            throw std::invalid_argument{
                "campaign::engine: block cell index out of range"};

    const unsigned jobs = static_cast<unsigned>(std::min<std::uint64_t>(
        resolve_jobs(spec_.jobs), std::max<std::uint64_t>(blocks.size(), 1)));

    // One victim build per (target, scheme), but only for the pairs these
    // blocks actually touch — a shard owning 3 of 18 blocks must not pay
    // for 6 compiles. Attacks within a cell share the build, and the cache
    // is an engine member so an adaptive round loop pays each compile once.
    victims_.resize(spec_.targets.size() * spec_.schemes.size());
    std::vector<cell_key> cells(ids.size());
    for (const auto& b : blocks) {
        const std::size_t vi = b.cell / n_attacks;
        if (!victims_[vi].has_value()) {
            obs::span sp{"victim.build", "campaign",
                         static_cast<std::int64_t>(vi)};
            victims_[vi].emplace(workload::make_victim(
                ids[b.cell].target, ids[b.cell].scheme, spec_.scheme_options));
            // Per-shard pool sizing: park at most one booted master per
            // worker thread. A lone process on a big machine keeps them
            // all; each process of a wide fan-out keeps only its share.
            victims_[vi]->pool->set_idle_limit(jobs);
        }
        cells[b.cell] = cell_key{ids[b.cell].target, ids[b.cell].scheme,
                                 ids[b.cell].attack, &*victims_[vi]};
    }

    std::uint64_t total = 0;
    for (const auto& b : blocks) total += b.trials;

    std::vector<cell_partial> partials(blocks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::mutex error_mutex;
    std::string first_error;
    std::atomic<bool> failed{false};

    // Work-stealing at block granularity: one worker reduces a whole block
    // with sequential add()s in trial order, so the block's partial is a
    // pure function of (master_seed, block) — never of scheduling.
    auto worker = [&] {
        for (;;) {
            const std::size_t bi = next.fetch_add(1, std::memory_order_relaxed);
            if (bi >= blocks.size() || failed.load(std::memory_order_relaxed))
                return;
            const auto& block = blocks[bi];
            const auto& cell = cells[block.cell];
            // One span per trial batch (the canonical reduction block) —
            // a no-op when tracing is off, one ring write when on.
            obs::span sp{"block", "campaign",
                         static_cast<std::int64_t>(block.index)};
            for (std::uint64_t t = 0; t < block.trials; ++t) {
                const std::uint64_t g = block.first_trial + t;
                try {
                    partials[bi].add(run_trial(
                        cell, spec_, seeds_for_trial(spec_.master_seed, g)));
                } catch (const std::exception& e) {
                    std::lock_guard lock{error_mutex};
                    if (first_error.empty())
                        first_error = std::string{"trial "} + std::to_string(g) +
                                      ": " + e.what();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
                const std::uint64_t completed =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                if (progress_) {
                    std::lock_guard lock{error_mutex};
                    progress_(completed, total);
                }
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
        for (auto& t : pool) t.join();
    }
    if (failed.load())
        throw std::runtime_error{"campaign::engine: " + first_error};
    return partials;
}

}  // namespace pssp::campaign
