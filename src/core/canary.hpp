// Canary algebra: Algorithm 1 and the split/merge helpers shared by the
// P-SSP family.
#pragma once

#include <cstdint>

#include "crypto/prng.hpp"

namespace pssp::core {

// A canary pair (C0, C1) with C0 XOR C1 == C (Algorithm 1's output).
struct canary_pair {
    std::uint64_t c0 = 0;
    std::uint64_t c1 = 0;

    [[nodiscard]] constexpr std::uint64_t combined() const noexcept { return c0 ^ c1; }
    friend bool operator==(const canary_pair&, const canary_pair&) = default;
};

// Algorithm 1, Re-Randomize(C): draws a fresh random C0 and returns
// (C0, C0 XOR C). Each invocation yields a pair bound to C but independent
// of every earlier pair — the property Theorem 1 rests on.
[[nodiscard]] canary_pair re_randomize(std::uint64_t tls_canary,
                                       crypto::xoshiro256& rng) noexcept;

// 32-bit variant used by the binary-instrumentation deployment (Section
// V-C): C0 and C1 are 32 bits each and pack into one 64-bit stack word, so
// the SSP stack layout is preserved. The pair satisfies
// c0 XOR c1 == low32(tls_canary).
struct canary_pair32 {
    std::uint32_t c0 = 0;
    std::uint32_t c1 = 0;

    [[nodiscard]] constexpr std::uint32_t combined() const noexcept { return c0 ^ c1; }
    // Packed stack word: C0 in the low half, C1 in the high half.
    [[nodiscard]] constexpr std::uint64_t packed() const noexcept {
        return std::uint64_t{c0} | (std::uint64_t{c1} << 32);
    }
    friend bool operator==(const canary_pair32&, const canary_pair32&) = default;
};

[[nodiscard]] canary_pair32 re_randomize32(std::uint64_t tls_canary,
                                           crypto::xoshiro256& rng) noexcept;

// Unpacks a 64-bit stack word into the 32-bit pair (Fig 4's split of rdi).
[[nodiscard]] constexpr canary_pair32 unpack32(std::uint64_t word) noexcept {
    return {static_cast<std::uint32_t>(word), static_cast<std::uint32_t>(word >> 32)};
}

// Draws a full-width random TLS canary. Unlike glibc we do not force a NUL
// guard byte: the paper's schemes do not either, and a zero byte would bias
// the Theorem-1 uniformity tests.
[[nodiscard]] std::uint64_t fresh_tls_canary(crypto::xoshiro256& rng) noexcept;

}  // namespace pssp::core
