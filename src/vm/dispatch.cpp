#include "vm/dispatch.hpp"

#include <atomic>
#include <cstdlib>

namespace pssp::vm {

std::string to_string(dispatch_mode mode) {
    switch (mode) {
        case dispatch_mode::threaded: return "threaded";
        case dispatch_mode::switch_loop: return "switch";
    }
    return "?";
}

std::optional<dispatch_mode> dispatch_from_string(const std::string& s) {
    if (s == "threaded") return dispatch_mode::threaded;
    if (s == "switch" || s == "switch_loop") return dispatch_mode::switch_loop;
    return std::nullopt;
}

namespace {

dispatch_mode env_default() noexcept {
    if (const char* env = std::getenv("PSSP_VM_DISPATCH")) {
        if (const auto parsed = dispatch_from_string(env)) return *parsed;
    }
    return dispatch_mode::threaded;
}

// Relaxed is enough: the knob is set once at tool startup (before any
// worker thread builds a machine); the atomic only keeps concurrent
// campaign workers reading a torn-free value.
std::atomic<dispatch_mode>& default_slot() noexcept {
    static std::atomic<dispatch_mode> slot{env_default()};
    return slot;
}

}  // namespace

dispatch_mode default_dispatch() noexcept {
    return default_slot().load(std::memory_order_relaxed);
}

void set_default_dispatch(dispatch_mode mode) noexcept {
    default_slot().store(mode, std::memory_order_relaxed);
}

const char* handler_name(std::uint16_t handler) noexcept {
#define PSSP_NAME(name) #name,
    static const char* const names[hop::count] = {
        PSSP_BASE_OPS(PSSP_NAME) PSSP_FUSED_OPS(PSSP_NAME)};
#undef PSSP_NAME
    return handler < hop::count ? names[handler] : "?";
}

decoded_op lower_op(const instruction& insn, std::uint32_t flow_target,
                    std::uint64_t return_addr, const native_fn* native) {
    decoded_op op;
    op.handler = static_cast<std::uint16_t>(insn.op);
    op.op = insn.op;
    op.r1 = insn.r1;
    op.r2 = insn.r2;
    op.x1 = insn.x1;
    op.x2 = insn.x2;
    op.fs = insn.mem.seg == segment::fs ? 1 : 0;
    op.mbase = insn.mem.base;
    op.disp = insn.mem.disp;
    op.target = flow_target;
    op.imm = insn.imm;
    op.return_addr = return_addr;
    op.native = native;
    return op;
}

decoded_op sentinel_op() noexcept {
    decoded_op op;
    op.handler = hop::sentinel;
    // op.op stays nop: the sentinel never charges the cost table — it only
    // reproduces the legacy loop's "rip past the end" invalid-jump trap.
    return op;
}

namespace {

// Conditional branches a compare/test/xor result can feed. jnc is excluded:
// it reads the carry flag, which only rdrand produces in this ISA, so a
// flags-producing first half adds nothing to it. jmp is excluded because it
// consumes no flags at all — fusing it buys no dispatch.
bool is_cc_branch(opcode op) noexcept {
    switch (op) {
        case opcode::je:
        case opcode::jne:
        case opcode::jb:
        case opcode::jae:
        case opcode::jl:
        case opcode::jge:
            return true;
        default:
            return false;
    }
}

}  // namespace

std::uint16_t fuse_pair(const instruction& a, const instruction& b) noexcept {
    switch (a.op) {
        case opcode::cmp_rr:
            return is_cc_branch(b.op) ? hop::fuse_cmp_rr_jcc : 0;
        case opcode::cmp_ri:
            return is_cc_branch(b.op) ? hop::fuse_cmp_ri_jcc : 0;
        case opcode::test_rr:
            return is_cc_branch(b.op) ? hop::fuse_test_rr_jcc : 0;
        case opcode::xor_rm:
            // The SSP epilogue's canary check: xor rcx, fs:0x28 ; jne fail.
            return is_cc_branch(b.op) ? hop::fuse_xor_rm_jcc : 0;
        case opcode::push_r:
            if (b.op == opcode::push_r) return hop::fuse_push_push;
            if (b.op == opcode::mov_rr) return hop::fuse_push_mov_rr;
            return 0;
        case opcode::mov_rm:
            return b.op == opcode::add_rr ? hop::fuse_mov_rm_add_rr : 0;
        case opcode::mov_mr:
            // Store-then-mix bodies (spill a scalar, xor an immediate in).
            return b.op == opcode::xor_ri ? hop::fuse_mov_mr_xor_ri : 0;
        case opcode::add_ri:
            // Leaf epilogues: accumulate into rax, return.
            return b.op == opcode::ret ? hop::fuse_add_ri_ret : 0;
        case opcode::sub_ri:
            // Loop back-edge counters: sub rdi,1 ; cmp rdi,0 (the jcc that
            // usually follows then fuses with the cmp's standalone slot).
            return b.op == opcode::cmp_ri ? hop::fuse_sub_ri_cmp_ri : 0;
        default:
            return 0;
    }
}

}  // namespace pssp::vm
