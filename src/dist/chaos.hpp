// Deterministic fault-injection plans for campaign workers.
//
// The chaos harness is how the fault-tolerance layer is tested without
// real flaky hardware: the orchestrator's environment carries a *fault
// plan* (PSSP_CAMPAIGN_FAULT_PLAN), every worker process parses it at
// startup, and a worker whose (shard, round, attempt) coordinate matches
// a rule executes that rule's fault instead of (or around) its real work.
// Because the coordinate is fully determined by the campaign — the
// allocator's round schedule is a pure function of (spec, master_seed)
// and the orchestrator numbers attempts deterministically — a chaos run
// replays *exactly*: same faults, same retries, same recovered report.
//
// Plan grammar (comma-separated rules; whitespace-free):
//
//   plan    := rule ("," rule)*
//   rule    := fault [":" shard [":" round [":" attempt]]]
//   fault   := "crash" | "crash-late" | "hang" | "trunc" | "corrupt"
//            | "wrong-block" | "slow=<millis>"
//   shard   := integer | "*"          (default "*": any shard)
//   round   := integer | "*"          (default "*": any round; fixed
//                                      allocation runs are round 0)
//   attempt := integer | "*"          (default 1: first attempt only, so
//                                      the retry heals; "*" = every
//                                      attempt, for exhaustion tests)
//
// Faults, at the point in the worker's life where they strike:
//
//   crash        exit(3) at startup, before reading stdin
//   crash-late   exit(4) after computing the partial, before emitting it
//   hang         block forever at startup (the supervisor's deadline
//                SIGKILLs it)
//   trunc        emit only the first half of the partial JSON, exit 0
//   corrupt      emit a partial whose spec digest is flipped — parses
//                fine, fails validation
//   wrong-block  emit a partial whose block indices are shifted by one —
//                covers blocks the manifest never assigned
//   slow=N       sleep N milliseconds at startup, then run normally
//                (exercises the deadline without tripping it)
//
// First matching rule wins. A malformed plan throws from parse (the
// worker exits loudly) — a typo'd chaos run must never pass as clean.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pssp::dist {

enum class fault_kind : std::uint8_t {
    none,
    crash,
    crash_late,
    hang,
    trunc,
    corrupt,
    wrong_block,
    slow,
};

[[nodiscard]] const char* to_string(fault_kind kind) noexcept;

struct fault_rule {
    fault_kind kind = fault_kind::none;
    // Match coordinates; any_* true means wildcard.
    bool any_shard = true;
    bool any_round = true;
    bool any_attempt = false;
    std::uint64_t shard = 0;
    std::uint64_t round = 0;
    std::uint64_t attempt = 1;
    std::uint64_t param = 0;  // slow: sleep milliseconds
};

struct fault_plan {
    std::vector<fault_rule> rules;

    [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

// Parses the plan grammar above. Throws std::invalid_argument naming the
// offending token on any malformed rule.
[[nodiscard]] fault_plan parse_fault_plan(std::string_view text);

// The first rule matching (shard, round, attempt), or a kind-none rule.
[[nodiscard]] fault_rule decide_fault(const fault_plan& plan,
                                      std::uint64_t shard, std::uint64_t round,
                                      std::uint64_t attempt) noexcept;

// Environment variable names shared by the orchestrator (which sets the
// coordinates per spawned worker) and the worker (which reads them).
inline constexpr const char* fault_plan_env = "PSSP_CAMPAIGN_FAULT_PLAN";
inline constexpr const char* fault_round_env = "PSSP_CAMPAIGN_ROUND";
inline constexpr const char* fault_attempt_env = "PSSP_CAMPAIGN_ATTEMPT";

}  // namespace pssp::dist
