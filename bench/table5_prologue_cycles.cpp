// Table V: average CPU cycles spent by the function prologue and epilogue
// for P-SSP and its three extensions.
//
// Paper row:   P-SSP 6 | P-SSP-NT 343 | P-SSP-LV 343 (2 canaries) /
//              986 (4 canaries) | P-SSP-OWF 278
// Method here: a micro-function (one small buffer, immediate return) is
// compiled under each scheme and under no protection; the per-call modeled
// cycle delta isolates exactly the prologue + epilogue work. The same
// microbenchmark is also registered with google-benchmark so host-side
// interpreter timings are visible alongside the modeled cycles.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;
using core::scheme_options;

// A function whose body is as close to empty as a protected frame allows:
// one buffer (to trigger protection) + `criticals` critical scalars (for
// the LV rows), returning a constant.
compiler::ir_module micro_module(int criticals) {
    compiler::ir_module mod;
    mod.name = "micro";
    auto& fn = mod.add_function("micro");
    (void)compiler::add_local(fn, "buf", 16, /*is_buffer=*/true);
    for (int i = 0; i < criticals; ++i)
        (void)compiler::add_local(fn, "crit" + std::to_string(i), 8,
                                  /*is_buffer=*/false, /*is_critical=*/true);
    fn.body.push_back(compiler::return_stmt{compiler::const_ref{1}});

    auto& main_fn = mod.add_function("main");
    const int i = compiler::add_local(main_fn, "i");
    const int r = compiler::add_local(main_fn, "r");
    compiler::loop_stmt loop{i, 1000, {}};
    loop.body.push_back(compiler::call_stmt{"micro", {}, r});
    main_fn.body.push_back(loop);
    main_fn.body.push_back(compiler::return_stmt{compiler::local_ref{r}});
    return mod;
}

// Per-call prologue+epilogue cycles of `kind` over the unprotected build.
double per_call_cycles(scheme_kind kind, int criticals, scheme_options options = {}) {
    const auto mod = micro_module(criticals);
    workload::harness_options opt;
    const auto with = workload::measure_module(mod, kind, {.scheme_options = options});
    const auto without = workload::measure_module(mod, scheme_kind::none, opt);
    return (static_cast<double>(with.cycles) - static_cast<double>(without.cycles)) /
           1000.0;
}

// google-benchmark hook: host-side interpreter time per protected call.
void bm_scheme(benchmark::State& state, scheme_kind kind, int criticals) {
    const auto mod = micro_module(criticals);
    const auto binary = compiler::build_module(mod, core::make_scheme(kind));
    proc::process_manager manager{core::make_scheme(kind), 7};
    auto m = manager.create_process(binary);
    const auto entry = binary.symbols.at("main");
    for (auto _ : state) {
        m.call_function(entry);
        benchmark::DoNotOptimize(m.run());
    }
}

}  // namespace

int main(int argc, char** argv) {
    bench::print_header("Table V — prologue+epilogue CPU cycles per scheme",
                        "Table V (P-SSP 6, NT 343, LV 343/986, OWF 278)");

    struct entry {
        const char* label;
        double paper;
        double measured;
    };
    scheme_options sha_opt;
    sha_opt.owf = crypto::owf_kind::sha1;
    const entry entries[] = {
        {"SSP (reference)", 0, per_call_cycles(scheme_kind::ssp, 0)},
        {"P-SSP", 6, per_call_cycles(scheme_kind::p_ssp, 0)},
        {"P-SSP-NT", 343, per_call_cycles(scheme_kind::p_ssp_nt, 0)},
        {"P-SSP-LV (2 canaries)", 343, per_call_cycles(scheme_kind::p_ssp_lv, 1)},
        {"P-SSP-LV (4 canaries)", 986, per_call_cycles(scheme_kind::p_ssp_lv, 3)},
        {"P-SSP-OWF (AES-NI)", 278, per_call_cycles(scheme_kind::p_ssp_owf, 0)},
        {"P-SSP-OWF (SHA-1, no HW)", -1,
         per_call_cycles(scheme_kind::p_ssp_owf, 0, sha_opt)},
        {"P-SSP-GB", -1, per_call_cycles(scheme_kind::p_ssp_gb, 0)},
        {"P-SSP-32", -1, per_call_cycles(scheme_kind::p_ssp32, 0)},
    };

    util::text_table table{{"scheme", "paper (cycles)", "measured (modeled cycles)"}};
    for (const auto& e : entries)
        table.add_row({e.label, e.paper < 0 ? "-" : util::fmt(e.paper, 0),
                       util::fmt(e.measured, 0)});
    std::printf("%s\n", table.render("Prologue+epilogue cost per call").c_str());
    std::printf("(SHA-1 row demonstrates the paper's point that F is\n"
                " prohibitively expensive without hardware support.)\n\n");

    benchmark::RegisterBenchmark("interp/ssp", bm_scheme, scheme_kind::ssp, 0);
    benchmark::RegisterBenchmark("interp/p_ssp", bm_scheme, scheme_kind::p_ssp, 0);
    benchmark::RegisterBenchmark("interp/p_ssp_nt", bm_scheme, scheme_kind::p_ssp_nt, 0);
    benchmark::RegisterBenchmark("interp/p_ssp_owf", bm_scheme, scheme_kind::p_ssp_owf,
                                 0);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
