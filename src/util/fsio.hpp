// Small POSIX file-I/O helpers shared by the durable-state writers (the
// dist checkpoint log, the store ingest log) and their readers.
//
// Three idioms live here so every durable artifact behaves the same way:
//
//  * write_all / open_append: O_APPEND logs written as complete lines,
//    short writes and EINTR retried until the line is fully down.
//  * write_file_atomic: tmp + rename + directory fsync — the named file
//    is either the old version or the complete new one, never torn.
//  * scan_lines: streams a '\n'-terminated line file through a callback
//    in fixed-size chunks, so replaying a multi-gigabyte log never
//    buffers more than the longest single line. The scan reports whether
//    trailing bytes without a newline were left over (a torn final line
//    from a mid-write crash); the caller decides whether that is fatal
//    (checkpoint resume) or tolerable (store ingest-log tail).
//
// All failures throw std::runtime_error naming the path and errno text.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace pssp::util {

// Writes all of `bytes` to `fd`, retrying EINTR and short writes.
void write_all(int fd, std::string_view bytes, const std::string& path);

// Reads a whole file into `out`; returns false (empty out) if it does not
// exist. Only for small metadata files — logs go through scan_lines.
[[nodiscard]] bool read_file(const std::string& path, std::string& out);

// tmp + rename + directory fsync. `name` is relative to `dir`.
void write_file_atomic(const std::string& dir, const std::string& name,
                       std::string_view body);

// Opens (creating if needed) a log for appending; optionally truncates.
[[nodiscard]] int open_append(const std::string& path, bool truncate);

struct line_scan_result {
    std::uint64_t lines = 0;           // complete lines delivered
    std::uint64_t consumed_bytes = 0;  // offset just past the last newline
    bool torn_tail = false;            // trailing bytes with no newline
};

// Streams `path` line by line: fn(line_no, line) for every complete
// '\n'-terminated line (1-based line numbers, newline excluded), in fixed
// chunks. Returns false if the file does not exist. Never delivers a
// torn tail — it is reported in `result` instead.
bool scan_lines(const std::string& path,
                const std::function<void(std::size_t line_no,
                                         std::string_view line)>& fn,
                line_scan_result& result);

}  // namespace pssp::util
