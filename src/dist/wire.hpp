// The dist/ wire format: what crosses the pipe between the orchestrator
// and its campaign workers.
//
// Two message kinds, both deterministic JSON (util/json emitters):
//
//  * spec JSON (parent -> worker stdin): the full campaign_spec, including
//    the execution knobs (jobs, reuse_masters) the orchestrator sets per
//    shard. Enum lists travel as their to_string names.
//
//  * partial report JSON (worker stdout -> parent): the shard's per-block
//    campaign::cell_partial states in the shard's canonical block order.
//    Doubles travel as hexfloat strings — bit-exact round trip — because
//    the parent re-merges them and a single flipped mantissa bit would
//    break the sharded-equals-single-process byte-identity contract. Each
//    partial echoes a digest of the outcome-relevant spec fields so a
//    worker that somehow ran a different campaign is rejected, not merged.
//
// merge_partials() validates exactly-once block coverage and reduces via
// campaign::assemble_report — the same code path the in-process engine
// ends in.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"

namespace pssp::dist {

inline constexpr std::uint32_t wire_version = 1;

// ---- campaign_spec <-> JSON ----
[[nodiscard]] std::string spec_to_json(const campaign::campaign_spec& spec);
[[nodiscard]] campaign::campaign_spec spec_from_json(std::string_view text);

// FNV-1a 64 over the outcome-relevant spec fields (schemes, attacks,
// targets, trials, seed, budget, unknown bits, scheme options). The
// execution knobs jobs/reuse_masters are deliberately excluded: the
// orchestrator retunes them per shard, and they never move a report byte.
[[nodiscard]] std::uint64_t spec_digest(const campaign::campaign_spec& spec);

// ---- partial report <-> JSON ----
struct partial_block {
    std::uint64_t index = 0;  // position in campaign::blocks_for(spec)
    std::uint64_t cell = 0;   // owning cell (redundant; validated on merge)
    campaign::cell_partial partial;
};

struct partial_report {
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 0;
    std::uint64_t digest = 0;  // spec_digest of the spec the shard ran
    std::vector<partial_block> blocks;
};

[[nodiscard]] std::string partial_to_json(const partial_report& partial);
[[nodiscard]] partial_report partial_from_json(std::string_view text);

// Merges shard partials into the canonical campaign_report. Throws
// std::runtime_error if any block is missing or duplicated, a digest
// mismatches the spec, or a block's cell disagrees with the plan —
// a sharded run either reproduces the single-process report exactly or
// fails loudly; it never silently drops trials.
[[nodiscard]] campaign::campaign_report merge_partials(
    const campaign::campaign_spec& spec,
    std::span<const partial_report> partials);

}  // namespace pssp::dist
