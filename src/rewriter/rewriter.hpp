// Binary instrumentation: upgrades legacy SSP binaries to P-SSP in place
// (Sections V-C and V-D).
//
// The two constraints the paper wrestles with are enforced mechanically:
//   1. stack-layout preservation — the 64-bit canary pair is downgraded to
//      two 32-bit halves packed into the single word SSP already reserves
//      (the entropy trade-off Section V-C's caveat defends);
//   2. address-layout preservation — every patch must encode to exactly
//      the bytes it replaces (linked_binary::replace_range throws
//      otherwise), so no symbol, offset, or function entry ever moves.
//
// What gets rewritten:
//   * every SSP prologue:  the TLS source offset %fs:0x28 -> %fs:0x2a8
//     (Code 5 — a one-operand patch, same instruction length);
//   * every SSP epilogue:  the inline xor/je/call is replaced by a
//     same-length sequence that passes the packed canary word to
//     __stack_chk_fail in rdi and lets *it* verify (Code 6 / Fig 3);
//   * statically linked binaries additionally get an appended code section
//     (the Dyninst analog) holding a P-SSP-aware __stack_chk_fail (Fig 4)
//     and fork(), with 5-byte jmp hooks planted at the original entries.
// Dynamically linked binaries need no new code at all — the runtime
// rebinds __stack_chk_fail at load time (core::bind_instrumented_
// stack_chk_fail) and wraps fork in the preloaded library — which is
// exactly why Table II reports zero expansion for them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "binfmt/image.hpp"

namespace pssp::rewriter {

struct rewrite_report {
    int prologues_patched = 0;
    int epilogues_patched = 0;
    bool stack_chk_fail_hooked = false;  // static mode only
    bool fork_hooked = false;            // static mode only
    std::uint64_t bytes_added = 0;       // appended-section size
    // Application functions in which *neither* pass matched an SSP
    // pattern — i.e. functions the upgrade leaves genuinely unprotected.
    // Per-function, so one patched function never masks a skipped one.
    std::vector<std::string> skipped_functions;
};

class binary_rewriter {
  public:
    // Rewrites `binary` (compiled with SSP) to P-SSP. Dispatches on the
    // binary's own link mode. Throws if a patch would change the layout.
    rewrite_report upgrade_to_pssp(binfmt::linked_binary& binary) const;

    // Individual passes, exposed for tests. When `per_function` is given,
    // each pass records its per-function patch count into it (keyed by
    // function name; untouched functions get no entry).
    int patch_prologues(binfmt::linked_binary& binary,
                        std::map<std::string, int>* per_function = nullptr) const;
    int patch_epilogues(binfmt::linked_binary& binary,
                        std::map<std::string, int>* per_function = nullptr) const;
    // Appends the P-SSP __stack_chk_fail / fork and hooks the originals.
    std::uint64_t append_static_support(binfmt::linked_binary& binary,
                                        rewrite_report& report) const;
};

}  // namespace pssp::rewriter
