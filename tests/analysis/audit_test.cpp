// Rewriter audit mode: the upgrade must prove clean pre and post, the
// skipped-function accounting must match the analyzer's independent view
// exactly, prologue/epilogue patches must pair, and nothing may move.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>

#include "analysis/audit.hpp"
#include "binfmt/stdlib.hpp"
#include "compiler/codegen.hpp"
#include "core/scheme.hpp"
#include "core/tls_layout.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::reg;

binfmt::linked_binary server_ssp_binary(binfmt::link_mode mode) {
    const auto mod = workload::make_server_module(workload::nginx_profile());
    const auto sch = std::shared_ptr<const core::scheme>(
        core::make_scheme(core::scheme_kind::ssp));
    return compiler::build_module(mod, sch, mode);
}

bool has_issue_containing(const analysis::audit_result& audit,
                          const std::string& needle) {
    return std::any_of(audit.issues.begin(), audit.issues.end(),
                       [&](const analysis::audit_issue& i) {
                           return i.message.find(needle) != std::string::npos;
                       });
}

TEST(audit, upgrade_is_clean_in_both_link_modes) {
    for (const auto mode : {binfmt::link_mode::dynamic_glibc,
                            binfmt::link_mode::static_glibc}) {
        const auto audit = analysis::audit_rewrite(server_ssp_binary(mode));
        EXPECT_TRUE(audit.clean())
            << binfmt::to_string(mode) << ": "
            << (audit.issues.empty() ? "" : audit.issues.front().message);
        EXPECT_GT(audit.report.prologues_patched, 0);
        EXPECT_GT(audit.report.epilogues_patched, 0);
    }
}

TEST(audit, skipped_functions_equal_the_analyzer_unprotected_set) {
    const auto binary = server_ssp_binary(binfmt::link_mode::dynamic_glibc);
    const auto audit = analysis::audit_rewrite(binary);
    ASSERT_TRUE(audit.clean());

    std::set<std::string> analyzer_unprotected;
    for (const auto& fn : audit.pre.functions)
        if (fn.analyzed && !fn.is_protected) analyzer_unprotected.insert(fn.name);
    const std::set<std::string> skipped{audit.report.skipped_functions.begin(),
                                        audit.report.skipped_functions.end()};
    EXPECT_EQ(skipped, analyzer_unprotected);
    // The server module's unprotected leaf must be in there — the old
    // all-or-nothing accounting reported an empty set whenever anything
    // else got patched.
    EXPECT_FALSE(skipped.empty());
}

// Hand-built victims exercising each audit failure family. `make_check`
// emits the epilogue comparison; `make_install` the prologue spill.
binfmt::linked_binary custom_victim(
    const std::function<void(binfmt::bin_function&)>& make_install,
    const std::function<void(binfmt::bin_function&, binfmt::image&)>& make_check) {
    binfmt::image img;
    auto& f = img.add_function("victim");
    f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32)});
    make_install(f);
    make_check(f, img);
    f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    binfmt::add_standard_library(img, binfmt::link_mode::dynamic_glibc);
    return img.link(binfmt::link_mode::dynamic_glibc);
}

void standard_install(binfmt::bin_function& f) {
    f.emit({mov_rm(reg::rax, fs(core::tls_canary)),
            mov_mr(mem(reg::rbp, -8), reg::rax)});
}

void standard_check(binfmt::bin_function& f, binfmt::image& img) {
    const auto ok = f.new_label();
    f.emit({mov_rm(reg::rdx, mem(reg::rbp, -8)),
            xor_rm(reg::rdx, fs(core::tls_canary)), je(ok),
            call_sym(img.sym(binfmt::sym_stack_chk_fail))});
    f.place(ok);
}

TEST(audit, patched_prologue_with_unpatched_epilogue_is_a_hard_error) {
    // The check uses xor_rr through a register copy of C — protocol-valid,
    // so the pre proof is clean, but the rewriter's epilogue pattern does
    // not match. The prologue DOES match, so the upgrade patches only half.
    const auto binary =
        custom_victim(standard_install, [](auto& f, auto& img) {
            const auto ok = f.new_label();
            f.emit({mov_rm(reg::rdx, mem(reg::rbp, -8)),
                    mov_rm(reg::rcx, fs(core::tls_canary)),
                    xor_rr(reg::rdx, reg::rcx), je(ok),
                    call_sym(img.sym(binfmt::sym_stack_chk_fail))});
            f.place(ok);
        });
    const auto audit = analysis::audit_rewrite(binary);
    EXPECT_FALSE(audit.clean());
    EXPECT_TRUE(has_issue_containing(audit,
                                     "patched prologue with unpatched epilogue"));
}

TEST(audit, patched_epilogue_with_unpatched_prologue_is_a_hard_error) {
    // Install goes through a register copy, so the prologue pattern does
    // not match; the standard epilogue does.
    const auto binary = custom_victim(
        [](auto& f) {
            f.emit({mov_rm(reg::rax, fs(core::tls_canary)),
                    mov_rr(reg::rcx, reg::rax),
                    mov_mr(mem(reg::rbp, -8), reg::rcx)});
        },
        standard_check);
    const auto audit = analysis::audit_rewrite(binary);
    EXPECT_FALSE(audit.clean());
    EXPECT_TRUE(has_issue_containing(audit,
                                     "patched epilogue with unpatched prologue"));
}

TEST(audit, analyzer_protected_function_reported_skipped_is_flagged) {
    // Neither rewriter pattern matches, but the protocol is fully present:
    // the rewriter (correctly) lists the function as skipped, and the audit
    // must flag the disagreement with the analyzer's protected verdict.
    const auto binary = custom_victim(
        [](auto& f) {
            f.emit({mov_rm(reg::rax, fs(core::tls_canary)),
                    mov_rr(reg::rcx, reg::rax),
                    mov_mr(mem(reg::rbp, -8), reg::rcx)});
        },
        [](auto& f, auto& img) {
            const auto ok = f.new_label();
            f.emit({mov_rm(reg::rdx, mem(reg::rbp, -8)),
                    mov_rm(reg::rcx, fs(core::tls_canary)),
                    xor_rr(reg::rdx, reg::rcx), je(ok),
                    call_sym(img.sym(binfmt::sym_stack_chk_fail))});
            f.place(ok);
        });
    const auto audit = analysis::audit_rewrite(binary);
    EXPECT_FALSE(audit.clean());
    EXPECT_TRUE(has_issue_containing(
        audit, "skips a function the analyzer proves protected"));
}

TEST(audit, layout_snapshot_detects_any_move) {
    const auto binary = server_ssp_binary(binfmt::link_mode::dynamic_glibc);
    const auto pre = binfmt::take_layout_snapshot(binary);

    auto same = pre;
    EXPECT_TRUE(binfmt::layout_preserved(pre, same));

    auto moved = pre;
    moved.functions.front().entry += 8;
    EXPECT_FALSE(binfmt::layout_preserved(pre, moved));

    auto resized = pre;
    resized.functions.back().bytes += 1;
    EXPECT_FALSE(binfmt::layout_preserved(pre, resized));

    auto extended = pre;  // appended additions are fine
    extended.functions.push_back({"__pssp_stack_chk_fail", 0x999000, 64});
    EXPECT_TRUE(binfmt::layout_preserved(pre, extended));
}

TEST(audit, static_upgrade_appends_without_moving_anything) {
    const auto binary = server_ssp_binary(binfmt::link_mode::static_glibc);
    const auto pre = binfmt::take_layout_snapshot(binary);
    auto upgraded = binary;
    const auto report = rewriter::binary_rewriter{}.upgrade_to_pssp(upgraded);
    const auto post = binfmt::take_layout_snapshot(upgraded);
    EXPECT_GT(report.bytes_added, 0u);
    EXPECT_GT(post.functions.size(), pre.functions.size());
    EXPECT_TRUE(binfmt::layout_preserved(pre, post));
}

}  // namespace
}  // namespace pssp
