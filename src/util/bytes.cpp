#include "util/bytes.hpp"

#include <cassert>
#include <cstdio>

namespace pssp::util {

std::uint16_t load_le16(std::span<const std::uint8_t> bytes) {
    assert(bytes.size() >= 2);
    return static_cast<std::uint16_t>(bytes[0] | (std::uint16_t{bytes[1]} << 8));
}

std::uint32_t load_le32(std::span<const std::uint8_t> bytes) {
    assert(bytes.size() >= 4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= std::uint32_t{bytes[i]} << (8 * i);
    return v;
}

std::uint64_t load_le64(std::span<const std::uint8_t> bytes) {
    assert(bytes.size() >= 8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    return v;
}

void store_le16(std::span<std::uint8_t> bytes, std::uint16_t value) {
    assert(bytes.size() >= 2);
    bytes[0] = static_cast<std::uint8_t>(value);
    bytes[1] = static_cast<std::uint8_t>(value >> 8);
}

void store_le32(std::span<std::uint8_t> bytes, std::uint32_t value) {
    assert(bytes.size() >= 4);
    for (unsigned i = 0; i < 4; ++i) bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void store_le64(std::span<std::uint8_t> bytes, std::uint64_t value) {
    assert(bytes.size() >= 8);
    for (unsigned i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void append_hex16(std::string& out, std::uint64_t value) {
    static const char digits[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4) {
        out.push_back(digits[(value >> shift) & 0xf]);
    }
}

bool parse_hex16(std::string_view text, std::uint64_t& value) {
    if (text.size() != 16) return false;
    std::uint64_t v = 0;
    for (const char c : text) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
            v |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            return false;
        }
    }
    value = v;
    return true;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
    std::string out;
    out.reserve(bytes.size() * 3);
    char buf[4];
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%02x", bytes[i]);
        if (i != 0) out.push_back(' ');
        out += buf;
    }
    return out;
}

std::string hex64(std::uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(value));
    return buf;
}

std::string hex_dump(std::span<const std::uint8_t> bytes, std::uint64_t base) {
    std::string out;
    char buf[32];
    for (std::size_t offset = 0; offset < bytes.size(); offset += 16) {
        std::snprintf(buf, sizeof buf, "%012llx  ",
                      static_cast<unsigned long long>(base + offset));
        out += buf;
        for (std::size_t i = offset; i < offset + 16 && i < bytes.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%02x ", bytes[i]);
            out += buf;
        }
        out.push_back('\n');
    }
    return out;
}

}  // namespace pssp::util
