// Process lifecycle: creation, fork, thread spawn, and a fork-aware
// executor.
//
// A "process" is a vm::machine (registers + private memory image). The
// manager reproduces the kernel- and loader-level behavior the paper's
// schemes interact with:
//   * creation   — loads the binary's globals, assigns a pid, and runs the
//                  runtime's setup hook (the setup_p-ssp constructor);
//   * fork       — clones the machine wholesale (memory, registers, TLS —
//                  including the canaries, exactly the inheritance the
//                  byte-by-byte attack exploits), reseeds the child's
//                  entropy source (real rdrand streams diverge across
//                  cores), then runs the scheme's fork hook in the child;
//   * threads    — a clone with a fresh stack and a copied TLS block, then
//                  the pthread_create hook. Shared data is not modeled: no
//                  canary experiment in the paper depends on cross-thread
//                  stores, only on TLS inheritance (DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "binfmt/image.hpp"
#include "core/runtime.hpp"
#include "vm/machine.hpp"

namespace pssp::proc {

class process_manager {
  public:
    process_manager(std::shared_ptr<const core::scheme> sch, std::uint64_t seed);

    // Loads `binary` into a fresh process: globals initialized from the
    // image, pid assigned, runtime setup executed.
    [[nodiscard]] vm::machine create_process(const binfmt::linked_binary& binary,
                                             const vm::memory::layout& layout = {});

    // create_process, split for the boot-amortizing trial pool. make_image
    // builds the cold half (memory allocation + globals init) around an
    // already-shared program — no pid, no entropy, no runtime setup; it is
    // the state a reusable server snapshots once and restores per trial.
    // boot_image performs the hot, seed-dependent half and brings the image
    // to exactly the state create_process would have produced.
    [[nodiscard]] vm::machine make_image(std::shared_ptr<const vm::program> prog,
                                         std::span<const std::uint8_t> data_init,
                                         std::uint64_t data_base,
                                         const vm::memory::layout& layout = {});
    void boot_image(vm::machine& m);

    // Forks `parent`: returns the child, ready to resume. The caller is
    // responsible for completing the fork syscall on both sides
    // (parent rax = child pid, child rax = 0) when the fork came from VM
    // code; see executor / fork_server.
    [[nodiscard]] vm::machine fork_child(const vm::machine& parent);

    // The post-clone tail of fork_child (pid, output, entropy stream, fork
    // hook) applied to a machine that is already a byte-exact replica of
    // the parent. The fork server recycles one worker machine per request
    // via machine::sync_from + this, skipping the 0.5 MB deep copy.
    void fork_child_finish(vm::machine& child);

    // Spawns a thread of `parent`: same image, fresh stack (the caller
    // points it at the thread entry via call_function), pthread hook run.
    [[nodiscard]] vm::machine spawn_thread(const vm::machine& parent);

    // Rewinds pids, the entropy sequence, and the runtime PRNG to the
    // state a fresh process_manager{sch, seed} would have — the reuse
    // path's equivalent of constructing a new manager per trial.
    void reset(std::uint64_t seed) noexcept;

    [[nodiscard]] core::runtime& rt() noexcept { return runtime_; }
    [[nodiscard]] std::uint32_t last_pid() const noexcept { return next_pid_ - 1; }

  private:
    core::runtime runtime_;
    std::uint32_t next_pid_ = 1;
    std::uint64_t entropy_seq_;
};

// Runs a process (and, depth-first, every child it forks) to completion.
struct exec_outcome {
    vm::run_result result;    // terminal state of the *root* process
    std::string output;       // concatenated sys_write output, root first
    std::uint64_t processes = 1;  // total processes in the tree
};

class executor {
  public:
    executor(process_manager& manager, std::uint64_t fuel_per_process)
        : manager_{manager}, fuel_{fuel_per_process} {}

    // Runs `m` until it exits or traps. Children forked along the way run
    // to completion (recursively) at the moment of the fork, then the
    // parent resumes with the child's pid in rax.
    exec_outcome run(vm::machine& m, int depth = 0);

  private:
    process_manager& manager_;
    std::uint64_t fuel_;
    static constexpr int max_fork_depth = 16;
};

}  // namespace pssp::proc
