// Hardening a *legacy binary* without source: the instrumentation path of
// Section V-C/D.
//
//   $ ./binary_hardening
//
// Takes an SSP-compiled program (we build one to stand in for the legacy
// artifact), runs the binary rewriter over it, and shows:
//   * the prologue patch (one TLS offset, Code 5);
//   * the same-length epilogue replacement (Code 6);
//   * for a statically linked build, the appended code section with the
//     P-SSP-aware __stack_chk_fail and fork (the Dyninst trick);
//   * that the hardened binary still runs, still catches overflows, and
//     its addresses never moved.

#include <cstdio>

#include "compiler/codegen.hpp"
#include "core/runtime.hpp"
#include "proc/process.hpp"
#include "rewriter/rewriter.hpp"
#include "workload/database.hpp"

using namespace pssp;

namespace {

void show_function(const binfmt::linked_binary& binary, const char* name,
                   std::size_t first, std::size_t count) {
    const auto* fn = binary.find(name);
    if (fn == nullptr) return;
    for (std::size_t i = first; i < first + count && i < fn->insns.size(); ++i)
        std::printf("    %012llx  %s\n",
                    static_cast<unsigned long long>(fn->addrs[i]),
                    vm::to_string(fn->insns[i]).c_str());
}

void harden(binfmt::link_mode mode) {
    std::printf("==== %s-linked legacy binary ====\n",
                binfmt::to_string(mode).c_str());

    // The "legacy" artifact: built with the default -fstack-protector.
    auto binary = compiler::build_module(
        workload::make_db_module(workload::mysql_profile()),
        core::make_scheme(core::scheme_kind::ssp), mode);
    const auto text_before = binary.text_bytes();
    const auto entry_before = binary.symbols.at("handle_query");

    std::printf("  SSP prologue before rewriting:\n");
    show_function(binary, "handle_query", 0, 5);

    rewriter::binary_rewriter rw;
    const auto report = rw.upgrade_to_pssp(binary);
    if (mode == binfmt::link_mode::dynamic_glibc)
        core::bind_instrumented_stack_chk_fail(binary);  // LD_PRELOAD analog

    std::printf("  P-SSP prologue after rewriting (only the %%fs offset moved):\n");
    show_function(binary, "handle_query", 0, 5);

    std::printf("  patched: %d prologues, %d epilogues; appended %llu bytes%s%s\n",
                report.prologues_patched, report.epilogues_patched,
                static_cast<unsigned long long>(report.bytes_added),
                report.stack_chk_fail_hooked ? "; __stack_chk_fail hooked" : "",
                report.fork_hooked ? "; fork hooked" : "");
    std::printf("  .text: %llu -> %llu bytes; handle_query entry %s\n",
                static_cast<unsigned long long>(text_before),
                static_cast<unsigned long long>(binary.text_bytes()),
                binary.symbols.at("handle_query") == entry_before
                    ? "unchanged (layout preserved)"
                    : "MOVED — bug!");

    // Prove the hardened binary still works...
    proc::process_manager manager{core::make_scheme(core::scheme_kind::p_ssp32), 5};
    vm::machine m = manager.create_process(binary);
    m.call_function(binary.symbols.at("db_main"));
    m.set_fuel(50'000'000);
    const auto ok = m.run();
    std::printf("  hardened binary runs: %s (exit %lld)\n",
                vm::to_string(ok.status).c_str(),
                static_cast<long long>(ok.exit_code));

    // ...and still detects a smashed canary: corrupt the packed pair on a
    // live frame by writing through the query buffer's address range.
    vm::machine smashed = manager.create_process(binary);
    const std::uint64_t qbuf = binary.data_symbols.at("g_query");
    std::vector<std::uint8_t> long_query(200, 'A');
    long_query.push_back(0);
    smashed.mem().write_bytes(qbuf, long_query);  // strcpy source, too long
    smashed.call_function(binary.symbols.at("handle_query"));
    smashed.set_fuel(1'000'000);
    const auto trap = smashed.run();
    std::printf("  overflowing query: %s (%s)\n\n",
                vm::to_string(trap.status).c_str(), vm::to_string(trap.trap).c_str());
}

}  // namespace

int main() {
    std::printf("Upgrading legacy SSP binaries to P-SSP, no source required\n\n");
    harden(binfmt::link_mode::dynamic_glibc);
    harden(binfmt::link_mode::static_glibc);
    std::printf("Note the dynamic build added ZERO bytes (every patch is\n"
                "same-length; the new __stack_chk_fail arrives via LD_PRELOAD),\n"
                "while the static build grew by the appended section — Table II's\n"
                "0%% vs 2.78%% split.\n");
    return 0;
}
