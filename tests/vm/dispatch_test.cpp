// Direct-threaded dispatch: decoded-stream lowering, the superinstruction
// fusion pass, batched-accounting equivalence, and fault attribution when
// the second half of a fused pair faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "binfmt/image.hpp"
#include "vm/dispatch.hpp"
#include "vm/machine.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::machine;
using vm::opcode;
using vm::reg;

std::uint16_t base_handler(opcode op) { return static_cast<std::uint16_t>(op); }

// Builds a one-function ("f") program and exposes the decoded stream.
struct mini_program {
    binfmt::image img;
    binfmt::bin_function& f;
    std::optional<binfmt::linked_binary> binary;
    std::shared_ptr<const vm::program> prog;

    mini_program() : f{img.add_function("f")} {}

    void link() {
        binary.emplace(img.link(binfmt::link_mode::dynamic_glibc));
        prog = binary->make_program();
    }

    machine boot(std::uint64_t fuel = 10'000) {
        if (!prog) link();
        machine m{prog, vm::memory::layout{}, /*entropy_seed=*/1};
        m.call_function(binary->symbols.at("f"));
        m.set_fuel(fuel);
        return m;
    }
};

// Full observable-state comparison at an event boundary. This is the
// dispatch-mode contract: everything outcome-relevant is identical.
void expect_same_outcome(machine& threaded, machine& stepper,
                         const vm::run_result& a, const vm::run_result& b) {
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.trap, b.trap);
    EXPECT_EQ(a.exit_code, b.exit_code);
    EXPECT_EQ(a.syscall_number, b.syscall_number);
    EXPECT_EQ(a.fault_addr, b.fault_addr);
    EXPECT_EQ(threaded.cycles(), stepper.cycles());
    EXPECT_EQ(threaded.steps(), stepper.steps());
    EXPECT_EQ(threaded.current_address(), stepper.current_address());
    EXPECT_EQ(threaded.output(), stepper.output());
    for (std::size_t r = 0; r < vm::gpr_count; ++r)
        EXPECT_EQ(threaded.get(static_cast<reg>(r)), stepper.get(static_cast<reg>(r)))
            << "gpr " << r;
    EXPECT_EQ(threaded.flags().zf, stepper.flags().zf);
    EXPECT_EQ(threaded.flags().cf, stepper.flags().cf);
    EXPECT_EQ(threaded.flags().lt_signed, stepper.flags().lt_signed);
    EXPECT_EQ(threaded.flags().lt_unsigned, stepper.flags().lt_unsigned);
    EXPECT_TRUE(std::equal(threaded.mem().stack_bytes().begin(),
                           threaded.mem().stack_bytes().end(),
                           stepper.mem().stack_bytes().begin()));
}

// Runs the same program under both engines and asserts identical outcomes.
void run_both_and_compare(mini_program& p, std::uint64_t fuel = 10'000) {
    machine threaded = p.boot(fuel);
    threaded.set_dispatch(vm::dispatch_mode::threaded);
    machine stepper = p.boot(fuel);
    stepper.set_dispatch(vm::dispatch_mode::switch_loop);
    const auto a = threaded.run();
    const auto b = stepper.run();
    expect_same_outcome(threaded, stepper, a, b);
}

TEST(dispatch, mode_strings_round_trip) {
    EXPECT_EQ(vm::to_string(vm::dispatch_mode::threaded), "threaded");
    EXPECT_EQ(vm::to_string(vm::dispatch_mode::switch_loop), "switch");
    EXPECT_EQ(vm::dispatch_from_string("threaded"), vm::dispatch_mode::threaded);
    EXPECT_EQ(vm::dispatch_from_string("switch"), vm::dispatch_mode::switch_loop);
    EXPECT_EQ(vm::dispatch_from_string("bogus"), std::nullopt);
}

TEST(dispatch, default_mode_is_settable_and_sticky_per_machine) {
    const auto before = vm::default_dispatch();
    vm::set_default_dispatch(vm::dispatch_mode::switch_loop);
    mini_program p;
    p.f.emit({mov_ri(reg::rax, 1), ret()});
    machine m = p.boot();
    EXPECT_EQ(m.dispatch(), vm::dispatch_mode::switch_loop);
    vm::set_default_dispatch(before);
    // Already-built machines keep their mode; the default only seeds
    // construction.
    EXPECT_EQ(m.dispatch(), vm::dispatch_mode::switch_loop);
}

TEST(dispatch, lowering_is_one_to_one_plus_sentinel) {
    mini_program p;
    p.f.emit({mov_ri(reg::rax, 42), add_ri(reg::rax, 1), ret()});
    p.link();
    ASSERT_EQ(p.prog->code.size(), p.prog->insns.size() + 1);
    for (std::size_t i = 0; i < p.prog->insns.size(); ++i) {
        const auto& d = p.prog->code[i];
        EXPECT_EQ(d.op, p.prog->insns[i].op) << "slot " << i;
        EXPECT_EQ(d.imm, p.prog->insns[i].imm) << "slot " << i;
    }
    EXPECT_EQ(p.prog->code.back().handler, vm::hop::sentinel);
}

TEST(dispatch, call_slots_carry_resolved_flow) {
    binfmt::image img;
    auto& callee = img.add_function("callee");
    callee.emit({mov_ri(reg::rax, 9), ret()});
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym("callee")), ret()});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();
    // Find f's call slot and check its decoded record against flow.
    for (std::size_t i = 0; i < prog->insns.size(); ++i) {
        if (prog->insns[i].op != opcode::call) continue;
        EXPECT_EQ(prog->code[i].target, prog->flow[i].target);
        EXPECT_EQ(prog->code[i].return_addr, prog->flow[i].return_addr);
        EXPECT_EQ(prog->code[i].native, prog->flow[i].native);
    }
}

// ---- Fusion-pass lowering pins --------------------------------------------
// One test per superinstruction: the pair's first slot gets the fused
// handler, the second slot keeps its standalone lowering (it stays a valid
// jump-into target), and execution matches the stepper including the
// summed cost-table charges.

struct fusion_case {
    const char* name;
    vm::instruction first;
    vm::instruction second;
    std::uint16_t fused;
};

std::vector<fusion_case> fusion_cases() {
    return {
        {"cmp_rr_jcc", cmp_rr(reg::rax, reg::rcx), je(0), vm::hop::fuse_cmp_rr_jcc},
        {"cmp_ri_jcc", cmp_ri(reg::rax, 3), jne(0), vm::hop::fuse_cmp_ri_jcc},
        {"test_rr_jcc", test_rr(reg::rax, reg::rax), je(0), vm::hop::fuse_test_rr_jcc},
        {"xor_rm_jcc", xor_rm(reg::rax, mem(reg::rbp, -8)), jne(0),
         vm::hop::fuse_xor_rm_jcc},
        {"push_push", push_r(reg::rbp), push_r(reg::rbx), vm::hop::fuse_push_push},
        {"push_mov_rr", push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp),
         vm::hop::fuse_push_mov_rr},
        {"mov_rm_add_rr", mov_rm(reg::rcx, mem(reg::rbp, -8)),
         add_rr(reg::rax, reg::rcx), vm::hop::fuse_mov_rm_add_rr},
        {"sub_ri_cmp_ri", sub_ri(reg::rdi, 1), cmp_ri(reg::rdi, 0),
         vm::hop::fuse_sub_ri_cmp_ri},
        {"mov_mr_xor_ri", mov_mr(mem(reg::rbp, -8), reg::rax),
         xor_ri(reg::rax, 0x5a), vm::hop::fuse_mov_mr_xor_ri},
        {"add_ri_ret", add_ri(reg::rax, 3), ret(), vm::hop::fuse_add_ri_ret},
    };
}

TEST(dispatch, fuse_pair_recognizes_each_superinstruction) {
    for (const auto& c : fusion_cases())
        EXPECT_EQ(vm::fuse_pair(c.first, c.second), c.fused) << c.name;
    // Non-patterns stay unfused.
    EXPECT_EQ(vm::fuse_pair(nop(), nop()), 0);
    EXPECT_EQ(vm::fuse_pair(cmp_rr(reg::rax, reg::rcx), jmp(0)), 0)
        << "jmp consumes no flags; fusing it buys no dispatch";
    EXPECT_EQ(vm::fuse_pair(cmp_rr(reg::rax, reg::rcx), jnc(0)), 0)
        << "jnc reads carry, which compares never set in this ISA";
}

TEST(dispatch, fused_stream_layout_keeps_second_slot_standalone) {
    // A frame prologue: push rbp ; mov rbp, rsp ; sub rsp, 32. Slot 0
    // fuses; slot 1 keeps the plain mov_rr record.
    mini_program p;
    p.f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32),
              leave(), ret()});
    p.link();
    EXPECT_EQ(p.prog->code[0].handler, vm::hop::fuse_push_mov_rr);
    EXPECT_EQ(p.prog->code[1].handler, base_handler(opcode::mov_rr));
    EXPECT_EQ(p.prog->code[2].handler, base_handler(opcode::sub_ri));
}

TEST(dispatch, overlapping_pairs_upgrade_independently) {
    // sub_ri ; cmp_ri ; jne — slot 0 fuses (sub+cmp) and slot 1 fuses
    // (cmp+jne) too: a jump landing on slot 1 still executes the
    // compare-and-branch pair in one dispatch.
    mini_program p;
    const auto loop = p.f.new_label();
    p.f.emit(mov_ri(reg::rdi, 3));
    p.f.place(loop);
    p.f.emit({sub_ri(reg::rdi, 1), cmp_ri(reg::rdi, 0), jne(loop),
              mov_ri(reg::rax, 0), ret()});
    p.link();
    EXPECT_EQ(p.prog->code[1].handler, vm::hop::fuse_sub_ri_cmp_ri);
    EXPECT_EQ(p.prog->code[2].handler, vm::hop::fuse_cmp_ri_jcc);
    run_both_and_compare(p);
}

TEST(dispatch, fused_execution_charges_summed_costs) {
    // Fused cmp+jcc must charge cost(cmp_ri) + cost(jne) and retire two
    // steps — byte-for-byte the stepper's accounting.
    mini_program p;
    const auto out = p.f.new_label();
    p.f.emit({mov_ri(reg::rax, 1), cmp_ri(reg::rax, 1), je(out),
              mov_ri(reg::rax, 7)});
    p.f.place(out);
    p.f.emit(ret());
    p.link();
    EXPECT_EQ(p.prog->code[1].handler, vm::hop::fuse_cmp_ri_jcc);

    machine threaded = p.boot();
    threaded.set_dispatch(vm::dispatch_mode::threaded);
    machine stepper = p.boot();
    stepper.set_dispatch(vm::dispatch_mode::switch_loop);
    const auto a = threaded.run();
    const auto b = stepper.run();
    expect_same_outcome(threaded, stepper, a, b);
    // mov, cmp, je, ret — two of them fused into one dispatch.
    EXPECT_EQ(threaded.steps(), 4u);
    const auto& costs = threaded.costs();
    EXPECT_EQ(threaded.cycles(), costs.alu * 2 + costs.branch + costs.call);
}

TEST(dispatch, second_half_fault_is_attributed_to_second_instruction) {
    // push ; push with rsp parked 8 bytes above the stack floor: the first
    // push lands on the last mapped slot, the second faults one page
    // below. The trap must carry the second push's address and retire/
    // charge both halves exactly as the stepper does.
    mini_program p;
    p.f.emit({push_r(reg::rbp), push_r(reg::rbx), ret()});
    p.link();
    EXPECT_EQ(p.prog->code[0].handler, vm::hop::fuse_push_push);

    const auto run_one = [&](vm::dispatch_mode mode, machine& out_m) {
        machine m = p.boot();
        m.set_dispatch(mode);
        const auto& lay = m.mem().regions();
        m.set(reg::rsp, lay.stack_top - lay.stack_size + 8);
        const auto r = m.run();
        out_m = m;
        return r;
    };
    machine threaded = p.boot();
    machine stepper = p.boot();
    const auto a = run_one(vm::dispatch_mode::threaded, threaded);
    const auto b = run_one(vm::dispatch_mode::switch_loop, stepper);
    ASSERT_EQ(a.status, vm::exec_status::trapped);
    ASSERT_EQ(a.trap, vm::trap_kind::segfault);
    const auto& lay = threaded.mem().regions();
    EXPECT_EQ(a.fault_addr, lay.stack_top - lay.stack_size - 8);
    // rip parks on the second push: current_address names it.
    EXPECT_EQ(threaded.current_address(), p.prog->addrs[1]);
    expect_same_outcome(threaded, stepper, a, b);
}

TEST(dispatch, fuel_boundary_between_fused_halves_pauses_on_second_half) {
    // Fuel expires after the first half of a fused pair: the threaded
    // engine must stop with rip on the second half — the stepper's exact
    // pause point — having retired and charged only the first half.
    mini_program p;
    p.f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), mov_ri(reg::rax, 5),
              pop_r(reg::rbp), ret()});
    p.link();
    EXPECT_EQ(p.prog->code[0].handler, vm::hop::fuse_push_mov_rr);

    machine threaded = p.boot(/*fuel=*/1);
    threaded.set_dispatch(vm::dispatch_mode::threaded);
    machine stepper = p.boot(/*fuel=*/1);
    stepper.set_dispatch(vm::dispatch_mode::switch_loop);
    const auto a = threaded.run();
    const auto b = stepper.run();
    ASSERT_EQ(a.status, vm::exec_status::out_of_fuel);
    EXPECT_EQ(threaded.steps(), 1u);
    EXPECT_EQ(threaded.current_address(), p.prog->addrs[1]);
    expect_same_outcome(threaded, stepper, a, b);
}

TEST(dispatch, running_off_the_stream_end_hits_the_sentinel) {
    // No ret: execution falls off the end. The legacy loop's bounds check
    // and the threaded sentinel op must report the same invalid_jump.
    mini_program p;
    p.f.emit(nop());
    run_both_and_compare(p);
}

TEST(dispatch, each_fused_pair_matches_the_stepper_end_to_end) {
    for (const auto& c : fusion_cases()) {
        SCOPED_TRACE(c.name);
        mini_program p;
        // Frame so the memory-touching pairs have a mapped slot, plus
        // seed values; the pair under test runs in the middle.
        p.f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp),
                  sub_ri(reg::rsp, 32), mov_ri(reg::rax, 2),
                  mov_ri(reg::rcx, 2), mov_ri(reg::rdi, 1),
                  mov_mr(mem(reg::rbp, -8), reg::rcx)});
        vm::instruction second = c.second;
        std::uint32_t label = vm::no_id;
        if (second.label != vm::no_id) {
            label = p.f.new_label();
            second.label = label;
        }
        p.f.emit({c.first, second});
        if (c.fused != vm::hop::fuse_add_ri_ret) {
            // add_ri+ret already returned; everyone else falls through.
            if (label != vm::no_id) p.f.place(label);
            p.f.emit({mov_ri(reg::rax, 0), leave(), ret()});
        }
        p.link();
        // The pair sits at slots 7/8 after the 7-instruction preamble.
        ASSERT_EQ(p.prog->code[7].handler, c.fused);
        run_both_and_compare(p);
    }
}

TEST(dispatch, copies_share_the_flattened_cost_table) {
    // The satellite bugfix: snapshot restore and fork-path scalar copies
    // move a shared pointer, not the per-opcode table. Observable contract:
    // cost-model edits after a copy still take effect on the next run
    // (the cache re-keys), and accounting stays identical across modes.
    mini_program p;
    p.f.emit({rdtsc(), mov_ri(reg::rax, 0), ret()});
    p.link();
    machine m = p.boot();
    ASSERT_EQ(m.run().status, vm::exec_status::exited);
    const auto plain_cycles = m.cycles();

    machine clone = p.boot();
    clone.restore_from(m);  // scalar copy path (memory layouts match)
    clone.costs().dbi_tax = 100;
    clone.call_function(p.binary->symbols.at("f"));
    clone.set_fuel(clone.steps() + 100);
    ASSERT_EQ(clone.run().status, vm::exec_status::exited);
    EXPECT_EQ(clone.cycles() - plain_cycles, plain_cycles + 3 * 100)
        << "dbi_tax must re-key the shared cost cache, not mutate it";

    // The original machine's accounting is untouched by the clone's edit.
    m.call_function(p.binary->symbols.at("f"));
    m.set_fuel(m.steps() + 100);
    ASSERT_EQ(m.run().status, vm::exec_status::exited);
    EXPECT_EQ(m.cycles(), 2 * plain_cycles);
}

}  // namespace
}  // namespace pssp
