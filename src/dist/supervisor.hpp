// Worker-process supervision: spawn, deadline, classify, requeue.
//
// supervise_jobs() turns the orchestrator's all-or-nothing worker pool
// into self-healing execution. Each job is one block manifest handed to
// one worker process; the supervisor runs every job to a terminal state:
//
//   * spawn        fork/exec with the round-job JSON fed over a
//                  non-blocking stdin pipe and the partial collected from
//                  a non-blocking stdout pipe, all driven by one poll()
//                  loop — a worker that hangs before reading its input
//                  can never wedge the orchestrator.
//   * deadline     policy.timeout_seconds > 0 arms a per-attempt
//                  deadline; an overdue worker is SIGKILLed and the
//                  attempt classified as a timeout.
//   * classify     every finished attempt becomes exactly one
//                  failure_kind: crash (non-zero exit / signal), timeout,
//                  input (stdin could not be delivered), bad_partial
//                  (unparsable output, wrong shard identity, digest or
//                  round mismatch), wrong_blocks (a parsable partial
//                  covering blocks the manifest never assigned).
//   * requeue      a failed job goes back on the queue with exponential
//                  backoff (base * 2^(attempt-1), capped) until
//                  policy.max_attempts is exhausted. Requeueing is safe
//                  because wire::collect_block_partials enforces
//                  exactly-once block coverage downstream and block
//                  partials are pure functions of (master_seed, block):
//                  at-least-once delivery + dedup-by-block can never move
//                  a report byte. Exec failure (exit 127) is never
//                  retried — a missing binary does not heal.
//
// Failed attempts are reported through hooks (the orchestrator dumps a
// postmortem per attempt); only after every job is terminal does the
// caller decide to merge or fail loudly. Infrastructure failures —
// pipe()/fork() exhaustion — abort the whole pool: every already-launched
// worker is killed, reaped, and its status reported in the thrown error.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "dist/wire.hpp"

namespace pssp::dist {

// Retry/timeout/backoff knobs, one struct so the orchestrator options and
// the CLI flags stay aligned.
struct fault_policy {
    // Attempts per job (1 = the pre-supervision fail-fast behavior).
    unsigned max_attempts = 3;
    // Per-attempt deadline in seconds; 0 disables the deadline (a worker
    // may then legitimately run forever, as before supervision existed).
    double timeout_seconds = 0.0;
    // Exponential backoff before attempt N+1: base * 2^(N-1), capped.
    double backoff_base_seconds = 0.05;
    double backoff_cap_seconds = 2.0;

    // The backoff before the attempt after `failed_attempts` failures.
    // Never a blocking sleep: both the local supervisor and the TCP
    // coordinator fold the release time into their poll() timeout so
    // every other job's I/O keeps draining through a backoff window.
    [[nodiscard]] double backoff_for(unsigned failed_attempts) const noexcept;
};

enum class failure_kind : std::uint8_t {
    none,
    input,         // stdin payload could not be delivered
    crash,         // non-zero exit or death by signal
    timeout,       // exceeded the deadline; SIGKILLed by the supervisor
    bad_partial,   // output unparsable or misidentified (shard/digest/round)
    wrong_blocks,  // parsable partial covering blocks outside the manifest
};

[[nodiscard]] const char* to_string(failure_kind kind) noexcept;

// One worker process to supervise: argv tail, stdin payload, and the
// block manifest it must cover (validated against its emitted partial).
struct supervised_job {
    std::vector<std::string> args;
    std::string input;
    round_manifest manifest;
    std::uint32_t shard = 0;        // partial header identity ...
    std::uint32_t shard_count = 0;  // ... the worker must echo back
    std::string flight_path;  // empty = no flight recorder for this worker
};

// One failed attempt, as handed to hooks and kept for the final error.
struct attempt_record {
    unsigned attempt = 1;  // 1-based
    failure_kind kind = failure_kind::none;
    std::string why;       // human description (decoded wait status, ...)
    int wait_status = -1;  // raw wait4 status (-1 if never reaped)
};

// Terminal state of one job, job-aligned with the input vector.
struct job_result {
    bool ok = false;
    partial_report partial;  // valid only when ok
    std::vector<attempt_record> failures;  // every failed attempt, in order
    unsigned attempts = 0;   // total attempts spent
    // Last attempt's times (telemetry): wall from spawn to reap on the
    // parent's clock, user/sys from the child's rusage.
    double wall_seconds = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
    // Network transport: the registered name of the worker that delivered
    // the accepted result (empty over local pipes).
    std::string worker_name;
};

// Recovery totals for one supervise_jobs call (telemetry side channel;
// also mirrored into the obs counters dist.retries / dist.requeued_blocks
// / dist.timeouts / dist.crashes / dist.bad_partials).
struct supervise_stats {
    std::uint64_t retries = 0;          // attempts beyond the first
    std::uint64_t requeued_blocks = 0;  // blocks re-dispatched by retries
    std::uint64_t timeouts = 0;         // deadline SIGKILLs
    // Network transport only (always 0 over local pipes):
    std::uint64_t evictions = 0;   // workers dropped for heartbeat silence,
                                   // disconnect, or a poisoned frame
    std::uint64_t reconnects = 0;  // re-registrations accepted afterwards
};

// ---- Attempt classification, shared by both transports ----
//
// The local pipe supervisor and the TCP coordinator run the *same*
// classification on a finished attempt: wait status first, then the
// emitted output validated against the job's manifest. Factored out so
// the network path is the same code, not a reimplementation.

// Human description of a raw wait4 status; empty for a clean exit 0.
[[nodiscard]] std::string describe_wait_status(int status);

// Exit 127 is the exec-failed convention: a missing or unrunnable worker
// binary never heals on retry, so neither transport requeues it.
[[nodiscard]] bool is_exec_failure(int wait_status) noexcept;

// What one finished attempt amounts to. kind == none means success and
// `partial` is valid.
struct attempt_classification {
    failure_kind kind = failure_kind::none;
    std::string why;
    partial_report partial;
};

// Classifies one finished attempt: non-zero wait status -> crash;
// otherwise the output must parse as a partial matching the job's shard
// identity, spec digest, round, and exact block manifest. `input_error`
// (the transport's stdin-delivery failure, if any) refines the verdict.
[[nodiscard]] attempt_classification classify_attempt(
    const supervised_job& job, int wait_status, std::string_view output,
    std::string_view input_error = {});

struct supervise_hooks {
    // Called synchronously after each failed attempt, before any retry of
    // the same job is spawned — the orchestrator reads the worker's
    // flight-recorder file here and dumps a postmortem.
    std::function<void(const supervised_job&, const attempt_record&)>
        on_attempt_failure;
    // Called once per job on success (the checkpoint log appends here).
    std::function<void(const supervised_job&, const partial_report&)>
        on_job_success;
};

// Runs every job to a terminal state and returns job-aligned results.
// Worker failures are reported in the results — the caller turns retry
// exhaustion into a loud error with full context. Throws std::runtime_error
// only for infrastructure failures (pipe/fork exhaustion, poll failure),
// after killing and reaping every launched child and naming each one's
// fate in the message.
[[nodiscard]] std::vector<job_result> supervise_jobs(
    const std::string& worker, const std::vector<supervised_job>& jobs,
    const fault_policy& policy, const supervise_hooks& hooks,
    supervise_stats& stats);

}  // namespace pssp::dist
