#include "proc/fork_server.hpp"

#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"

namespace pssp::proc {

std::string to_string(worker_outcome outcome) {
    switch (outcome) {
        case worker_outcome::ok: return "ok";
        case worker_outcome::crashed_canary: return "crashed (canary)";
        case worker_outcome::crashed_segv: return "crashed (segfault)";
        case worker_outcome::crashed_cf: return "crashed (bad control flow)";
        case worker_outcome::hijacked: return "HIJACKED";
        case worker_outcome::out_of_fuel: return "crashed (runaway)";
    }
    return "?";
}

fork_server::fork_server(const binfmt::linked_binary& binary,
                         std::shared_ptr<const core::scheme> sch, std::uint64_t seed,
                         server_config config,
                         std::shared_ptr<const vm::program> program)
    : manager_{std::move(sch), seed},
      config_{std::move(config)},
      master_{manager_.make_image(
          program != nullptr ? std::move(program) : binary.make_program(),
          binary.data_init, binary.data_base)} {
    const auto it = binary.data_symbols.find(config_.request_symbol);
    if (it == binary.data_symbols.end())
        throw std::invalid_argument{"fork_server: no request buffer symbol '" +
                                    config_.request_symbol + "' in binary"};
    request_addr_ = it->second;
    if (const auto len_it = binary.data_symbols.find(config_.length_symbol);
        len_it != binary.data_symbols.end())
        length_addr_ = len_it->second;
    entry_addr_ = binary.symbols.at(config_.entry);
    if (config_.reusable) {
        // Pre-boot snapshot: everything seed-independent (zeroed regions +
        // globals image). reboot() rewinds to here by dirty pages alone.
        preboot_ = std::make_unique<vm::machine>(master_);
        master_.mem().mark_clean(vm::dirty_channel::restore);
    }
    boot(seed);
}

void fork_server::boot(std::uint64_t seed) {
    manager_.reset(seed);
    manager_.boot_image(master_);
    master_.call_function(entry_addr_);
    requests_ = 0;
    crashes_ = 0;
    run_master_to_fork();
    if (!master_ready_)
        throw std::runtime_error{"fork_server: master never reached a fork"};
}

void fork_server::reboot(std::uint64_t seed) {
    if (preboot_ == nullptr)
        throw std::logic_error{
            "fork_server::reboot: server not constructed with config.reusable"};
    // Telemetry only (side channel): how much the restore channel actually
    // moves per reboot is the number the snapshot fast path lives on.
    static const auto c_reboots = obs::counter("proc.server.reboots");
    static const auto h_dirty = obs::histogram("proc.reboot.dirty_pages");
    obs::add(c_reboots, 1);
    obs::observe(h_dirty,
                 master_.mem().dirty_pages(vm::dirty_channel::restore));
    master_.restore_from(*preboot_);
    boot(seed);
}

void fork_server::run_master_to_fork() {
    master_ready_ = false;
    master_.set_fuel(master_.steps() + config_.master_fuel);
    const vm::run_result r = master_.run();
    if (r.status == vm::exec_status::syscalled &&
        r.syscall_number == static_cast<std::uint32_t>(vm::syscall_no::sys_fork))
        master_ready_ = true;
}

serve_result fork_server::serve(std::string_view request) {
    return serve(std::span{reinterpret_cast<const std::uint8_t*>(request.data()),
                           request.size()});
}

vm::machine& fork_server::next_worker() {
    if (worker_ == nullptr) {
        // First request: one full clone, after which the worker and master
        // diverge only by the pages a request actually touches. From the
        // clean point both sides' fork channels track that divergence.
        worker_ = std::make_unique<vm::machine>(master_);
        worker_->mem().mark_clean(vm::dirty_channel::fork);
        master_.mem().mark_clean(vm::dirty_channel::fork);
    } else {
        worker_->sync_from(master_);
    }
    manager_.fork_child_finish(*worker_);
    return *worker_;
}

serve_result fork_server::serve(std::span<const std::uint8_t> request) {
    if (!master_ready_) throw std::runtime_error{"fork_server: master is down"};
    ++requests_;

    // fork(): the worker inherits everything, then the runtime's fork hook
    // runs (shadow-canary refresh under P-SSP, TLS renewal under RAF, CAB
    // walk under DynaGuard, ...). The clone is a dirty-page sync against
    // the recycled worker machine, not a 0.5 MB copy; machine scalars ride
    // along cheaply too — the decoded dispatch stream lives in the shared
    // program and the flattened cost table behind a shared pointer, so
    // neither is ever copied per request.
    vm::machine& worker = next_worker();
    worker.complete_syscall(0);  // child side of fork

    // Deliver the request: network bytes land in the worker's buffer with
    // a terminating NUL (the handler parses them as a C string).
    std::vector<std::uint8_t> payload{request.begin(), request.end()};
    if (payload.size() >= config_.request_capacity)
        payload.resize(config_.request_capacity - 1);
    const std::uint64_t wire_length = payload.size();
    payload.push_back(0);
    worker.mem().write_bytes(request_addr_, payload);
    if (length_addr_ != 0) worker.mem().store64(length_addr_, wire_length);

    const std::uint64_t cycles_before = worker.cycles();
    const std::uint64_t steps_before = worker.steps();
    worker.set_fuel(worker.steps() + config_.worker_fuel);
    const vm::run_result r = worker.run();

    serve_result result;
    result.raw = r;
    result.output = worker.output();
    result.worker_cycles = worker.cycles() - cycles_before;
    result.worker_steps = worker.steps() - steps_before;

    if (result.output.find(hijack_marker) != std::string::npos) {
        result.outcome = worker_outcome::hijacked;
    } else if (r.status == vm::exec_status::exited) {
        result.outcome = worker_outcome::ok;
    } else if (r.status == vm::exec_status::out_of_fuel) {
        result.outcome = worker_outcome::out_of_fuel;
        ++crashes_;
    } else {
        switch (r.trap) {
            case vm::trap_kind::stack_smash:
                result.outcome = worker_outcome::crashed_canary;
                break;
            case vm::trap_kind::invalid_jump:
                result.outcome = worker_outcome::crashed_cf;
                break;
            default:
                result.outcome = worker_outcome::crashed_segv;
                break;
        }
        ++crashes_;
    }

    // Telemetry only (side channel): request volume, crash rate, how much
    // work a request costs, and how many pages the per-request fork sync
    // actually moved.
    static const auto c_requests = obs::counter("proc.serve.requests");
    static const auto c_crashes = obs::counter("proc.serve.crashes");
    static const auto h_steps = obs::histogram("proc.serve.worker_steps");
    static const auto h_fork_dirty = obs::histogram("proc.fork.dirty_pages");
    obs::add(c_requests, 1);
    if (result.outcome != worker_outcome::ok &&
        result.outcome != worker_outcome::hijacked)
        obs::add(c_crashes, 1);
    obs::observe(h_steps, result.worker_steps);
    obs::observe(h_fork_dirty,
                 worker.mem().dirty_pages(vm::dirty_channel::fork));

    // The master reaps the worker and accepts the next connection.
    master_.complete_syscall(worker.pid());
    run_master_to_fork();
    return result;
}

server_batch::server_batch(std::shared_ptr<const binfmt::linked_binary> binary,
                           core::scheme_kind kind, core::scheme_options options,
                           server_config config)
    : binary_{std::move(binary)}, kind_{kind}, options_{options},
      config_{std::move(config)} {
    if (!binary_) throw std::invalid_argument{"server_batch: null binary"};
    program_ = binary_->make_program();
}

fork_server server_batch::make(std::uint64_t seed) const {
    return fork_server{*binary_, core::make_scheme(kind_, options_), seed, config_,
                       program_};
}

}  // namespace pssp::proc
