#include "obs/telemetry.hpp"

#include <cstring>

namespace pssp::obs {

telemetry_writer::~telemetry_writer() {
    if (file_ != nullptr && owned_) std::fclose(file_);
}

bool telemetry_writer::open(const std::string& path) {
    if (path == "-") {
        file_ = stderr;
        owned_ = false;
        return true;
    }
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
        std::fprintf(stderr, "telemetry: cannot write %s\n", path.c_str());
        return false;
    }
    owned_ = true;
    return true;
}

void telemetry_writer::append(const round_summary& round) {
    if (file_ == nullptr) return;
    const auto line = round_summary_json(round);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
}

std::string round_summary_json(const round_summary& round) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"round\": %llu, \"blocks\": %llu, \"trials\": %llu, "
                  "\"cumulative_trials\": %llu, \"max_halfwidth\": %.6f, "
                  "\"widest_cell\": \"%s\", \"wall_seconds\": %.3f",
                  static_cast<unsigned long long>(round.round),
                  static_cast<unsigned long long>(round.blocks),
                  static_cast<unsigned long long>(round.trials),
                  static_cast<unsigned long long>(round.cumulative_trials),
                  round.max_halfwidth, round.widest_cell.c_str(),
                  round.wall_seconds);
    std::string json = buf;
    if (!round.shards.empty()) {
        json += ", \"shards\": [";
        for (std::size_t i = 0; i < round.shards.size(); ++i) {
            const auto& s = round.shards[i];
            std::snprintf(buf, sizeof buf,
                          "%s{\"shard\": %u, \"wall\": %.3f, \"user\": %.3f, "
                          "\"sys\": %.3f}",
                          i == 0 ? "" : ", ", s.shard, s.wall_seconds,
                          s.user_seconds, s.sys_seconds);
            json += buf;
        }
        json += "]";
    }
    if (round.retries != 0 || round.requeued_blocks != 0 ||
        round.timeouts != 0 || round.resumed) {
        std::snprintf(buf, sizeof buf,
                      ", \"recovery\": {\"retries\": %llu, "
                      "\"requeued_blocks\": %llu, \"timeouts\": %llu, "
                      "\"resumed\": %s}",
                      static_cast<unsigned long long>(round.retries),
                      static_cast<unsigned long long>(round.requeued_blocks),
                      static_cast<unsigned long long>(round.timeouts),
                      round.resumed ? "true" : "false");
        json += buf;
    }
    json += "}";
    return json;
}

}  // namespace pssp::obs
