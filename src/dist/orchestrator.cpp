#include "dist/orchestrator.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <limits.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/allocator.hpp"
#include "dist/wire.hpp"

namespace pssp::dist {

namespace {

// One worker process to spawn: argv tail (after the binary path) plus the
// stdin payload. The fixed path runs one per shard for the whole campaign;
// the adaptive path runs one per shard per round.
struct worker_job {
    std::vector<std::string> args;
    std::string input;
};

struct worker_process {
    pid_t pid = -1;
    int stdout_fd = -1;
    std::string output;
    std::string error;  // first failure observed for this worker
    int exit_status = -1;
};

[[noreturn]] void exec_worker(const std::string& path,
                              const std::vector<std::string>& args, int in_fd,
                              int out_fd) {
    ::dup2(in_fd, STDIN_FILENO);
    ::dup2(out_fd, STDOUT_FILENO);
    // stderr stays inherited: worker diagnostics surface on the parent's.
    ::close(in_fd);
    ::close(out_fd);
    std::vector<const char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(path.c_str());
    for (const auto& a : args) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    ::execv(path.c_str(), const_cast<char* const*>(argv.data()));
    // Exec failed; 127 is the conventional "command not found" status the
    // parent turns into a pointed error message.
    std::fprintf(stderr, "campaign worker exec failed: %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::_exit(127);
}

void write_all(int fd, const std::string& data, std::string& error) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            // EPIPE: the worker died before reading its input. Record it —
            // the wait status below says why.
            if (error.empty())
                error = std::string{"input write failed: "} + std::strerror(errno);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void read_all(int fd, std::string& out) {
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            return;
        }
        if (n == 0) return;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

std::string describe_exit(int status) {
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) return {};
        if (code == 127) return "worker exec failed (bad worker path?)";
        return "worker exited with status " + std::to_string(code);
    }
    if (WIFSIGNALED(status))
        return std::string{"worker killed by signal "} +
               std::to_string(WTERMSIG(status)) + " (" +
               strsignal(WTERMSIG(status)) + ")";
    return "worker ended abnormally";
}

// Spawns one process per job, feeds each its stdin payload, drains every
// stdout, reaps everything, and returns the outputs job-aligned. Failure
// model: loud — any worker that exits non-zero, dies on a signal, or
// cannot be spawned fails the whole call with a std::runtime_error naming
// the shard, after every child has been reaped.
std::vector<std::string> run_worker_pool(const std::string& worker,
                                         const std::vector<worker_job>& jobs) {
    // A worker that dies before reading its input must surface as its wait
    // status, not as SIGPIPE killing the orchestrator.
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    struct sigaction old_pipe {};
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    std::vector<worker_process> workers(jobs.size());
    // On a mid-loop spawn failure (EMFILE, EAGAIN, ...) the workers already
    // forked must not be orphaned: kill them, drop their pipe fds, and reap
    // every one before throwing — the header's "all children are reaped"
    // contract holds on every exit path.
    auto abandon_spawned = [&](const char* what) {
        for (auto& w : workers) {
            if (w.pid < 0) continue;
            ::kill(w.pid, SIGKILL);
            ::close(w.stdout_fd);
            int status = 0;
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        throw std::runtime_error{std::string{"run_sharded: "} + what};
    };
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        int in_pipe[2];
        int out_pipe[2];
        if (::pipe(in_pipe) != 0) abandon_spawned("pipe() failed");
        if (::pipe(out_pipe) != 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            abandon_spawned("pipe() failed");
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            abandon_spawned("fork() failed");
        }
        if (pid == 0) {
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            exec_worker(worker, jobs[k].args, in_pipe[0], out_pipe[1]);
        }
        ::close(in_pipe[0]);
        ::close(out_pipe[1]);
        workers[k].pid = pid;
        workers[k].stdout_fd = out_pipe[0];
        // Workers read their whole stdin before emitting output, so even an
        // input larger than the pipe capacity drains promptly — the write
        // blocks at worst until the freshly exec'd worker starts reading.
        write_all(in_pipe[1], jobs[k].input, workers[k].error);
        ::close(in_pipe[1]);
    }

    // Drain stdouts in job order. A later worker whose pipe fills simply
    // blocks until its turn — the parent owes it nothing else.
    for (auto& w : workers) {
        read_all(w.stdout_fd, w.output);
        ::close(w.stdout_fd);
    }
    for (auto& w : workers) {
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        w.exit_status = status;
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    std::string failure;
    for (std::size_t k = 0; k < workers.size(); ++k) {
        std::string why = describe_exit(workers[k].exit_status);
        if (why.empty() && !workers[k].error.empty()) why = workers[k].error;
        if (!why.empty()) {
            if (!failure.empty()) failure += "; ";
            failure += "shard " + std::to_string(k) + ": " + why;
        }
    }
    if (!failure.empty()) throw std::runtime_error{"run_sharded: " + failure};

    std::vector<std::string> outputs;
    outputs.reserve(workers.size());
    for (auto& w : workers) outputs.push_back(std::move(w.output));
    return outputs;
}

partial_report parse_worker_partial(const std::string& output, std::uint32_t k,
                                    std::uint32_t count) {
    partial_report partial;
    try {
        partial = partial_from_json(output);
    } catch (const std::exception& e) {
        throw std::runtime_error{"run_sharded: shard " + std::to_string(k) +
                                 " emitted a bad partial: " + e.what()};
    }
    if (partial.shard_index != k || partial.shard_count != count)
        throw std::runtime_error{
            "run_sharded: shard " + std::to_string(k) + " identified as shard " +
            std::to_string(partial.shard_index) + "/" +
            std::to_string(partial.shard_count)};
    return partial;
}

campaign::campaign_spec shard_execution_spec(
    const campaign::campaign_spec& spec, const sharded_options& options) {
    // Per-shard execution knobs: split the requested parallelism across
    // the shard processes (each then also caps its master pools to that).
    campaign::campaign_spec shard_spec = spec;
    shard_spec.jobs =
        options.jobs_per_shard != 0
            ? options.jobs_per_shard
            : std::max(1u, campaign::resolve_jobs(spec.jobs) / options.shards);
    return shard_spec;
}

// The adaptive round loop: the allocator runs in the parent, each round's
// block list is split round-robin by list position across the shards, and
// every worker gets an explicit manifest (spec + blocks) for that round.
// Allocation decisions consume only merged partials, and block partials
// are pure functions of (master_seed, block), so this reproduces
// engine{spec}.run() byte for byte at any shard count.
campaign::campaign_report run_sharded_adaptive(
    const campaign::campaign_spec& spec, const sharded_options& options,
    const std::string& worker) {
    const auto shard_spec = shard_execution_spec(spec, options);
    const auto digest = spec_digest(spec);
    campaign::adaptive_allocator allocator{spec};
    for (;;) {
        const auto round = allocator.plan_round();
        if (round.empty()) break;
        const std::uint64_t round_number = allocator.rounds_completed() + 1;
        // Workers this round: a shard with no blocks is not spawned (late
        // rounds routinely have fewer active blocks than shards).
        const auto count = static_cast<std::uint32_t>(std::min<std::size_t>(
            options.shards, round.size()));
        std::vector<worker_job> jobs(count);
        for (std::uint32_t k = 0; k < count; ++k) {
            round_job job;
            job.spec = shard_spec;
            job.manifest.round = round_number;
            job.manifest.digest = digest;
            for (std::size_t p = k; p < round.size(); p += count)
                job.manifest.blocks.push_back(round[p]);
            jobs[k].args = {"--round", "--shard", std::to_string(k),
                            "--shards", std::to_string(count)};
            jobs[k].input = round_job_to_json(job);
        }
        const auto outputs = run_worker_pool(worker, jobs);
        std::vector<partial_report> partials;
        partials.reserve(count);
        for (std::uint32_t k = 0; k < count; ++k)
            partials.push_back(parse_worker_partial(outputs[k], k, count));
        allocator.record_round(
            round, collect_block_partials(spec, round, partials, round_number));
    }
    return allocator.report();
}

}  // namespace

std::string default_worker_path() {
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path{buf};
        const auto slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + "tools_campaign_worker";
    }
    return "./tools_campaign_worker";
}

campaign::campaign_report run_sharded(const campaign::campaign_spec& spec,
                                      const sharded_options& options) {
    if (options.shards == 0)
        throw std::invalid_argument{"run_sharded: shards must be >= 1"};
    const std::string worker = options.worker_path.empty()
                                   ? default_worker_path()
                                   : options.worker_path;
    if (spec.adaptive) return run_sharded_adaptive(spec, options, worker);

    const std::string spec_json =
        spec_to_json(shard_execution_spec(spec, options));
    std::vector<worker_job> jobs(options.shards);
    for (std::uint32_t k = 0; k < options.shards; ++k) {
        jobs[k].args = {"--shard", std::to_string(k), "--shards",
                        std::to_string(options.shards)};
        jobs[k].input = spec_json;
    }
    const auto outputs = run_worker_pool(worker, jobs);

    std::vector<partial_report> partials;
    partials.reserve(options.shards);
    for (std::uint32_t k = 0; k < options.shards; ++k)
        partials.push_back(parse_worker_partial(outputs[k], k, options.shards));
    return merge_partials(spec, partials);
}

}  // namespace pssp::dist
