#include "binfmt/stdlib.hpp"

#include "crypto/aes128.hpp"
#include "crypto/one_way.hpp"
#include "vm/machine.hpp"

namespace pssp::binfmt {

using namespace vm::isa;
using vm::reg;
using vm::xreg;

namespace native {

void stack_chk_fail_abort(vm::machine&) {
    throw vm::native_trap{vm::trap_kind::stack_smash};
}

void aes_encrypt_128(vm::machine& m) {
    const auto key = m.get_x(xreg::xmm1);
    const auto block = m.get_x(xreg::xmm15);
    const crypto::aes128 cipher{key.lo, key.hi};
    const auto ct = cipher.encrypt({block.lo, block.hi});
    m.set_x(xreg::xmm15, {ct.lo, ct.hi});
    m.charge(m.costs().aes_helper);
}

void sha1_owf_128(vm::machine& m) {
    const auto key = m.get_x(xreg::xmm1);
    const auto block = m.get_x(xreg::xmm15);  // lo = nonce, hi = ret
    const auto owf = crypto::make_owf(crypto::owf_kind::sha1);
    const auto out = owf->evaluate128(key.lo, key.hi, block.hi, block.lo);
    m.set_x(xreg::xmm15, {out.lo, out.hi});
    m.charge(690);  // software SHA-1 compression; no hardware assist
}

void strcpy_impl(vm::machine& m) {
    const std::uint64_t dst = m.get(reg::rdi);
    const std::uint64_t src = m.get(reg::rsi);
    std::uint64_t i = 0;
    for (;;) {
        const std::uint8_t byte = m.mem().load8(src + i);
        m.mem().store8(dst + i, byte);
        ++i;
        if (byte == 0) break;
    }
    m.set(reg::rax, dst);
    m.charge(2 * i + 4);
}

void memcpy_impl(vm::machine& m) {
    const std::uint64_t dst = m.get(reg::rdi);
    const std::uint64_t src = m.get(reg::rsi);
    const std::uint64_t len = m.get(reg::rdx);
    for (std::uint64_t i = 0; i < len; ++i) m.mem().store8(dst + i, m.mem().load8(src + i));
    m.set(reg::rax, dst);
    m.charge(2 * len + 4);
}

void memset_impl(vm::machine& m) {
    const std::uint64_t dst = m.get(reg::rdi);
    const auto value = static_cast<std::uint8_t>(m.get(reg::rsi));
    const std::uint64_t len = m.get(reg::rdx);
    for (std::uint64_t i = 0; i < len; ++i) m.mem().store8(dst + i, value);
    m.set(reg::rax, dst);
    m.charge(len + 4);
}

void strlen_impl(vm::machine& m) {
    const std::uint64_t s = m.get(reg::rdi);
    std::uint64_t n = 0;
    while (m.mem().load8(s + n) != 0) ++n;
    m.set(reg::rax, n);
    m.charge(n + 4);
}

}  // namespace native

namespace {

// ---- VM-code libc (static_glibc) -------------------------------------------
// These are compiled without stack protection, like real glibc string
// routines (leaf functions with no local buffers get no canary under
// -fstack-protector), so every byte they copy is a *caller*-frame byte —
// which is exactly how an unbounded strcpy smashes the caller's canary.

void add_vm_strcpy(image& img) {
    auto& f = img.add_function(sym_strcpy, /*from_libc=*/true);
    const auto loop = f.new_label();
    f.emit(mov_rr(reg::rax, reg::rdi));
    f.place(loop);
    f.emit({movzx8_rm(reg::rcx, mem(reg::rsi, 0)), mov8_mr(mem(reg::rdi, 0), reg::rcx),
            add_ri(reg::rdi, 1), add_ri(reg::rsi, 1), test_rr(reg::rcx, reg::rcx),
            jne(loop), ret()});
}

void add_vm_memcpy(image& img) {
    auto& f = img.add_function(sym_memcpy, /*from_libc=*/true);
    const auto loop = f.new_label();
    const auto done = f.new_label();
    f.emit({mov_rr(reg::rax, reg::rdi), mov_rr(reg::rcx, reg::rdx)});
    f.place(loop);
    f.emit({test_rr(reg::rcx, reg::rcx), je(done), movzx8_rm(reg::r8, mem(reg::rsi, 0)),
            mov8_mr(mem(reg::rdi, 0), reg::r8), add_ri(reg::rdi, 1),
            add_ri(reg::rsi, 1), sub_ri(reg::rcx, 1), jmp(loop)});
    f.place(done);
    f.emit(ret());
}

void add_vm_memset(image& img) {
    auto& f = img.add_function(sym_memset, /*from_libc=*/true);
    const auto loop = f.new_label();
    const auto done = f.new_label();
    f.emit({mov_rr(reg::rax, reg::rdi), mov_rr(reg::rcx, reg::rdx)});
    f.place(loop);
    f.emit({test_rr(reg::rcx, reg::rcx), je(done), mov8_mr(mem(reg::rdi, 0), reg::rsi),
            add_ri(reg::rdi, 1), sub_ri(reg::rcx, 1), jmp(loop)});
    f.place(done);
    f.emit(ret());
}

void add_vm_strlen(image& img) {
    auto& f = img.add_function(sym_strlen, /*from_libc=*/true);
    const auto loop = f.new_label();
    const auto done = f.new_label();
    f.emit(mov_ri(reg::rax, 0));
    f.place(loop);
    f.emit({movzx8_rm(reg::rcx, mem(reg::rdi, 0)), test_rr(reg::rcx, reg::rcx), je(done),
            add_ri(reg::rdi, 1), add_ri(reg::rax, 1), jmp(loop)});
    f.place(done);
    f.emit(ret());
}

void add_vm_fork(image& img) {
    // fork() is a thin syscall wrapper in both modes; in a statically
    // instrumented binary the rewriter hooks this entry and redirects to a
    // P-SSP-aware version in the appended section (Section V-D).
    auto& f = img.add_function(sym_fork, /*from_libc=*/true);
    f.emit({syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_fork)), ret()});
}

void add_vm_stack_chk_fail(image& img) {
    // Stock glibc shape (Fig 3, left side): report and abort. The VM
    // version "reports" by falling straight into __GI__fortify_fail.
    auto& fail = img.add_function(sym_fortify_fail, /*from_libc=*/true);
    fail.emit(trap_abort());

    auto& f = img.add_function(sym_stack_chk_fail, /*from_libc=*/true);
    f.emit({call_sym(img.sym(sym_fortify_fail)), ret()});
}

}  // namespace

void add_standard_library(image& img, link_mode mode) {
    // Crypto helpers model hardware / hand-tuned primitives: native in
    // both modes, costed via the cycle model.
    img.add_native_import(sym_aes_encrypt, native::aes_encrypt_128);
    img.add_native_import(sym_sha1_owf, native::sha1_owf_128);

    if (mode == link_mode::dynamic_glibc) {
        img.add_native_import(sym_strcpy, native::strcpy_impl);
        img.add_native_import(sym_memcpy, native::memcpy_impl);
        img.add_native_import(sym_memset, native::memset_impl);
        img.add_native_import(sym_strlen, native::strlen_impl);
        img.add_native_import(sym_stack_chk_fail, native::stack_chk_fail_abort);
        img.add_native_import(sym_fortify_fail, native::stack_chk_fail_abort);
        add_vm_fork(img);  // must execute a real syscall; kept as a VM stub
        return;
    }

    add_vm_strcpy(img);
    add_vm_memcpy(img);
    add_vm_memset(img);
    add_vm_strlen(img);
    add_vm_fork(img);
    add_vm_stack_chk_fail(img);
}

}  // namespace pssp::binfmt
