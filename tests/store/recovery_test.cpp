// Store damage drills. The ingest log is ground truth and segments are a
// pure projection of it, so every recovery path has a binary outcome:
// the repair reproduces the manifest hash bit for bit, or the load fails
// loudly. Nothing in between, nothing papered over.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/campaign.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "util/bytes.hpp"
#include "util/fsio.hpp"

namespace pssp {
namespace {

std::string fresh_dir(const char* tag) {
    static int serial = 0;
    return ::testing::TempDir() + "pssp-recover-" + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(serial++);
}

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    // 192 trials = three canonical 64-trial blocks per cell: enough
    // blocks for three rounds with one segment each.
    spec.trials_per_cell = 192;
    spec.master_seed = 53;
    spec.query_budget = 512;
    return spec;
}

// Builds a three-round store with one column segment per round
// (compact_every_rounds = 1): the canonical block list split into three
// chunks, each ingested as its round's accepted partials. Left
// unfinalized so the store looks like a live campaign.
void build_store(const std::string& dir, const campaign::campaign_spec& spec) {
    store::writer_options wopts;
    wopts.compact_every_rounds = 1;
    auto writer = store::store_writer::open(dir, spec, false, wopts);
    const auto canonical = campaign::blocks_for(spec);
    ASSERT_GE(canonical.size(), 3u);
    const std::size_t per_round = (canonical.size() + 2) / 3;
    std::size_t next = 0;
    for (std::uint64_t round = 1; round <= 3 && next < canonical.size();
         ++round) {
        std::vector<dist::partial_block> blocks;
        for (std::size_t i = 0; i < per_round && next < canonical.size();
             ++i, ++next) {
            const auto& ref = canonical[next];
            dist::partial_block b;
            b.index = ref.index;
            b.cell = ref.cell;
            b.partial.trials = ref.trials;
            b.partial.detections = ref.trials / 2;
            b.partial.queries.add(static_cast<double>(ref.index) + 0.5);
            blocks.push_back(b);
        }
        writer.ingest_blocks(round, blocks);
        obs::round_summary s;
        s.round = round;
        s.blocks = blocks.size();
        writer.ingest_round(s);
    }
}

std::string read_file_or_die(const std::string& path) {
    std::string bytes;
    if (!util::read_file(path, bytes)) ADD_FAILURE() << "cannot read " << path;
    return bytes;
}

void write_file_raw(const std::string& path, const std::string& bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << bytes;
}

// Flips one byte somewhere inside the payload (not the trailing newline).
std::string flipped(std::string bytes, std::size_t at = 40) {
    at = std::min(at, bytes.size() / 2);
    bytes[at] = bytes[at] == 'x' ? 'y' : 'x';
    return bytes;
}

TEST(store_recovery, torn_segment_rebuilt_bit_identical) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("torn-seg");
    build_store(dir, spec);

    const auto clean = store::load_store(dir);
    ASSERT_GE(clean.meta.segments.size(), 3u);
    EXPECT_EQ(clean.repaired_segments, 0u);
    const auto clean_answer =
        store::aggregate_json(clean, store::aggregate_cells(clean, {}));

    const std::string seg_path = dir + "/" + clean.meta.segments[0].file;
    const auto original = read_file_or_die(seg_path);
    write_file_raw(seg_path, flipped(original));

    const auto repaired = store::load_store(dir);
    EXPECT_EQ(repaired.repaired_segments, 1u);
    EXPECT_EQ(repaired.blocks.size(), clean.blocks.size());
    EXPECT_EQ(repaired.rounds.size(), clean.rounds.size());
    EXPECT_EQ(store::aggregate_json(repaired,
                                    store::aggregate_cells(repaired, {})),
              clean_answer);
    // The repair wrote the original bytes back: same file, bit for bit.
    EXPECT_EQ(read_file_or_die(seg_path), original);

    // A deleted segment is the same failure mode as a torn one.
    ASSERT_EQ(::unlink(seg_path.c_str()), 0);
    const auto restored = store::load_store(dir);
    EXPECT_EQ(restored.repaired_segments, 1u);
    EXPECT_EQ(read_file_or_die(seg_path), original);
}

TEST(store_recovery, no_repair_serves_rows_without_rewriting) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("no-repair");
    build_store(dir, spec);

    const auto clean = store::load_store(dir);
    const auto clean_answer =
        store::aggregate_json(clean, store::aggregate_cells(clean, {}));
    const std::string seg_path = dir + "/" + clean.meta.segments[0].file;
    const auto original = read_file_or_die(seg_path);
    const auto corrupt = flipped(original);
    write_file_raw(seg_path, corrupt);

    store::load_options read_only;
    read_only.repair = false;
    const auto data = store::load_store(dir, read_only);
    EXPECT_EQ(data.repaired_segments, 1u);
    EXPECT_EQ(store::aggregate_json(data, store::aggregate_cells(data, {})),
              clean_answer);
    // Served from the rebuilt rows, but the disk was left untouched.
    EXPECT_EQ(read_file_or_die(seg_path), corrupt);
}

TEST(store_recovery, torn_final_log_line_is_dropped_and_reported) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("torn-tail");
    build_store(dir, spec);

    const auto clean = store::load_store(dir);
    {
        // A killed single-write(2) appender leaves at most one state: a
        // final line with no newline.
        std::ofstream log{dir + "/ingest.log",
                          std::ios::binary | std::ios::app};
        ASSERT_TRUE(log);
        log << "{\"e\":{\"k\":\"blocks\",\"seq\":99";
    }
    const auto data = store::load_store(dir);
    EXPECT_TRUE(data.dropped_torn_tail);
    EXPECT_EQ(data.blocks.size(), clean.blocks.size());
    EXPECT_EQ(data.rounds.size(), clean.rounds.size());
    EXPECT_FALSE(clean.dropped_torn_tail);
}

TEST(store_recovery, corrupt_interior_log_line_fails_with_line_number) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("bad-line");
    build_store(dir, spec);

    const std::string log_path = dir + "/ingest.log";
    auto log = read_file_or_die(log_path);
    // Flip a byte inside the first line's body: integrity hash must trip.
    ASSERT_GT(log.find('\n'), 60u);
    log[50] = log[50] == 'x' ? 'y' : 'x';
    write_file_raw(log_path, log);

    try {
        (void)store::load_store(dir);
        FAIL() << "expected the corrupt log line to fail the load";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ingest.log"), std::string::npos) << what;
        EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    }
}

TEST(store_recovery, unreproducible_segment_fails_loudly) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("unreproducible");
    build_store(dir, spec);

    // Tamper the manifest's hash for segment 0: the stored file no longer
    // matches, and the rebuild from the (intact) log reproduces the
    // *original* bytes — which cannot match the tampered hash either. The
    // load must refuse rather than serve rows it cannot vouch for.
    const auto clean = store::load_store(dir);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(clean.meta.segments[0].fnv));
    const std::string manifest_path = dir + "/store.json";
    auto manifest = read_file_or_die(manifest_path);
    const auto pos = manifest.find(hex);
    ASSERT_NE(pos, std::string::npos);
    manifest[pos] = manifest[pos] == '0' ? '1' : '0';
    write_file_raw(manifest_path, manifest);

    try {
        (void)store::load_store(dir);
        FAIL() << "expected the unreproducible segment to fail the load";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("cannot reproduce it"),
                  std::string::npos)
            << e.what();
    }
}

TEST(store_recovery, writer_crash_before_finalize_resumes_and_completes) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("crash-resume");
    const auto canonical = campaign::blocks_for(spec);

    auto chunk = [&](std::size_t from, std::size_t to) {
        std::vector<dist::partial_block> blocks;
        for (std::size_t i = from; i < to && i < canonical.size(); ++i) {
            dist::partial_block b;
            b.index = canonical[i].index;
            b.cell = canonical[i].cell;
            b.partial.trials = canonical[i].trials;
            blocks.push_back(b);
        }
        return blocks;
    };
    auto summary_for = [](std::uint64_t round) {
        obs::round_summary s;
        s.round = round;
        return s;
    };

    {
        // "Crash": the writer goes away mid-campaign without finalize.
        store::writer_options wopts;
        wopts.compact_every_rounds = 1;
        auto writer = store::store_writer::open(dir, spec, false, wopts);
        writer.ingest_blocks(1, chunk(0, 2));
        writer.ingest_round(summary_for(1));
    }
    {
        const auto partial = store::load_store(dir);
        EXPECT_FALSE(partial.complete);
        EXPECT_EQ(partial.blocks.size(), 2u);
    }
    {
        auto writer = store::store_writer::open(dir, spec, /*resume=*/true);
        // An at-least-once replay of round 1 dedups; the rest lands fresh.
        writer.ingest_blocks(1, chunk(0, 2));
        EXPECT_EQ(writer.skipped_blocks(), 2u);
        writer.ingest_blocks(2, chunk(2, canonical.size()));
        writer.ingest_round(summary_for(2));
        campaign::campaign_report report;
        report.spec = spec;
        writer.finalize(report, "{}");

        const auto data = store::load_store(dir);
        EXPECT_TRUE(data.complete);
        EXPECT_EQ(data.done.report_fnv, util::fnv1a64(report.to_json()));
        EXPECT_EQ(store::dedup_blocks(data).size(), canonical.size());
        EXPECT_EQ(data.metrics, "{}");
    }
}

}  // namespace
}  // namespace pssp
