// Shard planner: canonical block structure, deterministic partitioning,
// and the in-process half of the byte-identity oracle — merged shard
// partials reproduce the single-process report exactly.

#include <gtest/gtest.h>

#include <set>

#include "campaign/engine.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"

namespace pssp {
namespace {

campaign::campaign_spec tiny_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 3;
    spec.master_seed = 77;
    // A tight budget keeps the many-trial identity runs fast; byte-identity
    // is a structural property, not a function of attack success rates.
    spec.query_budget = 600;
    spec.jobs = 2;
    return spec;
}

TEST(dist_shard, blocks_cover_the_trial_space_cell_major) {
    auto spec = tiny_spec();
    spec.trials_per_cell = 150;  // 3 blocks per cell: 64 + 64 + 22
    const auto blocks = campaign::blocks_for(spec);
    ASSERT_EQ(blocks.size(), spec.cell_count() * 3);
    std::uint64_t expected_trial = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_EQ(blocks[i].index, i);
        EXPECT_EQ(blocks[i].cell, i / 3);
        EXPECT_EQ(blocks[i].first_trial, expected_trial);
        EXPECT_EQ(blocks[i].trials, (i % 3 == 2) ? 22u : 64u);
        expected_trial += blocks[i].trials;
    }
    EXPECT_EQ(expected_trial, spec.trial_count());
}

TEST(dist_shard, plans_partition_blocks_exactly_once) {
    auto spec = tiny_spec();
    spec.trials_per_cell = 200;  // 4 blocks per cell, 16 total
    const auto all = campaign::blocks_for(spec);
    for (const std::uint32_t count : {1u, 2u, 4u, 8u, 64u}) {
        const auto plans = dist::plan_shards(spec, count);
        ASSERT_EQ(plans.size(), count);
        std::set<std::uint64_t> seen;
        for (const auto& plan : plans) {
            EXPECT_EQ(plan.shard_count, count);
            for (const auto& block : plan.blocks) {
                EXPECT_EQ(block.index % count, plan.shard_index);
                EXPECT_TRUE(seen.insert(block.index).second)
                    << "block assigned twice";
            }
        }
        EXPECT_EQ(seen.size(), all.size()) << "blocks dropped at count " << count;
        // plan_shard(k) reproduces plan_shards()[k] exactly.
        for (std::uint32_t k = 0; k < count; ++k) {
            const auto solo = dist::plan_shard(spec, k, count);
            ASSERT_EQ(solo.blocks.size(), plans[k].blocks.size());
            for (std::size_t i = 0; i < solo.blocks.size(); ++i)
                EXPECT_EQ(solo.blocks[i].index, plans[k].blocks[i].index);
        }
    }
}

TEST(dist_shard, rejects_bad_plan_arguments) {
    const auto spec = tiny_spec();
    EXPECT_THROW(dist::plan_shards(spec, 0), std::invalid_argument);
    EXPECT_THROW(dist::plan_shard(spec, 0, 0), std::invalid_argument);
    EXPECT_THROW(dist::plan_shard(spec, 2, 2), std::invalid_argument);
}

TEST(dist_shard, merged_shard_partials_reproduce_single_process_report) {
    // The tentpole's oracle, in-process: run each shard's blocks through
    // engine::run_blocks, merge, and demand the merged report's JSON be
    // byte-identical to engine::run() — at shard counts below, equal to,
    // and above the block count (8 blocks here).
    auto spec = tiny_spec();
    spec.trials_per_cell = 70;  // 2 ragged blocks per cell
    const auto reference = campaign::engine{spec}.run().to_json();
    for (const std::uint32_t count : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<dist::partial_report> partials;
        for (const auto& plan : dist::plan_shards(spec, count)) {
            campaign::engine engine{spec};
            const auto block_partials = engine.run_blocks(plan.blocks);
            dist::partial_report partial;
            partial.shard_index = plan.shard_index;
            partial.shard_count = plan.shard_count;
            partial.digest = dist::spec_digest(spec);
            for (std::size_t i = 0; i < plan.blocks.size(); ++i)
                partial.blocks.push_back(dist::partial_block{
                    plan.blocks[i].index, plan.blocks[i].cell,
                    block_partials[i]});
            partials.push_back(std::move(partial));
        }
        const auto merged = dist::merge_partials(spec, partials);
        EXPECT_EQ(merged.to_json(), reference) << "shard count " << count;
    }
}

TEST(dist_shard, ragged_last_blocks_identical_at_every_shard_count) {
    // The reduce_block_trials boundary under sharding: trial counts below,
    // at, and just past the block size must merge byte-identically at
    // shard counts {1, 2, 4, 8} — the ragged last block cannot depend on
    // which process ran it.
    for (const std::uint64_t trials : {1ull, 63ull, 64ull, 65ull, 127ull}) {
        campaign::campaign_spec spec;
        spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
        spec.attacks = {attack::attack_kind::leak_replay};
        spec.targets = {workload::target_kind::nginx};
        spec.trials_per_cell = trials;
        spec.master_seed = 13;
        spec.query_budget = 600;
        spec.jobs = 2;
        const auto reference = campaign::engine{spec}.run().to_json();
        for (const std::uint32_t count : {1u, 2u, 4u, 8u}) {
            std::vector<dist::partial_report> partials;
            for (const auto& plan : dist::plan_shards(spec, count)) {
                campaign::engine engine{spec};
                const auto block_partials = engine.run_blocks(plan.blocks);
                dist::partial_report partial;
                partial.shard_index = plan.shard_index;
                partial.shard_count = plan.shard_count;
                partial.digest = dist::spec_digest(spec);
                for (std::size_t i = 0; i < plan.blocks.size(); ++i)
                    partial.blocks.push_back(dist::partial_block{
                        plan.blocks[i].index, plan.blocks[i].cell,
                        block_partials[i]});
                partials.push_back(std::move(partial));
            }
            EXPECT_EQ(dist::merge_partials(spec, partials).to_json(), reference)
                << "trials_per_cell=" << trials << " shards=" << count;
        }
    }
}

TEST(dist_shard, merge_rejects_missing_duplicate_and_foreign_blocks) {
    auto spec = tiny_spec();
    spec.trials_per_cell = 2;
    const auto plan = dist::plan_shard(spec, 0, 1);
    campaign::engine engine{spec};
    const auto block_partials = engine.run_blocks(plan.blocks);
    dist::partial_report partial;
    partial.shard_index = 0;
    partial.shard_count = 1;
    partial.digest = dist::spec_digest(spec);
    for (std::size_t i = 0; i < plan.blocks.size(); ++i)
        partial.blocks.push_back(dist::partial_block{
            plan.blocks[i].index, plan.blocks[i].cell, block_partials[i]});

    std::vector<dist::partial_report> partials{partial};
    EXPECT_NO_THROW((void)dist::merge_partials(spec, partials));

    {  // a lost block fails the merge, loudly
        auto broken = partials;
        broken[0].blocks.pop_back();
        EXPECT_THROW((void)dist::merge_partials(spec, broken),
                     std::runtime_error);
    }
    {  // a block reported twice fails
        auto broken = partials;
        broken[0].blocks.push_back(broken[0].blocks.front());
        EXPECT_THROW((void)dist::merge_partials(spec, broken),
                     std::runtime_error);
    }
    {  // a shard that ran a different campaign fails
        auto broken = partials;
        broken[0].digest ^= 1;
        EXPECT_THROW((void)dist::merge_partials(spec, broken),
                     std::runtime_error);
    }
    {  // a partial claiming the wrong trial count fails
        auto broken = partials;
        broken[0].blocks[0].partial.trials += 1;
        EXPECT_THROW((void)dist::merge_partials(spec, broken),
                     std::runtime_error);
    }
}

}  // namespace
}  // namespace pssp
