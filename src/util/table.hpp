// ASCII table and bar-chart rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// renderer prints them in a uniform, diff-friendly format so EXPERIMENTS.md
// can quote the output verbatim.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pssp::util {

// A simple left-aligned text table with a header row.
class text_table {
  public:
    explicit text_table(std::vector<std::string> header);

    // Appends a row; it may have fewer cells than the header (padded empty).
    void add_row(std::vector<std::string> row);

    // Renders with column padding, a header underline, and `title` on top.
    [[nodiscard]] std::string render(const std::string& title = {}) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

// Horizontal ASCII bar chart: one labeled bar per entry, scaled to
// `width` characters at the maximum value. Used for Figure 5.
class bar_chart {
  public:
    explicit bar_chart(std::string value_caption, std::size_t width = 50);

    void add(std::string label, double value);

    [[nodiscard]] std::string render(const std::string& title = {}) const;

  private:
    struct entry {
        std::string label;
        double value;
    };
    std::string value_caption_;
    std::size_t width_;
    std::vector<entry> entries_;
};

// Formats `value` with `decimals` fractional digits.
[[nodiscard]] std::string fmt(double value, int decimals = 2);

// Formats a percentage, e.g. "0.24%".
[[nodiscard]] std::string fmt_percent(double value, int decimals = 2);

// Formats a byte count with a KiB/MiB suffix where appropriate.
[[nodiscard]] std::string fmt_bytes(std::size_t bytes);

}  // namespace pssp::util
