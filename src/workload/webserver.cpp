#include "workload/webserver.hpp"

#include "attack/leak_replay.hpp"

namespace pssp::workload {

using namespace compiler;

server_profile apache_profile() {
    return {.name = "apache2_m",
            .parse_iters = 60,
            .response_iters = 40,
            .buffer_bytes = 64,
            .leaky = true,
            .critical_buffer = true};
}

server_profile nginx_profile() {
    return {.name = "nginx_m",
            .parse_iters = 12,
            .response_iters = 6,
            .buffer_bytes = 64,
            .leaky = true,
            .critical_buffer = true};
}

server_profile ali_profile() {
    return {.name = "ali_m",
            .parse_iters = 4,
            .response_iters = 2,
            .buffer_bytes = 32,
            .leaky = false,
            .critical_buffer = true};
}

namespace {

// acc = acc * 6364136223846793005 + 1442695040888963407; acc ^= acc >> 33
void add_lcg_round(std::vector<stmt>& body, int acc, int tmp) {
    body.push_back(compute_stmt{acc, local_ref{acc}, binop::mul,
                                const_ref{6364136223846793005ull}});
    body.push_back(compute_stmt{acc, local_ref{acc}, binop::add,
                                const_ref{1442695040888963407ull}});
    body.push_back(compute_stmt{tmp, local_ref{acc}, binop::shr, const_ref{33}});
    body.push_back(compute_stmt{acc, local_ref{acc}, binop::xor_, local_ref{tmp}});
}

}  // namespace

compiler::ir_module make_server_module(const server_profile& profile) {
    ir_module mod;
    mod.name = profile.name;
    mod.add_global("g_request", 4096);
    mod.add_global("g_request_len", 8);
    mod.add_global("g_response", 64);
    mod.add_global("g_win_msg", 8, {'P', 'W', 'N', 'E', 'D', '!', '\n', 0});

    // The hijack target: unprotected (it is the *destination*, not a frame
    // under test), prints the marker the oracle detects.
    auto& win = mod.add_function("win");
    win.never_protect = true;
    win.body.push_back(write_stmt{global_addr{"g_win_msg"}, const_ref{7}});
    win.body.push_back(return_stmt{const_ref{0x1337}});

    // ---- handle_request ----
    auto& handler = mod.add_function("handle_request");
    const int buf = add_local(handler, "buf", profile.buffer_bytes,
                              /*is_buffer=*/true, profile.critical_buffer);
    const int len = add_local(handler, "len");
    const int acc = add_local(handler, "acc");
    const int tmp = add_local(handler, "tmp");
    const int it = add_local(handler, "i");

    handler.body.push_back(load_global_stmt{len, "g_request_len", 0});
    handler.body.push_back(assign_stmt{acc, const_ref{0x9e3779b9ull}});

    loop_stmt parse{it, profile.parse_iters, {}};
    add_lcg_round(parse.body, acc, tmp);
    handler.body.push_back(parse);

    // THE overflow: copy exactly the attacker-chosen number of bytes.
    handler.body.push_back(call_stmt{"memcpy",
                                     {addr_of{buf}, global_addr{"g_request"},
                                      local_ref{len}},
                                     std::nullopt,
                                     /*writes_memory=*/true});

    if (profile.leaky) {
        // Over-read: dump the buffer plus 64 bytes of adjacent frame.
        if_stmt leak{local_ref{0}, relop::eq, const_ref{attack::leak_magic}, {}, {}};
        // Condition operand: first request word.
        const int magic = add_local(handler, "magic");
        handler.body.push_back(load_global_stmt{magic, "g_request", 0});
        leak.a = local_ref{magic};
        leak.then_body.push_back(
            write_stmt{addr_of{buf}, const_ref{profile.buffer_bytes + 64}});
        handler.body.push_back(leak);
    }

    loop_stmt respond{it, profile.response_iters, {}};
    add_lcg_round(respond.body, acc, tmp);
    handler.body.push_back(respond);

    handler.body.push_back(store_global_stmt{"g_response", 0, local_ref{acc}});
    handler.body.push_back(write_stmt{global_addr{"g_response"}, const_ref{8}});
    handler.body.push_back(return_stmt{local_ref{acc}});

    // ---- accept_loop ----
    auto& accept = mod.add_function("accept_loop");
    const int guard = add_local(accept, "connbuf", 16, /*is_buffer=*/true);
    const int pid = add_local(accept, "pid");
    const int li = add_local(accept, "i");
    (void)guard;

    loop_stmt forever{li, 1'000'000'000ull, {}};
    forever.body.push_back(call_stmt{"fork", {}, pid});
    if_stmt child{local_ref{pid}, relop::eq, const_ref{0}, {}, {}};
    child.then_body.push_back(call_stmt{"handle_request", {}, std::nullopt});
    // Returning here sends the worker back through the frames its *master*
    // created — the inherited-frame path every fork-canary scheme must
    // keep consistent (and RAF-SSP does not).
    child.then_body.push_back(return_stmt{const_ref{0}});
    forever.body.push_back(child);
    accept.body.push_back(forever);
    accept.body.push_back(return_stmt{const_ref{1}});

    // ---- server_main ----
    auto& main_fn = mod.add_function("server_main");
    const int mbuf = add_local(main_fn, "confbuf", 16, /*is_buffer=*/true);
    const int r = add_local(main_fn, "r");
    (void)mbuf;
    main_fn.body.push_back(call_stmt{"accept_loop", {}, r});
    main_fn.body.push_back(return_stmt{local_ref{r}});

    return mod;
}

proc::server_config server_config_for(const server_profile& profile) {
    proc::server_config cfg;
    cfg.entry = "server_main";
    cfg.request_symbol = "g_request";
    cfg.length_symbol = "g_request_len";
    cfg.request_capacity = 4096;
    (void)profile;
    return cfg;
}

std::uint64_t attack_prefix_bytes(const server_profile& profile) {
    // Frame plans place the buffer directly below the canary area, so the
    // attacker's run-up equals the buffer size (rounded to words).
    return (profile.buffer_bytes + 7) & ~7u;
}

}  // namespace pssp::workload
