// Crash-resumable checkpoints, end to end: checkpointed sharded runs
// (real fork/exec workers), log truncation to simulate an orchestrator
// death mid-campaign, and --resume producing a byte-identical report
// while re-running only the missing work. Pins the corruption contract:
// a truncated line, a flipped hexfloat digit, and a foreign spec digest
// each fail resume loudly with a position-bearing error — silent resume
// from damaged state is impossible.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/checkpoint.hpp"
#include "dist/orchestrator.hpp"
#include "obs/telemetry.hpp"

namespace pssp {
namespace {

// A unique empty directory under the gtest temp root; checkpoint_log
// creates the directory itself when missing, so handing it a fresh path
// (not yet created) exercises that too.
std::string fresh_dir(const char* tag) {
    static int serial = 0;
    return ::testing::TempDir() + "pssp-ckpt-" + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(serial++);
}

std::string read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << content;
}

std::size_t line_count(const std::string& text) {
    std::size_t n = 0;
    for (const char c : text)
        if (c == '\n') ++n;
    return n;
}

// Keeps only the first checkpoint log entry: the on-disk state of an
// orchestrator that died after its first durable unit.
void truncate_to_first_line(const std::string& path) {
    const auto content = read_file(path);
    const auto nl = content.find('\n');
    ASSERT_NE(nl, std::string::npos) << path << " has no complete line";
    write_file(path, content.substr(0, nl + 1));
}

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 6;
    spec.master_seed = 29;
    spec.query_budget = 512;
    return spec;
}

dist::sharded_options checkpointed_options(const std::string& dir) {
    dist::sharded_options options;
    options.shards = 2;
    options.flight_recorder = false;
    options.postmortem_dir = ::testing::TempDir();
    options.checkpoint_dir = dir;
    return options;
}

TEST(dist_checkpoint, fixed_resume_is_byte_identical) {
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    const auto dir = fresh_dir("fixed");
    auto options = checkpointed_options(dir);

    // A checkpointed run changes nothing about the report...
    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
    // ...and leaves one durable entry per shard job behind.
    const auto log_path = dir + "/rounds.log";
    EXPECT_EQ(line_count(read_file(log_path)), 2u);

    // Kill the run after one durable unit; resume re-runs only the rest.
    truncate_to_first_line(log_path);
    options.resume = true;
    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
    // The resumed run appended what it re-ran: the log is complete again,
    // so a second resume replays everything and spawns no workers.
    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
}

TEST(dist_checkpoint, adaptive_resume_is_byte_identical) {
    // Two deterministic rounds (target 0 never converges; 4 blocks at 2
    // per round). The durable unit is one accepted round; resume replays
    // round 1 through the allocator and runs only round 2.
    auto spec = small_spec();
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.0;
    spec.trials_per_cell = 96;
    spec.round_blocks = 2;
    spec.min_trials_per_cell = 32;
    const auto reference = campaign::engine{spec}.run().to_json();
    const auto dir = fresh_dir("adaptive");
    auto options = checkpointed_options(dir);

    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
    const auto log_path = dir + "/rounds.log";
    EXPECT_EQ(line_count(read_file(log_path)), 2u);

    truncate_to_first_line(log_path);
    options.resume = true;
    std::vector<obs::round_summary> rounds;
    options.round_observer = [&rounds](const obs::round_summary& r) {
        rounds.push_back(r);
    };
    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
    // Telemetry must tell replayed rounds from re-run ones.
    ASSERT_EQ(rounds.size(), 2u);
    EXPECT_TRUE(rounds[0].resumed);
    EXPECT_FALSE(rounds[1].resumed);
}

TEST(dist_checkpoint, truncated_log_line_fails_resume_loudly) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("trunc");
    auto options = checkpointed_options(dir);
    (void)dist::run_sharded(spec, options);

    const auto log_path = dir + "/rounds.log";
    auto content = read_file(log_path);
    ASSERT_GT(content.size(), 10u);
    content.resize(content.size() - 10);  // tear the tail of line 2
    write_file(log_path, content);

    options.resume = true;
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "a torn checkpoint line must fail resume";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("rounds.log"), std::string::npos) << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    }
}

TEST(dist_checkpoint, flipped_hexfloat_digit_fails_resume_loudly) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("flip");
    auto options = checkpointed_options(dir);
    (void)dist::run_sharded(spec, options);

    // Flip one hex digit inside the first hexfloat of line 1. The entry
    // stays structurally valid JSON — only the integrity hash can tell.
    const auto log_path = dir + "/rounds.log";
    auto content = read_file(log_path);
    const auto pos = content.find("0x");
    ASSERT_NE(pos, std::string::npos) << "no hexfloat in the log";
    ASSERT_LT(pos + 2, content.size());
    content[pos + 2] = content[pos + 2] == '0' ? '1' : '0';
    write_file(log_path, content);

    options.resume = true;
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "a corrupt checkpoint entry must fail resume";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 1"), std::string::npos) << what;
        EXPECT_NE(what.find("integrity hash mismatch"), std::string::npos)
            << what;
    }
}

TEST(dist_checkpoint, foreign_spec_digest_fails_resume_loudly) {
    auto spec = small_spec();
    const auto dir = fresh_dir("foreign");
    auto options = checkpointed_options(dir);
    (void)dist::run_sharded(spec, options);

    spec.master_seed += 1;  // a different campaign
    options.resume = true;
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "a foreign checkpoint must never be merged";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("spec digest mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("different campaign"), std::string::npos) << what;
    }
}

TEST(dist_checkpoint, create_refuses_existing_and_resume_needs_one) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("refuse");
    auto options = checkpointed_options(dir);
    (void)dist::run_sharded(spec, options);

    // Without --resume an existing checkpoint must not be overwritten.
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "a fresh run must refuse an existing checkpoint";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("refusing to overwrite"),
                  std::string::npos)
            << e.what();
    }
    // Resuming a directory that is not a checkpoint fails loudly.
    options.checkpoint_dir = fresh_dir("empty");
    options.resume = true;
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "resume of a non-checkpoint directory must fail";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("missing meta.json"),
                  std::string::npos)
            << e.what();
    }
    // Resume without a checkpoint directory is a usage error.
    options.checkpoint_dir.clear();
    EXPECT_THROW((void)dist::run_sharded(spec, options), std::invalid_argument);
}

TEST(dist_checkpoint, many_round_log_streams_back_exactly) {
    // open_for_resume streams rounds.log line by line (util::scan_lines)
    // rather than slurping it; a log far larger than the scanner's read
    // chunk must replay every round in order with every hexfloat intact,
    // including entries straddling chunk boundaries.
    const auto dir = fresh_dir("many");
    constexpr std::uint64_t kRounds = 500;
    {
        auto log = dist::checkpoint_log::create(dir, /*digest=*/7);
        for (std::uint64_t round = 1; round <= kRounds; ++round) {
            std::vector<dist::partial_block> blocks;
            for (std::uint64_t b = 0; b < 3; ++b) {
                dist::partial_block block;
                block.index = (round - 1) * 3 + b;
                block.cell = b;
                block.partial.trials = 4;
                block.partial.hijacks = round % 5;
                block.partial.queries.add(static_cast<double>(round) / 3.0);
                block.partial.queries.add(static_cast<double>(b) + 0.0625);
                blocks.push_back(block);
            }
            log.append(round, blocks);
        }
    }
    const auto log_path = dir + "/rounds.log";
    EXPECT_EQ(line_count(read_file(log_path)), kRounds);

    auto log = dist::checkpoint_log::open_for_resume(dir, 7);
    const auto& entries = log.recorded();
    ASSERT_EQ(entries.size(), kRounds);
    for (std::uint64_t round = 1; round <= kRounds; ++round) {
        const auto& entry = entries[round - 1];
        ASSERT_EQ(entry.round, round);
        ASSERT_EQ(entry.blocks.size(), 3u);
        for (std::uint64_t b = 0; b < 3; ++b) {
            const auto& block = entry.blocks[b];
            EXPECT_EQ(block.index, (round - 1) * 3 + b);
            EXPECT_EQ(block.partial.hijacks, round % 5);
            // Bit-exact Welford state through the wire and back.
            util::welford_accumulator expect;
            expect.add(static_cast<double>(round) / 3.0);
            expect.add(static_cast<double>(b) + 0.0625);
            EXPECT_EQ(block.partial.queries.save().mean, expect.save().mean);
            EXPECT_EQ(block.partial.queries.save().m2, expect.save().m2);
        }
    }
}

TEST(dist_checkpoint, log_api_round_trips_and_validates_digest) {
    const auto dir = fresh_dir("api");
    {
        auto log = dist::checkpoint_log::create(dir, /*digest=*/42);
        EXPECT_TRUE(log.recorded().empty());
        EXPECT_EQ(log.directory(), dir);
    }
    // A second create must refuse; resume with the wrong digest must too.
    EXPECT_THROW((void)dist::checkpoint_log::create(dir, 42),
                 std::runtime_error);
    EXPECT_THROW((void)dist::checkpoint_log::open_for_resume(dir, 43),
                 std::runtime_error);
    auto log = dist::checkpoint_log::open_for_resume(dir, 42);
    EXPECT_TRUE(log.recorded().empty());
}

}  // namespace
}  // namespace pssp
