#include "vm/memory.hpp"

#include <cstring>
#include <utility>

#include "util/bytes.hpp"

namespace pssp::vm {

memory::memory(const layout& lay)
    : layout_{lay},
      globals_{lay.globals_base, std::vector<std::uint8_t>(lay.globals_size, 0)},
      stack_{lay.stack_top - lay.stack_size, std::vector<std::uint8_t>(lay.stack_size, 0)},
      tls_{lay.tls_base, std::vector<std::uint8_t>(lay.tls_size, 0)} {}

const memory::region* memory::find(std::uint64_t addr, std::size_t size) const noexcept {
    if (stack_.contains(addr, size)) return &stack_;
    if (globals_.contains(addr, size)) return &globals_;
    if (tls_.contains(addr, size)) return &tls_;
    return nullptr;
}

memory::region* memory::find(std::uint64_t addr, std::size_t size) noexcept {
    return const_cast<region*>(std::as_const(*this).find(addr, size));
}

std::uint8_t memory::load8(std::uint64_t addr) const {
    const region* r = find(addr, 1);
    if (r == nullptr) throw mem_fault{addr, 1, "load8: unmapped address"};
    return r->bytes[addr - r->base];
}

std::uint32_t memory::load32(std::uint64_t addr) const {
    const region* r = find(addr, 4);
    if (r == nullptr) throw mem_fault{addr, 4, "load32: unmapped address"};
    return util::load_le32(std::span{r->bytes}.subspan(addr - r->base, 4));
}

std::uint64_t memory::load64(std::uint64_t addr) const {
    const region* r = find(addr, 8);
    if (r == nullptr) throw mem_fault{addr, 8, "load64: unmapped address"};
    return util::load_le64(std::span{r->bytes}.subspan(addr - r->base, 8));
}

void memory::store8(std::uint64_t addr, std::uint8_t value) {
    region* r = find(addr, 1);
    if (r == nullptr) throw mem_fault{addr, 1, "store8: unmapped address"};
    r->bytes[addr - r->base] = value;
}

void memory::store32(std::uint64_t addr, std::uint32_t value) {
    region* r = find(addr, 4);
    if (r == nullptr) throw mem_fault{addr, 4, "store32: unmapped address"};
    util::store_le32(std::span{r->bytes}.subspan(addr - r->base, 4), value);
}

void memory::store64(std::uint64_t addr, std::uint64_t value) {
    region* r = find(addr, 8);
    if (r == nullptr) throw mem_fault{addr, 8, "store64: unmapped address"};
    util::store_le64(std::span{r->bytes}.subspan(addr - r->base, 8), value);
}

void memory::read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
    const region* r = find(addr, out.size());
    if (r == nullptr) throw mem_fault{addr, out.size(), "read_bytes: unmapped range"};
    std::memcpy(out.data(), r->bytes.data() + (addr - r->base), out.size());
}

void memory::write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data) {
    region* r = find(addr, data.size());
    if (r == nullptr) throw mem_fault{addr, data.size(), "write_bytes: unmapped range"};
    std::memcpy(r->bytes.data() + (addr - r->base), data.data(), data.size());
}

bool memory::contains(std::uint64_t addr, std::size_t size) const noexcept {
    return find(addr, size) != nullptr;
}

std::span<const std::uint8_t> memory::stack_bytes() const noexcept { return stack_.bytes; }
std::span<const std::uint8_t> memory::tls_bytes() const noexcept { return tls_.bytes; }
std::span<const std::uint8_t> memory::globals_bytes() const noexcept {
    return globals_.bytes;
}

std::size_t memory::resident_bytes() const noexcept {
    return globals_.bytes.size() + stack_.bytes.size() + tls_.bytes.size();
}

}  // namespace pssp::vm
