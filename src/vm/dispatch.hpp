// Direct-threaded dispatch: the decoded-op stream behind machine::run().
//
// program::finalize() lowers every instruction into one `decoded_op` — a
// flat, cache-friendly record carrying a handler id, the pre-extracted
// operands, and the pre-resolved control flow — and appends a trapping
// sentinel op past the end of the stream. The interpreter's hot loop then
// needs no per-iteration bounds check (falling off the end lands on the
// sentinel, and every jump target was validated at lowering time) and no
// per-step result construction: each handler jumps straight to the next
// op's handler (computed goto under GCC/Clang, a token-threaded switch
// over the same handler ids elsewhere).
//
// On top of the 1:1 lowering, a fusion pass upgrades the hottest adjacent
// pairs in the seed workloads (compare+branch back-edges, the push/mov
// frame prologue, load+accumulate bodies, and the SSP epilogue's
// xor-canary-then-jne check) into superinstructions: position i gets a
// fused handler that executes insns i and i+1 in one dispatch. The stream
// layout is untouched — position i+1 keeps its standalone lowering, so a
// jump into the middle of a fused pair executes exactly as before, and a
// fuel boundary between the halves pauses with rip on the second half.
// Fused execution charges each half's cost-table entry in order and
// attributes a second-half fault to the second instruction, so cycles_,
// steps_, rip and fault state stay observation-equivalent to the
// one-instruction-at-a-time stepper at every event boundary.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "vm/isa.hpp"

namespace pssp::vm {

class machine;  // forward; native helpers receive the executing machine

// Host-implemented helper bound to a text address (PLT analog). Invoked by
// `call`; arguments/results pass through the machine's registers per SysV.
using native_fn = std::function<void(machine&)>;

// ---- Dispatch-mode selection ----------------------------------------------
// Purely an execution-speed knob, like campaign jobs counts and master
// reuse: both engines drive the same architectural state, so everything
// outcome-relevant (registers, flags, memory, output, cycles_, steps_,
// traps) is byte-identical across modes — campaign reports included.
enum class dispatch_mode : std::uint8_t {
    threaded,     // decoded-op stream, superinstructions, batched accounting
    switch_loop,  // legacy per-instruction switch stepper (debug/differential)
};

[[nodiscard]] std::string to_string(dispatch_mode mode);
[[nodiscard]] std::optional<dispatch_mode> dispatch_from_string(const std::string& s);

// Process-wide default consulted at machine construction. Initialized from
// the PSSP_VM_DISPATCH environment variable ("threaded" / "switch") on
// first use so fork/exec'd campaign workers inherit the parent's mode;
// falls back to threaded. set_default_dispatch overrides it in-process.
[[nodiscard]] dispatch_mode default_dispatch() noexcept;
void set_default_dispatch(dispatch_mode mode) noexcept;

// ---- Handler ids ----------------------------------------------------------
// Values below opcode_count are the 1:1 lowering (handler id == opcode);
// the fused superinstructions follow, then the end-of-stream sentinel.
// A plain uint16, not an enum class, because the dispatch table is indexed
// with it on every executed instruction.
namespace hop {
inline constexpr std::uint16_t fuse_cmp_rr_jcc = opcode_count + 0;
inline constexpr std::uint16_t fuse_cmp_ri_jcc = opcode_count + 1;
inline constexpr std::uint16_t fuse_test_rr_jcc = opcode_count + 2;
inline constexpr std::uint16_t fuse_xor_rm_jcc = opcode_count + 3;  // canary check
inline constexpr std::uint16_t fuse_push_push = opcode_count + 4;
inline constexpr std::uint16_t fuse_push_mov_rr = opcode_count + 5;  // frame setup
inline constexpr std::uint16_t fuse_mov_rm_add_rr = opcode_count + 6;
inline constexpr std::uint16_t fuse_sub_ri_cmp_ri = opcode_count + 7;
inline constexpr std::uint16_t fuse_mov_mr_xor_ri = opcode_count + 8;
inline constexpr std::uint16_t fuse_add_ri_ret = opcode_count + 9;  // leaf epilogue
inline constexpr std::uint16_t sentinel = opcode_count + 10;  // end-of-stream trap
inline constexpr std::size_t count = opcode_count + 11;
}  // namespace hop

// X-macro lists of every handler in jump-table order: base ops exactly in
// opcode-enum order, then the fused ids in hop order. The threaded
// engine's jump table and the handler-name table are both generated from
// these, so the id<->position correspondence cannot drift between them.
#define PSSP_BASE_OPS(X)                                                       \
    X(nop) X(push_r) X(push_i) X(pop_r) X(mov_rr) X(mov_ri) X(mov_rm)          \
    X(mov_mr) X(mov_mi) X(mov32_rm) X(mov32_mr) X(movzx8_rm) X(mov8_mr)        \
    X(lea) X(add_rr) X(add_ri) X(sub_rr) X(sub_ri) X(xor_rr) X(xor_ri)         \
    X(xor_rm) X(or_rr) X(and_ri) X(shl_ri) X(shr_ri) X(imul_rr) X(imul_ri)     \
    X(cmp_rr) X(cmp_ri) X(cmp_rm) X(test_rr) X(je) X(jne) X(jb) X(jae) X(jl)   \
    X(jge) X(jnc) X(jmp) X(call) X(ret) X(leave) X(rdrand_r) X(rdtsc)          \
    X(movq_xr) X(movq_rx) X(movhps_xm) X(punpckhqdq_xr) X(movdqu_mx)           \
    X(movdqu_xm) X(cmp128_xm) X(syscall_i) X(trap_abort) X(hlt) X(sim_delay)

#define PSSP_FUSED_OPS(X)                                                      \
    X(fuse_cmp_rr_jcc) X(fuse_cmp_ri_jcc) X(fuse_test_rr_jcc)                  \
    X(fuse_xor_rm_jcc) X(fuse_push_push) X(fuse_push_mov_rr)                   \
    X(fuse_mov_rm_add_rr) X(fuse_sub_ri_cmp_ri) X(fuse_mov_mr_xor_ri)          \
    X(fuse_add_ri_ret) X(sentinel)

// ---- Execution profiles (obs telemetry) -----------------------------------
// Optional per-handler hit/cycle counters for machine::run(): one slot per
// handler id, superinstructions included, so a profile ranks exactly what
// the dispatcher dispatches — the block-selection input a baseline JIT
// wants. A machine profiles only when given a profile via set_profile();
// the pointer is shared through snapshot/fork copies, so every clone of a
// profiled master aggregates into one table. Counters are plain (not
// atomic): profile runs are single-threaded bench runs, and the unprofiled
// hot loop is a separate template instantiation that touches none of this.
struct exec_profile {
    std::array<std::uint64_t, hop::count> hits{};    // dispatches per handler
    std::array<std::uint64_t, hop::count> cycles{};  // cost-model cycles charged
};

// Static name for a handler id ("mov_rm", "fuse_cmp_ri_jcc", ...) — the
// X-macro-generated twin of the jump table; "?" past hop::count.
[[nodiscard]] const char* handler_name(std::uint16_t handler) noexcept;

// ---- Lowering metadata ------------------------------------------------------
// True for superinstruction handler ids: the record at this position
// executes its own instruction AND the next one in a single dispatch. The
// sentinel is not fused — it consumes nothing.
[[nodiscard]] constexpr bool is_fused_handler(std::uint16_t handler) noexcept {
    return handler >= opcode_count && handler != hop::sentinel &&
           handler < hop::count;
}

// Number of instruction-stream slots one dispatch of `handler` retires:
// 2 for fused pairs, 1 otherwise (sentinel included — it traps in place).
// CFG recovery uses this to place block walls: a fused position i implies
// positions i and i+1 execute back-to-back *when entered at i*, while an
// entry at i+1 (a jump into the pair middle) runs the standalone record
// kept there — so fusion never changes reachable block boundaries, only
// annotates them.
[[nodiscard]] constexpr unsigned handler_width(std::uint16_t handler) noexcept {
    return is_fused_handler(handler) ? 2u : 1u;
}

// One decoded op: everything a handler touches, in one 48-byte record
// (instruction operands + resolved flow live in three parallel arrays on
// the legacy path). Fused handlers read their second half from the next
// record — adjacent in the same cache stream — so fusion never widens the
// layout; it only swaps the handler id at the first half's position.
struct decoded_op {
    std::uint16_t handler = 0;      // hop id; base ops: == static_cast(op)
    opcode op = opcode::nop;        // original opcode: cost-table index
    reg r1 = reg::none;
    reg r2 = reg::none;
    xreg x1 = xreg::none;
    xreg x2 = xreg::none;
    std::uint8_t fs = 0;            // memory operand is %fs-relative
    reg mbase = reg::none;          // memory operand base register
    std::int32_t disp = 0;          // memory operand displacement
    std::uint32_t target = no_id;   // pre-resolved jmp/jcc/call target index
    std::uint64_t imm = 0;
    std::uint64_t return_addr = 0;  // call: address of the next instruction
    const native_fn* native = nullptr;  // call: bound native helper
};

// 1:1 lowering of one instruction plus its pre-resolved flow fields into a
// decoded op. Fusion and the sentinel are program::finalize()'s job.
[[nodiscard]] decoded_op lower_op(const instruction& insn, std::uint32_t flow_target,
                                  std::uint64_t return_addr, const native_fn* native);

// The trapping end-of-stream record (hop::sentinel).
[[nodiscard]] decoded_op sentinel_op() noexcept;

// Fused handler id for the adjacent pair (a, b), or 0 when the pair is not
// a recognized superinstruction. Positions are upgraded independently —
// overlapping matches are fine because a fused op always re-enters the
// stream two slots down, where every record still has its standalone form.
[[nodiscard]] std::uint16_t fuse_pair(const instruction& a, const instruction& b) noexcept;

}  // namespace pssp::vm
