#include "dist/chaos.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pssp::dist {

namespace {

[[noreturn]] void fail(std::size_t entry, const std::string& why) {
    throw std::invalid_argument{"fault plan: entry " + std::to_string(entry) +
                                ": " + why};
}

// One ":"-separated field of a rule: an integer coordinate or "*".
// `any` and `value` are outputs; throws on anything else.
void parse_coordinate(std::size_t entry, std::string_view token,
                      std::string_view rule, bool& any, std::uint64_t& value) {
    if (token == "*") {
        any = true;
        return;
    }
    if (token.empty())
        fail(entry, "empty coordinate in rule \"" + std::string{rule} + "\"");
    std::uint64_t parsed = 0;
    for (const char c : token) {
        if (c < '0' || c > '9')
            fail(entry, "bad coordinate \"" + std::string{token} +
                            "\" in rule \"" + std::string{rule} + "\"");
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    any = false;
    value = parsed;
}

// A "name=millis" fault token; `name` includes the '='.
void parse_millis(std::size_t entry, std::string_view fault,
                  std::string_view name, std::string_view rule,
                  std::uint64_t& value) {
    bool any = false;
    parse_coordinate(entry, fault.substr(name.size()), rule, any, value);
    if (any)
        fail(entry, std::string{name.substr(0, name.size() - 1)} +
                        " needs a millisecond count in rule \"" +
                        std::string{rule} + "\"");
}

fault_rule parse_rule(std::size_t entry, std::string_view rule) {
    // Split on ':' into at most 4 fields: fault[:shard[:round[:attempt]]].
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= rule.size(); ++i) {
        if (i == rule.size() || rule[i] == ':') {
            fields.push_back(rule.substr(start, i - start));
            start = i + 1;
        }
    }
    if (fields.empty() || fields.size() > 4)
        fail(entry,
             "rule \"" + std::string{rule} + "\" has too many fields");

    fault_rule out;
    std::string_view fault = fields[0];
    if (fault == "crash") {
        out.kind = fault_kind::crash;
    } else if (fault == "crash-late") {
        out.kind = fault_kind::crash_late;
    } else if (fault == "hang") {
        out.kind = fault_kind::hang;
    } else if (fault == "trunc") {
        out.kind = fault_kind::trunc;
    } else if (fault == "corrupt") {
        out.kind = fault_kind::corrupt;
    } else if (fault == "wrong-block") {
        out.kind = fault_kind::wrong_block;
    } else if (fault.substr(0, 5) == "slow=") {
        out.kind = fault_kind::slow;
        parse_millis(entry, fault, "slow=", rule, out.param);
    } else if (fault == "net-die") {
        out.kind = fault_kind::net_die;
    } else if (fault == "net-drop") {
        out.kind = fault_kind::net_drop;
    } else if (fault == "net-garble") {
        out.kind = fault_kind::net_garble;
    } else if (fault.substr(0, 10) == "net-delay=") {
        out.kind = fault_kind::net_delay;
        parse_millis(entry, fault, "net-delay=", rule, out.param);
    } else if (fault.substr(0, 14) == "net-partition=") {
        out.kind = fault_kind::net_partition;
        parse_millis(entry, fault, "net-partition=", rule, out.param);
    } else if (fault == "net-stall-hb") {
        out.kind = fault_kind::net_stall_hb;
    } else {
        fail(entry, "unknown fault \"" + std::string{fault} + "\" in rule \"" +
                        std::string{rule} + "\"");
    }

    if (fields.size() > 1)
        parse_coordinate(entry, fields[1], rule, out.any_shard, out.shard);
    if (fields.size() > 2)
        parse_coordinate(entry, fields[2], rule, out.any_round, out.round);
    if (fields.size() > 3)
        parse_coordinate(entry, fields[3], rule, out.any_attempt, out.attempt);
    return out;
}

template <typename Keep>
fault_rule decide_matching(const fault_plan& plan, std::uint64_t shard,
                           std::uint64_t round, std::uint64_t attempt,
                           Keep keep) noexcept {
    for (const auto& rule : plan.rules) {
        if (!keep(rule.kind)) continue;
        if (!rule.any_shard && rule.shard != shard) continue;
        if (!rule.any_round && rule.round != round) continue;
        if (!rule.any_attempt && rule.attempt != attempt) continue;
        return rule;
    }
    return fault_rule{};
}

}  // namespace

const char* to_string(fault_kind kind) noexcept {
    switch (kind) {
        case fault_kind::none: return "none";
        case fault_kind::crash: return "crash";
        case fault_kind::crash_late: return "crash-late";
        case fault_kind::hang: return "hang";
        case fault_kind::trunc: return "trunc";
        case fault_kind::corrupt: return "corrupt";
        case fault_kind::wrong_block: return "wrong-block";
        case fault_kind::slow: return "slow";
        case fault_kind::net_die: return "net-die";
        case fault_kind::net_drop: return "net-drop";
        case fault_kind::net_garble: return "net-garble";
        case fault_kind::net_delay: return "net-delay";
        case fault_kind::net_partition: return "net-partition";
        case fault_kind::net_stall_hb: return "net-stall-hb";
    }
    return "?";
}

bool is_net_fault(fault_kind kind) noexcept {
    switch (kind) {
        case fault_kind::net_die:
        case fault_kind::net_drop:
        case fault_kind::net_garble:
        case fault_kind::net_delay:
        case fault_kind::net_partition:
        case fault_kind::net_stall_hb:
            return true;
        default:
            return false;
    }
}

fault_plan parse_fault_plan(std::string_view text) {
    fault_plan plan;
    if (text.empty()) return plan;
    std::size_t entry = 1;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == ',') {
            const auto rule = text.substr(start, i - start);
            // An empty entry in a non-empty plan is a typo (stray comma),
            // and a typo'd chaos plan must never green-run.
            if (rule.empty()) fail(entry, "empty rule (stray comma?)");
            plan.rules.push_back(parse_rule(entry, rule));
            start = i + 1;
            ++entry;
        }
    }
    return plan;
}

fault_rule decide_fault(const fault_plan& plan, std::uint64_t shard,
                        std::uint64_t round, std::uint64_t attempt) noexcept {
    return decide_matching(plan, shard, round, attempt,
                           [](fault_kind) { return true; });
}

fault_rule decide_process_fault(const fault_plan& plan, std::uint64_t shard,
                                std::uint64_t round,
                                std::uint64_t attempt) noexcept {
    return decide_matching(plan, shard, round, attempt,
                           [](fault_kind k) { return !is_net_fault(k); });
}

fault_rule decide_net_fault(const fault_plan& plan, std::uint64_t shard,
                            std::uint64_t round,
                            std::uint64_t attempt) noexcept {
    return decide_matching(plan, shard, round, attempt,
                           [](fault_kind k) { return is_net_fault(k); });
}

}  // namespace pssp::dist
