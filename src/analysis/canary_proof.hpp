// Canary-protocol proof engine: per-function abstract interpretation over
// the recovered CFG.
//
// For every application function the checker proves the protocol the
// paper's instrumentation promises (Codes 1-9): every path from the
// prologue to every `ret` installs the scheme's canary material into its
// frame slot(s), compares it against the TLS canary (or re-derives it
// through the OWF helper) under a conditional that guards an abort path,
// and never writes a canary slot with non-canary data in between.
//
// The abstract domain tracks, per path:
//   * a stack-depth lattice (push/pop/sub rsp/leave; joins of unequal
//     depths go to "unknown", and a `ret` at a known non-zero depth is a
//     violation);
//   * register/xmm/flags taint: whether a value derives from a canary
//     source (TLS slots, rdrand, rdtsc, the OWF helper) and which recorded
//     frame slots fed it;
//   * a per-slot state machine `untracked -> installed -> checked` (with
//     `clobbered` for a non-canary store into a live slot), min-joined at
//     merge points so "checked" survives only when it holds on all paths.
//
// Violations carry the function, block id, absolute op index, and the
// abstract state that broke — e.g. "ret reachable with canary
// state=installed, never checked".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "binfmt/image.hpp"
#include "core/scheme.hpp"

namespace pssp::analysis {

// Where canary material originates. Powers of two: function_proof::sources
// is the union bitmask over every install and check the checker saw.
enum class canary_source : std::uint16_t {
    tls_canary = 1u << 0,     // %fs:0x28 (C)
    tls_shadow_c0 = 1u << 1,  // %fs:0x2a8
    tls_shadow_c1 = 1u << 2,  // %fs:0x2b0
    tls_cab = 1u << 3,        // DynaGuard CAB top pointer
    tls_dcr = 1u << 4,        // DCR list-head pointer
    tls_gbuf = 1u << 5,       // P-SSP-GB buffer top pointer
    tls_owf_key = 1u << 6,    // OWF key backup words
    hw_random = 1u << 7,      // rdrand
    timestamp = 1u << 8,      // rdtsc (the OWF nonce)
    owf = 1u << 9,            // result of the AES/SHA1 helper call
};

[[nodiscard]] std::string source_names(std::uint16_t mask);

enum class check_kind : std::uint8_t {
    inline_guard,   // compiled shape: flags produced inline, jcc guards abort
    checking_call,  // rewritten shape: __stack_chk_fail verifies rdi (Fig 3)
};

struct violation {
    std::string function;
    std::uint32_t block = 0;     // cfg block id
    std::uint32_t op_index = 0;  // absolute instruction index in the program
    std::string message;         // includes the abstract state that broke
};

// One canary frame slot, keyed by its rbp-relative offset (negative).
struct slot_record {
    std::int32_t offset = 0;
    std::int32_t bytes = 8;

    friend bool operator==(const slot_record&, const slot_record&) = default;
};

struct install_record {
    std::uint32_t op_index = 0;  // absolute index of the installing store
    std::int32_t slot = 0;
};

struct check_record {
    std::uint32_t guard_index = 0;    // the jcc consuming the comparison
    std::uint32_t compare_index = 0;  // last flags producer (or the call)
    check_kind kind = check_kind::inline_guard;
};

struct function_proof {
    std::string name;
    std::uint32_t first_index = 0;  // program index of the entry instruction
    std::uint32_t insn_count = 0;
    bool analyzed = false;   // libc/appended functions are skipped by default
    bool is_protected = false;  // any canary install proven
    std::vector<slot_record> slots;  // sorted by offset
    std::uint16_t sources = 0;       // canary_source union (installs + checks)
    std::vector<install_record> installs;
    std::vector<check_record> checks;
    int rets = 0;
    std::vector<violation> violations;

    [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
    [[nodiscard]] bool saw_inline_check() const noexcept;
    [[nodiscard]] bool saw_checking_call() const noexcept;
};

struct proof_result {
    std::vector<function_proof> functions;  // layout order

    [[nodiscard]] bool clean() const noexcept;
    [[nodiscard]] const function_proof* find(const std::string& name) const noexcept;
    [[nodiscard]] std::vector<violation> all_violations() const;
};

struct proof_options {
    bool include_libc = false;  // also analyze from_libc / appended functions
};

// Analyzes every function of `binary`. Builds the program + CFG once;
// each function is interpreted intra-procedurally (calls apply a
// caller-saved clobber summary; calls to __stack_chk_fail and the OWF
// helpers get protocol-aware transfer functions).
[[nodiscard]] proof_result prove_canary_protocol(const binfmt::linked_binary& binary,
                                                 const proof_options& options = {});

// The sources a scheme's instrumentation must exhibit, given how many
// canary slots its frame plan allocated — the profile half of the matrix
// gate (violations are the protocol half).
[[nodiscard]] std::uint16_t expected_sources(core::scheme_kind kind,
                                             std::size_t canary_count);

}  // namespace pssp::analysis
