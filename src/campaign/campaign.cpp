#include "campaign/campaign.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace pssp::campaign {

campaign_spec default_spec() {
    campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::raf_ssp,
                    core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::brute_force,
                    attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    return spec;
}

cell_report reduce_cell(core::scheme_kind scheme, attack::attack_kind attack,
                        workload::target_kind target,
                        std::span<const trial_result> trials) {
    cell_report cell;
    cell.scheme = scheme;
    cell.attack = attack;
    cell.target = target;
    cell.trials = trials.size();
    for (const auto& t : trials) {
        if (t.hijacked) {
            ++cell.hijacks;
            cell.queries_to_compromise.add(static_cast<double>(t.oracle_queries));
        }
        if (t.detected) ++cell.detections;
        cell.queries.add(static_cast<double>(t.oracle_queries));
        cell.leaked_bytes_valid.add(static_cast<double>(t.leaked_bytes_valid));
        cell.canary_detections += t.canary_detections;
        cell.other_crashes += t.other_crashes;
    }
    if (cell.trials > 0) {
        cell.hijack_rate =
            static_cast<double>(cell.hijacks) / static_cast<double>(cell.trials);
        cell.detection_rate =
            static_cast<double>(cell.detections) / static_cast<double>(cell.trials);
    }
    cell.hijack_ci = util::wilson_interval(cell.hijacks, cell.trials);
    cell.detection_ci = util::wilson_interval(cell.detections, cell.trials);
    return cell;
}

namespace {

// Shortest-round-trip formatting would vary in width; a fixed "%.9g" keeps
// the JSON byte-stable across runs while losing nothing a rate needs.
void append_number(std::string& out, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    out += buf;
}

void append_kv(std::string& out, const char* key, double value, bool comma = true) {
    out += '"';
    out += key;
    out += "\":";
    append_number(out, value);
    if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool comma = true) {
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
    if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, const std::string& value,
               bool comma = true) {
    out += '"';
    out += key;
    out += "\":\"";
    out += value;  // names are identifier-like; no escaping needed
    out += '"';
    if (comma) out += ',';
}

void append_interval(std::string& out, const char* key, const util::interval& iv,
                     bool comma = true) {
    out += '"';
    out += key;
    out += "\":[";
    append_number(out, iv.lo);
    out += ',';
    append_number(out, iv.hi);
    out += ']';
    if (comma) out += ',';
}

void append_accumulator(std::string& out, const char* key,
                        const util::welford_accumulator& acc, bool comma = true) {
    out += '"';
    out += key;
    out += "\":{";
    append_kv(out, "count", static_cast<std::uint64_t>(acc.count()));
    append_kv(out, "mean", acc.mean());
    append_kv(out, "stddev", acc.stddev());
    append_kv(out, "min", acc.count() ? acc.min() : 0.0);
    append_kv(out, "max", acc.count() ? acc.max() : 0.0, /*comma=*/false);
    out += '}';
    if (comma) out += ',';
}

}  // namespace

std::string campaign_report::to_json() const {
    std::string out;
    out.reserve(1024 + cells.size() * 512);
    out += "{\"campaign\":{";
    append_kv(out, "master_seed", spec.master_seed);
    append_kv(out, "trials_per_cell", spec.trials_per_cell);
    append_kv(out, "query_budget", spec.query_budget);
    append_kv(out, "brute_unknown_bits",
              static_cast<std::uint64_t>(spec.brute_unknown_bits),
              /*comma=*/false);
    out += "},\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        if (i) out += ',';
        out += '{';
        append_kv(out, "target", workload::to_string(c.target));
        append_kv(out, "scheme", core::to_string(c.scheme));
        append_kv(out, "attack", attack::to_string(c.attack));
        append_kv(out, "trials", c.trials);
        append_kv(out, "hijacks", c.hijacks);
        append_kv(out, "detections", c.detections);
        append_kv(out, "hijack_rate", c.hijack_rate);
        append_interval(out, "hijack_ci95", c.hijack_ci);
        append_kv(out, "detection_rate", c.detection_rate);
        append_interval(out, "detection_ci95", c.detection_ci);
        append_accumulator(out, "oracle_queries", c.queries);
        append_accumulator(out, "queries_to_compromise", c.queries_to_compromise);
        append_accumulator(out, "leaked_bytes_valid", c.leaked_bytes_valid);
        append_kv(out, "canary_detections", c.canary_detections);
        append_kv(out, "other_crashes", c.other_crashes, /*comma=*/false);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string campaign_report::to_table() const {
    util::text_table t{{"target", "scheme", "attack", "hijack rate",
                        "detect rate [95% CI]", "mean queries",
                        "mean q-to-compromise", "leak bytes valid"}};
    char buf[96];
    for (const auto& c : cells) {
        std::snprintf(buf, sizeof buf, "%.3f", c.hijack_rate);
        std::string hijack = buf;
        std::snprintf(buf, sizeof buf, "%.3f [%.3f, %.3f]", c.detection_rate,
                      c.detection_ci.lo, c.detection_ci.hi);
        std::string detect = buf;
        std::snprintf(buf, sizeof buf, "%.1f", c.queries.mean());
        std::string queries = buf;
        std::string compromise = "-";
        if (c.queries_to_compromise.count() > 0) {
            std::snprintf(buf, sizeof buf, "%.1f", c.queries_to_compromise.mean());
            compromise = buf;
        }
        std::snprintf(buf, sizeof buf, "%.2f", c.leaked_bytes_valid.mean());
        std::string leak = buf;
        t.add_row({workload::to_string(c.target), core::to_string(c.scheme),
                   attack::to_string(c.attack), hijack, detect, queries,
                   compromise, leak});
    }
    return t.render("Campaign outcome matrix");
}

}  // namespace pssp::campaign
