// Opening a result store: verify, repair, serve.
//
// load_store() materializes a store directory into row vectors the query
// engine scans: column segments are read first (each verified against the
// manifest's FNV-1a hash), then the ingest-log tail past the compaction
// frontier. The ingest log is ground truth — a segment whose bytes do not
// hash to the manifest's value (a torn mid-write crash, a flipped bit) is
// rebuilt from the log rows covering its sequence range, and the rebuilt
// bytes must reproduce the manifest hash exactly: segment encoding is a
// pure function of its rows, so a repair either restores the original
// file bit-for-bit or proves the log itself is damaged and fails loudly.
//
// A torn *final* log line (no trailing newline — the one state a killed
// single-write(2) appender can leave) is dropped and reported; a torn or
// corrupt line anywhere else is a hard error, same policy as checkpoint
// resume.
//
// store_tailer is the `--follow` primitive: an incremental poll over
// ingest.log that yields each newly completed hashed line as a decoded
// entry, riding on the writer's line-atomic appends — a poll never sees a
// half-written entry, only complete lines or nothing.
#pragma once

#include <string>
#include <vector>

#include "store/format.hpp"

namespace pssp::store {

struct store_data {
    std::string directory;
    manifest meta;
    // Segment rows first (manifest order), then log-tail rows — ascending
    // ingest seq throughout. Blocks are NOT deduplicated here; the query
    // layer dedups by block index (lowest seq wins).
    std::vector<block_row> blocks;
    std::vector<round_row> rounds;
    std::string metrics;  // obs::registry snapshot; empty until finalized
    bool complete = false;
    completion done;
    std::uint64_t next_seq = 1;  // one past the highest seq on disk
    // What load had to tolerate/repair (exposed for tests and --verify).
    std::uint64_t repaired_segments = 0;
    bool dropped_torn_tail = false;
};

struct load_options {
    // Rewrite repaired segments back to disk (tmp + rename). Off = serve
    // the rebuilt rows without touching the directory (read-only media).
    bool repair = true;
};

[[nodiscard]] store_data load_store(const std::string& dir,
                                    const load_options& options = {});

class store_tailer {
  public:
    explicit store_tailer(std::string dir);

    // Decodes every complete line appended since the last poll, in order.
    // A store directory or log that does not exist yet yields nothing —
    // the campaign may not have started. Corrupt complete lines throw.
    [[nodiscard]] std::vector<log_entry> poll();

    [[nodiscard]] bool complete() const noexcept { return complete_; }

  private:
    std::string log_path_;
    std::uint64_t offset_ = 0;
    std::size_t line_no_ = 0;
    std::string pending_;  // partial line carried across polls
    bool complete_ = false;
};

}  // namespace pssp::store
