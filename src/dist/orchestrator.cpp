#include "dist/orchestrator.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <limits.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/wire.hpp"

namespace pssp::dist {

namespace {

struct worker_process {
    pid_t pid = -1;
    int stdout_fd = -1;
    std::string output;
    std::string error;  // first failure observed for this shard
    int exit_status = -1;
};

[[noreturn]] void exec_worker(const std::string& path, std::uint32_t shard,
                              std::uint32_t shards, int in_fd, int out_fd) {
    ::dup2(in_fd, STDIN_FILENO);
    ::dup2(out_fd, STDOUT_FILENO);
    // stderr stays inherited: worker diagnostics surface on the parent's.
    ::close(in_fd);
    ::close(out_fd);
    const std::string shard_arg = std::to_string(shard);
    const std::string shards_arg = std::to_string(shards);
    const char* argv[] = {path.c_str(),       "--shard", shard_arg.c_str(),
                          "--shards",         shards_arg.c_str(),
                          static_cast<const char*>(nullptr)};
    ::execv(path.c_str(), const_cast<char* const*>(argv));
    // Exec failed; 127 is the conventional "command not found" status the
    // parent turns into a pointed error message.
    std::fprintf(stderr, "campaign worker exec failed: %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::_exit(127);
}

void write_all(int fd, const std::string& data, std::string& error) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            // EPIPE: the worker died before reading its spec. Record it —
            // the wait status below says why.
            if (error.empty())
                error = std::string{"spec write failed: "} + std::strerror(errno);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void read_all(int fd, std::string& out) {
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            return;
        }
        if (n == 0) return;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

std::string describe_exit(int status) {
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) return {};
        if (code == 127) return "worker exec failed (bad worker path?)";
        return "worker exited with status " + std::to_string(code);
    }
    if (WIFSIGNALED(status))
        return std::string{"worker killed by signal "} +
               std::to_string(WTERMSIG(status)) + " (" +
               strsignal(WTERMSIG(status)) + ")";
    return "worker ended abnormally";
}

}  // namespace

std::string default_worker_path() {
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path{buf};
        const auto slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + "tools_campaign_worker";
    }
    return "./tools_campaign_worker";
}

campaign::campaign_report run_sharded(const campaign::campaign_spec& spec,
                                      const sharded_options& options) {
    if (options.shards == 0)
        throw std::invalid_argument{"run_sharded: shards must be >= 1"};
    const std::string worker = options.worker_path.empty()
                                   ? default_worker_path()
                                   : options.worker_path;

    // Per-shard execution knobs: split the requested parallelism across
    // the shard processes (each then also caps its master pools to that).
    campaign::campaign_spec shard_spec = spec;
    shard_spec.jobs =
        options.jobs_per_shard != 0
            ? options.jobs_per_shard
            : std::max(1u, campaign::resolve_jobs(spec.jobs) / options.shards);
    const std::string spec_json = spec_to_json(shard_spec);

    // A worker that dies before reading its spec must surface as its wait
    // status, not as SIGPIPE killing the orchestrator.
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    struct sigaction old_pipe {};
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    std::vector<worker_process> workers(options.shards);
    // On a mid-loop spawn failure (EMFILE, EAGAIN, ...) the workers already
    // forked must not be orphaned: kill them, drop their pipe fds, and reap
    // every one before throwing — the header's "all children are reaped"
    // contract holds on every exit path.
    auto abandon_spawned = [&](const char* what) {
        for (auto& w : workers) {
            if (w.pid < 0) continue;
            ::kill(w.pid, SIGKILL);
            ::close(w.stdout_fd);
            int status = 0;
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        throw std::runtime_error{std::string{"run_sharded: "} + what};
    };
    for (std::uint32_t k = 0; k < options.shards; ++k) {
        int in_pipe[2];
        int out_pipe[2];
        if (::pipe(in_pipe) != 0) abandon_spawned("pipe() failed");
        if (::pipe(out_pipe) != 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            abandon_spawned("pipe() failed");
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            abandon_spawned("fork() failed");
        }
        if (pid == 0) {
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            exec_worker(worker, k, options.shards, in_pipe[0], out_pipe[1]);
        }
        ::close(in_pipe[0]);
        ::close(out_pipe[1]);
        workers[k].pid = pid;
        workers[k].stdout_fd = out_pipe[0];
        // The spec is far below PIPE_BUF-scale pipe capacity, so writing it
        // before the worker produces output cannot deadlock.
        write_all(in_pipe[1], spec_json, workers[k].error);
        ::close(in_pipe[1]);
    }

    // Drain stdouts in shard order. A later worker whose pipe fills simply
    // blocks until its turn — the parent owes it nothing else.
    for (auto& w : workers) {
        read_all(w.stdout_fd, w.output);
        ::close(w.stdout_fd);
    }
    for (auto& w : workers) {
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        w.exit_status = status;
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    std::string failure;
    for (std::uint32_t k = 0; k < options.shards; ++k) {
        std::string why = describe_exit(workers[k].exit_status);
        if (why.empty() && !workers[k].error.empty()) why = workers[k].error;
        if (!why.empty()) {
            if (!failure.empty()) failure += "; ";
            failure += "shard " + std::to_string(k) + ": " + why;
        }
    }
    if (!failure.empty())
        throw std::runtime_error{"run_sharded: " + failure};

    std::vector<partial_report> partials;
    partials.reserve(options.shards);
    for (std::uint32_t k = 0; k < options.shards; ++k) {
        try {
            partials.push_back(partial_from_json(workers[k].output));
        } catch (const std::exception& e) {
            throw std::runtime_error{"run_sharded: shard " + std::to_string(k) +
                                     " emitted a bad partial: " + e.what()};
        }
        if (partials.back().shard_index != k ||
            partials.back().shard_count != options.shards)
            throw std::runtime_error{"run_sharded: shard " + std::to_string(k) +
                                     " identified as shard " +
                                     std::to_string(partials.back().shard_index) +
                                     "/" +
                                     std::to_string(partials.back().shard_count)};
    }
    return merge_partials(spec, partials);
}

}  // namespace pssp::dist
