// Algorithm 1 and the canary algebra: the unit-level half of Theorem 1.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "core/canary.hpp"
#include "util/stats.hpp"

namespace pssp {
namespace {

using core::canary_pair;
using core::re_randomize;

TEST(algorithm1, split_always_recombines_to_c) {
    crypto::xoshiro256 rng{17};
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t c = rng();
        const canary_pair pair = re_randomize(c, rng);
        EXPECT_EQ(pair.combined(), c);
    }
}

TEST(algorithm1, successive_splits_are_distinct) {
    crypto::xoshiro256 rng{18};
    const std::uint64_t c = 0xfeedfacecafebeefull;
    std::unordered_set<std::uint64_t> seen_c0;
    for (int i = 0; i < 4096; ++i) {
        const auto pair = re_randomize(c, rng);
        EXPECT_TRUE(seen_c0.insert(pair.c0).second) << "C0 repeated";
    }
}

// The crux of Theorem 1 at unit level: the distribution of C1 is uniform
// and identical for two different master canaries — observing C1 tells the
// adversary nothing about C.
TEST(algorithm1, c1_distribution_is_independent_of_c) {
    constexpr int samples = 200000;
    const std::uint64_t c_a = 0;
    const std::uint64_t c_b = ~std::uint64_t{0};
    std::vector<std::size_t> buckets_a(256, 0);
    std::vector<std::size_t> buckets_b(256, 0);
    crypto::xoshiro256 rng_a{99};
    crypto::xoshiro256 rng_b{99};  // same randomness, different C
    for (int i = 0; i < samples; ++i) {
        ++buckets_a[re_randomize(c_a, rng_a).c1 & 0xff];
        ++buckets_b[re_randomize(c_b, rng_b).c1 & 0xff];
    }
    const double crit = util::chi_square_critical_999(255);
    EXPECT_LT(util::chi_square_uniform(buckets_a), crit);
    EXPECT_LT(util::chi_square_uniform(buckets_b), crit);
}

TEST(algorithm1, exposure_of_c0_reveals_nothing_without_c1) {
    // Given only C0, every value of C remains possible: C = C0 ^ C1 and C1
    // ranges over the full domain. Sanity-check the arithmetic identity.
    crypto::xoshiro256 rng{7};
    const std::uint64_t c = rng();
    const auto pair = re_randomize(c, rng);
    for (std::uint64_t candidate_c : {std::uint64_t{0}, std::uint64_t{1}, c, ~c}) {
        const std::uint64_t required_c1 = pair.c0 ^ candidate_c;
        EXPECT_EQ(pair.c0 ^ required_c1, candidate_c);
    }
}

TEST(algorithm1_32bit, packed_layout_and_recombination) {
    crypto::xoshiro256 rng{21};
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t c = rng();
        const auto pair = core::re_randomize32(c, rng);
        EXPECT_EQ(pair.combined(), static_cast<std::uint32_t>(c));
        // packed(): C0 low, C1 high — and unpack inverts it (Fig 4).
        const auto unpacked = core::unpack32(pair.packed());
        EXPECT_EQ(unpacked, pair);
    }
}

TEST(algorithm1_32bit, unpack_splits_word_halves) {
    const auto pair = core::unpack32(0xaabbccdd11223344ull);
    EXPECT_EQ(pair.c0, 0x11223344u);
    EXPECT_EQ(pair.c1, 0xaabbccddu);
}

TEST(fresh_tls_canary, full_width_no_forced_zero_byte) {
    // Unlike glibc we keep all 64 bits random (DESIGN.md §5): over many
    // draws every byte position must take nonzero values.
    crypto::xoshiro256 rng{31};
    std::array<bool, 8> saw_nonzero{};
    for (int i = 0; i < 256; ++i) {
        const std::uint64_t c = core::fresh_tls_canary(rng);
        for (unsigned b = 0; b < 8; ++b)
            saw_nonzero[b] = saw_nonzero[b] || ((c >> (8 * b)) & 0xff) != 0;
    }
    for (unsigned b = 0; b < 8; ++b) EXPECT_TRUE(saw_nonzero[b]) << "byte " << b;
}

}  // namespace
}  // namespace pssp
