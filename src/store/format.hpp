// The result store's on-disk format: a streaming campaign observatory.
//
// A store directory is the queryable twin of a checkpoint: the same
// validated block partials the orchestrator accepts (and the round
// summaries / registry snapshots `src/obs/` produces) land here in a
// layout a reader can use *while the campaign is still running*:
//
//   <dir>/store.json    atomic manifest (tmp + rename): format version,
//                       spec digest, the canonicalized wire spec object,
//                       the compaction frontier, the completion flag, and
//                       the column-segment table with per-segment FNV-1a
//                       hashes.
//   <dir>/ingest.log    append-only hashed JSONL, one entry per ingest:
//                       accepted block partials (hexfloat-exact Welford
//                       state), round summaries, a final obs::registry
//                       metrics snapshot, and a terminal completion entry
//                       carrying the final report's FNV — each line
//                       written complete + fsynced, each line carrying
//                       its own integrity hash:
//
//                         {"e":{"k":"blocks",...},"fnv":"<16hex>"}
//
//   <dir>/seg-*.json    periodically compacted column segments: the log
//                       rows up to the compaction frontier re-laid as
//                       column arrays (integer tallies, hexfloat Welford
//                       columns, round/shard provenance), so aggregation
//                       scans columns instead of re-parsing JSONL.
//
// The ingest log is ground truth and is never truncated; segments are a
// read-optimized projection of a log prefix. Segment encoding is a pure
// function of its rows, so a torn segment (hash mismatch against the
// manifest after a mid-write crash) is rebuilt from the log on the next
// open and must re-hash to the manifest's value — corruption is repaired
// exactly or fails loudly, never papered over.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dist/wire.hpp"
#include "obs/telemetry.hpp"

namespace pssp::store {

inline constexpr std::uint32_t store_format_version = 1;

// One accepted block partial with its provenance: which ingest-log entry
// delivered it (seq) and which adaptive round produced it (0 = fixed).
struct block_row {
    std::uint64_t seq = 0;
    std::uint64_t round = 0;
    dist::partial_block block;
};

// One round summary as ingested. The summary is the *log-decoded* form
// (see store_writer::ingest_round): its doubles round-tripped through
// obs::round_summary_json once, so re-encoding a segment from replayed
// log rows reproduces the original segment bytes bit for bit.
struct round_row {
    std::uint64_t seq = 0;
    obs::round_summary summary;
};

// The terminal log entry: the campaign finished and its final report
// hashed to `report_fnv` — the self-check a reader's reconstructed
// report is compared against.
struct completion {
    std::uint64_t seq = 0;
    std::uint64_t rounds = 0;
    std::uint64_t report_fnv = 0;
};

struct segment_info {
    std::string file;  // relative to the store directory
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t block_rows = 0;
    std::uint64_t round_rows = 0;
    std::uint64_t fnv = 0;  // FNV-1a 64 over the entire segment file
};

struct manifest {
    std::uint32_t version = store_format_version;
    std::uint64_t spec_digest = 0;
    // Canonicalized spec (jobs = 1, reuse_masters = true — the digest's
    // own canonical form): execution knobs never reach the store.
    campaign::campaign_spec spec;
    std::uint64_t compacted_seq = 0;  // rows with seq <= this are segmented
    bool complete = false;
    std::vector<segment_info> segments;
};

// ---- ingest log entries ----

enum class entry_kind : std::uint8_t { blocks, round, metrics, complete };

struct log_entry {
    entry_kind kind = entry_kind::blocks;
    std::uint64_t seq = 0;
    std::uint64_t round = 0;                  // kind == blocks
    std::vector<dist::partial_block> blocks;  // kind == blocks
    obs::round_summary summary;               // kind == round
    std::string metrics;                      // kind == metrics (verbatim JSON)
    completion done;                          // kind == complete

    [[nodiscard]] static log_entry make_blocks(
        std::uint64_t seq, std::uint64_t round,
        std::span<const dist::partial_block> blocks);
    [[nodiscard]] static log_entry make_round(std::uint64_t seq,
                                              const obs::round_summary& summary);
    [[nodiscard]] static log_entry make_metrics(std::uint64_t seq,
                                                std::string metrics_json);
    [[nodiscard]] static log_entry make_complete(std::uint64_t seq,
                                                 std::uint64_t rounds,
                                                 std::uint64_t report_fnv);
};

// One complete hashed log line, trailing newline included.
[[nodiscard]] std::string encode_log_line(const log_entry& entry);

// Strict decode: armor, integrity hash, and structure must all hold.
// Throws std::runtime_error naming `path` and the 1-based line number.
[[nodiscard]] log_entry decode_log_line(const std::string& path,
                                        std::size_t line_no,
                                        std::string_view line);

// Parses the round-summary JSON obs::round_summary_json emits (also the
// shape --telemetry lines carry). Shared with the --follow tailer.
[[nodiscard]] obs::round_summary round_summary_from_json(
    const util::json_value& v);

// ---- manifest ----

[[nodiscard]] std::string encode_manifest(const manifest& m);
[[nodiscard]] manifest decode_manifest(const std::string& path,
                                       std::string_view text);

// ---- column segments ----

// Pure function of its rows (blocks then rounds, each ascending seq):
// identical rows always produce identical bytes, which is what makes
// rebuild-from-log able to reproduce the manifest's hash.
[[nodiscard]] std::string encode_segment(std::span<const block_row> blocks,
                                         std::span<const round_row> rounds);
void decode_segment(const std::string& path, std::string_view text,
                    std::vector<block_row>& blocks,
                    std::vector<round_row>& rounds);

// "seg-<first_seq, 12 digits>.json" — ranges are disjoint, so the first
// sequence number is a unique, sortable name.
[[nodiscard]] std::string segment_file_name(std::uint64_t first_seq);

}  // namespace pssp::store
