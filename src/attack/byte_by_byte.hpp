// The byte-by-byte attack of Section II-B (the BROP canary-leak phase).
//
// Treats a forking server as a crash oracle: each trial overflows the
// handler's buffer up to and including exactly one guessed canary byte.
// A surviving worker confirms the guess; a crash eliminates it. Against
// SSP every worker shares the canary, so confirmed bytes accumulate and
// the expected cost is 8 * 2^7 = 1024 trials (64-bit word). Against P-SSP
// each fork re-randomizes the stack canary, so "confirmed" bytes are
// stale one fork later and the attack cannot converge.
//
// The attacker is assumed to know the binary (no source/layout secrecy in
// the adversary model): buffer-to-canary distance, the canary width, the
// saved-rbp/return-address offsets, and the address of a target gadget.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proc/fork_server.hpp"

namespace pssp::attack {

struct byte_by_byte_config {
    std::uint64_t prefix_bytes = 64;   // buffer start -> canary distance
    unsigned canary_bytes = 8;         // guarded word width (16 under P-SSP)
    std::uint64_t max_trials = 60'000; // abort threshold (attack has failed)
    // Restart the current byte position after this many full 0..255 sweeps
    // with no survivor (a stale byte earlier in the chain); then give up
    // on the position after `max_position_restarts`.
    unsigned max_position_restarts = 4;
};

struct byte_by_byte_result {
    bool canary_recovered = false;
    std::vector<std::uint8_t> canary;      // recovered bytes, low address first
    std::uint64_t trials = 0;              // oracle queries spent
    std::uint64_t worker_crashes = 0;
    std::uint64_t canary_crashes = 0;      // crashes via __stack_chk_fail
    std::vector<std::uint32_t> trials_per_byte;
};

class byte_by_byte {
  public:
    byte_by_byte(proc::fork_server& oracle, byte_by_byte_config config)
        : oracle_{oracle}, config_{config} {}

    // Phase 1: recover the canary bytes through the oracle.
    [[nodiscard]] byte_by_byte_result recover();

    // Phase 2: full exploit — overflow with the recovered canary, a chosen
    // saved-rbp value, and the return address redirected to `ret_target`.
    // Returns the worker outcome (hijacked == success).
    [[nodiscard]] proc::serve_result exploit(const std::vector<std::uint8_t>& canary,
                                             std::uint64_t saved_rbp,
                                             std::uint64_t ret_target);

    // Convenience: recover then exploit; true iff the hijack landed.
    struct campaign_result {
        byte_by_byte_result recovery;
        bool hijacked = false;
        std::uint64_t total_trials = 0;
    };
    [[nodiscard]] campaign_result run_campaign(std::uint64_t ret_target,
                                               std::uint64_t saved_rbp);

  private:
    proc::fork_server& oracle_;
    byte_by_byte_config config_;
};

}  // namespace pssp::attack
