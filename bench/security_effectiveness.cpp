// Section VI-C effectiveness + Section IV-C exposure resilience.
//
// Experiment 1 (the paper's VI-C run): the byte-by-byte attack against
// Nginx and "Ali" compiled with SSP and with P-SSP. Paper: "the attacks
// are successful upon SSP-compiled Nginx and Ali. However, the same attack
// script have failed when attack the P-SSP compiled version."
//
// Experiment 2 (the single-point-of-failure claim behind P-SSP-OWF): leak
// one worker's canary through an over-read, replay it against the next
// worker. SSP falls (one leak compromises every frame); the P-SSP family
// and especially P-SSP-OWF survive.

#include "attack/byte_by_byte.hpp"
#include "attack/leak_replay.hpp"
#include "bench_util.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

struct bbb_cell {
    bool hijacked;
    std::uint64_t trials;
};

bbb_cell run_bbb(const workload::server_profile& profile, scheme_kind kind,
                 unsigned canary_bytes) {
    bench::server_under_test sut{profile, kind, 31};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = canary_bytes;
    cfg.max_trials = 4000;
    attack::byte_by_byte atk{sut.server, cfg};
    const auto campaign =
        atk.run_campaign(sut.binary.symbols.at("win"), sut.binary.data_base);
    return {campaign.hijacked, campaign.total_trials};
}

struct leak_cell {
    bool leaked;
    bool hijacked;
};

leak_cell run_leak(scheme_kind kind, unsigned canary_bytes) {
    const auto profile = workload::nginx_profile();
    bench::server_under_test sut{profile, kind, 32};
    attack::leak_replay_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = canary_bytes;
    cfg.leak_offset = workload::attack_prefix_bytes(profile);
    attack::leak_replay atk{sut.server, cfg};
    const auto r = atk.run(sut.binary.symbols.at("win"), sut.binary.data_base);
    return {r.leak_succeeded, r.hijacked};
}

}  // namespace

int main() {
    bench::print_header("Security effectiveness — byte-by-byte & leak-replay",
                        "Section VI-C (attack runs) and Section IV-C (exposure)");

    // ---- Experiment 1: byte-by-byte on Nginx and Ali ----
    util::text_table t1{{"target", "scheme", "attack result", "oracle queries"}};
    for (const auto& profile : {workload::nginx_profile(), workload::ali_profile()}) {
        for (const auto kind : {scheme_kind::ssp, scheme_kind::p_ssp}) {
            const unsigned width = kind == scheme_kind::p_ssp ? 16 : 8;
            const auto cell = run_bbb(profile, kind, width);
            t1.add_row({profile.name, core::to_string(kind),
                        cell.hijacked ? "SUCCESS (server compromised)"
                                      : "failed (attack defeated)",
                        std::to_string(cell.trials)});
        }
    }
    std::printf("%s\n", t1.render("Byte-by-byte attack campaigns").c_str());
    std::printf("paper: success on SSP Nginx/Ali (expected ~8*2^7 = 1024 trials);\n"
                "       failure on both P-SSP builds.\n\n");

    // ---- Experiment 2: leak-and-replay across workers ----
    util::text_table t2{{"scheme", "canary leaked?", "replay hijacks next worker?"}};
    struct row {
        scheme_kind kind;
        unsigned width;
    };
    for (const auto r : {row{scheme_kind::ssp, 8}, row{scheme_kind::p_ssp, 16},
                         row{scheme_kind::p_ssp_nt, 16}, row{scheme_kind::p_ssp_gb, 8},
                         row{scheme_kind::p_ssp_owf, 24}}) {
        const auto cell = run_leak(r.kind, r.width);
        t2.add_row({core::to_string(r.kind), cell.leaked ? "yes" : "no",
                    cell.hijacked ? "YES — single point of failure"
                                  : "no — leak is stale/unusable"});
    }
    std::printf("%s\n", t2.render("Leak one worker, replay against the next").c_str());
    std::printf("paper (Section IV-C): the single point of failure is \"a common\n"
                "drawback of P-SSP and SSP\" — expect SSP, P-SSP and P-SSP-NT to\n"
                "fall to the replayed leak. Only the extensions that bind the canary\n"
                "beyond C survive: P-SSP-GB (the matching half is out of reach) and\n"
                "P-SSP-OWF (keyed MAC over ret||nonce).\n");
    return 0;
}
