#include "vm/program.hpp"

namespace pssp::vm {

void program::finalize() {
    flow.assign(insns.size(), resolved_flow{});
    for (std::size_t i = 0; i < insns.size(); ++i) {
        const instruction& insn = insns[i];
        switch (insn.op) {
            case opcode::je:
            case opcode::jne:
            case opcode::jb:
            case opcode::jae:
            case opcode::jl:
            case opcode::jge:
            case opcode::jnc:
            case opcode::jmp:
                flow[i].target = index_of(insn.imm);
                break;
            case opcode::call: {
                // Natives win over code: a call into the PLT region never
                // has an instruction at its target. Pointers into `natives`
                // stay valid because the program is immutable once loaded.
                const auto it = natives.find(insn.imm);
                if (it != natives.end())
                    flow[i].native = &it->second;
                else
                    flow[i].target = index_of(insn.imm);
                flow[i].return_addr = addrs[i] + encoded_length(insn);
                break;
            }
            default:
                break;
        }
    }

    // Lower into the direct-threaded stream: 1:1 decoded records first...
    code.clear();
    code.reserve(insns.size() + 1);
    for (std::size_t i = 0; i < insns.size(); ++i)
        code.push_back(lower_op(insns[i], flow[i].target, flow[i].return_addr,
                                flow[i].native));
    // ...then the fusion pass. Every eligible position is upgraded
    // independently (a fused op executes i and i+1, then re-enters at i+2,
    // where the record still has its standalone — possibly itself fused —
    // handler), so overlap needs no tie-breaking.
    for (std::size_t i = 0; i + 1 < insns.size(); ++i)
        if (const std::uint16_t fused = fuse_pair(insns[i], insns[i + 1]))
            code[i].handler = fused;
    // Falling off the end of the stream lands here instead of needing a
    // per-iteration bounds check in the run loop.
    code.push_back(sentinel_op());
}

}  // namespace pssp::vm
