#include "attack/byte_by_byte.hpp"

#include "util/bytes.hpp"

namespace pssp::attack {

byte_by_byte_result byte_by_byte::recover() {
    byte_by_byte_result result;
    result.trials_per_byte.assign(config_.canary_bytes, 0);

    std::vector<std::uint8_t> known;  // confirmed canary bytes so far
    while (known.size() < config_.canary_bytes) {
        const std::size_t position = known.size();
        bool confirmed = false;
        for (unsigned restart = 0; restart <= config_.max_position_restarts && !confirmed;
             ++restart) {
            for (unsigned guess = 0; guess < 256; ++guess) {
                if (result.trials >= config_.max_trials) return result;

                // Payload: fill the buffer, replay the confirmed bytes,
                // then exactly one new guessed byte. The handler's
                // length-delimited copy writes nothing past it.
                std::vector<std::uint8_t> payload(config_.prefix_bytes, 'A');
                payload.insert(payload.end(), known.begin(), known.end());
                payload.push_back(static_cast<std::uint8_t>(guess));

                const auto r = oracle_.serve(payload);
                ++result.trials;
                ++result.trials_per_byte[position];
                if (r.outcome != proc::worker_outcome::ok) {
                    ++result.worker_crashes;
                    if (r.outcome == proc::worker_outcome::crashed_canary)
                        ++result.canary_crashes;
                    continue;
                }
                known.push_back(static_cast<std::uint8_t>(guess));
                confirmed = true;
                break;
            }
        }
        if (!confirmed) {
            // 256 consecutive misses several times over: an earlier byte
            // must be stale (canary changed underneath us). Start over.
            if (known.empty()) return result;  // position 0 unguessable
            known.clear();
        }
    }

    result.canary = std::move(known);
    result.canary_recovered = true;
    return result;
}

proc::serve_result byte_by_byte::exploit(const std::vector<std::uint8_t>& canary,
                                         std::uint64_t saved_rbp,
                                         std::uint64_t ret_target) {
    std::vector<std::uint8_t> payload(config_.prefix_bytes, 'A');
    payload.insert(payload.end(), canary.begin(), canary.end());
    std::uint8_t word[8];
    util::store_le64(word, saved_rbp);
    payload.insert(payload.end(), word, word + 8);
    util::store_le64(word, ret_target);
    payload.insert(payload.end(), word, word + 8);
    return oracle_.serve(payload);
}

byte_by_byte::campaign_result byte_by_byte::run_campaign(std::uint64_t ret_target,
                                                         std::uint64_t saved_rbp) {
    campaign_result out;
    out.recovery = recover();
    out.total_trials = out.recovery.trials;
    if (out.recovery.canary_recovered) {
        const auto r = exploit(out.recovery.canary, saved_rbp, ret_target);
        ++out.total_trials;
        out.hijacked = r.outcome == proc::worker_outcome::hijacked;
        // The exploit query is an oracle query like any other: a scheme
        // that traps it (e.g. RAF-SSP renewing C under a perfect recovery)
        // must show up in the crash counters.
        if (r.outcome != proc::worker_outcome::ok && !out.hijacked) {
            ++out.recovery.worker_crashes;
            if (r.outcome == proc::worker_outcome::crashed_canary)
                ++out.recovery.canary_crashes;
        }
    }
    return out;
}

}  // namespace pssp::attack
