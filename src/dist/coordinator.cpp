#include "dist/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/registry.hpp"

namespace pssp::dist {

namespace {

using steady_clock = std::chrono::steady_clock;

// ---- obs counters (side channel; same-name ids resolve to the same
// registry slots the local supervisor feeds) ----
struct net_counters {
    obs::metric_id connections = obs::counter("dist.net.connections");
    obs::metric_id leases = obs::counter("dist.net.leases");
    obs::metric_id heartbeats = obs::counter("dist.net.heartbeats");
    obs::metric_id evictions = obs::counter("dist.net.evictions");
    obs::metric_id reconnects = obs::counter("dist.net.reconnects");
    obs::metric_id retries = obs::counter("dist.retries");
    obs::metric_id requeued_blocks = obs::counter("dist.requeued_blocks");
    obs::metric_id timeouts = obs::counter("dist.timeouts");
    obs::metric_id crashes = obs::counter("dist.crashes");
    obs::metric_id bad_partials = obs::counter("dist.bad_partials");
};

const net_counters& counters() {
    static const net_counters ids;
    return ids;
}

// SIGTERM drain flag: async-signal-safe, shared by every coordinator in
// the process (realistically one).
volatile std::sig_atomic_t g_drain_requested = 0;

void drain_handler(int) { g_drain_requested = 1; }

std::chrono::steady_clock::duration from_seconds(double s) {
    return std::chrono::duration_cast<steady_clock::duration>(
        std::chrono::duration<double>(s));
}

enum class job_state : std::uint8_t { pending, running, finished };

struct job_slot {
    job_state state = job_state::pending;
    unsigned attempts_started = 0;
    steady_clock::time_point release{};  // pending: earliest next lease
    std::size_t holder = SIZE_MAX;       // running: workers_ index
};

}  // namespace

std::string coordinator::version_mismatch_error(std::uint32_t worker_version) {
    return "coordinator: protocol version mismatch (worker speaks v" +
           std::to_string(worker_version) + ", coordinator speaks v" +
           std::to_string(net_protocol_version) + ")";
}

std::string default_node_path() {
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path{buf};
        const auto slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + "tools_campaign_node";
    }
    return "./tools_campaign_node";
}

struct coordinator::impl {
    net_options options;
    fault_policy policy;
    std::uint64_t digest = 0;

    int listen_fd = -1;
    std::uint16_t port = 0;
    std::vector<pid_t> fleet;

    struct worker_conn {
        frame_conn conn;
        std::string name;
        bool registered = false;
        steady_clock::time_point last_heard{};
        std::size_t leased = SIZE_MAX;  // job index, SIZE_MAX = idle
        std::uint32_t lease_attempt = 0;
        bool lease_has_deadline = false;
        steady_clock::time_point lease_deadline{};
        steady_clock::time_point lease_start{};
    };
    std::vector<worker_conn> workers;

    struct sigaction old_term {};
    struct sigaction old_pipe {};

    // Live only inside run_jobs(); frame handlers reach the round through
    // this (null between rounds, e.g. during pump()).
    struct round_state {
        const std::vector<supervised_job>* jobs = nullptr;
        const supervise_hooks* hooks = nullptr;
        supervise_stats* stats = nullptr;
        std::vector<job_slot> slots;
        std::vector<job_result> results;
        std::size_t unfinished = 0;
    };
    round_state* round = nullptr;

    impl(const net_options& opt, const fault_policy& pol, std::uint64_t dig)
        : options{opt}, policy{pol}, digest{dig} {
        listen_and_bind();
        // A worker dying mid-write must surface as a failed write on its
        // connection, not SIGPIPE killing the coordinator.
        struct sigaction ignore_pipe {};
        ignore_pipe.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);
        struct sigaction term {};
        term.sa_handler = drain_handler;
        ::sigaction(SIGTERM, &term, &old_term);
        // A fresh coordinator starts undrained even if a previous one in
        // this process was drained.
        g_drain_requested = 0;
        if (options.on_listen) options.on_listen(port);
        spawn_fleet();
    }

    ~impl() {
        ::sigaction(SIGTERM, &old_term, nullptr);
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        // Best-effort clean goodbye so well-behaved nodes exit 0 ...
        for (auto& w : workers) {
            if (!w.conn.open()) continue;
            w.conn.queue(frame_type::shutdown, {});
            (void)w.conn.pump_writes();
            w.conn.close();
        }
        if (listen_fd >= 0) ::close(listen_fd);
        // ... and a hard stop for any fleet child that did not take it.
        for (const pid_t pid : fleet) {
            int status = 0;
            if (::waitpid(pid, &status, WNOHANG) == 0) {
                ::kill(pid, SIGKILL);
                while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
                }
            }
        }
    }

    void listen_and_bind() {
        listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                             0);
        if (listen_fd < 0)
            throw std::runtime_error{
                std::string{"coordinator: socket() failed ("} +
                std::strerror(errno) + ")"};
        const int one = 1;
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(options.listen_port);
        if (::inet_pton(AF_INET, options.listen_host.c_str(), &addr.sin_addr) !=
            1)
            throw std::runtime_error{"coordinator: bad listen address \"" +
                                     options.listen_host + "\""};
        if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0)
            throw std::runtime_error{std::string{"coordinator: bind() failed ("} +
                                     std::strerror(errno) + ")"};
        if (::listen(listen_fd, SOMAXCONN) != 0)
            throw std::runtime_error{
                std::string{"coordinator: listen() failed ("} +
                std::strerror(errno) + ")"};
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                          &len) != 0)
            throw std::runtime_error{
                std::string{"coordinator: getsockname() failed ("} +
                std::strerror(errno) + ")"};
        port = ntohs(bound.sin_port);
    }

    void spawn_fleet() {
        if (options.fleet_workers == 0) return;
        const std::string node = options.node_path.empty()
                                     ? default_node_path()
                                     : options.node_path;
        const std::string endpoint =
            options.listen_host + ":" + std::to_string(port);
        for (unsigned k = 0; k < options.fleet_workers; ++k) {
            const std::string name = "node-" + std::to_string(k);
            const pid_t pid = ::fork();
            if (pid < 0)
                throw std::runtime_error{
                    std::string{"coordinator: fork() for fleet node failed ("} +
                    std::strerror(errno) + ")"};
            if (pid == 0) {
                // A SIGKILLed coordinator (--kill-after-round) must not
                // leak node processes.
                ::prctl(PR_SET_PDEATHSIG, SIGKILL);
                std::vector<const char*> argv{node.c_str(), "--connect",
                                              endpoint.c_str(), "--name",
                                              name.c_str()};
                if (!options.worker_path.empty()) {
                    argv.push_back("--worker");
                    argv.push_back(options.worker_path.c_str());
                }
                argv.push_back(nullptr);
                ::execv(node.c_str(), const_cast<char* const*>(argv.data()));
                std::fprintf(stderr, "campaign node exec failed: %s: %s\n",
                             node.c_str(), std::strerror(errno));
                ::_exit(127);
            }
            fleet.push_back(pid);
        }
    }

    // ---- Requeue bookkeeping (mirrors the local supervisor's) ----

    double lease_seconds() const {
        if (options.lease_seconds > 0.0) return options.lease_seconds;
        return policy.timeout_seconds;  // 0 = no lease deadline
    }

    void fail_attempt(std::size_t k, failure_kind kind, std::string why,
                      int wait_status, bool retryable) {
        auto& slot = round->slots[k];
        auto& result = round->results[k];
        const auto& job = (*round->jobs)[k];
        if (kind == failure_kind::timeout) {
            round->stats->timeouts += 1;
            obs::add(counters().timeouts, 1);
        } else if (kind == failure_kind::crash || kind == failure_kind::input) {
            obs::add(counters().crashes, 1);
        } else {
            obs::add(counters().bad_partials, 1);
        }
        result.attempts = slot.attempts_started;
        result.failures.push_back(attempt_record{slot.attempts_started, kind,
                                                 std::move(why), wait_status});
        if (round->hooks->on_attempt_failure)
            round->hooks->on_attempt_failure(job, result.failures.back());
        slot.holder = SIZE_MAX;
        if (retryable && slot.attempts_started < policy.max_attempts) {
            round->stats->retries += 1;
            round->stats->requeued_blocks += job.manifest.blocks.size();
            obs::add(counters().retries, 1);
            obs::add(counters().requeued_blocks, job.manifest.blocks.size());
            slot.state = job_state::pending;
            slot.release =
                steady_clock::now() +
                from_seconds(policy.backoff_for(slot.attempts_started));
            return;
        }
        slot.state = job_state::finished;
        round->unfinished -= 1;
    }

    // A worker left (disconnect, poisoned frame, heartbeat silence, lease
    // expiry): close it, requeue whatever it held.
    void evict_worker(std::size_t w, const std::string& reason,
                      failure_kind kind) {
        auto& worker = workers[w];
        obs::add(counters().evictions, 1);
        if (round != nullptr) round->stats->evictions += 1;
        if (worker.leased != SIZE_MAX && round != nullptr) {
            const std::size_t k = worker.leased;
            worker.leased = SIZE_MAX;
            if (round->slots[k].state == job_state::running &&
                round->slots[k].holder == w)
                fail_attempt(k, kind,
                             "worker '" + worker.name + "' " + reason,
                             /*wait_status=*/-1, /*retryable=*/true);
        }
        worker.conn.close();
    }

    void drop_closed_workers() {
        workers.erase(std::remove_if(workers.begin(), workers.end(),
                                     [](const worker_conn& w) {
                                         return !w.conn.open();
                                     }),
                      workers.end());
        if (round != nullptr)
            for (auto& slot : round->slots) slot.holder = SIZE_MAX;
        // Holder indices are only trusted while the workers vector is
        // stable within one poll pass; re-derive them from the leases.
        if (round != nullptr)
            for (std::size_t w = 0; w < workers.size(); ++w)
                if (workers[w].leased != SIZE_MAX)
                    round->slots[workers[w].leased].holder = w;
    }

    // ---- Frame handling ----

    void handle_hello(std::size_t w, const frame& f) {
        auto& worker = workers[w];
        hello_msg hello;
        try {
            hello = hello_from_json(f.payload);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "coordinator: bad hello: %s\n", e.what());
            worker.conn.close();
            return;
        }
        if (hello.version != net_protocol_version) {
            worker.conn.queue(frame_type::error,
                              version_mismatch_error(hello.version));
            (void)worker.conn.pump_writes();
            worker.conn.close();
            return;
        }
        worker.name = hello.name.empty()
                          ? "worker-fd" + std::to_string(worker.conn.fd())
                          : hello.name;
        worker.registered = true;
        worker.last_heard = steady_clock::now();
        if (hello.reconnects > 0) {
            obs::add(counters().reconnects, 1);
            if (round != nullptr) round->stats->reconnects += 1;
        }
        welcome_msg welcome;
        welcome.heartbeat_ms = static_cast<std::uint64_t>(
            std::max(1.0, options.heartbeat_seconds * 1000.0));
        welcome.spec_digest = digest;
        worker.conn.queue(frame_type::welcome, welcome_to_json(welcome));
    }

    void handle_result(std::size_t w, const frame& f) {
        auto& worker = workers[w];
        if (round == nullptr || worker.leased == SIZE_MAX) return;  // stale
        std::string_view output;
        result_envelope env;
        try {
            env = decode_result(f.payload, &output);
        } catch (const std::exception& e) {
            evict_worker(w, std::string{"sent an undecodable result ("} +
                                e.what() + ")",
                         failure_kind::bad_partial);
            return;
        }
        const std::size_t k = worker.leased;
        const auto& job = (*round->jobs)[k];
        if (env.shard != job.shard || env.attempt != worker.lease_attempt)
            return;  // late echo of a superseded lease: dedup ignores it
        worker.leased = SIZE_MAX;
        auto& slot = round->slots[k];
        auto& result = round->results[k];
        slot.holder = SIZE_MAX;
        auto c = classify_attempt(job, env.wait_status, output);
        if (c.kind == failure_kind::none) {
            result.ok = true;
            result.partial = std::move(c.partial);
            result.attempts = slot.attempts_started;
            result.worker_name = worker.name;
            result.wall_seconds =
                std::chrono::duration<double>(steady_clock::now() -
                                              worker.lease_start)
                    .count();
            if (round->hooks->on_job_success)
                round->hooks->on_job_success(job, result.partial);
            slot.state = job_state::finished;
            round->unfinished -= 1;
            return;
        }
        fail_attempt(k, c.kind, std::move(c.why), env.wait_status,
                     /*retryable=*/!is_exec_failure(env.wait_status));
    }

    void handle_frame(std::size_t w, const frame& f) {
        auto& worker = workers[w];
        worker.last_heard = steady_clock::now();
        switch (f.type) {
            case frame_type::hello:
                handle_hello(w, f);
                return;
            case frame_type::heartbeat:
                obs::add(counters().heartbeats, 1);
                return;
            case frame_type::result:
                if (!worker.registered) {
                    evict_worker(w, "sent a result before registering",
                                 failure_kind::crash);
                    return;
                }
                handle_result(w, f);
                return;
            case frame_type::error:
                std::fprintf(stderr, "coordinator: worker '%s' error: %s\n",
                             worker.name.c_str(), f.payload.c_str());
                evict_worker(w, "reported a fatal error: " + f.payload,
                             failure_kind::crash);
                return;
            default:
                evict_worker(w,
                             std::string{"sent an unexpected "} +
                                 to_string(f.type) + " frame",
                             failure_kind::crash);
                return;
        }
    }

    void accept_pending() {
        for (;;) {
            const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR) continue;
                return;  // EAGAIN and transient errors alike: retry later
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            worker_conn w;
            w.conn = frame_conn{fd};
            w.last_heard = steady_clock::now();
            workers.push_back(std::move(w));
            obs::add(counters().connections, 1);
        }
    }

    // Hands one pending job to one idle registered worker.
    void assign_leases() {
        if (round == nullptr || g_drain_requested != 0) return;
        const auto now = steady_clock::now();
        const double lease_s = lease_seconds();
        for (std::size_t k = 0; k < round->slots.size(); ++k) {
            auto& slot = round->slots[k];
            if (slot.state != job_state::pending || slot.release > now)
                continue;
            std::size_t idle = SIZE_MAX;
            for (std::size_t w = 0; w < workers.size(); ++w)
                if (workers[w].registered && workers[w].conn.open() &&
                    workers[w].leased == SIZE_MAX) {
                    idle = w;
                    break;
                }
            if (idle == SIZE_MAX) return;  // fleet saturated: bounded in-flight
            auto& worker = workers[idle];
            const auto& job = (*round->jobs)[k];
            slot.attempts_started += 1;
            slot.state = job_state::running;
            slot.holder = idle;
            worker.leased = k;
            worker.lease_attempt = slot.attempts_started;
            worker.lease_start = now;
            worker.lease_has_deadline = lease_s > 0.0;
            if (worker.lease_has_deadline)
                worker.lease_deadline = now + from_seconds(lease_s);
            lease_envelope env;
            env.shard = job.shard;
            env.shard_count = job.shard_count;
            env.attempt = slot.attempts_started;
            env.round = job.manifest.round;
            worker.conn.queue(frame_type::lease, encode_lease(env, job.input));
            obs::add(counters().leases, 1);
        }
    }

    // One poll pass: I/O, handshakes, heartbeat/lease deadlines. Returns
    // after at most wait_ms (sooner on any event).
    void poll_once(int wait_ms) {
        const auto now = steady_clock::now();
        std::vector<pollfd> fds;
        std::vector<std::size_t> owner;  // fds[i] -> workers[owner[i]]; listen
                                         // socket uses SIZE_MAX
        fds.push_back(pollfd{listen_fd, POLLIN, 0});
        owner.push_back(SIZE_MAX);
        auto consider = [&wait_ms, &now](steady_clock::time_point when) {
            const auto dt =
                std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
                    .count();
            const int ms = dt <= 0 ? 0
                                   : static_cast<int>(
                                         std::min<long long>(dt + 1, 60000));
            if (wait_ms < 0 || ms < wait_ms) wait_ms = ms;
        };
        const auto silence_budget =
            from_seconds(options.heartbeat_seconds * options.heartbeat_grace);
        for (std::size_t w = 0; w < workers.size(); ++w) {
            auto& worker = workers[w];
            if (!worker.conn.open()) continue;
            short events = POLLIN;
            if (worker.conn.wants_write()) events |= POLLOUT;
            fds.push_back(pollfd{worker.conn.fd(), events, 0});
            owner.push_back(w);
            consider(worker.last_heard + silence_budget);
            if (worker.leased != SIZE_MAX && worker.lease_has_deadline)
                consider(worker.lease_deadline);
        }
        if (round != nullptr) {
            // Future releases bound the wait; a release already due with no
            // idle worker must NOT drive the timeout to zero (hot spin) —
            // the job is waiting on worker I/O, not on the clock.
            for (const auto& slot : round->slots)
                if (slot.state == job_state::pending && slot.release > now)
                    consider(slot.release);
            // Mid-round, never block indefinitely: the register-wait and
            // drain checks in run_jobs need the loop to tick.
            if (wait_ms < 0 || wait_ms > 500) wait_ms = 500;
        }
        const int rc =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), wait_ms);
        if (rc < 0) {
            if (errno == EINTR) return;  // signal (likely the drain) woke us
            throw std::runtime_error{
                std::string{"coordinator: poll() failed ("} +
                std::strerror(errno) + ")"};
        }
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].revents == 0) continue;
            if (owner[i] == SIZE_MAX) {
                accept_pending();
                continue;
            }
            auto& worker = workers[owner[i]];
            if (!worker.conn.open() || worker.conn.fd() != fds[i].fd) continue;
            if ((fds[i].revents & POLLOUT) != 0 && !worker.conn.pump_writes()) {
                evict_worker(owner[i],
                             "write failed (" + worker.conn.error() + ")",
                             failure_kind::crash);
                continue;
            }
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
                std::vector<frame> frames;
                const auto status = worker.conn.read_frames(frames);
                for (const auto& f : frames) {
                    if (!worker.conn.open()) break;
                    handle_frame(owner[i], f);
                }
                if (!worker.conn.open()) continue;
                if (status == frame_conn::io_status::failed)
                    evict_worker(owner[i],
                                 "connection failed (" + worker.conn.error() +
                                     ")",
                                 failure_kind::crash);
                else if (status == frame_conn::io_status::closed)
                    evict_worker(owner[i], "disconnected", failure_kind::crash);
            }
        }
        // Deadline sweeps on the post-I/O clock.
        const auto tick = steady_clock::now();
        for (std::size_t w = 0; w < workers.size(); ++w) {
            auto& worker = workers[w];
            if (!worker.conn.open()) continue;
            if (worker.leased != SIZE_MAX && worker.lease_has_deadline &&
                tick >= worker.lease_deadline) {
                char why[64];
                std::snprintf(why, sizeof why, "lease expired after %.1fs",
                              lease_seconds());
                // Expiry is a timeout for the job and an eviction for the
                // worker: a late result must never race the re-lease.
                const std::size_t k = worker.leased;
                worker.leased = SIZE_MAX;
                if (round != nullptr &&
                    round->slots[k].state == job_state::running)
                    fail_attempt(k, failure_kind::timeout,
                                 std::string{why} + " (worker '" + worker.name +
                                     "')",
                                 /*wait_status=*/-1, /*retryable=*/true);
                obs::add(counters().evictions, 1);
                if (round != nullptr) round->stats->evictions += 1;
                worker.conn.close();
                continue;
            }
            if (tick - worker.last_heard > silence_budget)
                evict_worker(w, "evicted after heartbeat silence",
                             failure_kind::crash);
        }
        drop_closed_workers();
    }

    std::size_t registered_count() const {
        std::size_t n = 0;
        for (const auto& w : workers)
            if (w.registered && w.conn.open()) ++n;
        return n;
    }

    std::vector<job_result> run_jobs(const std::vector<supervised_job>& jobs,
                                     const supervise_hooks& hooks,
                                     supervise_stats& stats) {
        if (policy.max_attempts == 0)
            throw std::invalid_argument{
                "coordinator: max_attempts must be >= 1"};
        round_state state;
        state.jobs = &jobs;
        state.hooks = &hooks;
        state.stats = &stats;
        state.slots.assign(jobs.size(), job_slot{});
        state.results.assign(jobs.size(), job_result{});
        state.unfinished = jobs.size();
        const auto now = steady_clock::now();
        for (auto& slot : state.slots) slot.release = now;
        round = &state;
        auto starved_since = now;
        try {
            while (state.unfinished > 0) {
                if (registered_count() > 0)
                    starved_since = steady_clock::now();
                else if (std::chrono::duration<double>(steady_clock::now() -
                                                       starved_since)
                             .count() > options.register_wait_seconds) {
                    char msg[96];
                    std::snprintf(msg, sizeof msg,
                                  "no registered workers within %.1fs — fleet "
                                  "lost or never connected",
                                  options.register_wait_seconds);
                    throw std::runtime_error{std::string{"run_sharded: "} +
                                             msg};
                }
                if (g_drain_requested != 0) {
                    bool running = false;
                    for (const auto& slot : state.slots)
                        running |= slot.state == job_state::running;
                    if (!running)
                        throw std::runtime_error{
                            "run_sharded: coordinator drained on SIGTERM "
                            "(completed leases are checkpointed; --resume "
                            "continues the campaign)"};
                }
                assign_leases();
                poll_once(-1);
            }
        } catch (...) {
            round = nullptr;
            throw;
        }
        round = nullptr;
        return std::move(state.results);
    }
};

coordinator::coordinator(const net_options& options, const fault_policy& policy,
                         std::uint64_t spec_digest)
    : impl_{new impl{options, policy, spec_digest}} {
    port_ = impl_->port;
}

coordinator::~coordinator() { delete impl_; }

std::vector<job_result> coordinator::run_jobs(
    const std::vector<supervised_job>& jobs, const supervise_hooks& hooks,
    supervise_stats& stats) {
    return impl_->run_jobs(jobs, hooks, stats);
}

void coordinator::request_drain() noexcept { g_drain_requested = 1; }

void coordinator::pump(int wait_ms) { impl_->poll_once(wait_ms); }

std::size_t coordinator::registered_workers() const noexcept {
    return impl_->registered_count();
}

}  // namespace pssp::dist
