// Ablation for Section IV-C / V-E3: instantiating the one-way function F.
//
// The paper names two candidates — a block cipher (AES, taken because
// AES-NI makes it nearly free) and a hash (SHA-1, "prohibitively expensive
// without hardware support"). Both are implemented behind the same
// interface; this bench measures the per-call cost gap and verifies that
// both instantiations deliver the exposure-resilience property (a leaked
// canary cannot be replayed, even same-frame).

#include "attack/leak_replay.hpp"
#include "bench_util.hpp"
#include "crypto/one_way.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;
using core::scheme_options;

double per_call_cycles(const scheme_options& options) {
    compiler::ir_module mod;
    mod.name = "micro";
    auto& fn = mod.add_function("micro");
    (void)compiler::add_local(fn, "buf", 16, /*is_buffer=*/true);
    fn.body.push_back(compiler::return_stmt{compiler::const_ref{1}});
    auto& main_fn = mod.add_function("main");
    const int i = compiler::add_local(main_fn, "i");
    const int r = compiler::add_local(main_fn, "r");
    compiler::loop_stmt loop{i, 1000, {}};
    loop.body.push_back(compiler::call_stmt{"micro", {}, r});
    main_fn.body.push_back(loop);

    const auto with = workload::measure_module(mod, scheme_kind::p_ssp_owf,
                                               {.scheme_options = options});
    const auto without = workload::measure_module(mod, scheme_kind::none, {});
    return (static_cast<double>(with.cycles) - static_cast<double>(without.cycles)) /
           1000.0;
}

bool replay_defeated(const scheme_options& options) {
    const auto profile = workload::nginx_profile();
    auto binary = compiler::build_module(
        workload::make_server_module(profile),
        core::make_scheme(scheme_kind::p_ssp_owf, options));
    proc::fork_server server{binary,
                             core::make_scheme(scheme_kind::p_ssp_owf, options), 71,
                             workload::server_config_for(profile)};
    attack::leak_replay_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = 24;  // nonce + 16-byte ciphertext
    cfg.leak_offset = workload::attack_prefix_bytes(profile);
    attack::leak_replay atk{server, cfg};
    const auto r = atk.run(binary.symbols.at("win"), binary.data_base);
    return r.leak_succeeded && !r.hijacked;
}

}  // namespace

int main() {
    bench::print_header("Ablation — one-way function instantiation for P-SSP-OWF",
                        "Section IV-C / V-E3 (AES-NI vs software hash)");

    scheme_options aes;
    aes.owf = crypto::owf_kind::aes128;
    scheme_options sha;
    sha.owf = crypto::owf_kind::sha1;

    util::text_table table{{"instantiation", "cycles/call",
                            "leak+replay defeated", "hardware assist"}};
    table.add_row({"AES-128 (AES-NI analog)", util::fmt(per_call_cycles(aes), 0),
                   replay_defeated(aes) ? "yes" : "NO", "yes (AES-NI)"});
    table.add_row({"SHA-1 (software)", util::fmt(per_call_cycles(sha), 0),
                   replay_defeated(sha) ? "yes" : "NO", "none"});
    std::printf("%s\n", table.render("F = AES vs F = SHA-1").c_str());
    std::printf("paper: \"without hardware support, it is prohibitively expensive to\n"
                "evaluate F in every prologue and epilogue\" — visible above as the\n"
                "cycle gap between the AES-NI path and the software hash.\n");
    return 0;
}
