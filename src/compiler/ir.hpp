// Mini-IR: the intermediate form our "LLVM pass" operates on.
//
// The paper's P-SSP-Pass is an LLVM FunctionPass whose runOnFunction
// "decides whether to insert P-SSP canary according to the types and
// lengths of local variables" and plants the prologue/epilogue around each
// return. This IR carries exactly the information that decision needs —
// locals with sizes, buffer-ness, criticality — plus enough statement
// forms to express the paper's workloads: arithmetic kernels (SPEC-like),
// request handlers with unbounded strcpy (the vulnerability), counted
// loops, calls, conditionals, and output.
//
// Everything is index-based and value-typed: workloads build ir_modules
// programmatically, and tests can introspect them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace pssp::compiler {

// ---- operands ---------------------------------------------------------------

struct local_ref {       // value of a scalar local (64-bit load)
    int index;
};
struct const_ref {       // 64-bit immediate
    std::uint64_t value;
};
struct addr_of {         // address of a local (e.g. a buffer passed to strcpy)
    int index;
};
struct global_addr {     // address of a named data object
    std::string name;
};

using operand = std::variant<local_ref, const_ref, addr_of, global_addr>;

enum class binop : std::uint8_t { add, sub, mul, xor_, shl, shr };
enum class relop : std::uint8_t { eq, ne, lt_unsigned, lt_signed };

// ---- statements -------------------------------------------------------------

struct stmt;  // forward; bodies are vectors of stmt

struct assign_stmt {             // locals[dst] = src
    int dst;
    operand src;
};

struct compute_stmt {            // locals[dst] = a (op) b
    int dst;
    operand a;
    binop op;
    operand b;                   // must be const_ref for shl/shr
};

struct load_global_stmt {        // locals[dst] = *(u64*)(global + offset)
    int dst;
    std::string global;
    std::int32_t offset = 0;
};

struct store_global_stmt {       // *(u64*)(global + offset) = src
    std::string global;
    std::int32_t offset = 0;
    operand src;
};

struct call_stmt {               // locals[result] = callee(args...)
    std::string callee;
    std::vector<operand> args;   // at most 4 (rdi, rsi, rdx, rcx)
    std::optional<int> result;
    // True for libc writers (strcpy/memcpy/memset/...): P-SSP-LV's
    // write-site check is emitted right after such calls when enabled.
    bool writes_memory = false;
};

struct loop_stmt {               // for (counter = 0; counter < iterations; ++counter)
    int counter;                 // a scalar local dedicated to this loop
    std::uint64_t iterations;
    std::vector<stmt> body;
};

struct if_stmt {                 // if (a relop b) then_body else else_body
    operand a;
    relop op;
    operand b;
    std::vector<stmt> then_body;
    std::vector<stmt> else_body;
};

struct write_stmt {              // sys_write(1, address, length)
    operand address;             // addr_of or global_addr (or computed local)
    operand length;
};

struct return_stmt {             // return value (defaults to 0)
    operand value = const_ref{0};
};

using stmt_node = std::variant<assign_stmt, compute_stmt, load_global_stmt,
                               store_global_stmt, call_stmt, loop_stmt, if_stmt,
                               write_stmt, return_stmt>;

struct stmt {
    stmt_node node;
    // NOLINTNEXTLINE(google-explicit-constructor): transparent wrapper
    template <typename T>
    stmt(T&& n) : node{std::forward<T>(n)} {}
};

// ---- functions / module -------------------------------------------------------

struct ir_local {
    std::string name;
    std::uint32_t size = 8;      // bytes
    bool is_buffer = false;      // array-like: triggers stack protection
    bool is_critical = false;    // in V (Algorithm 2) for P-SSP-LV
};

struct ir_function {
    std::string name;
    std::vector<ir_local> locals;
    int param_count = 0;         // first param_count locals receive rdi..rcx
    std::vector<stmt> body;
    bool never_protect = false;  // opt-out (libc-style leaves)
};

struct ir_global {
    std::string name;
    std::size_t size = 8;
    std::vector<std::uint8_t> init;
};

struct ir_module {
    std::string name;
    std::vector<ir_function> functions;
    std::vector<ir_global> globals;

    ir_function& add_function(std::string fname) {
        functions.push_back({});
        functions.back().name = std::move(fname);
        return functions.back();
    }
    void add_global(std::string gname, std::size_t size,
                    std::vector<std::uint8_t> init = {}) {
        globals.push_back({std::move(gname), size, std::move(init)});
    }
};

// Convenience: add a local, returning its index.
inline int add_local(ir_function& fn, std::string name, std::uint32_t size = 8,
                     bool is_buffer = false, bool is_critical = false) {
    fn.locals.push_back({std::move(name), size, is_buffer, is_critical});
    return static_cast<int>(fn.locals.size()) - 1;
}

}  // namespace pssp::compiler
