// Deterministic pseudo-random number generation.
//
// Two layers:
//  * splitmix64  — seeding / state expansion (Vigna's reference algorithm).
//  * xoshiro256** — the workhorse generator for canary material, workload
//    inputs and attack nondeterminism. Fast, 256-bit state, passes BigCrush.
//
// Every consumer in the library takes a PRNG (or an entropy_source built on
// one) explicitly — there is no hidden global randomness — so every test,
// attack campaign, and benchmark run is reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

namespace pssp::crypto {

// One step of splitmix64 over `state` (advances it), returning 64 bits.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
// can drive <random> distributions where convenient.
class xoshiro256 {
  public:
    using result_type = std::uint64_t;

    // Seeds the 256-bit state by expanding `seed` through splitmix64.
    explicit xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    // Next 64 random bits.
    result_type operator()() noexcept;

    // Uniform value in [0, bound); bound must be nonzero. Uses rejection
    // sampling, so it is exactly uniform (needed by the statistical tests).
    [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

    // Fills `out` with random bytes.
    void fill(std::span<std::uint8_t> out) noexcept;

    // Equivalent of 2^128 calls to operator(); used to derive independent
    // per-process streams from one master seed.
    void long_jump() noexcept;

    // Derives a child generator whose stream is independent of this one.
    [[nodiscard]] xoshiro256 split() noexcept;

  private:
    std::array<std::uint64_t, 4> state_;
};

}  // namespace pssp::crypto
