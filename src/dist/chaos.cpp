#include "dist/chaos.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pssp::dist {

namespace {

// One ":"-separated field of a rule: an integer coordinate or "*".
// `any` and `value` are outputs; throws on anything else.
void parse_coordinate(std::string_view token, std::string_view rule,
                      bool& any, std::uint64_t& value) {
    if (token == "*") {
        any = true;
        return;
    }
    if (token.empty())
        throw std::invalid_argument{"fault plan: empty coordinate in rule \"" +
                                    std::string{rule} + "\""};
    std::uint64_t parsed = 0;
    for (const char c : token) {
        if (c < '0' || c > '9')
            throw std::invalid_argument{
                "fault plan: bad coordinate \"" + std::string{token} +
                "\" in rule \"" + std::string{rule} + "\""};
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    any = false;
    value = parsed;
}

fault_rule parse_rule(std::string_view rule) {
    // Split on ':' into at most 4 fields: fault[:shard[:round[:attempt]]].
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= rule.size(); ++i) {
        if (i == rule.size() || rule[i] == ':') {
            fields.push_back(rule.substr(start, i - start));
            start = i + 1;
        }
    }
    if (fields.empty() || fields.size() > 4)
        throw std::invalid_argument{"fault plan: rule \"" + std::string{rule} +
                                    "\" has too many fields"};

    fault_rule out;
    std::string_view fault = fields[0];
    if (fault == "crash") {
        out.kind = fault_kind::crash;
    } else if (fault == "crash-late") {
        out.kind = fault_kind::crash_late;
    } else if (fault == "hang") {
        out.kind = fault_kind::hang;
    } else if (fault == "trunc") {
        out.kind = fault_kind::trunc;
    } else if (fault == "corrupt") {
        out.kind = fault_kind::corrupt;
    } else if (fault == "wrong-block") {
        out.kind = fault_kind::wrong_block;
    } else if (fault.substr(0, 5) == "slow=") {
        out.kind = fault_kind::slow;
        bool any = false;
        parse_coordinate(fault.substr(5), rule, any, out.param);
        if (any)
            throw std::invalid_argument{
                "fault plan: slow needs a millisecond count in rule \"" +
                std::string{rule} + "\""};
    } else {
        throw std::invalid_argument{"fault plan: unknown fault \"" +
                                    std::string{fault} + "\" in rule \"" +
                                    std::string{rule} + "\""};
    }

    if (fields.size() > 1)
        parse_coordinate(fields[1], rule, out.any_shard, out.shard);
    if (fields.size() > 2)
        parse_coordinate(fields[2], rule, out.any_round, out.round);
    if (fields.size() > 3)
        parse_coordinate(fields[3], rule, out.any_attempt, out.attempt);
    return out;
}

}  // namespace

const char* to_string(fault_kind kind) noexcept {
    switch (kind) {
        case fault_kind::none: return "none";
        case fault_kind::crash: return "crash";
        case fault_kind::crash_late: return "crash-late";
        case fault_kind::hang: return "hang";
        case fault_kind::trunc: return "trunc";
        case fault_kind::corrupt: return "corrupt";
        case fault_kind::wrong_block: return "wrong-block";
        case fault_kind::slow: return "slow";
    }
    return "?";
}

fault_plan parse_fault_plan(std::string_view text) {
    fault_plan plan;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == ',') {
            const auto rule = text.substr(start, i - start);
            if (!rule.empty()) plan.rules.push_back(parse_rule(rule));
            start = i + 1;
        }
    }
    return plan;
}

fault_rule decide_fault(const fault_plan& plan, std::uint64_t shard,
                        std::uint64_t round, std::uint64_t attempt) noexcept {
    for (const auto& rule : plan.rules) {
        if (!rule.any_shard && rule.shard != shard) continue;
        if (!rule.any_round && rule.round != round) continue;
        if (!rule.any_attempt && rule.attempt != attempt) continue;
        return rule;
    }
    return fault_rule{};
}

}  // namespace pssp::dist
