#include "compiler/codegen.hpp"

#include <stdexcept>

#include "binfmt/stdlib.hpp"

namespace pssp::compiler {

using namespace vm::isa;
using vm::reg;

namespace {

// Argument registers, SysV order (we support 4 parameters).
constexpr reg arg_regs[] = {reg::rdi, reg::rsi, reg::rdx, reg::rcx};

// movabs with a symbol relocation: the linker patches imm with the
// symbol's address (code or data).
[[nodiscard]] vm::instruction mov_sym(reg dst, std::uint32_t sym) {
    auto insn = mov_ri(dst, 0);
    insn.sym = sym;
    return insn;
}

[[nodiscard]] core::frame_plan unprotected_plan(
    const std::vector<core::local_desc>& descs) {
    core::frame_plan plan;
    plan.local_offsets.resize(descs.size());
    std::int32_t cursor = 0;
    for (std::size_t i = 0; i < descs.size(); ++i) {
        cursor += static_cast<std::int32_t>((descs[i].size + 7) & ~7u);
        plan.local_offsets[i] = -cursor;
    }
    plan.frame_bytes = (cursor + 15) & ~15;
    return plan;
}

// Per-function lowering context.
class function_lowering {
  public:
    function_lowering(const ir_function& fn, const core::scheme& sch,
                      binfmt::image& img)
        : fn_{fn}, scheme_{sch}, img_{img}, out_{img.add_function(fn.name)},
          plan_{plan_for_function(fn, sch)} {}

    void lower() {
        // Frame setup (Code 1, lines 1-3).
        out_.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp)});
        if (plan_.frame_bytes > 0) out_.emit(sub_ri(reg::rsp, plan_.frame_bytes));
        if (plan_.protected_frame) scheme_.emit_prologue(out_, img_, plan_);

        // Parameter spill: locals[0..param_count) receive rdi..rcx.
        if (fn_.param_count > 4)
            throw std::invalid_argument{fn_.name + ": more than 4 parameters"};
        for (int i = 0; i < fn_.param_count; ++i)
            out_.emit(mov_mr(mem(reg::rbp, slot(i)), arg_regs[i]));

        lower_block(fn_.body);
        if (!ends_with_return(fn_.body)) emit_return(const_ref{0});
    }

  private:
    const ir_function& fn_;
    const core::scheme& scheme_;
    binfmt::image& img_;
    binfmt::bin_function& out_;
    core::frame_plan plan_;

    [[nodiscard]] std::int32_t slot(int local) const {
        if (local < 0 || static_cast<std::size_t>(local) >= plan_.local_offsets.size())
            throw std::out_of_range{fn_.name + ": bad local index"};
        return plan_.local_offsets[static_cast<std::size_t>(local)];
    }

    [[nodiscard]] static bool ends_with_return(const std::vector<stmt>& body) {
        return !body.empty() && std::holds_alternative<return_stmt>(body.back().node);
    }

    // Evaluates `op` into `dst` without touching any other register.
    void eval(const operand& op, reg dst) {
        if (const auto* l = std::get_if<local_ref>(&op)) {
            out_.emit(mov_rm(dst, mem(reg::rbp, slot(l->index))));
        } else if (const auto* c = std::get_if<const_ref>(&op)) {
            out_.emit(mov_ri(dst, c->value));
        } else if (const auto* a = std::get_if<addr_of>(&op)) {
            out_.emit(lea(dst, mem(reg::rbp, slot(a->index))));
        } else if (const auto* g = std::get_if<global_addr>(&op)) {
            out_.emit(mov_sym(dst, img_.sym(g->name)));
        }
    }

    void lower_block(const std::vector<stmt>& body) {
        for (const auto& s : body) lower_stmt(s);
    }

    void lower_stmt(const stmt& s) {
        std::visit([this](const auto& node) { lower_node(node); }, s.node);
    }

    void lower_node(const assign_stmt& s) {
        eval(s.src, reg::rax);
        out_.emit(mov_mr(mem(reg::rbp, slot(s.dst)), reg::rax));
    }

    void lower_node(const compute_stmt& s) {
        eval(s.a, reg::rax);
        switch (s.op) {
            case binop::shl:
            case binop::shr: {
                const auto* c = std::get_if<const_ref>(&s.b);
                if (c == nullptr)
                    throw std::invalid_argument{fn_.name + ": shift needs const amount"};
                const auto bits = static_cast<std::uint8_t>(c->value & 63);
                out_.emit(s.op == binop::shl ? shl_ri(reg::rax, bits)
                                             : shr_ri(reg::rax, bits));
                break;
            }
            case binop::add:
            case binop::sub:
            case binop::mul:
            case binop::xor_: {
                eval(s.b, reg::r10);
                switch (s.op) {
                    case binop::add: out_.emit(add_rr(reg::rax, reg::r10)); break;
                    case binop::sub: out_.emit(sub_rr(reg::rax, reg::r10)); break;
                    case binop::mul: out_.emit(imul_rr(reg::rax, reg::r10)); break;
                    default: out_.emit(xor_rr(reg::rax, reg::r10)); break;
                }
                break;
            }
        }
        out_.emit(mov_mr(mem(reg::rbp, slot(s.dst)), reg::rax));
    }

    void lower_node(const load_global_stmt& s) {
        out_.emit({mov_sym(reg::r10, img_.sym(s.global)),
                   mov_rm(reg::rax, mem(reg::r10, s.offset)),
                   mov_mr(mem(reg::rbp, slot(s.dst)), reg::rax)});
    }

    void lower_node(const store_global_stmt& s) {
        eval(s.src, reg::rax);
        out_.emit({mov_sym(reg::r10, img_.sym(s.global)),
                   mov_mr(mem(reg::r10, s.offset), reg::rax)});
    }

    void lower_node(const call_stmt& s) {
        if (s.args.size() > 4)
            throw std::invalid_argument{fn_.name + ": more than 4 call arguments"};
        for (std::size_t i = 0; i < s.args.size(); ++i) eval(s.args[i], arg_regs[i]);
        out_.emit(call_sym(img_.sym(s.callee)));
        if (s.result) out_.emit(mov_mr(mem(reg::rbp, slot(*s.result)), reg::rax));
        if (s.writes_memory && plan_.protected_frame)
            scheme_.emit_write_site_check(out_, img_, plan_);
    }

    void lower_node(const loop_stmt& s) {
        const auto head = out_.new_label();
        const auto done = out_.new_label();
        out_.emit(mov_mi(mem(reg::rbp, slot(s.counter)), 0));
        out_.place(head);
        out_.emit({mov_rm(reg::rax, mem(reg::rbp, slot(s.counter))),
                   cmp_ri(reg::rax, static_cast<std::int32_t>(s.iterations)), jae(done)});
        lower_block(s.body);
        out_.emit({mov_rm(reg::rax, mem(reg::rbp, slot(s.counter))),
                   add_ri(reg::rax, 1),
                   mov_mr(mem(reg::rbp, slot(s.counter)), reg::rax), jmp(head)});
        out_.place(done);
        out_.emit(nop());  // label anchor even when the loop ends the block
    }

    void lower_node(const if_stmt& s) {
        const auto lbl_else = out_.new_label();
        const auto lbl_end = out_.new_label();
        eval(s.a, reg::rax);
        eval(s.b, reg::r10);
        out_.emit(cmp_rr(reg::rax, reg::r10));
        // Branch to else when the condition is false.
        switch (s.op) {
            case relop::eq: out_.emit(jne(lbl_else)); break;
            case relop::ne: out_.emit(je(lbl_else)); break;
            case relop::lt_unsigned: out_.emit(jae(lbl_else)); break;
            case relop::lt_signed: out_.emit(jge(lbl_else)); break;
        }
        lower_block(s.then_body);
        out_.emit(jmp(lbl_end));
        out_.place(lbl_else);
        out_.emit(nop());
        lower_block(s.else_body);
        out_.place(lbl_end);
        out_.emit(nop());
    }

    void lower_node(const write_stmt& s) {
        eval(s.address, reg::rsi);
        eval(s.length, reg::rdx);
        out_.emit({mov_ri(reg::rdi, 1),
                   syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_write))});
    }

    void lower_node(const return_stmt& s) { emit_return(s.value); }

    void emit_return(const operand& value) {
        eval(value, reg::rax);
        if (plan_.protected_frame) scheme_.emit_epilogue(out_, img_, plan_);
        out_.emit({leave(), ret()});
    }
};

}  // namespace

core::frame_plan plan_for_function(const ir_function& fn, const core::scheme& sch) {
    std::vector<core::local_desc> descs;
    descs.reserve(fn.locals.size());
    for (const auto& local : fn.locals)
        descs.push_back({local.size, local.is_buffer, local.is_critical});
    return fn.never_protect ? unprotected_plan(descs) : sch.plan_frame(descs);
}

codegen::codegen(std::shared_ptr<const core::scheme> sch) : scheme_{std::move(sch)} {
    if (!scheme_) throw std::invalid_argument{"codegen requires a scheme"};
}

void codegen::compile_function(const ir_function& fn, binfmt::image& img) const {
    function_lowering lowering{fn, *scheme_, img};
    lowering.lower();
}

void codegen::compile_module(const ir_module& mod, binfmt::image& img) const {
    for (const auto& g : mod.globals) img.add_data({g.name, g.size, g.init});
    for (const auto& fn : mod.functions) compile_function(fn, img);
}

binfmt::linked_binary build_module(const ir_module& mod,
                                   std::shared_ptr<const core::scheme> sch,
                                   binfmt::link_mode mode) {
    binfmt::image img;
    codegen cg{std::move(sch)};
    cg.compile_module(mod, img);
    binfmt::add_standard_library(img, mode);
    return img.link(mode);
}

binfmt::linked_binary build_mixed(const std::vector<module_under_scheme>& parts,
                                  binfmt::link_mode mode) {
    binfmt::image img;
    for (const auto& part : parts) {
        codegen cg{part.sch};
        cg.compile_module(*part.mod, img);
    }
    binfmt::add_standard_library(img, mode);
    return img.link(mode);
}

}  // namespace pssp::compiler
