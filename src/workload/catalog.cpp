#include "workload/catalog.hpp"

#include <stdexcept>

#include "workload/database.hpp"
#include "workload/spec.hpp"
#include "workload/webserver.hpp"

namespace pssp::workload {

const std::vector<catalog_entry>& workload_catalog() {
    static const std::vector<catalog_entry> entries{
        {"nginx", "nginx-shaped request loop (Section VI-B web server)"},
        {"apache", "httpd-shaped request loop, larger header buffers"},
        {"ali", "production-trace profile (Section VI-D Ali deployment)"},
        {"mysql", "sysbench-oltp-ish point queries"},
        {"sqlite", "threadtest3-ish batch statements"},
        {"spec_int", "representative CINT2006 benchmark"},
        {"spec_fp", "representative CFP2006 benchmark"},
    };
    return entries;
}

compiler::ir_module make_catalog_module(const std::string& name) {
    if (name == "nginx") return make_server_module(nginx_profile());
    if (name == "apache") return make_server_module(apache_profile());
    if (name == "ali") return make_server_module(ali_profile());
    if (name == "mysql") return make_db_module(mysql_profile());
    if (name == "sqlite") return make_db_module(sqlite_profile());
    if (name == "spec_int" || name == "spec_fp") {
        const bool want_int = name == "spec_int";
        for (const auto& profile : spec2006_profiles())
            if (profile.integer_suite == want_int) return make_spec_module(profile);
        throw std::runtime_error{"spec2006_profiles missing suite for " + name};
    }
    throw std::invalid_argument{"unknown workload: " + name};
}

}  // namespace pssp::workload
