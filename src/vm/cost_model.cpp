#include "vm/cost_model.hpp"

namespace pssp::vm {

cost_table cost_model::table() const noexcept {
    cost_table t;
    for (std::size_t i = 0; i < opcode_count; ++i) {
        instruction insn;
        insn.op = static_cast<opcode>(i);
        insn.imm = 0;  // sim_delay entry carries only the dbi_tax part
        t.per_op[i] = cost_of(insn);
    }
    return t;
}

std::uint64_t cost_model::cost_of(const instruction& insn) const noexcept {
    std::uint64_t base = alu;
    switch (insn.op) {
        case opcode::je:
        case opcode::jne:
        case opcode::jb:
        case opcode::jae:
        case opcode::jl:
        case opcode::jge:
        case opcode::jnc:
        case opcode::jmp:
            base = branch;
            break;
        case opcode::call:
        case opcode::ret:
        case opcode::leave:
            base = call;
            break;
        case opcode::rdrand_r:
            base = rdrand;
            break;
        case opcode::rdtsc:
            base = rdtsc;
            break;
        case opcode::movq_xr:
        case opcode::movq_rx:
        case opcode::movhps_xm:
        case opcode::punpckhqdq_xr:
        case opcode::movdqu_mx:
        case opcode::movdqu_xm:
        case opcode::cmp128_xm:
            base = sse;
            break;
        case opcode::syscall_i:
            base = syscall;
            break;
        case opcode::sim_delay:
            base = insn.imm;
            break;
        default:
            break;
    }
    return base + dbi_tax;
}

}  // namespace pssp::vm
