// The dashboard export is a self-contained HTML file whose numbers are
// all computed in C++ and embedded as one JSON payload; the page's JS
// only draws. This test extracts that payload and checks it is
// well-formed and carries the store's aggregates faithfully — the chart
// can only be as wrong as the payload, and the payload is testable.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/campaign.hpp"
#include "store/dashboard.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

std::string fresh_dir(const char* tag) {
    static int serial = 0;
    return ::testing::TempDir() + "pssp-dash-" + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(serial++);
}

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    // 192 trials = three canonical 64-trial blocks per cell: three
    // ingest rounds' worth of hand-built partials.
    spec.trials_per_cell = 192;
    spec.master_seed = 71;
    spec.query_budget = 512;
    spec.adaptive = true;
    return spec;
}

// A three-round store with hand-built partials: enough structure for a
// convergence curve (>= 2 rounds) and a populated timeline.
std::string build_store(const campaign::campaign_spec& spec) {
    const auto dir = fresh_dir("store");
    auto writer = store::store_writer::open(dir, spec, false);
    const auto canonical = campaign::blocks_for(spec);
    const std::size_t per_round = (canonical.size() + 2) / 3;
    std::size_t next = 0;
    for (std::uint64_t round = 1; round <= 3 && next < canonical.size();
         ++round) {
        std::vector<dist::partial_block> blocks;
        std::uint64_t trials = 0;
        for (std::size_t i = 0; i < per_round && next < canonical.size();
             ++i, ++next) {
            const auto& ref = canonical[next];
            dist::partial_block b;
            b.index = ref.index;
            b.cell = ref.cell;
            b.partial.trials = ref.trials;
            b.partial.detections = ref.trials / 2;
            b.partial.hijacks = ref.trials / 4;
            trials += ref.trials;
            blocks.push_back(b);
        }
        writer.ingest_blocks(round, blocks);
        obs::round_summary s;
        s.round = round;
        s.blocks = blocks.size();
        s.trials = trials;
        s.cumulative_trials = trials * round;
        s.max_halfwidth = 0.5 / static_cast<double>(round);
        s.widest_cell = "nginx_m/SSP/leak_replay";
        s.retries = round == 2 ? 1 : 0;
        writer.ingest_round(s);
    }
    return dir;
}

std::string payload_of(const std::string& html) {
    const std::string open = "<script id=\"pssp-data\" "
                             "type=\"application/json\">";
    const auto start = html.find(open);
    EXPECT_NE(start, std::string::npos);
    const auto end = html.find("</script>", start);
    EXPECT_NE(end, std::string::npos);
    return html.substr(start + open.size(), end - start - open.size());
}

TEST(store_dashboard, payload_carries_the_store_aggregates) {
    const auto spec = small_spec();
    const auto dir = build_store(spec);
    const auto data = store::load_store(dir);
    const auto html = store::render_dashboard(data);

    const auto doc = util::parse_json(payload_of(html));
    const auto& meta = doc.at("meta");
    EXPECT_FALSE(meta.at("complete").as_bool());
    EXPECT_TRUE(meta.at("adaptive").as_bool());
    EXPECT_EQ(meta.at("rounds").as_u64(), 3u);
    EXPECT_EQ(meta.at("repaired_segments").as_u64(), 0u);

    // Cells mirror the query engine's aggregates, number for number.
    const auto cells = store::aggregate_cells(data, {});
    const auto& payload_cells = doc.at("cells").elements();
    ASSERT_EQ(payload_cells.size(), cells.size());
    std::uint64_t trials = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(payload_cells[i].at("name").as_string(),
                  store::cell_name(cells[i].id));
        EXPECT_EQ(payload_cells[i].at("trials").as_u64(),
                  cells[i].report.trials);
        EXPECT_EQ(payload_cells[i].at("detections").as_u64(),
                  cells[i].report.detections);
        trials += cells[i].report.trials;
    }
    EXPECT_EQ(meta.at("trials").as_u64(), trials);

    // Convergence: three adaptive rounds, every series curve padded to
    // the same length as the round axis.
    const auto& conv = doc.at("convergence");
    ASSERT_EQ(conv.at("rounds").elements().size(), 3u);
    const auto& series = conv.at("series").elements();
    ASSERT_GT(series.size(), 0u);
    ASSERT_LE(series.size(), 8u);  // the categorical fold cap
    for (const auto& s : series)
        EXPECT_EQ(s.at("hw").elements().size(), 3u) << s.at("name").as_string();

    // Timeline rows carry the recovery provenance.
    const auto& timeline = doc.at("timeline").elements();
    ASSERT_EQ(timeline.size(), 3u);
    EXPECT_EQ(timeline[1].at("retries").as_u64(), 1u);
    EXPECT_EQ(timeline[0].at("retries").as_u64(), 0u);
}

TEST(store_dashboard, html_is_self_contained_and_theme_aware) {
    const auto spec = small_spec();
    const auto dir = build_store(spec);
    const auto html = store::render_dashboard(store::load_store(dir));

    EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
    // No external fetches: a file:// open must render fully. (The SVG
    // xmlns URI is a namespace name, not a fetch.)
    EXPECT_EQ(html.find("<link"), std::string::npos);
    EXPECT_EQ(html.find("fetch("), std::string::npos);
    EXPECT_EQ(html.find("<script src"), std::string::npos);
    // Dark mode is a selected palette, not an automatic flip.
    EXPECT_NE(html.find("prefers-color-scheme: dark"), std::string::npos);
    EXPECT_NE(html.find("data-theme=\"dark\""), std::string::npos);

    // A fixed-allocation (single round-0) store renders too — with the
    // convergence chart explicitly absent rather than broken.
    auto fixed = spec;
    fixed.adaptive = false;
    const auto fdir = fresh_dir("fixed");
    {
        auto writer = store::store_writer::open(fdir, fixed, false);
        obs::round_summary s;
        writer.ingest_round(s);
    }
    const auto fixed_html = store::render_dashboard(store::load_store(fdir));
    const auto doc = util::parse_json(payload_of(fixed_html));
    EXPECT_EQ(doc.at("convergence").at("series").elements().size(), 0u);
}

}  // namespace
}  // namespace pssp
