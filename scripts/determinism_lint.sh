#!/usr/bin/env bash
# Determinism lint: the whole repo's identity story (byte-identical reports
# across jobs/shards/dispatch engines, replayable campaigns, the mutation
# self-test) rests on every random bit flowing from a seeded PRNG. Reject
# any ambient-entropy or wall-clock source sneaking into src/ or tools/.
#
# Forbidden:
#   rand(                -- libc rand, unseeded or process-global
#   srand(               -- seeding the global generator at all
#   time(nullptr / NULL  -- wall clock as an entropy or seed source
#   std::random_device   -- ambient hardware entropy
#
# Allowlisted: identifiers merely *containing* the tokens, e.g. the rdrand
# instruction family (emulated, seeded) and crypto::splitmix64 helpers.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
scan() {
    local pattern="$1" label="$2"
    # -P for lookbehind: 'rand(' must not match 'rdrand(', 'splitmix_rand(' etc.
    local hits
    hits=$(grep -RnP --include='*.cpp' --include='*.hpp' "$pattern" src tools || true)
    if [[ -n "$hits" ]]; then
        echo "determinism lint: forbidden $label:" >&2
        echo "$hits" >&2
        fail=1
    fi
}

scan '(?<![A-Za-z0-9_])rand\s*\(' 'libc rand() call'
scan '(?<![A-Za-z0-9_])srand\s*\(' 'srand() call'
scan '(?<![A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)\s*\)' 'wall-clock time() seed'
scan 'std::random_device' 'std::random_device'

if [[ "$fail" -ne 0 ]]; then
    echo "determinism lint FAILED — route randomness through crypto/prng.hpp" >&2
    exit 1
fi
echo "determinism lint OK"
