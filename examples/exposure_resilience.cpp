// P-SSP-OWF (extension 3): surviving canary *exposure*, not just guessing
// — Section IV-C's single-point-of-failure experiment.
//
//   $ ./exposure_resilience
//
// The server's handler has two bugs: an over-read that leaks the stack
// around its buffer (canary included), and the usual unbounded copy. The
// attack leaks a worker's canary, then replays it in an overflow against
// the next worker.
//
// The paper is explicit that this breaks MORE than just SSP: "a common
// drawback of P-SSP and SSP is its single point of failure ... the
// exposure of one stack frame's canary leads to the exposure of the TLS
// canary". Indeed:
//   * SSP        — replayed verbatim: hijack.
//   * P-SSP / NT — the leaked pair satisfies C0 xor C1 = C, and C never
//                  changes: re-randomization defeats *guessing*, not
//                  *exposure*. Hijack.
//   * P-SSP-GB   — the matching C1 lives in a global buffer the overflow
//                  cannot reach, and each frame's C0 is fresh: rejected.
//   * P-SSP-OWF  — the canary is AES(ret || nonce) under a register-held
//                  key, bound to the frame it was minted for: rejected.

#include <cstdio>

#include "attack/leak_replay.hpp"
#include "compiler/codegen.hpp"
#include "proc/fork_server.hpp"
#include "util/bytes.hpp"
#include "workload/webserver.hpp"

using namespace pssp;

namespace {

void leak_and_replay(core::scheme_kind kind, unsigned canary_bytes) {
    const auto profile = workload::nginx_profile();
    const auto binary = compiler::build_module(workload::make_server_module(profile),
                                               core::make_scheme(kind));
    proc::fork_server server{binary, core::make_scheme(kind), /*seed=*/404,
                             workload::server_config_for(profile)};

    attack::leak_replay_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = canary_bytes;
    cfg.leak_offset = workload::attack_prefix_bytes(profile);
    attack::leak_replay atk{server, cfg};
    const auto r = atk.run(binary.symbols.at("win"), binary.data_base);

    std::printf("---- %s ----\n", core::to_string(kind).c_str());
    if (r.leak_succeeded)
        std::printf("  leaked canary bytes: %s\n",
                    util::to_hex(r.leaked_canary).c_str());
    else
        std::printf("  leak failed\n");
    std::printf("  replay against next worker: %s\n\n",
                r.hijacked ? ">>> HIJACKED — one leak broke the server <<<"
                           : "rejected (stale / frame-bound canary)");
}

}  // namespace

int main() {
    std::printf("Leak one worker's canary, replay it against the next\n\n");
    leak_and_replay(core::scheme_kind::ssp, 8);
    leak_and_replay(core::scheme_kind::p_ssp, 16);
    leak_and_replay(core::scheme_kind::p_ssp_nt, 16);
    leak_and_replay(core::scheme_kind::p_ssp_gb, 8);
    leak_and_replay(core::scheme_kind::p_ssp_owf, 24);
    std::printf("Expected: SSP, P-SSP and P-SSP-NT all fall — the paper's Section\n"
                "IV-C single point of failure (any pair XORing to the fixed TLS\n"
                "canary passes). P-SSP-GB survives because the matching half lives\n"
                "outside the overflow's reach; P-SSP-OWF because each canary is a\n"
                "keyed MAC over (return address, nonce).\n");
    return 0;
}
