// The snapshot-reuse contract: a pool-recycled fork server rebooted for
// seed S must be byte-identical — in every observable of every serve — to
// a fork server freshly constructed with seed S. The campaign engine's
// report reproducibility across the reuse_masters knob rests entirely on
// this property.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/tls_layout.hpp"
#include "proc/master_pool.hpp"
#include "workload/victim.hpp"

namespace pssp {
namespace {

using core::scheme_kind;
using proc::fork_server;
using proc::serve_result;

// A request mix that exercises the worker lifecycle broadly: benign
// requests, canary-smashing overflows (worker dies, master re-forks), and
// the info-leak path.
std::vector<std::string> request_mix(const workload::victim& v) {
    const std::string overflow(v.prefix_bytes + 24, 'A');
    const std::string near_miss(v.prefix_bytes - 1, 'B');
    std::vector<std::string> mix;
    for (int round = 0; round < 6; ++round) {
        mix.emplace_back("GET /index HTTP/1.0");
        mix.push_back(near_miss);
        mix.push_back(overflow);
        mix.emplace_back("LEAK");
        mix.emplace_back("ping");
    }
    return mix;
}

void expect_same_serve(const serve_result& a, const serve_result& b, std::size_t i) {
    EXPECT_EQ(a.outcome, b.outcome) << "request " << i;
    EXPECT_EQ(a.raw.status, b.raw.status) << "request " << i;
    EXPECT_EQ(a.raw.trap, b.raw.trap) << "request " << i;
    EXPECT_EQ(a.raw.exit_code, b.raw.exit_code) << "request " << i;
    EXPECT_EQ(a.raw.fault_addr, b.raw.fault_addr) << "request " << i;
    EXPECT_EQ(a.output, b.output) << "request " << i;
    EXPECT_EQ(a.worker_cycles, b.worker_cycles) << "request " << i;
    EXPECT_EQ(a.worker_steps, b.worker_steps) << "request " << i;
}

void expect_equivalent_servers(fork_server& fresh, fork_server& pooled,
                               const std::vector<std::string>& requests) {
    // Same master state at boot...
    EXPECT_EQ(core::tls_load(fresh.master(), core::tls_canary),
              core::tls_load(pooled.master(), core::tls_canary));
    EXPECT_EQ(fresh.master().cycles(), pooled.master().cycles());
    EXPECT_EQ(fresh.master().steps(), pooled.master().steps());
    // ...and identical behavior over a whole serve sequence.
    for (std::size_t i = 0; i < requests.size(); ++i)
        expect_same_serve(fresh.serve(requests[i]), pooled.serve(requests[i]), i);
    EXPECT_EQ(fresh.requests(), pooled.requests());
    EXPECT_EQ(fresh.crashes(), pooled.crashes());
}

TEST(master_pool, rebooted_server_is_byte_identical_to_fresh_boot) {
    for (const auto kind : {scheme_kind::ssp, scheme_kind::p_ssp}) {
        const auto victim = workload::make_victim(workload::target_kind::nginx, kind);
        const auto requests = request_mix(victim);
        const std::uint64_t seed = 0x5eed0001;

        // Dirty a pooled server under a different seed first, so the
        // second acquire takes the reboot (restore + re-derive) path.
        { auto scratch = victim.lease_server(seed ^ 0xffff); (void)scratch->serve("warm"); }
        auto fresh = victim.make_server(seed);
        auto lease = victim.lease_server(seed);
        EXPECT_EQ(victim.pool->reuses(), 1u);
        expect_equivalent_servers(fresh, lease.server(), requests);
    }
}

TEST(master_pool, reuse_survives_many_reboots) {
    const auto victim =
        workload::make_victim(workload::target_kind::ali, scheme_kind::p_ssp);
    const std::string overflow(victim.prefix_bytes + 16, 'A');
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        auto fresh = victim.make_server(seed);
        auto lease = victim.lease_server(seed);
        expect_same_serve(fresh.serve(overflow), lease->serve(overflow), seed);
        expect_same_serve(fresh.serve("ok"), lease->serve("ok"), seed);
    }
    EXPECT_EQ(victim.pool->boots(), 1u);
    EXPECT_EQ(victim.pool->reuses(), 9u);
}

TEST(master_pool, concurrent_leases_are_distinct_servers) {
    const auto victim =
        workload::make_victim(workload::target_kind::nginx, scheme_kind::ssp);
    auto a = victim.lease_server(1);
    auto b = victim.lease_server(2);
    EXPECT_NE(&a.server(), &b.server());
    // Different seeds, different canaries: the leases really are
    // independently booted trials.
    EXPECT_NE(core::tls_load(a->master(), core::tls_canary),
              core::tls_load(b->master(), core::tls_canary));
    EXPECT_EQ(victim.pool->boots(), 2u);
}

TEST(master_pool, released_servers_return_to_the_idle_list) {
    const auto victim =
        workload::make_victim(workload::target_kind::nginx, scheme_kind::ssp);
    EXPECT_EQ(victim.pool->idle(), 0u);
    { auto lease = victim.lease_server(7); }
    EXPECT_EQ(victim.pool->idle(), 1u);
    { auto lease = victim.lease_server(8); }
    EXPECT_EQ(victim.pool->idle(), 1u);  // reused, not duplicated
    EXPECT_EQ(victim.pool->boots(), 1u);
    EXPECT_EQ(victim.pool->reuses(), 1u);
}

TEST(master_pool, idle_limit_caps_parked_servers) {
    // Sharded campaigns size each process's pool to its worker count; the
    // cap must bound the idle list and evict on shrink, while releases
    // beyond the cap destroy the server rather than park it.
    const auto victim =
        workload::make_victim(workload::target_kind::nginx, scheme_kind::ssp);
    victim.pool->set_idle_limit(2);
    EXPECT_EQ(victim.pool->idle_limit(), 2u);
    {
        auto a = victim.lease_server(1);
        auto b = victim.lease_server(2);
        auto c = victim.lease_server(3);
    }
    EXPECT_EQ(victim.pool->idle(), 2u);  // third release was dropped
    victim.pool->set_idle_limit(1);
    EXPECT_EQ(victim.pool->idle(), 1u);  // shrink evicts immediately
    { auto lease = victim.lease_server(4); }
    EXPECT_EQ(victim.pool->idle(), 1u);
}

TEST(master_pool, reboot_requires_reusable_config) {
    const auto victim =
        workload::make_victim(workload::target_kind::nginx, scheme_kind::ssp);
    auto fresh = victim.make_server(3);  // batch servers are one-shot
    EXPECT_THROW(fresh.reboot(4), std::logic_error);
}

}  // namespace
}  // namespace pssp
