// Code generation: lowers the mini-IR to VM instructions, invoking the
// protection scheme at the paper's instrumentation points.
//
// Pipeline per function (mirroring the P-SSP-Pass structure of Section V-B):
//   1. frame planning    — the scheme's plan_frame() decides slot offsets
//                          and canary placement (this is where P-SSP-LV's
//                          interleaved layout happens);
//   2. function prologue — push rbp; mov rbp,rsp; sub rsp,N; then the
//                          scheme's canary-install code (Codes 1/3/7/8);
//   3. body lowering     — straightforward stack-slot code; after every
//                          memory-writing libc call the scheme may insert
//                          a write-site check (P-SSP-LV option);
//   4. epilogue          — before *each* ret: the scheme's canary check
//                          (Codes 2/4/9), then leave; ret.
#pragma once

#include <memory>

#include "binfmt/image.hpp"
#include "compiler/ir.hpp"
#include "core/scheme.hpp"

namespace pssp::compiler {

class codegen {
  public:
    explicit codegen(std::shared_ptr<const core::scheme> sch);

    // Compiles one function into `img`.
    void compile_function(const ir_function& fn, binfmt::image& img) const;

    // Compiles a whole module: globals first, then every function.
    void compile_module(const ir_module& mod, binfmt::image& img) const;

    [[nodiscard]] const core::scheme& protection() const noexcept { return *scheme_; }

  private:
    std::shared_ptr<const core::scheme> scheme_;
};

// The frame plan codegen will use for `fn` under `sch` (never_protect
// honored). Exposed so the static analyzer can derive the *expected*
// canary-slot layout for a function independently of the emitted code and
// cross-check the two.
[[nodiscard]] core::frame_plan plan_for_function(const ir_function& fn,
                                                const core::scheme& sch);

// Convenience one-stop build: compile `mod` under `sch`, add the standard
// library, link. The returned binary is ready for process_manager.
[[nodiscard]] binfmt::linked_binary build_module(
    const ir_module& mod, std::shared_ptr<const core::scheme> sch,
    binfmt::link_mode mode = binfmt::link_mode::dynamic_glibc);

// Mixed-protection build (the Section VI-C compatibility experiments):
// each module is compiled under its own scheme, all into one binary —
// e.g. an application under P-SSP calling library code under stock SSP.
struct module_under_scheme {
    const ir_module* mod;
    std::shared_ptr<const core::scheme> sch;
};
[[nodiscard]] binfmt::linked_binary build_mixed(
    const std::vector<module_under_scheme>& parts,
    binfmt::link_mode mode = binfmt::link_mode::dynamic_glibc);

}  // namespace pssp::compiler
