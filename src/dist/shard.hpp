// Deterministic shard planning over the campaign's canonical block space.
//
// A campaign's trial index space is already partitioned into canonical
// reduction blocks (campaign::blocks_for) whose partials merge in a fixed
// order whatever computed them. Sharding therefore never touches seeds or
// float order: the planner only decides WHICH process runs each block.
// Trial seeds stay a pure function of (master_seed, global trial index) —
// campaign::seeds_for_trial — so the splitmix64 sub-streams a shard
// consumes are exactly the ones the single-process run would have used for
// the same trials, and partitioning can never change an outcome.
//
// Assignment is round-robin by block index (block i -> shard i % count):
// deterministic, independent of machine state, and load-balanced even
// though early cells (cheap schemes) and late cells (expensive ones) cost
// different amounts. A shard may legitimately own zero blocks (more shards
// than blocks); it then contributes an empty partial report.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/campaign.hpp"

namespace pssp::dist {

struct shard_plan {
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 0;
    std::vector<campaign::block_ref> blocks;  // ascending block index
};

// All `count` shards' plans, index-aligned. Throws std::invalid_argument
// for count == 0.
[[nodiscard]] std::vector<shard_plan> plan_shards(
    const campaign::campaign_spec& spec, std::uint32_t count);

// One shard's plan, without materializing the others (what a worker
// process calls). plan_shard(spec, k, n) == plan_shards(spec, n)[k].
[[nodiscard]] shard_plan plan_shard(const campaign::campaign_spec& spec,
                                    std::uint32_t shard_index,
                                    std::uint32_t shard_count);

}  // namespace pssp::dist
