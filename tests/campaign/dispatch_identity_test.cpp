// Dispatch-mode byte-identity: the direct-threaded engine and the legacy
// switch stepper are pure execution-speed alternatives, so a campaign
// report — the repo-wide reproducibility unit — must not move a single
// byte when the VM dispatch architecture changes underneath it. Pinned
// here across the jobs axis (in-process engine) and the shards axis (real
// fork/exec workers, which inherit the mode via PSSP_VM_DISPATCH).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "campaign/engine.hpp"
#include "dist/orchestrator.hpp"
#include "vm/dispatch.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 6;
    spec.master_seed = 77;
    spec.query_budget = 2500;
    return spec;
}

// Sets the in-process default (new machines pick it up at construction)
// AND the environment (fork/exec'd campaign workers re-read it at
// startup), restoring both on destruction.
struct scoped_dispatch {
    explicit scoped_dispatch(vm::dispatch_mode mode)
        : previous_{vm::default_dispatch()} {
        vm::set_default_dispatch(mode);
        ::setenv("PSSP_VM_DISPATCH", vm::to_string(mode).c_str(), /*overwrite=*/1);
    }
    ~scoped_dispatch() {
        vm::set_default_dispatch(previous_);
        ::unsetenv("PSSP_VM_DISPATCH");
    }
    vm::dispatch_mode previous_;
};

std::string run_in_process(campaign::campaign_spec spec, unsigned jobs,
                           vm::dispatch_mode mode) {
    scoped_dispatch guard{mode};
    spec.jobs = jobs;
    return campaign::engine{spec}.run().to_json();
}

TEST(dispatch_identity, report_byte_identical_across_modes_at_jobs_1_and_8) {
    const auto spec = small_spec();
    const auto reference =
        run_in_process(spec, 1, vm::dispatch_mode::switch_loop);
    EXPECT_EQ(run_in_process(spec, 1, vm::dispatch_mode::threaded), reference);
    EXPECT_EQ(run_in_process(spec, 8, vm::dispatch_mode::threaded), reference);
    EXPECT_EQ(run_in_process(spec, 8, vm::dispatch_mode::switch_loop), reference);
}

TEST(dispatch_identity, adaptive_report_byte_identical_across_modes) {
    // The adaptive allocator's stopping decisions derive from trial
    // outcomes; if dispatch modes diverged anywhere, the round schedule
    // would amplify the difference — a sharper oracle than fixed specs.
    auto spec = small_spec();
    spec.trials_per_cell = 96;
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.1;
    spec.min_trials_per_cell = 32;
    const auto reference =
        run_in_process(spec, 4, vm::dispatch_mode::switch_loop);
    EXPECT_EQ(run_in_process(spec, 4, vm::dispatch_mode::threaded), reference);
}

TEST(dispatch_identity, sharded_report_byte_identical_across_modes_at_1_and_4) {
    // Real fork/exec workers: the mode crosses the process boundary via
    // the environment, so this pins the full distributed path too.
    const auto spec = small_spec();
    std::string reference;
    {
        scoped_dispatch guard{vm::dispatch_mode::switch_loop};
        reference = campaign::engine{spec}.run().to_json();
    }
    for (const auto mode :
         {vm::dispatch_mode::threaded, vm::dispatch_mode::switch_loop}) {
        scoped_dispatch guard{mode};
        for (const unsigned shards : {1u, 4u}) {
            dist::sharded_options options;
            options.shards = shards;
            EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference)
                << "mode=" << vm::to_string(mode) << " shards=" << shards;
        }
    }
}

}  // namespace
}  // namespace pssp
