// Fault-tolerant supervision, end to end: real fork/exec of
// tools_campaign_worker with deterministic chaos plans injected through
// PSSP_CAMPAIGN_FAULT_PLAN. Pins the recovery contract: any fault the
// retry budget absorbs — crash, late crash, truncated/corrupt/wrong-block
// partial, hang + deadline — yields a merged report byte-identical to the
// clean run; an exhausted budget fails loudly naming the shard, round,
// attempts, argv and block manifest; and an infrastructure failure
// mid-spawn reaps and reports every already-launched worker.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include <fcntl.h>
#include <pthread.h>
#include <sys/resource.h>
#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/chaos.hpp"
#include "dist/orchestrator.hpp"
#include "obs/registry.hpp"

namespace pssp {
namespace {

// Scoped PSSP_CAMPAIGN_FAULT_PLAN: never leaks a chaos plan into the
// next test (a stray plan would silently fault unrelated runs).
struct scoped_fault_plan {
    explicit scoped_fault_plan(const char* plan) {
        ::setenv(dist::fault_plan_env, plan, /*overwrite=*/1);
    }
    ~scoped_fault_plan() { ::unsetenv(dist::fault_plan_env); }
};

// Two cells, one 6-trial block each: the smallest campaign where two
// shards both own real work.
campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 6;
    spec.master_seed = 23;
    spec.query_budget = 512;
    return spec;
}

dist::sharded_options fast_options(unsigned shards) {
    dist::sharded_options options;
    options.shards = shards;
    options.flight_recorder = false;
    options.postmortem_dir = ::testing::TempDir();
    options.faults.backoff_base_seconds = 0.001;
    options.faults.backoff_cap_seconds = 0.01;
    return options;
}

std::uint64_t counter_value(const char* name) {
    return obs::value(obs::counter(name));
}

TEST(dist_supervisor, retries_heal_every_fault_kind_byte_identically) {
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    struct chaos_case {
        const char* plan;
        std::uint64_t min_retries;  // failed attempts the plan must cause
    };
    // Default attempt coordinate is 1, so every fault strikes the first
    // attempt only and the requeue heals it; slow=10 on attempt 2 rides
    // the retry through the slow path without failing it.
    const chaos_case cases[] = {
        {"crash:0,crash-late:1", 2},
        {"trunc:0,corrupt:1", 2},
        {"wrong-block:0,slow=10:*:*:2", 1},
    };
    for (const auto& c : cases) {
        scoped_fault_plan plan{c.plan};
        const auto retries_before = counter_value("dist.retries");
        const auto options = fast_options(2);
        const auto report = dist::run_sharded(spec, options);
        EXPECT_EQ(report.to_json(), reference) << "plan: " << c.plan;
        EXPECT_GE(counter_value("dist.retries") - retries_before,
                  c.min_retries)
            << "plan injected nothing: " << c.plan;
    }
}

TEST(dist_supervisor, adaptive_round_faults_heal_byte_identically) {
    // Two deterministic rounds (target 0 never converges; 4 blocks at 2
    // per round); the plan faults round 1 on shard 0 and round 2 on
    // shard 1, proving the (shard, round, attempt) coordinate reaches the
    // workers and recovery holds across allocator rounds.
    auto spec = small_spec();
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.0;
    spec.trials_per_cell = 96;  // two ragged blocks per cell
    spec.round_blocks = 2;
    spec.min_trials_per_cell = 32;
    const auto reference = campaign::engine{spec}.run().to_json();
    scoped_fault_plan plan{"crash:0:1,corrupt:1:2"};
    const auto retries_before = counter_value("dist.retries");
    EXPECT_EQ(dist::run_sharded(spec, fast_options(2)).to_json(), reference);
    EXPECT_GE(counter_value("dist.retries") - retries_before, 2u);
}

TEST(dist_supervisor, deadline_kills_hung_worker_and_retry_heals) {
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    scoped_fault_plan plan{"hang:1"};
    auto options = fast_options(2);
    options.faults.timeout_seconds = 1.0;
    const auto timeouts_before = counter_value("dist.timeouts");
    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
    EXPECT_GE(counter_value("dist.timeouts") - timeouts_before, 1u);
}

TEST(dist_supervisor, exhausted_retries_fail_loudly_with_full_context) {
    const auto spec = small_spec();
    scoped_fault_plan plan{"crash:1:*:*"};  // every attempt, never heals
    auto options = fast_options(2);
    options.faults.max_attempts = 2;
    try {
        (void)dist::run_sharded(spec, options);
        FAIL() << "an exhausted retry budget must fail the campaign";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("shard 1 (round 0)"), std::string::npos) << what;
        EXPECT_NE(what.find("exited with status 3"), std::string::npos) << what;
        EXPECT_NE(what.find("after 2 attempt(s)"), std::string::npos) << what;
        EXPECT_NE(what.find("--shard 1 --shards 2"), std::string::npos) << what;
        EXPECT_NE(what.find("[blocks: "), std::string::npos) << what;
    }
    // One postmortem per failed attempt, none overwriting another.
    const auto first = options.postmortem_dir + "/obs-postmortem-1.json";
    const auto second =
        options.postmortem_dir + "/obs-postmortem-1-attempt2.json";
    EXPECT_EQ(::access(first.c_str(), R_OK), 0) << "missing " << first;
    EXPECT_EQ(::access(second.c_str(), R_OK), 0) << "missing " << second;
    ::unlink(first.c_str());
    ::unlink(second.c_str());
}

TEST(dist_supervisor, bad_partials_are_classified_not_merged) {
    // With max_attempts 1 each injected bad partial is terminal, so the
    // error must carry the classifier's verdict — corrupt partials read
    // as digest mismatches, wrong-block partials name the stray block.
    const auto spec = small_spec();
    auto options = fast_options(2);
    options.faults.max_attempts = 1;
    {
        scoped_fault_plan plan{"corrupt:0:*:*"};
        try {
            (void)dist::run_sharded(spec, options);
            FAIL() << "a corrupt partial must fail a no-retry run";
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string{e.what()}.find("digest mismatch"),
                      std::string::npos)
                << e.what();
        }
    }
    {
        scoped_fault_plan plan{"wrong-block:0:*:*"};
        try {
            (void)dist::run_sharded(spec, options);
            FAIL() << "a wrong-blocks partial must fail a no-retry run";
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string{e.what()}.find("covered block"),
                      std::string::npos)
                << e.what();
        }
    }
    ::unlink((options.postmortem_dir + "/obs-postmortem-0.json").c_str());
}

TEST(dist_supervisor, signal_storm_mid_transfer_does_not_move_a_byte) {
    // Satellite regression: every pipe read/write/poll/wait in the
    // orchestrator must survive EINTR. A ticker thread signals the
    // orchestrating thread every millisecond — without SA_RESTART, so
    // every blocking syscall in run_sharded really returns EINTR —
    // throughout a two-shard run; the report must still be byte-identical.
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();

    struct sigaction storm {};
    storm.sa_handler = [](int) {};
    sigemptyset(&storm.sa_mask);
    storm.sa_flags = 0;  // no SA_RESTART: syscalls must handle EINTR
    struct sigaction old {};
    ASSERT_EQ(::sigaction(SIGUSR1, &storm, &old), 0);

    std::atomic<bool> stop{false};
    const pthread_t target = ::pthread_self();
    std::thread ticker{[&stop, target] {
        while (!stop.load(std::memory_order_relaxed)) {
            ::pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }};
    std::string got;
    try {
        got = dist::run_sharded(spec, fast_options(2)).to_json();
    } catch (...) {
        stop.store(true);
        ticker.join();
        ::sigaction(SIGUSR1, &old, nullptr);
        throw;
    }
    stop.store(true);
    ticker.join();
    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
    EXPECT_EQ(got, reference);
}

TEST(dist_supervisor, spawn_failure_reaps_and_reports_launched_workers) {
    // Satellite regression: when pipe() dies mid-spawn, the pool used to
    // abandon already-running workers. The abort path must SIGKILL and
    // reap each one and name its fate in the thrown error. The fd table
    // is made dense with filler fds so the lowered RLIMIT_NOFILE leaves
    // exactly 9 free slots: three 2-pipe spawns fit (peak 4, then 6, then
    // 8 fds), the fourth does not.
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 4;
    spec.query_budget = 256;
    auto options = fast_options(4);

    std::vector<int> fillers;
    for (int i = 0; i < 16; ++i) {
        const int fd = ::open("/dev/null", O_RDONLY);
        ASSERT_GE(fd, 0);
        fillers.push_back(fd);
    }
    // open(2) returns the lowest free fd, so consecutive tail fds prove
    // every slot below them is occupied.
    ASSERT_EQ(fillers[15], fillers[14] + 1) << "fd table not dense";

    struct rlimit old {};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old), 0);
    struct rlimit low = old;
    low.rlim_cur = static_cast<rlim_t>(fillers[15]) + 1 + 9;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);

    std::string what;
    try {
        (void)dist::run_sharded(spec, options);
    } catch (const std::runtime_error& e) {
        what = e.what();
    }
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old), 0);
    for (const int fd : fillers) ::close(fd);

    ASSERT_FALSE(what.empty()) << "fd exhaustion mid-spawn must fail the run";
    EXPECT_NE(what.find("pipe() failed"), std::string::npos) << what;
    EXPECT_NE(what.find("already-launched worker(s)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("shard 0:"), std::string::npos)
        << "each launched worker's fate must be reported: " << what;
}

TEST(dist_supervisor, zero_max_attempts_is_rejected) {
    auto options = fast_options(1);
    options.faults.max_attempts = 0;
    EXPECT_THROW((void)dist::run_sharded(small_spec(), options),
                 std::invalid_argument);
}

TEST(dist_supervisor, backoff_for_is_exponential_and_capped) {
    dist::fault_policy policy;
    policy.backoff_base_seconds = 0.05;
    policy.backoff_cap_seconds = 2.0;
    EXPECT_DOUBLE_EQ(policy.backoff_for(1), 0.05);
    EXPECT_DOUBLE_EQ(policy.backoff_for(2), 0.10);
    EXPECT_DOUBLE_EQ(policy.backoff_for(3), 0.20);
    EXPECT_DOUBLE_EQ(policy.backoff_for(6), 1.60);
    EXPECT_DOUBLE_EQ(policy.backoff_for(7), 2.0) << "cap must bind";
    EXPECT_DOUBLE_EQ(policy.backoff_for(30), 2.0)
        << "large attempt counts must not overflow past the cap";
}

TEST(dist_supervisor, backoff_never_blocks_a_healthy_shard) {
    // Backoff is folded into the poll() timeout, never slept: while
    // shard 1 burns two crashes and two full backoff windows, shard 0's
    // pipes must keep draining and its job must complete long before
    // shard 1's retries are even allowed to start. A supervisor that
    // slept the backoff would delay shard 0 past the windows too.
    const auto spec = small_spec();
    const auto blocks = campaign::blocks_for(spec);
    ASSERT_GE(blocks.size(), 2u);
    const auto digest = dist::spec_digest(spec);

    std::vector<dist::supervised_job> jobs(2);
    for (std::uint32_t k = 0; k < 2; ++k) {
        dist::round_job rj;
        rj.spec = spec;
        rj.manifest.round = 1;
        rj.manifest.digest = digest;
        for (std::size_t p = k; p < blocks.size(); p += 2)
            rj.manifest.blocks.push_back(blocks[p]);
        jobs[k].args = {"--round", "--shard", std::to_string(k), "--shards",
                        "2"};
        jobs[k].input = dist::round_job_to_json(rj);
        jobs[k].manifest = std::move(rj.manifest);
        jobs[k].shard = k;
        jobs[k].shard_count = 2;
    }

    // Crash shard 1 on attempts 1 and 2; with a 1-second backoff window
    // per failure, its success cannot land before T+2s.
    scoped_fault_plan plan{"crash:1:*:1,crash:1:*:2"};
    dist::fault_policy policy;
    policy.max_attempts = 3;
    policy.backoff_base_seconds = 1.0;
    policy.backoff_cap_seconds = 1.0;

    const auto start = std::chrono::steady_clock::now();
    double success_at[2] = {-1.0, -1.0};
    dist::supervise_hooks hooks;
    hooks.on_job_success = [&](const dist::supervised_job& job,
                               const dist::partial_report&) {
        success_at[job.shard] = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
    };
    dist::supervise_stats stats;
    const auto results =
        dist::supervise_jobs(dist::default_worker_path(), jobs, policy, hooks,
                             stats);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[1].ok);
    EXPECT_EQ(results[1].attempts, 3u);
    EXPECT_EQ(stats.retries, 2u);
    ASSERT_GE(success_at[0], 0.0);
    ASSERT_GE(success_at[1], 0.0);
    // Shard 1 must have waited out both windows...
    EXPECT_GE(success_at[1], 2.0);
    // ...and healthy shard 0 must have finished well inside the first
    // one (generous margin for sanitizer-slowed CI; the compute itself
    // is a handful of milliseconds).
    EXPECT_LT(success_at[0], 1.5)
        << "healthy shard was stalled behind another shard's backoff";
}

}  // namespace
}  // namespace pssp
