// Boot-amortizing pool of reusable fork servers — the trial engine's
// answer to "each Monte-Carlo trial pays for a full master boot".
//
// A campaign cell runs thousands of trials against the same (binary,
// scheme) build, each needing a fork server booted under its own seed.
// Before the pool, every trial loaded the program (instruction stream +
// address index), allocated and zeroed a 0.5 MB process image, wrote the
// globals, ran the runtime setup hook, and executed the master's boot path
// — then threw it all away. The pool keeps the seed-independent work
// alive:
//   * one vm::program — including its decoded direct-threaded dispatch
//     stream — shared by every server of the cell;
//   * one flattened cost table shared (behind an immutable shared_ptr)
//     by every machine cloned from a cell's first boot, so snapshot
//     restores stop re-copying the per-opcode array;
//   * idle fork_server objects parked after their trial, whose memory
//     images rewind to a pre-boot snapshot by dirty pages alone
//     (fork_server::reboot), after which only the short seed-dependent
//     boot path replays.
// The boot path *is* replayed per seed rather than patched: the master's
// prologues plant seed-derived canaries in the live accept-loop frames the
// workers will return through, so the only scheme-agnostic way to
// re-derive that state byte-exactly is to run the same few hundred
// instructions the fresh boot runs. The reproducibility contract is
// therefore strict equality: a pooled server rebooted for seed S behaves
// byte-identically to fork_server{binary, scheme, S} — pinned by
// tests/proc/master_pool_test.cpp, and what lets campaign::engine route
// trials through the pool without perturbing a single report byte.
//
// Thread-safe: acquire/release may be called concurrently from campaign
// worker threads. Each leased server is owned exclusively by its lease.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "proc/fork_server.hpp"

namespace pssp::proc {

class master_pool {
  public:
    // `program` optionally shares an already-loaded image (e.g. from a
    // server_batch); null loads one privately from `binary`.
    master_pool(std::shared_ptr<const binfmt::linked_binary> binary,
                core::scheme_kind kind, core::scheme_options options,
                server_config config,
                std::shared_ptr<const vm::program> program = nullptr);

    // Exclusive ownership of one booted server for the duration of a
    // trial; returns it to the pool's idle list on destruction.
    class lease {
      public:
        lease(lease&& other) noexcept
            : pool_{other.pool_}, server_{std::move(other.server_)} {
            other.pool_ = nullptr;
        }
        lease& operator=(lease&&) = delete;
        lease(const lease&) = delete;
        lease& operator=(const lease&) = delete;
        ~lease() {
            if (pool_ != nullptr && server_ != nullptr)
                pool_->release(std::move(server_));
        }

        [[nodiscard]] fork_server& server() noexcept { return *server_; }
        [[nodiscard]] fork_server* operator->() noexcept { return server_.get(); }

      private:
        friend class master_pool;
        lease(master_pool* pool, std::unique_ptr<fork_server> server) noexcept
            : pool_{pool}, server_{std::move(server)} {}

        master_pool* pool_;
        std::unique_ptr<fork_server> server_;
    };

    // Boots (or reboots an idle server) under `seed`.
    [[nodiscard]] lease acquire(std::uint64_t seed);

    // Caps how many idle servers the pool parks; releases beyond the cap
    // destroy the server instead. Unlimited by default. Sharded campaigns
    // size this to the process's worker count so a wide multi-process
    // fan-out doesn't hold one machine-width of 0.5 MB images per shard.
    void set_idle_limit(std::size_t limit);
    [[nodiscard]] std::size_t idle_limit() const;

    // ---- Statistics (for benches and the pool test) ----
    [[nodiscard]] std::uint64_t boots() const noexcept {
        return boots_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t reuses() const noexcept {
        return reuses_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t idle() const;

    [[nodiscard]] core::scheme_kind kind() const noexcept { return kind_; }

  private:
    void release(std::unique_ptr<fork_server> server);

    std::shared_ptr<const binfmt::linked_binary> binary_;
    std::shared_ptr<const vm::program> program_;
    core::scheme_kind kind_;
    core::scheme_options options_;
    server_config config_;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<fork_server>> idle_;
    std::size_t idle_limit_ = SIZE_MAX;
    std::atomic<std::uint64_t> boots_{0};
    std::atomic<std::uint64_t> reuses_{0};
};

}  // namespace pssp::proc
