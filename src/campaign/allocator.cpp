#include "campaign/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pssp::campaign {

double cell_ci_halfwidth(const cell_partial& merged) {
    // Integer tallies only: the decision metric must be identical whatever
    // process or thread computed the partials it is derived from.
    const auto detection =
        util::wilson_interval(merged.detections, merged.trials);
    const auto hijack = util::wilson_interval(merged.hijacks, merged.trials);
    return std::max(detection.half_width(), hijack.half_width());
}

adaptive_allocator::adaptive_allocator(campaign_spec spec)
    : spec_{std::move(spec)} {
    if (!std::isfinite(spec_.target_ci_halfwidth) ||
        spec_.target_ci_halfwidth < 0.0)
        throw std::invalid_argument{
            "adaptive_allocator: target_ci_halfwidth must be finite and >= 0"};
    canonical_ = blocks_for(spec_);
    partials_.resize(canonical_.size());
    recorded_.assign(canonical_.size(), false);
    cells_.resize(spec_.cell_count());
    for (const auto& b : canonical_) {
        auto& cell = cells_[b.cell];
        if (cell.block_count == 0) cell.first_block = b.index;
        ++cell.block_count;
    }
}

std::uint64_t adaptive_allocator::round_budget() const noexcept {
    if (spec_.round_blocks != 0) return spec_.round_blocks;
    // Breadth-first default: one block per cell per round. Deliberately a
    // function of the spec alone — never of jobs or shard count.
    return std::max<std::uint64_t>(spec_.cell_count(), 1);
}

bool adaptive_allocator::converged(const cell_state& c) const {
    // The stop rule, in one place: the trial floor (capped by the budget so
    // an over-large floor cannot deadlock) and the CI target.
    const std::uint64_t floor =
        std::min(spec_.min_trials_per_cell, spec_.trials_per_cell);
    return c.merged.trials >= floor &&
           cell_ci_halfwidth(c.merged) <= spec_.target_ci_halfwidth;
}

bool adaptive_allocator::cell_active(const cell_state& c) const {
    return c.scheduled < c.block_count && !converged(c);
}

std::vector<block_ref> adaptive_allocator::plan_round() {
    if (round_in_flight_)
        throw std::logic_error{
            "adaptive_allocator: previous round not recorded"};

    // Priority order: widest CI first, canonical cell index as the
    // deterministic tiebreak. Computed once per round, from merged
    // partials only.
    struct candidate {
        std::uint64_t cell;
        double halfwidth;
    };
    std::vector<candidate> active;
    for (std::uint64_t c = 0; c < cells_.size(); ++c)
        if (cell_active(cells_[c]))
            active.push_back(candidate{c, cell_ci_halfwidth(cells_[c].merged)});
    if (active.empty()) return {};
    std::sort(active.begin(), active.end(),
              [](const candidate& a, const candidate& b) {
                  if (a.halfwidth != b.halfwidth)
                      return a.halfwidth > b.halfwidth;
                  return a.cell < b.cell;
              });

    // Cyclic fill: each pass hands every still-active cell its next
    // canonical block, widest cells first, until the round budget or the
    // cells' remaining blocks run out. A cell's blocks are therefore always
    // scheduled as a prefix of its canonical run.
    std::vector<block_ref> round;
    std::uint64_t budget = round_budget();
    bool took_one = true;
    while (budget > 0 && took_one) {
        took_one = false;
        for (const auto& cand : active) {
            if (budget == 0) break;
            auto& cell = cells_[cand.cell];
            if (cell.scheduled >= cell.block_count) continue;
            round.push_back(canonical_[cell.first_block + cell.scheduled]);
            ++cell.scheduled;
            --budget;
            took_one = true;
        }
    }
    std::sort(round.begin(), round.end(),
              [](const block_ref& a, const block_ref& b) {
                  return a.index < b.index;
              });
    pending_ = round;
    round_in_flight_ = true;
    return round;
}

void adaptive_allocator::record_round(std::span<const block_ref> blocks,
                                      std::span<const cell_partial> partials) {
    if (!round_in_flight_)
        throw std::logic_error{"adaptive_allocator: no round planned"};
    if (blocks.size() != pending_.size() || blocks.size() != partials.size())
        throw std::invalid_argument{
            "adaptive_allocator: record_round size mismatch"};
    for (std::size_t i = 0; i < blocks.size(); ++i)
        if (blocks[i].index != pending_[i].index)
            throw std::invalid_argument{
                "adaptive_allocator: recorded blocks differ from the plan"};
    // blocks is ascending by canonical index, so each cell's partials merge
    // in canonical order — the same order assemble_report will replay.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const auto& b = blocks[i];
        if (partials[i].trials != b.trials)
            throw std::invalid_argument{
                "adaptive_allocator: partial trial count mismatch"};
        partials_[b.index] = partials[i];
        recorded_[b.index] = true;
        cells_[b.cell].merged.merge(partials[i]);
        trials_run_ += b.trials;
    }
    pending_.clear();
    round_in_flight_ = false;
    ++rounds_completed_;
}

void adaptive_allocator::replay_round(std::uint64_t round,
                                      std::span<const block_ref> blocks,
                                      std::span<const cell_partial> partials) {
    if (round != rounds_completed_ + 1)
        throw std::runtime_error{
            "adaptive_allocator: replay out of order (checkpoint round " +
            std::to_string(round) + " after " +
            std::to_string(rounds_completed_) + " replayed rounds)"};
    if (done())
        throw std::runtime_error{
            "adaptive_allocator: checkpoint round " + std::to_string(round) +
            " replayed into a finished campaign — checkpoint does not match "
            "this spec"};
    const auto plan = plan_round();
    if (plan.size() != blocks.size())
        throw std::runtime_error{
            "adaptive_allocator: checkpoint round " + std::to_string(round) +
            " has " + std::to_string(blocks.size()) + " blocks, this spec plans " +
            std::to_string(plan.size()) +
            " — checkpoint belongs to a different campaign"};
    for (std::size_t i = 0; i < plan.size(); ++i)
        if (plan[i].index != blocks[i].index)
            throw std::runtime_error{
                "adaptive_allocator: checkpoint round " + std::to_string(round) +
                " block " + std::to_string(blocks[i].index) +
                " differs from the planned block " +
                std::to_string(plan[i].index) +
                " — checkpoint belongs to a different campaign"};
    record_round(plan, partials);
}

bool adaptive_allocator::done() const {
    if (round_in_flight_) return false;
    for (const auto& cell : cells_)
        if (cell_active(cell)) return false;
    return true;
}

std::uint64_t adaptive_allocator::cell_trials(std::uint64_t cell) const {
    return cells_.at(cell).merged.trials;
}

double adaptive_allocator::cell_halfwidth(std::uint64_t cell) const {
    return cell_ci_halfwidth(cells_.at(cell).merged);
}

bool adaptive_allocator::cell_converged(std::uint64_t cell) const {
    return converged(cells_.at(cell));
}

std::vector<block_ref> adaptive_allocator::executed_blocks() const {
    std::vector<block_ref> blocks;
    for (std::size_t i = 0; i < canonical_.size(); ++i)
        if (recorded_[i]) blocks.push_back(canonical_[i]);
    return blocks;
}

std::vector<cell_partial> adaptive_allocator::executed_partials() const {
    std::vector<cell_partial> partials;
    for (std::size_t i = 0; i < canonical_.size(); ++i)
        if (recorded_[i]) partials.push_back(partials_[i]);
    return partials;
}

campaign_report adaptive_allocator::report() const {
    const auto blocks = executed_blocks();
    const auto partials = executed_partials();
    return assemble_report(spec_, blocks, partials);
}

}  // namespace pssp::campaign
