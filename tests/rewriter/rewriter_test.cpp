// Binary rewriter: pattern matching, layout preservation, the appended
// static-support section, and end-to-end behavior of hardened binaries.

#include <gtest/gtest.h>

#include "binfmt/stdlib.hpp"
#include "core/runtime.hpp"
#include "core/tls_layout.hpp"
#include "proc/fork_server.hpp"
#include "rewriter/rewriter.hpp"
#include "test_helpers.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

binfmt::linked_binary legacy_binary(binfmt::link_mode mode) {
    return compiler::build_module(testing::vulnerable_module(),
                                  core::make_scheme(scheme_kind::ssp), mode);
}

TEST(rewriter, patches_every_ssp_prologue_and_epilogue) {
    auto binary = legacy_binary(binfmt::link_mode::dynamic_glibc);
    rewriter::binary_rewriter rw;
    const auto report = rw.upgrade_to_pssp(binary);
    // vulnerable_module has exactly one protected function ("handle").
    EXPECT_EQ(report.prologues_patched, 1);
    EXPECT_EQ(report.epilogues_patched, 1);
    EXPECT_EQ(report.bytes_added, 0u);
}

TEST(rewriter, prologue_patch_changes_only_the_tls_offset) {
    auto binary = legacy_binary(binfmt::link_mode::dynamic_glibc);
    const auto before = binary.find("handle")->insns;
    rewriter::binary_rewriter rw;
    (void)rw.patch_prologues(binary);
    const auto& after = binary.find("handle")->insns;
    ASSERT_EQ(before.size(), after.size());
    int diffs = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
        if (vm::to_string(before[i]) == vm::to_string(after[i])) continue;
        ++diffs;
        EXPECT_EQ(before[i].op, vm::opcode::mov_rm);
        EXPECT_EQ(before[i].mem.disp, core::tls_canary);
        EXPECT_EQ(after[i].mem.disp, core::tls_shadow_c0);
    }
    EXPECT_EQ(diffs, 1);
}

TEST(rewriter, function_addresses_never_move) {
    auto binary = legacy_binary(binfmt::link_mode::static_glibc);
    std::unordered_map<std::string, std::uint64_t> entries;
    for (const auto& fn : binary.functions) entries[fn.name] = fn.entry;
    const auto text_before = binary.find("handle")->size_bytes();

    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);

    for (const auto& fn : binary.functions) {
        if (fn.appended) continue;
        EXPECT_EQ(entries.at(fn.name), fn.entry) << fn.name << " moved";
    }
    EXPECT_EQ(binary.find("handle")->size_bytes(), text_before)
        << "patched function changed size";
}

TEST(rewriter, dynamic_mode_adds_zero_bytes) {
    auto binary = legacy_binary(binfmt::link_mode::dynamic_glibc);
    const auto before = binary.text_bytes();
    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);
    EXPECT_EQ(binary.text_bytes(), before);  // Table II's 0% column
}

TEST(rewriter, static_mode_appends_support_section) {
    auto binary = legacy_binary(binfmt::link_mode::static_glibc);
    const auto before = binary.text_bytes();
    rewriter::binary_rewriter rw;
    const auto report = rw.upgrade_to_pssp(binary);
    EXPECT_TRUE(report.stack_chk_fail_hooked);
    EXPECT_TRUE(report.fork_hooked);
    EXPECT_GT(report.bytes_added, 0u);
    EXPECT_EQ(binary.text_bytes(), before + report.bytes_added);
    EXPECT_TRUE(binary.symbols.contains("__pssp_stack_chk_fail"));
    EXPECT_TRUE(binary.symbols.contains("__pssp_fork"));
}

TEST(rewriter, hooked_entries_start_with_a_jmp) {
    auto binary = legacy_binary(binfmt::link_mode::static_glibc);
    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);
    const auto& chk = *binary.find(binfmt::sym_stack_chk_fail);
    EXPECT_EQ(chk.insns[0].op, vm::opcode::jmp);
    EXPECT_EQ(chk.insns[0].imm, binary.symbols.at("__pssp_stack_chk_fail"));
    const auto& fork_fn = *binary.find(binfmt::sym_fork);
    EXPECT_EQ(fork_fn.insns[0].op, vm::opcode::jmp);
    EXPECT_EQ(fork_fn.insns[0].imm, binary.symbols.at("__pssp_fork"));
}

class hardened_end_to_end : public ::testing::TestWithParam<binfmt::link_mode> {};

INSTANTIATE_TEST_SUITE_P(both_modes, hardened_end_to_end,
                         ::testing::Values(binfmt::link_mode::dynamic_glibc,
                                           binfmt::link_mode::static_glibc),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(hardened_end_to_end, benign_input_runs_and_overflow_is_caught) {
    auto binary = legacy_binary(GetParam());
    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);
    if (GetParam() == binfmt::link_mode::dynamic_glibc)
        core::bind_instrumented_stack_chk_fail(binary);

    proc::process_manager manager{core::make_scheme(scheme_kind::p_ssp32), 9};
    auto run_with = [&](std::size_t len) {
        auto m = manager.create_process(binary);
        std::vector<std::uint8_t> payload(len, 'A');
        payload.push_back(0);
        m.mem().write_bytes(binary.data_symbols.at("g_request"), payload);
        m.call_function(binary.symbols.at("handle"));
        m.set_fuel(1'000'000);
        return m.run();
    };

    const auto benign = run_with(20);
    EXPECT_EQ(benign.status, vm::exec_status::exited)
        << vm::to_string(benign.trap);
    const auto smashed = run_with(100);
    EXPECT_EQ(smashed.status, vm::exec_status::trapped);
    EXPECT_EQ(smashed.trap, vm::trap_kind::stack_smash);
}

// The whole point of the upgrade: the hardened server's workers survive
// fork with refreshed canaries (static mode: via the rewritten fork()).
TEST(rewriter, static_hardened_fork_refreshes_packed_shadow) {
    const auto profile = workload::nginx_profile();
    auto binary = compiler::build_module(workload::make_server_module(profile),
                                         core::make_scheme(scheme_kind::ssp),
                                         binfmt::link_mode::static_glibc);
    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);

    // Hooks scheme: setup must install C and the packed shadow; the fork
    // *hook* is intentionally a no-op stand-in here — the refresh happens
    // in the rewritten VM fork() itself, which is what we want to observe.
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp32), 13,
                             workload::server_config_for(profile)};
    const auto shadow_master =
        core::tls_load(server.master(), core::tls_shadow_c0);
    ASSERT_TRUE(server.alive());
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(server.serve("GET /x").outcome, proc::worker_outcome::ok);
    // The master's own shadow never changes across forks.
    EXPECT_EQ(core::tls_load(server.master(), core::tls_shadow_c0), shadow_master);
}

TEST(rewriter, ignores_binaries_without_ssp_patterns) {
    auto binary = compiler::build_module(testing::vulnerable_module(),
                                         core::make_scheme(scheme_kind::none));
    rewriter::binary_rewriter rw;
    const auto report = rw.upgrade_to_pssp(binary);
    EXPECT_EQ(report.prologues_patched, 0);
    EXPECT_EQ(report.epilogues_patched, 0);
}

}  // namespace
}  // namespace pssp
