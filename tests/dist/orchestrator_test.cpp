// The multi-process fan-out, end to end: real fork/exec of
// tools_campaign_worker (a sibling of this test binary — everything
// builds into one directory), real pipes, real merge. Pins the acceptance
// contract: the merged report for the default spec is byte-identical to
// the single-process report at shard counts {1, 2, 4, 8}, and a crashed
// worker fails the run loudly instead of silently dropping trials.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/orchestrator.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

TEST(dist_orchestrator, default_worker_path_is_a_sibling) {
    const auto path = dist::default_worker_path();
    EXPECT_NE(path.find("tools_campaign_worker"), std::string::npos);
}

TEST(dist_orchestrator, default_spec_byte_identical_at_1_2_4_8_shards) {
    // The default 9-cell matrix (including brute_force) with reduced trial
    // and search-space knobs so five full campaigns fit in a unit-test
    // budget; the CI job runs the same oracle at the full 112 trials per
    // cell. Byte-identity is knob-independent, so cheap knobs lose nothing.
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 6;
    spec.brute_unknown_bits = 8;
    spec.query_budget = 1024;
    spec.jobs = 4;
    const auto reference = campaign::engine{spec}.run().to_json();
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        dist::sharded_options options;
        options.shards = shards;
        const auto report = dist::run_sharded(spec, options);
        EXPECT_EQ(report.to_json(), reference) << "shards=" << shards;
    }
}

TEST(dist_orchestrator, more_shards_than_blocks_still_merges) {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 2;  // one block total
    spec.master_seed = 11;
    const auto reference = campaign::engine{spec}.run().to_json();
    dist::sharded_options options;
    options.shards = 3;  // two shards own nothing and report empty partials
    EXPECT_EQ(dist::run_sharded(spec, options).to_json(), reference);
}

TEST(dist_orchestrator, adaptive_report_byte_identical_at_1_2_4_8_shards) {
    // The tentpole's acceptance oracle, end to end: a CI-driven adaptive
    // campaign — allocator rounds in the parent, per-round block manifests
    // fork/exec'd to real workers — merges byte-identically to the
    // in-process adaptive engine at every shard count.
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 96;  // 2 ragged blocks per cell
    spec.brute_unknown_bits = 8;
    spec.query_budget = 1024;
    spec.jobs = 4;
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.1;
    spec.min_trials_per_cell = 32;
    const auto reference_report = campaign::engine{spec}.run();
    const auto reference = reference_report.to_json();
    // The adaptive run must actually have exercised the early-stop path,
    // or this test would pin identity of a de-facto fixed campaign.
    std::uint64_t trials = 0;
    for (const auto& c : reference_report.cells) trials += c.trials;
    ASSERT_LT(trials, spec.trial_count()) << "no cell stopped early";
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        dist::sharded_options options;
        options.shards = shards;
        const auto report = dist::run_sharded(spec, options);
        EXPECT_EQ(report.to_json(), reference) << "shards=" << shards;
    }
}

TEST(dist_orchestrator, crashed_worker_fails_the_run_loudly) {
    // Regression: the error used to say only "shard 2: worker exited with
    // status 3" — no argv to rerun the worker, no round. It must now carry
    // the shard, the round number, the decoded wait status, and the exact
    // worker command line, and leave a postmortem file behind.
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 4;
    ::setenv("PSSP_CAMPAIGN_WORKER_CRASH", "2", /*overwrite=*/1);
    dist::sharded_options options;
    options.shards = 4;
    options.postmortem_dir = ::testing::TempDir();
    try {
        (void)dist::run_sharded(spec, options);
        ::unsetenv("PSSP_CAMPAIGN_WORKER_CRASH");
        FAIL() << "a dead shard must fail the campaign";
    } catch (const std::runtime_error& e) {
        ::unsetenv("PSSP_CAMPAIGN_WORKER_CRASH");
        const std::string what = e.what();
        EXPECT_NE(what.find("shard 2"), std::string::npos)
            << "error must name the failed shard: " << what;
        EXPECT_NE(what.find("round 0"), std::string::npos)
            << "error must name the round: " << what;
        EXPECT_NE(what.find("exited with status 3"), std::string::npos)
            << "error must decode the wait status: " << what;
        EXPECT_NE(what.find("--shard 2 --shards 4"), std::string::npos)
            << "error must carry the worker argv: " << what;
    }
    // The flight-recorder postmortem: valid JSON identifying the worker,
    // with its block manifest and the (possibly empty) flight recording.
    const auto path = options.postmortem_dir + "/obs-postmortem-2.json";
    std::ifstream in{path};
    ASSERT_TRUE(in.good()) << "missing postmortem: " << path;
    std::ostringstream text;
    text << in.rdbuf();
    const auto doc = util::parse_json(text.str());
    EXPECT_EQ(doc.at("shard").as_u64(), 2u);
    EXPECT_EQ(doc.at("round").as_u64(), 0u);
    EXPECT_FALSE(doc.at("argv").elements().empty());
    EXPECT_FALSE(doc.at("blocks").elements().empty());
    std::remove(path.c_str());
    // Flight files themselves must not linger after the failure.
    const auto flight = options.postmortem_dir + "/obs-flight-" +
                        std::to_string(::getpid()) + "-2.json";
    EXPECT_FALSE(std::ifstream{flight}.good())
        << "flight file not cleaned up: " << flight;
}

TEST(dist_orchestrator, crashed_adaptive_worker_names_the_round) {
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 8;
    spec.adaptive = true;
    spec.min_trials_per_cell = 4;
    ::setenv("PSSP_CAMPAIGN_WORKER_CRASH", "1", /*overwrite=*/1);
    dist::sharded_options options;
    options.shards = 2;
    options.postmortem_dir = ::testing::TempDir();
    try {
        (void)dist::run_sharded(spec, options);
        ::unsetenv("PSSP_CAMPAIGN_WORKER_CRASH");
        FAIL() << "a dead shard must fail the campaign";
    } catch (const std::runtime_error& e) {
        ::unsetenv("PSSP_CAMPAIGN_WORKER_CRASH");
        const std::string what = e.what();
        EXPECT_NE(what.find("shard 1 (round 1)"), std::string::npos)
            << "adaptive failure must name shard and round: " << what;
        EXPECT_NE(what.find("--round --shard 1 --shards 2"), std::string::npos)
            << "error must carry the worker argv: " << what;
    }
    const auto path = options.postmortem_dir + "/obs-postmortem-1.json";
    std::ifstream in{path};
    ASSERT_TRUE(in.good()) << "missing postmortem: " << path;
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_EQ(util::parse_json(text.str()).at("round").as_u64(), 1u);
    std::remove(path.c_str());
}

TEST(dist_orchestrator, missing_worker_binary_fails_loudly) {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 1;
    dist::sharded_options options;
    options.shards = 2;
    options.worker_path = "/nonexistent/campaign_worker";
    EXPECT_THROW((void)dist::run_sharded(spec, options), std::runtime_error);
}

}  // namespace
}  // namespace pssp
