// Whole-canary brute force (Section III-C-1) with an entropy-reduction
// harness.
//
// The exhaustive attacker guesses the TLS canary C, derives scheme-correct
// stack-canary bytes from the guess (for P-SSP: a random split C0' ^ C1' =
// C'), and overflows. Expected cost is 2^(t-1) trials for t unknown bits —
// unrunnable at t = 64, so the harness leaks the top (64 - t) bits of C to
// the attacker and sweeps small t. Benches fit the measured medians
// against the 2^(t-1) model and extrapolate; the paper's claim that P-SSP
// and SSP have *identical* exhaustive-search cost is checked by comparing
// their curves.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.hpp"
#include "crypto/prng.hpp"
#include "proc/fork_server.hpp"

namespace pssp::attack {

// Crafts the stack-canary-area bytes an attacker who believes the TLS
// canary is `guessed_c` would write, per scheme. (DCR needs the true link
// offset, which the attacker reads from the public binary layout.)
[[nodiscard]] std::vector<std::uint8_t> craft_canary_bytes(
    core::scheme_kind kind, std::uint64_t guessed_c, crypto::xoshiro256& rng,
    std::uint32_t dcr_offset = 0);

struct brute_force_config {
    std::uint64_t prefix_bytes = 64;
    unsigned unknown_bits = 12;        // entropy left to guess
    std::uint64_t true_canary_hint = 0;  // top bits leaked to the attacker
    std::uint64_t max_trials = 1 << 22;
    std::uint64_t rng_seed = 0xa77ac4;
    std::uint32_t dcr_offset = 0;
};

struct brute_force_result {
    bool hijacked = false;
    std::uint64_t trials = 0;
    std::uint64_t canary_crashes = 0;  // guesses killed by __stack_chk_fail
};

class brute_force {
  public:
    brute_force(proc::fork_server& oracle, core::scheme_kind kind,
                brute_force_config config)
        : oracle_{oracle}, kind_{kind}, config_{config}, rng_{config.rng_seed} {}

    // Random guesses over the unknown low bits until the hijack lands or
    // the budget runs out.
    [[nodiscard]] brute_force_result run(std::uint64_t ret_target,
                                         std::uint64_t saved_rbp);

  private:
    proc::fork_server& oracle_;
    core::scheme_kind kind_;
    brute_force_config config_;
    crypto::xoshiro256 rng_;
};

}  // namespace pssp::attack
