#include "binfmt/image.hpp"

#include <algorithm>
#include <stdexcept>

#include "vm/memory.hpp"

namespace pssp::binfmt {

std::string to_string(link_mode mode) {
    return mode == link_mode::dynamic_glibc ? "dynamic" : "static";
}

// ---- bin_function ----------------------------------------------------------

void bin_function::place(std::uint32_t label) { pending_labels_.push_back(label); }

void bin_function::emit(vm::instruction insn) {
    const auto index = static_cast<std::uint32_t>(insns_.size());
    for (std::uint32_t label : pending_labels_) label_at_[label] = index;
    pending_labels_.clear();
    insns_.push_back(insn);
}

void bin_function::emit(std::initializer_list<vm::instruction> insns) {
    for (const auto& insn : insns) emit(insn);
}

std::uint64_t bin_function::size_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& insn : insns_) total += vm::encoded_length(insn);
    return total;
}

// ---- image -----------------------------------------------------------------

std::uint32_t image::sym(const std::string& name) {
    const auto it = sym_ids_.find(name);
    if (it != sym_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(symtab_.size());
    symtab_.push_back(name);
    sym_ids_.emplace(name, id);
    return id;
}

const std::string& image::sym_name(std::uint32_t id) const { return symtab_.at(id); }

bin_function& image::add_function(const std::string& name, bool from_libc) {
    if (function_index_.contains(name))
        throw std::invalid_argument{"duplicate function: " + name};
    functions_.push_back(std::make_unique<bin_function>(name, from_libc));
    function_index_.emplace(name, functions_.size() - 1);
    return *functions_.back();
}

bin_function* image::find_function(const std::string& name) noexcept {
    const auto it = function_index_.find(name);
    if (it == function_index_.end()) return nullptr;
    return functions_[it->second].get();
}

void image::add_data(data_object obj) {
    if (obj.init.size() > obj.size)
        throw std::invalid_argument{"data init larger than object: " + obj.name};
    data_.push_back(std::move(obj));
}

void image::add_native_import(const std::string& name, vm::native_fn fn) {
    native_imports_.emplace_back(name, std::move(fn));
}

// ---- linked_function ---------------------------------------------------------

std::uint64_t linked_function::size_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& insn : insns) total += vm::encoded_length(insn);
    return total;
}

void linked_function::relayout() noexcept {
    addrs.resize(insns.size());
    std::uint64_t addr = entry;
    for (std::size_t i = 0; i < insns.size(); ++i) {
        addrs[i] = addr;
        addr += vm::encoded_length(insns[i]);
    }
}

// ---- link -------------------------------------------------------------------

image::linked_binary image::link(link_mode mode) const {
    linked_binary out;
    out.mode = mode;
    out.text_base = default_text_base;

    // Pass 1: place every function (app code first, libc after, mirroring a
    // typical static-link layout) and record code symbol addresses.
    std::uint64_t cursor = out.text_base;
    auto place = [&](const bin_function& fn) {
        linked_function lf;
        lf.name = fn.name();
        lf.entry = cursor;
        lf.insns = fn.insns();
        lf.from_libc = fn.from_libc();
        lf.relayout();
        cursor += lf.size_bytes();
        out.symbols[lf.name] = lf.entry;
        out.functions.push_back(std::move(lf));
    };
    for (const auto& fn : functions_)
        if (!fn->from_libc()) place(*fn);
    for (const auto& fn : functions_)
        if (fn->from_libc()) place(*fn);
    out.text_end = cursor;

    // Pass 2: PLT slots for native imports that are not satisfied by image
    // functions (a static image may override an import with real code).
    std::uint64_t plt_cursor = default_plt_base;
    for (const auto& [name, fn] : native_imports_) {
        if (out.symbols.contains(name)) continue;
        out.symbols[name] = plt_cursor;
        out.natives[plt_cursor] = fn;
        plt_cursor += plt_entry_bytes;
        out.plt_bytes += plt_entry_bytes;
    }

    // Pass 3: data layout.
    std::uint64_t data_cursor = vm::default_globals_base;
    out.data_base = vm::default_globals_base;
    for (const auto& obj : data_) {
        // 16-byte alignment keeps buffers word-disjoint, which the overflow
        // tests rely on when they reason about exact byte offsets.
        data_cursor = (data_cursor + 15) & ~std::uint64_t{15};
        out.data_symbols[obj.name] = data_cursor;
        const std::uint64_t offset = data_cursor - out.data_base;
        if (offset + obj.size > out.data_init.size())
            out.data_init.resize(offset + obj.size, 0);
        std::copy(obj.init.begin(), obj.init.end(), out.data_init.begin() + offset);
        data_cursor += obj.size;
    }
    out.data_bytes = data_cursor - out.data_base;

    // Pass 4: resolve symbolic operands.
    auto resolve = [&](std::uint32_t sym_id) -> std::uint64_t {
        const std::string& name = sym_name(sym_id);
        if (const auto it = out.symbols.find(name); it != out.symbols.end())
            return it->second;
        if (const auto it = out.data_symbols.find(name); it != out.data_symbols.end())
            return it->second;
        throw std::runtime_error{"link (" + to_string(mode) +
                                 "): unresolved symbol: " + name};
    };

    for (std::size_t f = 0; f < out.functions.size(); ++f) {
        linked_function& lf = out.functions[f];
        const bin_function& src = *functions_[function_index_.at(lf.name)];
        for (std::size_t i = 0; i < lf.insns.size(); ++i) {
            vm::instruction& insn = lf.insns[i];
            if (insn.sym != vm::no_id) {
                insn.imm = resolve(insn.sym);
            } else if (insn.label != vm::no_id) {
                const auto target = src.labels().find(insn.label);
                if (target == src.labels().end())
                    throw std::runtime_error{"link: unbound label in " + lf.name};
                if (target->second >= lf.addrs.size())
                    throw std::runtime_error{"link: label past end of " + lf.name};
                insn.imm = lf.addrs[target->second];
            }
        }
    }

    return out;
}

// ---- linked_binary -----------------------------------------------------------

linked_function* image::linked_binary::find(const std::string& name) noexcept {
    for (auto& fn : functions)
        if (fn.name == name) return &fn;
    return nullptr;
}

const linked_function* image::linked_binary::find(const std::string& name) const noexcept {
    for (const auto& fn : functions)
        if (fn.name == name) return &fn;
    return nullptr;
}

std::uint64_t image::linked_binary::text_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& fn : functions) total += fn.size_bytes();
    return total;
}

void image::linked_binary::replace_range(linked_function& fn, std::size_t first,
                                         std::size_t count,
                                         std::vector<vm::instruction> repl) {
    if (first + count > fn.insns.size())
        throw std::out_of_range{"replace_range: span exceeds function " + fn.name};
    std::uint64_t old_bytes = 0;
    for (std::size_t i = first; i < first + count; ++i)
        old_bytes += vm::encoded_length(fn.insns[i]);
    std::uint64_t new_bytes = 0;
    for (const auto& insn : repl) new_bytes += vm::encoded_length(insn);
    if (old_bytes != new_bytes)
        throw std::runtime_error{
            "replace_range: layout-preservation violation in " + fn.name + " (" +
            std::to_string(old_bytes) + " -> " + std::to_string(new_bytes) +
            " bytes); the rewriter must emit same-length patches"};
    fn.insns.erase(fn.insns.begin() + static_cast<std::ptrdiff_t>(first),
                   fn.insns.begin() + static_cast<std::ptrdiff_t>(first + count));
    fn.insns.insert(fn.insns.begin() + static_cast<std::ptrdiff_t>(first),
                    repl.begin(), repl.end());
    fn.relayout();
}

std::uint64_t image::linked_binary::append_function(const std::string& name,
                                                    bin_function code) {
    // New section: page-align past the current end of text, like Dyninst's
    // freshly mapped instrumentation segment.
    const std::uint64_t entry = (text_end + 0xfff) & ~std::uint64_t{0xfff};
    linked_function lf;
    lf.name = name;
    lf.entry = entry;
    lf.insns = code.insns();
    lf.appended = true;
    lf.relayout();

    // Resolve local labels against the fresh layout; symbolic call targets
    // must already be resolvable against this binary's symbol table.
    for (auto& insn : lf.insns) {
        if (insn.label != vm::no_id) {
            const auto it = code.labels().find(insn.label);
            if (it == code.labels().end())
                throw std::runtime_error{"append_function: unbound label in " + name};
            insn.imm = lf.addrs[it->second];
        } else if (insn.sym != vm::no_id) {
            throw std::runtime_error{
                "append_function: unresolved symbolic operand in " + name +
                "; resolve against linked symbols before appending"};
        }
    }

    text_end = entry + lf.size_bytes();
    symbols[name] = entry;
    functions.push_back(std::move(lf));
    return entry;
}

void image::linked_binary::bind_native(const std::string& name, vm::native_fn fn) {
    const auto it = symbols.find(name);
    if (it != symbols.end()) {
        natives[it->second] = std::move(fn);
        return;
    }
    // Fresh interposition slot past the PLT.
    const std::uint64_t slot = default_plt_base + plt_bytes;
    plt_bytes += plt_entry_bytes;
    symbols[name] = slot;
    natives[slot] = std::move(fn);
}

std::shared_ptr<const vm::program> image::linked_binary::make_program() const {
    auto prog = std::make_shared<vm::program>();
    prog->text_base = text_base;
    prog->text_size = text_end - text_base;
    prog->symbols = symbols;
    prog->natives = natives;
    for (const auto& fn : functions) {
        for (std::size_t i = 0; i < fn.insns.size(); ++i) {
            const auto index = static_cast<std::uint32_t>(prog->insns.size());
            prog->insns.push_back(fn.insns[i]);
            prog->addrs.push_back(fn.addrs[i]);
            prog->addr_to_index.emplace(fn.addrs[i], index);
        }
    }
    prog->finalize();
    return prog;
}

layout_snapshot take_layout_snapshot(const linked_binary& binary) {
    layout_snapshot snap;
    snap.functions.reserve(binary.functions.size());
    for (const auto& fn : binary.functions)
        snap.functions.push_back({fn.name, fn.entry, fn.size_bytes()});
    snap.symbols.assign(binary.symbols.begin(), binary.symbols.end());
    std::sort(snap.symbols.begin(), snap.symbols.end());
    return snap;
}

bool layout_preserved(const layout_snapshot& pre, const layout_snapshot& post) {
    if (post.functions.size() < pre.functions.size()) return false;
    for (std::size_t i = 0; i < pre.functions.size(); ++i)
        if (!(post.functions[i] == pre.functions[i])) return false;
    // Every pre symbol must resolve to the same address; new symbols (the
    // appended-section entries) are allowed.
    for (const auto& [name, addr] : pre.symbols) {
        const auto it = std::lower_bound(
            post.symbols.begin(), post.symbols.end(), name,
            [](const auto& entry, const std::string& key) { return entry.first < key; });
        if (it == post.symbols.end() || it->first != name || it->second != addr)
            return false;
    }
    return true;
}

}  // namespace pssp::binfmt
