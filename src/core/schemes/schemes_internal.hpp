// Internal factory functions, one per concrete scheme. Implemented across
// the schemes/*.cpp translation units; reached only through
// core::make_scheme.
#pragma once

#include <memory>

#include "core/scheme.hpp"

namespace pssp::core::detail {

std::unique_ptr<scheme> make_none();
std::unique_ptr<scheme> make_ssp();
std::unique_ptr<scheme> make_raf_ssp();
std::unique_ptr<scheme> make_dynaguard();
std::unique_ptr<scheme> make_dcr(const scheme_options& options);
std::unique_ptr<scheme> make_p_ssp();
std::unique_ptr<scheme> make_p_ssp_nt();
std::unique_ptr<scheme> make_p_ssp_lv(const scheme_options& options);
std::unique_ptr<scheme> make_p_ssp_owf(const scheme_options& options);
std::unique_ptr<scheme> make_p_ssp32();
std::unique_ptr<scheme> make_p_ssp_gb();
std::unique_ptr<scheme> make_p_ssp_c0tls();

}  // namespace pssp::core::detail
