// The interpreter: executes a linked program against a process memory image.
//
// One machine == one simulated thread of one simulated process. The process
// layer (src/proc) implements fork() by copying machines — wholesale for
// the general executor, or by dirty-page sync_from() on the fork-server
// fast path — with the program shared through a shared_ptr and
// registers/memory/flags as deep state. Machines are deliberately
// value-like: tests snapshot them, run divergent continuations, and
// compare outcomes.
//
// Two engines drive the same architectural state (vm/dispatch.hpp):
//   * threaded    — the production hot path. run() walks the program's
//     decoded-op stream with direct-threaded dispatch (computed goto under
//     GCC/Clang, a token-threaded switch elsewhere), fused
//     superinstructions on the hottest adjacent pairs, no per-iteration
//     bounds check (pre-validated targets + a trapping sentinel op), and
//     fuel/max_steps/cycle accounting batched in locals that are
//     reconciled exactly at every exit event (syscall, trap, fuel, pause,
//     and around native calls, which may observe or charge the counters).
//   * switch_loop — the legacy per-instruction switch stepper, kept as the
//     debug and differential-testing mode (public step()) and as the
//     baseline of the dispatch A/B benchmark.
// Both are exception- and hash-free: jump/call targets come pre-resolved
// from program::finalize(), cycle costs from a flat per-opcode table, and
// memory faults surface as trap statuses. The only exceptions on the run
// path originate inside native helpers and are caught at the native-call
// edge. Everything outcome-relevant — registers, flags, memory, output,
// cycles_, steps_, rip, trap/fault state — is identical across engines at
// every event boundary; campaign reports are byte-identical across
// dispatch modes.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "crypto/entropy.hpp"
#include "vm/cost_model.hpp"
#include "vm/dispatch.hpp"
#include "vm/memory.hpp"
#include "vm/program.hpp"

namespace pssp::vm {

enum class exec_status : std::uint8_t {
    running,      // paused by the step budget of this run() call
    exited,       // popped the return sentinel or executed sys_exit
    trapped,      // crashed; see trap_kind
    syscalled,    // stopped at a syscall the process layer must service
    out_of_fuel,  // exceeded the cumulative fuel cap (runaway loop guard)
};

enum class trap_kind : std::uint8_t {
    none,
    stack_smash,    // __stack_chk_fail -> __GI__fortify_fail analog
    segfault,       // unmapped or mis-sized memory access
    invalid_jump,   // control transferred to a non-instruction address
    stack_overrun,  // rsp left the stack region
};

[[nodiscard]] std::string to_string(exec_status status);
[[nodiscard]] std::string to_string(trap_kind trap);

struct run_result {
    exec_status status = exec_status::running;
    trap_kind trap = trap_kind::none;
    std::int64_t exit_code = 0;       // valid when exited
    std::uint32_t syscall_number = 0; // valid when syscalled
    std::uint64_t fault_addr = 0;     // valid for segfault/invalid_jump
};

// Thrown by native helpers to terminate the simulated process — the host
// analog of glibc's __GI__fortify_fail aborting on a smashed stack. The
// interpreter converts it into a trapped run_result. Exceptions exist only
// on the native-call edge: interpreter-level memory faults travel as
// status returns, so the step loop runs without a try/catch.
struct native_trap {
    trap_kind kind = trap_kind::stack_smash;
};

// Cap on accumulated sys_write output. A hijacked or runaway worker under
// a generous fuel budget could otherwise balloon the host-side string; the
// workloads' legitimate responses are a few dozen bytes. Writes past the
// cap still succeed (rax = count), the excess bytes are just not retained.
inline constexpr std::size_t max_output_bytes = std::size_t{1} << 20;

// Gap between the top of the stack region and the initial rsp — the
// argv/envp/auxv area of a real process. Gives runaway writes above the
// first frame somewhere mapped to land, so a canary check (not a fault in
// the middle of the copy) reports them, as on a real stack.
inline constexpr std::uint64_t initial_stack_headroom = 512;

struct flags_state {
    bool zf = false;
    bool cf = false;
    bool lt_signed = false;
    bool lt_unsigned = false;
};

class machine {
  public:
    machine(std::shared_ptr<const program> prog, memory::layout layout,
            std::uint64_t entropy_seed);

    // ---- Register file ----
    [[nodiscard]] std::uint64_t get(reg r) const noexcept;
    void set(reg r, std::uint64_t value) noexcept;
    struct xmm_value {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        friend bool operator==(const xmm_value&, const xmm_value&) = default;
    };
    [[nodiscard]] xmm_value get_x(xreg x) const noexcept;
    void set_x(xreg x, xmm_value value) noexcept;
    [[nodiscard]] flags_state& flags() noexcept { return flags_; }

    // ---- Memory / TLS ----
    [[nodiscard]] memory& mem() noexcept { return mem_; }
    [[nodiscard]] const memory& mem() const noexcept { return mem_; }
    [[nodiscard]] std::uint64_t fs_base() const noexcept { return fs_base_; }

    // ---- Execution ----
    // Prepares a call to `entry` from scratch: resets rsp to the stack top,
    // pushes the return sentinel, points rip at `entry`. Registers other
    // than rsp are preserved so the harness can pre-load arguments.
    void call_function(std::uint64_t entry);

    // Executes up to `max_steps` instructions (0 = until stop/fuel) on the
    // engine selected by dispatch().
    run_result run(std::uint64_t max_steps = 0);

    // Executes exactly one instruction via the legacy switch stepper —
    // the debug / differential-testing interface. Equivalent to
    // run(1) in switch_loop mode regardless of the dispatch() setting:
    // `running` means "paused after one step", any other status is the
    // same event run() would have stopped at.
    run_result step();

    // Dispatch engine selection. Initialized from default_dispatch()
    // (PSSP_VM_DISPATCH env override) at construction; a pure
    // execution-speed knob — outcomes are identical across modes.
    [[nodiscard]] dispatch_mode dispatch() const noexcept { return dispatch_; }
    void set_dispatch(dispatch_mode mode) noexcept { dispatch_ = mode; }

    // Resumes after a serviced syscall; `rax_value` is the syscall result.
    void complete_syscall(std::uint64_t rax_value);

    // ---- Execution profiling (obs side channel) ----
    // When set, run() counts per-handler dispatches and cycle charges into
    // `profile` (shared across snapshot/fork copies of this machine, so a
    // pool's clones aggregate into one table). Profiling changes no
    // architectural outcome — the unprofiled threaded loop is a separate
    // template instantiation that carries zero profiling code.
    void set_profile(std::shared_ptr<exec_profile> profile) noexcept {
        profile_ = std::move(profile);
    }
    [[nodiscard]] const std::shared_ptr<exec_profile>& profile() const noexcept {
        return profile_;
    }

    // ---- Accounting ----
    [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
    [[nodiscard]] cost_model& costs() noexcept { return costs_; }
    void charge(std::uint64_t extra_cycles) noexcept { cycles_ += extra_cycles; }

    // Cumulative fuel cap (instructions); 0 = unlimited. Guards attack
    // campaigns against runaway loops in corrupted control flow.
    void set_fuel(std::uint64_t max_total_steps) noexcept { fuel_ = max_total_steps; }

    // ---- Process plumbing ----
    [[nodiscard]] std::uint32_t pid() const noexcept { return pid_; }
    void set_pid(std::uint32_t pid) noexcept { pid_ = pid; }
    [[nodiscard]] crypto::entropy_source& entropy() noexcept { return entropy_; }
    void reseed_entropy(std::uint64_t seed) noexcept {
        entropy_ = crypto::entropy_source{seed};
    }

    // Bytes written via sys_write (request/response channel of the server
    // workloads, and the "win" marker of hijack detection).
    [[nodiscard]] const std::string& output() const noexcept { return output_; }
    void clear_output() noexcept { output_.clear(); }

    [[nodiscard]] const program& prog() const noexcept { return *prog_; }
    [[nodiscard]] std::shared_ptr<const program> prog_ptr() const noexcept { return prog_; }

    // Current instruction address (for diagnostics).
    [[nodiscard]] std::uint64_t current_address() const noexcept;

    // ---- Snapshot / restore / fork fast paths ----
    // A snapshot is simply an earlier copy of the machine (copy
    // construction); these members rewind to / converge on such a copy
    // while moving only dirty pages instead of whole regions.

    // Rewinds *this to `snap`, which must be a copy of *this taken while
    // the memory's restore channel was clean (mem().mark_clean). Scalars
    // copy wholesale; memory restores dirty pages only.
    void restore_from(const machine& snap);

    // Makes *this an exact replica of `src` (same program), assuming the
    // two were identical when both fork channels were last cleared. The
    // cheap fork: the process layer recycles one worker machine per server
    // this way instead of deep-copying 0.5 MB per request.
    void sync_from(machine& src);

  private:
    std::shared_ptr<const program> prog_;
    memory mem_;
    std::array<std::uint64_t, gpr_count> gpr_{};
    std::array<xmm_value, xmm_count> xmm_{};
    flags_state flags_{};
    std::uint64_t fs_base_;
    std::uint32_t rip_ = 0;  // instruction index
    bool rip_valid_ = false;

    cost_model costs_{};
    // Flattened cost table, cached behind a shared pointer keyed on the
    // cost_model parameters it was built from. Rebuilt lazily at run()
    // entry only when costs_ changed; snapshot/restore and the
    // per-request fork fast path copy the 16-byte pointer, not the table,
    // and machines cloned from one master all share one allocation.
    std::shared_ptr<const cost_table> cost_cache_;
    cost_model cost_cache_key_{};
    dispatch_mode dispatch_ = default_dispatch();
    std::shared_ptr<exec_profile> profile_;  // null = no profiling
    std::uint64_t cycles_ = 0;
    std::uint64_t steps_ = 0;
    std::uint64_t fuel_ = 0;
    std::uint64_t tsc_base_ = 0;

    crypto::entropy_source entropy_;
    std::uint32_t pid_ = 1;
    std::string output_;

    run_result finished_{};  // sticky result once exited/trapped
    bool finished_valid_ = false;

    // ---- Internal helpers ----
    [[nodiscard]] std::uint64_t effective_address(const mem_operand& m) const noexcept;
    // Fault-status memory helpers: on an unmapped access they fill `out`
    // with a segfault trap and return false (no exception).
    [[nodiscard]] bool ld(std::uint64_t addr, std::size_t size, std::uint64_t& value,
                          run_result& out) noexcept;
    [[nodiscard]] bool st(std::uint64_t addr, std::size_t size, std::uint64_t value,
                          run_result& out) noexcept;
    [[nodiscard]] bool push64(std::uint64_t value, run_result& out) noexcept;
    [[nodiscard]] bool pop64(std::uint64_t& value, run_result& out) noexcept;
    // Transfers control to `addr`; returns false (and fills `out`) on an
    // invalid target.
    [[nodiscard]] bool jump_to(std::uint64_t addr, run_result& out);
    // One instruction on the legacy switch engine (no fuel/bounds checks —
    // run_switch and step() wrap those).
    [[nodiscard]] run_result exec_one_switch(const cost_table& ct);
    // The two run() engines; both honor fuel/max_steps and the sticky
    // finished_ contract identically. The threaded engine is instantiated
    // twice: kProfile=false is the production hot path (bit-identical to
    // the unprofiled loop), kProfile=true additionally feeds profile_.
    [[nodiscard]] run_result run_switch(std::uint64_t max_steps);
    template <bool kProfile>
    [[nodiscard]] run_result run_threaded_impl(std::uint64_t max_steps);
    // Rebuilds cost_cache_ if costs_ drifted from the cached key; returns
    // the table to run with.
    [[nodiscard]] const cost_table& refresh_cost_cache();
    void set_alu_flags(std::uint64_t result) noexcept;
    void copy_scalars_from(const machine& src);
};

}  // namespace pssp::vm
