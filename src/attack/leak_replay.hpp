// Leak-and-replay: the single-point-of-failure experiment (Section IV-C).
//
// The server's handler carries a second bug besides the overflow: an
// over-read ("if the request starts with the LEAK magic, the handler
// writes 128 bytes of its stack buffer to the response") — a classic
// info-leak that discloses the canary area, the saved rbp, and the return
// address of the *leaking* worker.
//
// The attack: query once with the leak magic, cut the canary bytes out of
// the response, then replay them in an overflow against a *different*
// worker.
//   * SSP          — same canary in every worker: replay hijacks (the
//                    paper's "ripple effect").
//   * P-SSP / NT   — ALSO hijacked: a leaked pair satisfies C0 xor C1 = C
//                    and C is process-lifetime constant. The paper is
//                    explicit: the single point of failure is "a common
//                    drawback of P-SSP and SSP" (Section IV-C) —
//                    re-randomization defeats guessing, not exposure.
//   * P-SSP-GB     — resists: the matching C1 half sits in a global
//                    buffer the linear overflow cannot reach.
//   * P-SSP-OWF    — resists: the canary is bound to (ret, nonce) under a
//                    register-held key; a replayed canary fails once the
//                    return address is redirected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proc/fork_server.hpp"

namespace pssp::attack {

// Magic prefix that triggers the leaky path in workload handlers.
inline constexpr std::uint64_t leak_magic = 0x4b41454cull;  // "LEAK"

struct leak_replay_config {
    std::uint64_t prefix_bytes = 64;  // buffer -> canary distance
    unsigned canary_bytes = 8;        // bytes to cut from the leak
    std::uint64_t leak_offset = 64;   // where the canary starts in the response
    // After the replay, measure how much of the leak was still usable: probe
    // workers with growing prefixes of the leaked canary (the byte-by-byte
    // oracle mechanism) and count how many leading bytes still pass the
    // epilogue check. Costs up to canary_bytes extra oracle queries.
    bool probe_validity = true;
};

struct leak_replay_result {
    bool leak_succeeded = false;
    bool hijacked = false;
    std::vector<std::uint8_t> leaked_canary;
    std::uint64_t trials = 0;         // attack queries only (leak + replay)
    std::uint64_t probe_queries = 0;  // diagnostic validity probes (step 3)
    // Leading leaked bytes confirmed still valid in a post-replay worker:
    // canary_bytes under SSP (process-lifetime canary), ~0 under the P-SSP
    // family (every fork re-randomizes the stack pair). Lets campaign
    // reports distinguish partial-leak outcomes from clean failures.
    unsigned bytes_valid = 0;
    // Stack-smash detections observed across replay + probes.
    std::uint64_t canary_crashes = 0;
    // Non-canary worker deaths (segv / bad control flow / fuel) ditto.
    std::uint64_t other_crashes = 0;
};

class leak_replay {
  public:
    leak_replay(proc::fork_server& oracle, leak_replay_config config)
        : oracle_{oracle}, config_{config} {}

    // Leak from one worker, replay against the next.
    [[nodiscard]] leak_replay_result run(std::uint64_t ret_target,
                                         std::uint64_t saved_rbp);

  private:
    proc::fork_server& oracle_;
    leak_replay_config config_;
};

}  // namespace pssp::attack
