// Wire format: spec and partial-report JSON round trips, with the Welford
// state surviving at full double precision — the property the sharded
// byte-identity contract stands on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "campaign/engine.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"

namespace pssp {
namespace {

TEST(dist_wire, spec_round_trip) {
    campaign::campaign_spec spec = campaign::full_spec();
    spec.trials_per_cell = 1234;
    spec.master_seed = 0xdeadbeefcafef00dull;
    spec.jobs = 7;
    spec.reuse_masters = false;
    spec.query_budget = 9999;
    spec.brute_unknown_bits = 17;
    spec.scheme_options.owf = crypto::owf_kind::sha1;
    spec.scheme_options.lv_check_after_write = true;
    spec.scheme_options.dcr_trampoline_cycles = 777;

    const auto parsed = dist::spec_from_json(dist::spec_to_json(spec));
    EXPECT_EQ(parsed.schemes, spec.schemes);
    EXPECT_EQ(parsed.attacks, spec.attacks);
    EXPECT_EQ(parsed.targets, spec.targets);
    EXPECT_EQ(parsed.trials_per_cell, spec.trials_per_cell);
    EXPECT_EQ(parsed.master_seed, spec.master_seed);
    EXPECT_EQ(parsed.jobs, spec.jobs);
    EXPECT_EQ(parsed.reuse_masters, spec.reuse_masters);
    EXPECT_EQ(parsed.query_budget, spec.query_budget);
    EXPECT_EQ(parsed.brute_unknown_bits, spec.brute_unknown_bits);
    EXPECT_EQ(parsed.scheme_options.owf, spec.scheme_options.owf);
    EXPECT_EQ(parsed.scheme_options.lv_check_after_write,
              spec.scheme_options.lv_check_after_write);
    EXPECT_EQ(parsed.scheme_options.dcr_trampoline_cycles,
              spec.scheme_options.dcr_trampoline_cycles);
    // And the round trip is a fixed point of the serialization itself.
    EXPECT_EQ(dist::spec_to_json(parsed), dist::spec_to_json(spec));
}

TEST(dist_wire, spec_round_trip_preserves_adaptive_knobs_exactly) {
    campaign::campaign_spec spec = campaign::default_spec();
    spec.adaptive = true;
    // An awkward mantissa: the stop decision compares against this double,
    // so the wire must deliver the identical bits to every worker.
    spec.target_ci_halfwidth = 0.1 + 1e-17;
    spec.round_blocks = 5;
    spec.min_trials_per_cell = 33;
    const auto parsed = dist::spec_from_json(dist::spec_to_json(spec));
    EXPECT_EQ(parsed.adaptive, true);
    EXPECT_EQ(parsed.target_ci_halfwidth, spec.target_ci_halfwidth);
    EXPECT_EQ(parsed.round_blocks, 5u);
    EXPECT_EQ(parsed.min_trials_per_cell, 33u);
    EXPECT_EQ(dist::spec_to_json(parsed), dist::spec_to_json(spec));
}

TEST(dist_wire, spec_digest_ignores_execution_knobs_only) {
    auto spec = campaign::default_spec();
    const auto digest = dist::spec_digest(spec);
    auto tweaked = spec;
    tweaked.jobs = 64;
    tweaked.reuse_masters = false;
    EXPECT_EQ(dist::spec_digest(tweaked), digest)
        << "execution knobs must not move the digest";
    tweaked = spec;
    tweaked.master_seed ^= 1;
    EXPECT_NE(dist::spec_digest(tweaked), digest);
    tweaked = spec;
    tweaked.trials_per_cell += 1;
    EXPECT_NE(dist::spec_digest(tweaked), digest);
    tweaked = spec;
    tweaked.schemes.pop_back();
    EXPECT_NE(dist::spec_digest(tweaked), digest);
    // The adaptive knobs decide which trials run, so they MUST move it.
    tweaked = spec;
    tweaked.adaptive = true;
    EXPECT_NE(dist::spec_digest(tweaked), digest);
    tweaked = spec;
    tweaked.target_ci_halfwidth = 0.25;
    EXPECT_NE(dist::spec_digest(tweaked), digest);
    tweaked = spec;
    tweaked.round_blocks = 7;
    EXPECT_NE(dist::spec_digest(tweaked), digest);
    tweaked = spec;
    tweaked.min_trials_per_cell = 1;
    EXPECT_NE(dist::spec_digest(tweaked), digest);
}

TEST(dist_wire, round_job_round_trip) {
    dist::round_job job;
    job.spec = campaign::default_spec();
    job.spec.adaptive = true;
    job.spec.trials_per_cell = 130;
    job.manifest.round = 3;
    job.manifest.digest = dist::spec_digest(job.spec);
    const auto canonical = campaign::blocks_for(job.spec);
    job.manifest.blocks = {canonical[0], canonical[4], canonical[7]};

    const auto parsed = dist::round_job_from_json(dist::round_job_to_json(job));
    EXPECT_EQ(parsed.manifest.round, 3u);
    EXPECT_EQ(parsed.manifest.digest, job.manifest.digest);
    ASSERT_EQ(parsed.manifest.blocks.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(parsed.manifest.blocks[i].index, job.manifest.blocks[i].index);
        EXPECT_EQ(parsed.manifest.blocks[i].cell, job.manifest.blocks[i].cell);
        EXPECT_EQ(parsed.manifest.blocks[i].first_trial,
                  job.manifest.blocks[i].first_trial);
        EXPECT_EQ(parsed.manifest.blocks[i].trials,
                  job.manifest.blocks[i].trials);
    }
    EXPECT_EQ(dist::spec_digest(parsed.spec), job.manifest.digest);
    // Serialization is a fixed point.
    EXPECT_EQ(dist::round_job_to_json(parsed), dist::round_job_to_json(job));
    // A wrong version is rejected.
    EXPECT_THROW((void)dist::round_job_from_json(
                     "{\"round_job\":{\"version\":1,\"round\":1,"
                     "\"spec_digest\":0,\"spec\":{},\"blocks\":[]}}"),
                 std::runtime_error);
}

TEST(dist_wire, partial_round_header_survives_and_gates_the_merge) {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 2;
    spec.master_seed = 7;
    campaign::engine engine{spec};
    const auto blocks = campaign::blocks_for(spec);
    const auto block_partials = engine.run_blocks(blocks);

    dist::partial_report partial;
    partial.shard_index = 0;
    partial.shard_count = 1;
    partial.round = 5;
    partial.digest = dist::spec_digest(spec);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        partial.blocks.push_back(dist::partial_block{
            blocks[i].index, blocks[i].cell, block_partials[i]});

    const auto parsed = dist::partial_from_json(dist::partial_to_json(partial));
    EXPECT_EQ(parsed.round, 5u);

    std::vector<dist::partial_report> partials{parsed};
    // collect at the right round works; the wrong round is a loud error —
    // a stale worker from a previous round must never merge.
    EXPECT_NO_THROW(
        (void)dist::collect_block_partials(spec, blocks, partials, 5));
    EXPECT_THROW((void)dist::collect_block_partials(spec, blocks, partials, 4),
                 std::runtime_error);
    // merge_partials expects fixed-mode partials (round 0).
    EXPECT_THROW((void)dist::merge_partials(spec, partials), std::runtime_error);

    // A block outside the collected subset is "not assigned", not merged.
    const std::vector<campaign::block_ref> none{};
    EXPECT_THROW((void)dist::collect_block_partials(spec, none, partials, 5),
                 std::runtime_error);
}

TEST(dist_wire, welford_state_survives_the_wire_bit_exactly) {
    // Doubles with awkward mantissas: merging parsed accumulators must
    // give bit-identical results to merging the originals.
    util::welford_accumulator acc;
    for (const double x : {1.0 / 3.0, 2.0 / 7.0, 1e-300, 3.14159265358979,
                           6.02214076e23, -0.1, 4096.0, 0.0})
        acc.add(x);

    campaign::cell_partial p;
    p.trials = 8;
    p.queries = acc;
    p.queries_to_compromise = util::welford_accumulator{};  // empty survives too
    p.leaked_bytes_valid = acc;

    dist::partial_report partial;
    partial.shard_index = 3;
    partial.shard_count = 8;
    partial.digest = 0x1234567890abcdefull;
    partial.blocks.push_back(dist::partial_block{42, 7, p});

    const auto parsed = dist::partial_from_json(dist::partial_to_json(partial));
    ASSERT_EQ(parsed.blocks.size(), 1u);
    EXPECT_EQ(parsed.shard_index, 3u);
    EXPECT_EQ(parsed.shard_count, 8u);
    EXPECT_EQ(parsed.digest, partial.digest);
    EXPECT_EQ(parsed.blocks[0].index, 42u);
    EXPECT_EQ(parsed.blocks[0].cell, 7u);

    const auto a = p.queries.save();
    const auto b = parsed.blocks[0].partial.queries.save();
    EXPECT_EQ(a.n, b.n);
    // Bit equality, not EXPECT_DOUBLE_EQ: the merge recurrence amplifies
    // any ulp the wire loses.
    EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0);
    const auto empty = parsed.blocks[0].partial.queries_to_compromise.save();
    EXPECT_EQ(empty.n, 0u);

    // Serialization is a fixed point.
    EXPECT_EQ(dist::partial_to_json(parsed), dist::partial_to_json(partial));
}

TEST(dist_wire, partial_parse_rejects_garbage) {
    EXPECT_THROW((void)dist::partial_from_json(""), std::runtime_error);
    EXPECT_THROW((void)dist::partial_from_json("{\"partial\":"),
                 std::runtime_error);
    EXPECT_THROW((void)dist::partial_from_json("{\"unexpected\":{}}"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)dist::partial_from_json(
            "{\"partial\":{\"version\":999,\"shard\":0,\"shards\":1,"
            "\"spec_digest\":0,\"blocks\":[]}}"),
        std::runtime_error);
    EXPECT_THROW((void)dist::spec_from_json("{\"spec\":{\"schemes\":[\"NOPE\"]}}"),
                 std::invalid_argument);
}

TEST(dist_wire, campaign_report_serialize_parse_merge_round_trip) {
    // The satellite's oracle: take a real campaign, ship its two shard
    // halves through the text wire, merge the parsed partials, and demand
    // the display JSON of the merged report equal the single-process one.
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 5;
    spec.master_seed = 99;
    const auto reference = campaign::engine{spec}.run().to_json();

    std::vector<dist::partial_report> parsed;
    for (const auto& plan : dist::plan_shards(spec, 2)) {
        campaign::engine engine{spec};
        const auto block_partials = engine.run_blocks(plan.blocks);
        dist::partial_report partial;
        partial.shard_index = plan.shard_index;
        partial.shard_count = plan.shard_count;
        partial.digest = dist::spec_digest(spec);
        for (std::size_t i = 0; i < plan.blocks.size(); ++i)
            partial.blocks.push_back(dist::partial_block{
                plan.blocks[i].index, plan.blocks[i].cell, block_partials[i]});
        // Through the wire and back.
        parsed.push_back(
            dist::partial_from_json(dist::partial_to_json(partial)));
    }
    EXPECT_EQ(dist::merge_partials(spec, parsed).to_json(), reference);
}

}  // namespace
}  // namespace pssp
