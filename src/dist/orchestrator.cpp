#include "dist/orchestrator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <limits.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "attack/strategy.hpp"
#include "campaign/allocator.hpp"
#include "core/scheme.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"
#include "obs/span.hpp"
#include "workload/victim.hpp"

namespace pssp::dist {

namespace {

// One worker process to spawn: argv tail (after the binary path) plus the
// stdin payload. The fixed path runs one per shard for the whole campaign;
// the adaptive path runs one per shard per round. block_indices and
// flight_path are failure-context only — which canonical blocks this
// worker owned, and where its crash flight recording lands.
struct worker_job {
    std::vector<std::string> args;
    std::string input;
    std::vector<std::uint64_t> block_indices;
    std::string flight_path;  // empty = no flight recorder for this worker
};

// What one worker did, job-aligned from run_worker_pool. exit_status is
// the raw wait4 status; error holds parent-side failures (input write).
// The times are telemetry: wall from spawn to reap on the parent's clock,
// user/sys from the child's rusage.
struct worker_result {
    std::string output;
    std::string error;
    int exit_status = -1;
    double wall_seconds = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
};

struct worker_process {
    pid_t pid = -1;
    int stdout_fd = -1;
    std::chrono::steady_clock::time_point spawned;
    std::uint64_t spawned_ns = 0;  // trace clock, for the lifetime span
};

[[noreturn]] void exec_worker(const std::string& path,
                              const std::vector<std::string>& args, int in_fd,
                              int out_fd, const std::string& flight_path) {
    ::dup2(in_fd, STDIN_FILENO);
    ::dup2(out_fd, STDOUT_FILENO);
    // stderr stays inherited: worker diagnostics surface on the parent's.
    ::close(in_fd);
    ::close(out_fd);
    // Flight-recorder plumbing: the worker reads this at startup, enables
    // tracing, and checkpoints its span ring to the named file.
    if (!flight_path.empty())
        ::setenv("PSSP_OBS_FLIGHT", flight_path.c_str(), /*overwrite=*/1);
    std::vector<const char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(path.c_str());
    for (const auto& a : args) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    ::execv(path.c_str(), const_cast<char* const*>(argv.data()));
    // Exec failed; 127 is the conventional "command not found" status the
    // parent turns into a pointed error message.
    std::fprintf(stderr, "campaign worker exec failed: %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::_exit(127);
}

void write_all(int fd, const std::string& data, std::string& error) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            // EPIPE: the worker died before reading its input. Record it —
            // the wait status below says why.
            if (error.empty())
                error = std::string{"input write failed: "} + std::strerror(errno);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void read_all(int fd, std::string& out) {
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            return;
        }
        if (n == 0) return;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

std::string describe_exit(int status) {
    if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0) return {};
        if (code == 127) return "worker exec failed (bad worker path?)";
        return "worker exited with status " + std::to_string(code);
    }
    if (WIFSIGNALED(status))
        return std::string{"worker killed by signal "} +
               std::to_string(WTERMSIG(status)) + " (" +
               strsignal(WTERMSIG(status)) + ")";
    return "worker ended abnormally";
}

// Spawns one process per job, feeds each its stdin payload, drains every
// stdout, reaps everything, and returns job-aligned results with wait
// status and wall/user/sys times. Worker failures are reported in the
// results (check_workers turns them into a loud error with full context);
// only infrastructure failures — pipe/fork exhaustion — throw from here,
// after every child has been reaped.
std::vector<worker_result> run_worker_pool(const std::string& worker,
                                           const std::vector<worker_job>& jobs) {
    // A worker that dies before reading its input must surface as its wait
    // status, not as SIGPIPE killing the orchestrator.
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    struct sigaction old_pipe {};
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    std::vector<worker_process> workers(jobs.size());
    std::vector<worker_result> results(jobs.size());
    // On a mid-loop spawn failure (EMFILE, EAGAIN, ...) the workers already
    // forked must not be orphaned: kill them, drop their pipe fds, and reap
    // every one before throwing — the header's "all children are reaped"
    // contract holds on every exit path.
    auto abandon_spawned = [&](const char* what) {
        for (auto& w : workers) {
            if (w.pid < 0) continue;
            ::kill(w.pid, SIGKILL);
            ::close(w.stdout_fd);
            int status = 0;
            while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
            }
        }
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        throw std::runtime_error{std::string{"run_sharded: "} + what};
    };
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        int in_pipe[2];
        int out_pipe[2];
        if (::pipe(in_pipe) != 0) abandon_spawned("pipe() failed");
        if (::pipe(out_pipe) != 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            abandon_spawned("pipe() failed");
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            abandon_spawned("fork() failed");
        }
        if (pid == 0) {
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            exec_worker(worker, jobs[k].args, in_pipe[0], out_pipe[1],
                        jobs[k].flight_path);
        }
        ::close(in_pipe[0]);
        ::close(out_pipe[1]);
        workers[k].pid = pid;
        workers[k].stdout_fd = out_pipe[0];
        workers[k].spawned = std::chrono::steady_clock::now();
        workers[k].spawned_ns = obs::trace_now_ns();
        // Workers read their whole stdin before emitting output, so even an
        // input larger than the pipe capacity drains promptly — the write
        // blocks at worst until the freshly exec'd worker starts reading.
        write_all(in_pipe[1], jobs[k].input, results[k].error);
        ::close(in_pipe[1]);
    }

    // Drain stdouts in job order. A later worker whose pipe fills simply
    // blocks until its turn — the parent owes it nothing else.
    for (std::size_t k = 0; k < workers.size(); ++k) {
        read_all(workers[k].stdout_fd, results[k].output);
        ::close(workers[k].stdout_fd);
    }
    for (std::size_t k = 0; k < workers.size(); ++k) {
        int status = 0;
        struct rusage ru {};
        while (::wait4(workers[k].pid, &status, 0, &ru) < 0 && errno == EINTR) {
        }
        results[k].exit_status = status;
        results[k].wall_seconds = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() -
                                      workers[k].spawned)
                                      .count();
        results[k].user_seconds =
            static_cast<double>(ru.ru_utime.tv_sec) +
            static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
        results[k].sys_seconds =
            static_cast<double>(ru.ru_stime.tv_sec) +
            static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
        // One lifetime span per worker process on the orchestrator's
        // timeline (arg = shard index) — spawn to reap, pipe drain included.
        obs::emit_span("shard.worker", "dist", workers[k].spawned_ns,
                       obs::trace_now_ns() - workers[k].spawned_ns,
                       static_cast<std::int64_t>(k));
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    return results;
}

// ---- Failure context: enriched errors, flight recordings, postmortems ----

std::string join_path(const std::string& dir, const std::string& name) {
    if (dir.empty()) return name;
    return dir.back() == '/' ? dir + name : dir + "/" + name;
}

std::string flight_file_path(const sharded_options& options, std::uint32_t k) {
    return join_path(options.postmortem_dir,
                     "obs-flight-" + std::to_string(::getpid()) + "-" +
                         std::to_string(k) + ".json");
}

std::string postmortem_file_path(const sharded_options& options,
                                 std::uint32_t k) {
    return join_path(options.postmortem_dir,
                     "obs-postmortem-" + std::to_string(k) + ".json");
}

void remove_flight_files(const std::vector<worker_job>& jobs) {
    for (const auto& job : jobs)
        if (!job.flight_path.empty()) ::unlink(job.flight_path.c_str());
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

// The worker's full command line, for the failure message and postmortem.
std::string format_argv(const std::string& worker, const worker_job& job) {
    std::string argv = worker;
    for (const auto& a : job.args) {
        argv += ' ';
        argv += a;
    }
    return argv;
}

// Dumps everything known about a failed worker next to the report the run
// will never produce: identity (shard, round, argv), the wait status, the
// block manifest it owned, and its last flight-recorder checkpoint (the
// newest spans its ring held when it last wrote — embedded verbatim, or
// null if the worker died before its first checkpoint).
void write_postmortem(const sharded_options& options, const std::string& worker,
                      const worker_job& job, std::uint32_t shard,
                      std::uint64_t round_number, const std::string& why,
                      int exit_status) {
    const auto path = postmortem_file_path(options, shard);
    std::string flight = "null";
    if (!job.flight_path.empty()) {
        std::ifstream in{job.flight_path, std::ios::binary};
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            // flight_checkpoint writes tmp+rename, so a file that exists is
            // a complete JSON document.
            std::string doc = buf.str();
            while (!doc.empty() &&
                   (doc.back() == '\n' || doc.back() == ' '))
                doc.pop_back();
            if (!doc.empty()) flight = std::move(doc);
        }
    }
    std::string doc = "{\n  \"shard\": " + std::to_string(shard) +
                      ",\n  \"round\": " + std::to_string(round_number) +
                      ",\n  \"worker\": \"" + json_escape(worker) +
                      "\",\n  \"argv\": [";
    for (std::size_t i = 0; i < job.args.size(); ++i) {
        if (i != 0) doc += ", ";
        doc += "\"" + json_escape(job.args[i]) + "\"";
    }
    doc += "],\n  \"error\": \"" + json_escape(why) +
           "\",\n  \"raw_wait_status\": " + std::to_string(exit_status) +
           ",\n  \"blocks\": [";
    for (std::size_t i = 0; i < job.block_indices.size(); ++i) {
        if (i != 0) doc += ", ";
        doc += std::to_string(job.block_indices[i]);
    }
    doc += "],\n  \"flight\": " + flight + "\n}\n";

    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    if (!out) {
        std::fprintf(stderr, "dist: cannot write postmortem %s\n", path.c_str());
        return;
    }
    out << doc;
    std::fprintf(stderr, "dist: wrote %s\n", path.c_str());
}

// The loud-failure gate: any worker that exited non-zero, died on a
// signal, or whose input could not be delivered fails the whole run with
// an error carrying the shard index, round number, wait-status description
// and the exact worker command line — after a postmortem (flight recording
// + block manifest) has been dumped for every failed shard.
void check_workers(const sharded_options& options, const std::string& worker,
                   const std::vector<worker_job>& jobs,
                   const std::vector<worker_result>& results,
                   std::uint64_t round_number) {
    std::string failure;
    for (std::size_t k = 0; k < results.size(); ++k) {
        std::string why = describe_exit(results[k].exit_status);
        if (why.empty() && !results[k].error.empty()) why = results[k].error;
        if (why.empty()) continue;
        write_postmortem(options, worker, jobs[k],
                         static_cast<std::uint32_t>(k), round_number, why,
                         results[k].exit_status);
        if (!failure.empty()) failure += "; ";
        failure += "shard " + std::to_string(k) + " (round " +
                   std::to_string(round_number) + "): " + why +
                   " [argv: " + format_argv(worker, jobs[k]) + "]";
    }
    if (!failure.empty()) {
        remove_flight_files(jobs);
        throw std::runtime_error{"run_sharded: " + failure};
    }
}

partial_report parse_worker_partial(const std::string& output, std::uint32_t k,
                                    std::uint32_t count) {
    partial_report partial;
    try {
        partial = partial_from_json(output);
    } catch (const std::exception& e) {
        throw std::runtime_error{"run_sharded: shard " + std::to_string(k) +
                                 " emitted a bad partial: " + e.what()};
    }
    if (partial.shard_index != k || partial.shard_count != count)
        throw std::runtime_error{
            "run_sharded: shard " + std::to_string(k) + " identified as shard " +
            std::to_string(partial.shard_index) + "/" +
            std::to_string(partial.shard_count)};
    return partial;
}

// Parses every worker's partial; a worker that exited cleanly but emitted
// garbage gets the same postmortem treatment as a crash. Removes the
// flight files on both paths — after this the recordings have either been
// embedded in a postmortem or are no longer needed.
std::vector<partial_report> parse_worker_partials(
    const sharded_options& options, const std::string& worker,
    const std::vector<worker_job>& jobs,
    const std::vector<worker_result>& results, std::uint64_t round_number,
    std::uint32_t count) {
    std::vector<partial_report> partials;
    partials.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        try {
            partials.push_back(parse_worker_partial(results[k].output, k, count));
        } catch (const std::exception& e) {
            write_postmortem(options, worker, jobs[k], k, round_number,
                             e.what(), results[k].exit_status);
            remove_flight_files(jobs);
            throw;
        }
    }
    remove_flight_files(jobs);
    return partials;
}

std::string cell_name(const campaign::cell_id& id) {
    return workload::to_string(id.target) + "/" + core::to_string(id.scheme) +
           "/" + attack::to_string(id.attack);
}

void emit_round(const sharded_options& options, obs::telemetry_writer* writer,
                const obs::round_summary& summary) {
    if (writer != nullptr) writer->append(summary);
    if (options.round_observer) options.round_observer(summary);
}

std::vector<obs::shard_time> shard_times(
    const std::vector<worker_result>& results) {
    std::vector<obs::shard_time> times;
    times.reserve(results.size());
    for (std::size_t k = 0; k < results.size(); ++k)
        times.push_back(obs::shard_time{static_cast<std::uint32_t>(k),
                                        results[k].wall_seconds,
                                        results[k].user_seconds,
                                        results[k].sys_seconds});
    return times;
}

campaign::campaign_spec shard_execution_spec(
    const campaign::campaign_spec& spec, const sharded_options& options) {
    // Per-shard execution knobs: split the requested parallelism across
    // the shard processes (each then also caps its master pools to that).
    campaign::campaign_spec shard_spec = spec;
    shard_spec.jobs =
        options.jobs_per_shard != 0
            ? options.jobs_per_shard
            : std::max(1u, campaign::resolve_jobs(spec.jobs) / options.shards);
    return shard_spec;
}

// The adaptive round loop: the allocator runs in the parent, each round's
// block list is split round-robin by list position across the shards, and
// every worker gets an explicit manifest (spec + blocks) for that round.
// Allocation decisions consume only merged partials, and block partials
// are pure functions of (master_seed, block), so this reproduces
// engine{spec}.run() byte for byte at any shard count.
campaign::campaign_report run_sharded_adaptive(
    const campaign::campaign_spec& spec, const sharded_options& options,
    const std::string& worker, obs::telemetry_writer* telemetry) {
    const auto shard_spec = shard_execution_spec(spec, options);
    const auto digest = spec_digest(spec);
    const auto ids = campaign::cells_for(spec);
    campaign::adaptive_allocator allocator{spec};
    for (;;) {
        const auto round = allocator.plan_round();
        if (round.empty()) break;
        const std::uint64_t round_number = allocator.rounds_completed() + 1;
        obs::span sp{"campaign.round", "dist",
                     static_cast<std::int64_t>(round_number)};
        const auto round_start = std::chrono::steady_clock::now();
        // Workers this round: a shard with no blocks is not spawned (late
        // rounds routinely have fewer active blocks than shards).
        const auto count = static_cast<std::uint32_t>(std::min<std::size_t>(
            options.shards, round.size()));
        std::vector<worker_job> jobs(count);
        for (std::uint32_t k = 0; k < count; ++k) {
            round_job job;
            job.spec = shard_spec;
            job.manifest.round = round_number;
            job.manifest.digest = digest;
            for (std::size_t p = k; p < round.size(); p += count) {
                job.manifest.blocks.push_back(round[p]);
                jobs[k].block_indices.push_back(round[p].index);
            }
            jobs[k].args = {"--round", "--shard", std::to_string(k),
                            "--shards", std::to_string(count)};
            jobs[k].input = round_job_to_json(job);
            if (options.flight_recorder)
                jobs[k].flight_path = flight_file_path(options, k);
        }
        const auto results = run_worker_pool(worker, jobs);
        check_workers(options, worker, jobs, results, round_number);
        const auto partials = parse_worker_partials(options, worker, jobs,
                                                    results, round_number, count);
        allocator.record_round(
            round, collect_block_partials(spec, round, partials, round_number));
        if (telemetry != nullptr || options.round_observer) {
            // Same summary the in-process engine emits, plus per-shard
            // process times — computed from the allocator's post-record
            // state, which is itself a pure function of merged partials.
            obs::round_summary summary;
            summary.round = allocator.rounds_completed();
            summary.blocks = round.size();
            for (const auto& b : round) summary.trials += b.trials;
            summary.cumulative_trials = allocator.trials_run();
            for (std::uint64_t c = 0; c < ids.size(); ++c) {
                if (allocator.cell_converged(c)) continue;
                const double hw = allocator.cell_halfwidth(c);
                if (hw > summary.max_halfwidth) {
                    summary.max_halfwidth = hw;
                    summary.widest_cell = cell_name(ids[c]);
                }
            }
            summary.wall_seconds = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() -
                                       round_start)
                                       .count();
            summary.shards = shard_times(results);
            emit_round(options, telemetry, summary);
        }
    }
    return allocator.report();
}

}  // namespace

std::string default_worker_path() {
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path{buf};
        const auto slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + "tools_campaign_worker";
    }
    return "./tools_campaign_worker";
}

campaign::campaign_report run_sharded(const campaign::campaign_spec& spec,
                                      const sharded_options& options) {
    if (options.shards == 0)
        throw std::invalid_argument{"run_sharded: shards must be >= 1"};
    const std::string worker = options.worker_path.empty()
                                   ? default_worker_path()
                                   : options.worker_path;
    obs::telemetry_writer writer;
    obs::telemetry_writer* telemetry = nullptr;
    if (!options.telemetry_path.empty() && writer.open(options.telemetry_path))
        telemetry = &writer;

    if (spec.adaptive)
        return run_sharded_adaptive(spec, options, worker, telemetry);

    obs::span sp{"campaign.run", "dist"};
    const auto start = std::chrono::steady_clock::now();
    const std::string spec_json =
        spec_to_json(shard_execution_spec(spec, options));
    std::vector<worker_job> jobs(options.shards);
    for (std::uint32_t k = 0; k < options.shards; ++k) {
        jobs[k].args = {"--shard", std::to_string(k), "--shards",
                        std::to_string(options.shards)};
        jobs[k].input = spec_json;
        for (const auto& b : plan_shard(spec, k, options.shards).blocks)
            jobs[k].block_indices.push_back(b.index);
        if (options.flight_recorder)
            jobs[k].flight_path = flight_file_path(options, k);
    }
    const auto results = run_worker_pool(worker, jobs);
    // Fixed allocation has no rounds; failures and telemetry report round 0.
    check_workers(options, worker, jobs, results, /*round_number=*/0);
    const auto partials = parse_worker_partials(options, worker, jobs, results,
                                                /*round_number=*/0,
                                                options.shards);
    auto report = merge_partials(spec, partials);
    if (telemetry != nullptr || options.round_observer) {
        obs::round_summary summary;
        summary.round = 0;
        summary.blocks = campaign::blocks_for(spec).size();
        summary.trials = report.total_trials();
        summary.cumulative_trials = summary.trials;
        const auto ids = campaign::cells_for(spec);
        for (std::size_t c = 0; c < report.cells.size(); ++c) {
            const double hw = std::max(report.cells[c].detection_ci.half_width(),
                                       report.cells[c].hijack_ci.half_width());
            if (hw > summary.max_halfwidth) {
                summary.max_halfwidth = hw;
                summary.widest_cell = cell_name(ids[c]);
            }
        }
        summary.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        summary.shards = shard_times(results);
        emit_round(options, telemetry, summary);
    }
    return report;
}

}  // namespace pssp::dist
