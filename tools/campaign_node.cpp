// A remote campaign worker node: the daemon half of dist::coordinator.
//
// Connects to a coordinator (`--connect host:port`), registers with a
// hello/welcome handshake, then serves leases: each lease frame carries
// the *same* round-job JSON the local pipe transport feeds over stdin,
// so the node just fork/execs the sibling `tools_campaign_worker` with
// the standard argv (--round --shard K --shards N) and environment
// (PSSP_CAMPAIGN_ROUND / PSSP_CAMPAIGN_ATTEMPT) and streams the child's
// raw stdout back in a result frame together with its wait status. The
// coordinator classifies that exactly like the local supervisor — the
// compute layer cannot tell the transports apart.
//
// Liveness: one poll() loop drives the socket and the compute child's
// pipes together, so heartbeats keep flowing while a lease computes. If
// the coordinator goes away mid-lease (eviction, crash, network cut) the
// child is SIGKILLed — its lease has been requeued on a survivor; letting
// it finish would only waste cycles — and the node reconnects and
// re-registers with a bumped reconnect counter. Reconnect attempts are
// bounded (--retries); exhaustion exits the process.
//
// Chaos: net-* rules in PSSP_CAMPAIGN_FAULT_PLAN are executed HERE, keyed
// on the lease's (shard, round, attempt) coordinate — drop the
// connection, go silent through a partition, stall heartbeats, garble the
// result frame, delay it, or kill the whole node (net-die, the
// permanently-vanished worker). Process faults ride through unchanged to
// the compute child, which selects them itself.

#include <cerrno>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <fcntl.h>
#include <limits.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <csignal>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/chaos.hpp"
#include "dist/frame.hpp"

namespace {

using namespace pssp::dist;

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --connect HOST:PORT [--name NAME] [--worker PATH]\n"
        "          [--retries N] [--retry-delay MS]\n"
        "Campaign worker node: registers with a dist::coordinator and runs\n"
        "one leased block-manifest job at a time by fork/exec'ing the\n"
        "compute worker (default: the sibling tools_campaign_worker).\n",
        argv0);
    return 2;
}

std::string sibling(const char* name) {
    char buf[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path{buf};
        const auto slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash + 1) + name;
    }
    return std::string{"./"} + name;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int connect_to(const std::string& host, const std::string& port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
        res == nullptr)
        return -1;
    int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                      res->ai_protocol);
    if (fd >= 0) {
        int rc;
        while ((rc = ::connect(fd, res->ai_addr, res->ai_addrlen)) < 0 &&
               errno == EINTR) {
        }
        if (rc != 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::freeaddrinfo(res);
    if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        set_nonblocking(fd);
    }
    return fd;
}

std::uint64_t now_ms() {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

// The compute child of one lease, driven by the session poll loop.
struct compute_child {
    pid_t pid = -1;
    int in_fd = -1;   // write end of the child's stdin
    int out_fd = -1;  // read end of the child's stdout
    std::string input;
    std::size_t in_off = 0;
    std::string output;
    lease_envelope env;
    fault_rule net_fault;  // applied when the result is ready

    [[nodiscard]] bool running() const { return pid >= 0; }

    void kill_and_reap() {
        if (pid < 0) return;
        ::kill(pid, SIGKILL);
        int status = 0;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        pid = -1;
        if (in_fd >= 0) ::close(in_fd);
        if (out_fd >= 0) ::close(out_fd);
        in_fd = out_fd = -1;
    }
};

struct node_config {
    std::string host;
    std::string port;
    std::string name = "node";
    std::string worker;
    unsigned retries = 60;
    unsigned retry_delay_ms = 250;
};

// One connected session. Returns true to reconnect, false to exit the
// process (shutdown, net-die, fatal coordinator error). `connected` is
// set once the TCP connect succeeds, so the caller can distinguish a lost
// session (counts as a reconnect) from a coordinator that was never
// reachable.
bool run_session(const node_config& cfg, const fault_plan& plan,
                 std::uint64_t reconnects, bool& connected) {
    const int fd = connect_to(cfg.host, cfg.port);
    if (fd < 0) return true;  // retry: coordinator may not be up yet
    connected = true;
    frame_conn conn{fd};
    hello_msg hello;
    hello.name = cfg.name;
    hello.reconnects = reconnects;
    conn.queue(frame_type::hello, hello_to_json(hello));

    std::uint64_t heartbeat_ms = 250;
    bool welcomed = false;
    bool stall_heartbeats = false;
    std::uint64_t last_beat = now_ms();
    compute_child child;

    auto spawn_child = [&](const lease_envelope& env, std::string job_json,
                           const fault_rule& net_fault) -> bool {
        int in_pipe[2];
        int out_pipe[2];
        if (::pipe2(in_pipe, O_CLOEXEC) != 0) return false;
        if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
            return false;
        }
        if (pid == 0) {
            ::dup2(in_pipe[0], STDIN_FILENO);
            ::dup2(out_pipe[1], STDOUT_FILENO);
            ::close(in_pipe[0]);
            ::close(out_pipe[1]);
            // The same env contract the local supervisor exports.
            ::setenv(fault_round_env, std::to_string(env.round).c_str(), 1);
            ::setenv(fault_attempt_env, std::to_string(env.attempt).c_str(), 1);
            const std::string shard_s = std::to_string(env.shard);
            const std::string shards_s = std::to_string(env.shard_count);
            const char* argv[] = {cfg.worker.c_str(), "--round",  "--shard",
                                  shard_s.c_str(),    "--shards", shards_s.c_str(),
                                  nullptr};
            ::execv(cfg.worker.c_str(), const_cast<char* const*>(argv));
            std::fprintf(stderr, "campaign node: worker exec failed: %s: %s\n",
                         cfg.worker.c_str(), std::strerror(errno));
            ::_exit(127);
        }
        ::close(in_pipe[0]);
        ::close(out_pipe[1]);
        set_nonblocking(in_pipe[1]);
        set_nonblocking(out_pipe[0]);
        child.pid = pid;
        child.in_fd = in_pipe[1];
        child.out_fd = out_pipe[0];
        child.input = std::move(job_json);
        child.in_off = 0;
        child.output.clear();
        child.env = env;
        child.net_fault = net_fault;
        return true;
    };

    auto finish_child_and_respond = [&]() -> bool {  // false = conn poisoned
        int status = 0;
        while (::waitpid(child.pid, &status, 0) < 0 && errno == EINTR) {
        }
        child.pid = -1;
        if (child.in_fd >= 0) ::close(child.in_fd);
        child.in_fd = -1;
        result_envelope renv;
        renv.shard = child.env.shard;
        renv.shard_count = child.env.shard_count;
        renv.attempt = child.env.attempt;
        renv.wait_status = status;
        const auto& nf = child.net_fault;
        if (nf.kind == fault_kind::net_delay)
            ::usleep(static_cast<useconds_t>(nf.param * 1000));
        if (nf.kind == fault_kind::net_garble) {
            // Flip one trailer byte so the coordinator's integrity hash
            // catches it; write raw, bypassing the frame queue.
            std::fprintf(stderr, "%s: injected net-garble on shard %u\n",
                         cfg.name.c_str(), child.env.shard);
            auto raw = encode_frame(frame_type::result,
                                    encode_result(renv, child.output));
            raw.back() = static_cast<char>(raw.back() ^ 0x5a);
            std::size_t off = 0;
            while (off < raw.size()) {
                const ssize_t n =
                    ::write(conn.fd(), raw.data() + off, raw.size() - off);
                if (n > 0) {
                    off += static_cast<std::size_t>(n);
                    continue;
                }
                if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                              errno == EWOULDBLOCK))
                    continue;
                return false;
            }
            return true;
        }
        conn.queue(frame_type::result, encode_result(renv, child.output));
        return true;
    };

    for (;;) {
        pollfd fds[3];
        nfds_t nfds = 0;
        fds[nfds++] = pollfd{conn.fd(),
                             static_cast<short>(POLLIN | (conn.wants_write()
                                                              ? POLLOUT
                                                              : 0)),
                             0};
        int child_in_slot = -1;
        int child_out_slot = -1;
        if (child.running() && child.in_fd >= 0) {
            child_in_slot = static_cast<int>(nfds);
            fds[nfds++] = pollfd{child.in_fd, POLLOUT, 0};
        }
        if (child.running() && child.out_fd >= 0) {
            child_out_slot = static_cast<int>(nfds);
            fds[nfds++] = pollfd{child.out_fd, POLLIN, 0};
        }
        const std::uint64_t now = now_ms();
        const std::uint64_t next_beat = last_beat + heartbeat_ms;
        // Stalled heartbeats (net-stall-hb) must not busy-spin on an
        // always-due beat — wait on socket events alone.
        const int wait_ms =
            stall_heartbeats
                ? 60000
                : static_cast<int>(next_beat > now
                                       ? std::min<std::uint64_t>(
                                             next_beat - now, 60000)
                                       : 0);
        const int rc = ::poll(fds, nfds, welcomed ? wait_ms : 1000);
        if (rc < 0) {
            if (errno != EINTR) return true;
            continue;  // revents are undefined after EINTR
        }

        // Heartbeat tick (any frame counts as liveness coordinator-side,
        // but a steady beat is what keeps an idle node registered).
        if (welcomed && !stall_heartbeats && now_ms() >= next_beat) {
            conn.queue(frame_type::heartbeat, {});
            last_beat = now_ms();
        }

        if ((fds[0].revents & POLLOUT) != 0 && !conn.pump_writes()) {
            child.kill_and_reap();
            return true;
        }
        if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            std::vector<frame> frames;
            const auto status = conn.read_frames(frames);
            for (auto& f : frames) {
                switch (f.type) {
                    case frame_type::welcome: {
                        const auto w = welcome_from_json(f.payload);
                        heartbeat_ms = std::max<std::uint64_t>(1, w.heartbeat_ms);
                        welcomed = true;
                        break;
                    }
                    case frame_type::lease: {
                        std::string_view job_json;
                        const auto env = decode_lease(f.payload, &job_json);
                        const auto nf = decide_net_fault(plan, env.shard,
                                                         env.round, env.attempt);
                        if (nf.kind == fault_kind::net_die) {
                            std::fprintf(stderr, "%s: injected net-die\n",
                                         cfg.name.c_str());
                            child.kill_and_reap();
                            return false;  // vanish for good
                        }
                        if (nf.kind == fault_kind::net_drop) {
                            std::fprintf(stderr, "%s: injected net-drop\n",
                                         cfg.name.c_str());
                            child.kill_and_reap();
                            return true;  // reconnect; requeued lease heals
                        }
                        if (nf.kind == fault_kind::net_partition) {
                            std::fprintf(stderr,
                                         "%s: injected net-partition (%llums)\n",
                                         cfg.name.c_str(),
                                         static_cast<unsigned long long>(
                                             nf.param));
                            ::usleep(static_cast<useconds_t>(nf.param * 1000));
                            child.kill_and_reap();
                            return true;  // partition lifted: reconnect
                        }
                        if (nf.kind == fault_kind::net_stall_hb) {
                            std::fprintf(stderr, "%s: injected net-stall-hb\n",
                                         cfg.name.c_str());
                            stall_heartbeats = true;
                            break;  // take no lease; wait for eviction
                        }
                        if (child.running()) {
                            // Protocol breach: capacity is one lease.
                            conn.queue(frame_type::error,
                                       "node already holds a lease");
                            break;
                        }
                        if (!spawn_child(env, std::string{job_json}, nf)) {
                            conn.queue(frame_type::error,
                                       "node failed to spawn the worker");
                            break;
                        }
                        if (child.input.empty()) {
                            ::close(child.in_fd);
                            child.in_fd = -1;
                        }
                        break;
                    }
                    case frame_type::shutdown:
                        child.kill_and_reap();
                        return false;  // clean exit
                    case frame_type::error:
                        std::fprintf(stderr, "%s: coordinator refused us: %s\n",
                                     cfg.name.c_str(), f.payload.c_str());
                        child.kill_and_reap();
                        return false;  // e.g. version mismatch: do not retry
                    default:
                        break;
                }
            }
            if (status != frame_conn::io_status::ok) {
                // Coordinator gone (eviction, kill, cut). The lease we hold
                // has been requeued elsewhere — stop burning cycles on it.
                child.kill_and_reap();
                return true;
            }
        }

        if (child_in_slot >= 0 && (fds[child_in_slot].revents &
                                   (POLLOUT | POLLERR | POLLHUP)) != 0) {
            while (child.in_off < child.input.size()) {
                const ssize_t n =
                    ::write(child.in_fd, child.input.data() + child.in_off,
                            child.input.size() - child.in_off);
                if (n > 0) {
                    child.in_off += static_cast<std::size_t>(n);
                    continue;
                }
                if (n < 0 && errno == EINTR) continue;
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                child.in_off = child.input.size();  // EPIPE: child will say why
                break;
            }
            if (child.in_off >= child.input.size()) {
                ::close(child.in_fd);
                child.in_fd = -1;
            }
        }
        if (child_out_slot >= 0 &&
            (fds[child_out_slot].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            char buf[1 << 16];
            for (;;) {
                const ssize_t n = ::read(child.out_fd, buf, sizeof buf);
                if (n > 0) {
                    child.output.append(buf, static_cast<std::size_t>(n));
                    continue;
                }
                if (n < 0 && errno == EINTR) continue;
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                ::close(child.out_fd);
                child.out_fd = -1;
                break;
            }
            if (child.out_fd < 0) {
                if (!finish_child_and_respond()) return true;
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    node_config cfg;
    std::string endpoint;
    for (int i = 1; i < argc; ++i) {
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--connect"))
            endpoint = next("--connect");
        else if (!std::strcmp(argv[i], "--name"))
            cfg.name = next("--name");
        else if (!std::strcmp(argv[i], "--worker"))
            cfg.worker = next("--worker");
        else if (!std::strcmp(argv[i], "--retries"))
            cfg.retries = static_cast<unsigned>(
                std::strtoul(next("--retries"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--retry-delay"))
            cfg.retry_delay_ms = static_cast<unsigned>(
                std::strtoul(next("--retry-delay"), nullptr, 10));
        else
            return usage(argv[0]);
    }
    const auto colon = endpoint.rfind(':');
    if (endpoint.empty() || colon == std::string::npos) return usage(argv[0]);
    cfg.host = endpoint.substr(0, colon);
    cfg.port = endpoint.substr(colon + 1);
    if (cfg.worker.empty()) cfg.worker = sibling("tools_campaign_worker");

    // A coordinator dying mid-write must surface as a failed write, not
    // SIGPIPE killing the node.
    std::signal(SIGPIPE, SIG_IGN);

    fault_plan plan;
    if (const char* plan_text = std::getenv(pssp::dist::fault_plan_env)) {
        try {
            plan = parse_fault_plan(plan_text);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: %s\n", cfg.name.c_str(), e.what());
            return 2;
        }
    }

    std::uint64_t reconnects = 0;
    unsigned failed_connects = 0;
    while (failed_connects <= cfg.retries) {
        bool connected = false;
        if (!run_session(cfg, plan, reconnects, connected)) return 0;
        if (connected) {
            // A live session was lost: the lease we held is already being
            // requeued, so reconnect immediately (no delay) with the
            // retry budget restored, and tell the next hello.
            ++reconnects;
            failed_connects = 0;
            continue;
        }
        // A refused or unreachable connect is a plain retry with a delay —
        // the coordinator may simply not be up yet.
        ++failed_connects;
        ::usleep(static_cast<useconds_t>(cfg.retry_delay_ms) * 1000);
    }
    std::fprintf(stderr, "%s: coordinator unreachable after %u attempts\n",
                 cfg.name.c_str(), cfg.retries + 1);
    return 1;
}
