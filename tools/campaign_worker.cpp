// One shard of a distributed campaign, as a process.
//
// Protocol (see src/dist/orchestrator.cpp, which speaks the other side):
//
// Fixed allocation:
//   stdin   wire spec JSON (the whole campaign_spec; jobs/reuse_masters
//           are this shard's execution knobs as set by the orchestrator)
//   argv    --shard K --shards N   which slice of the canonical block
//           space this process owns (dist::plan_shard)
//
// Adaptive allocation (one process per shard per round):
//   stdin   wire round-job JSON: the spec plus this round's explicit
//           block manifest — the orchestrator's allocator decides the
//           blocks between rounds, so the worker cannot derive them
//   argv    --round --shard K --shards N   (K/N name this round's slice
//           for the partial header and error messages)
//
// Either way:
//   stdout  wire partial-report JSON: the shard's per-block mergeable
//           partials, hexfloat-exact, with the round number in the header
//           (0 for fixed runs)
//   stderr  diagnostics only
// Exit 0 on success; any failure is a non-zero exit with a message on
// stderr — the orchestrator turns that into a loud run failure.
//
// Test hook: PSSP_CAMPAIGN_WORKER_CRASH=<K> makes shard K exit(3) before
// doing any work, so the crashed-worker path is testable without a real
// fault.
//
// Chaos harness: PSSP_CAMPAIGN_FAULT_PLAN carries a deterministic fault
// plan (grammar in src/dist/chaos.hpp) keyed on (shard, round, attempt);
// the shard comes from argv, the round and attempt from the
// PSSP_CAMPAIGN_ROUND / PSSP_CAMPAIGN_ATTEMPT environment the supervisor
// exports per spawn. A matching rule injects its fault at the scripted
// point in this process's life — crash/hang/slow at startup, crash-late /
// trunc / corrupt / wrong-block at emit — so supervision and recovery are
// testable with exact, replayable failure schedules.
//
// Flight recorder: PSSP_OBS_FLIGHT=<path> (set by the orchestrator) turns
// on span tracing and checkpoints the newest spans to <path> at startup,
// after input parse, every 256 trials, and before the partial is emitted —
// so whenever this process dies, <path> holds its last recorded moments
// for the orchestrator's postmortem.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/chaos.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"
#include "obs/span.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--round] --shard K --shards N < input.json > partial.json\n"
        "Fixed mode: runs shard K of an N-way campaign split; spec JSON on\n"
        "stdin (dist wire format).\n"
        "--round: runs one adaptive round; round-job JSON (spec + explicit\n"
        "block manifest) on stdin.\n"
        "Partial report JSON on stdout either way.\n",
        argv0);
    return 2;
}

std::string read_stdin() {
    std::string input;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error{"reading input from stdin failed"};
        }
        if (n == 0) return input;
        input.append(buf, static_cast<std::size_t>(n));
    }
}

// Writes the whole payload to stdout with raw write(2): EINTR retries and
// short writes resume — a signal landing mid-transfer must never truncate
// or fail a partial that could have been delivered.
bool write_stdout(const char* data, std::size_t size, long shard) {
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(STDOUT_FILENO, data + off, size - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "shard %ld: writing partial failed: %s\n", shard,
                     std::strerror(errno));
        return false;
    }
    return true;
}

int emit_partial(pssp::dist::partial_report report, long shard,
                 const pssp::dist::fault_rule& fault) {
    using pssp::dist::fault_kind;
    if (fault.kind == fault_kind::crash_late) {
        std::fprintf(stderr, "shard %ld: injected crash-late\n", shard);
        return 4;
    }
    if (fault.kind == fault_kind::corrupt) {
        // Parses fine, fails the supervisor's digest validation.
        std::fprintf(stderr, "shard %ld: injected corrupt partial\n", shard);
        report.digest ^= 1;
    }
    if (fault.kind == fault_kind::wrong_block) {
        // Covers blocks the manifest never assigned.
        std::fprintf(stderr, "shard %ld: injected wrong-block partial\n", shard);
        for (auto& b : report.blocks) b.index += 1;
    }
    auto json = pssp::dist::partial_to_json(report);
    if (fault.kind == fault_kind::trunc) {
        std::fprintf(stderr, "shard %ld: injected truncated partial\n", shard);
        json.resize(json.size() / 2);
    }
    // Last checkpoint before the pipe write — a partial that never arrives
    // still leaves the encode span on record.
    pssp::obs::flight_checkpoint();
    return write_stdout(json.data(), json.size(), shard) ? 0 : 1;
}

// The manifest must describe real canonical blocks of this spec — a
// corrupt or foreign manifest dies here, not as garbage statistics.
void validate_manifest(const pssp::campaign::campaign_spec& spec,
                       const pssp::dist::round_manifest& manifest) {
    const auto canonical = pssp::campaign::blocks_for(spec);
    for (const auto& b : manifest.blocks) {
        if (b.index >= canonical.size())
            throw std::runtime_error{"manifest block index " +
                                     std::to_string(b.index) + " out of range"};
        const auto& c = canonical[b.index];
        if (b.cell != c.cell || b.first_trial != c.first_trial ||
            b.trials != c.trials)
            throw std::runtime_error{"manifest block " + std::to_string(b.index) +
                                     " disagrees with the canonical block space"};
    }
}

}  // namespace

int main(int argc, char** argv) {
    long shard = -1;
    long shards = -1;
    bool round_mode = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--shard") && i + 1 < argc)
            shard = std::strtol(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc)
            shards = std::strtol(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--round"))
            round_mode = true;
        else
            return usage(argv[0]);
    }
    if (shard < 0 || shards <= 0 || shard >= shards) return usage(argv[0]);

    // Arm the flight recorder before anything that can fail — including
    // the injected-crash hook below, so even a worker that "crashes"
    // instantly leaves a (near-empty but valid) recording behind.
    bool flight = false;
    if (const char* flight_path = std::getenv("PSSP_OBS_FLIGHT")) {
        pssp::obs::set_flight_path(flight_path);
        pssp::obs::enable_tracing(true);
        pssp::obs::flight_checkpoint();
        flight = true;
    }

    if (const char* crash = std::getenv("PSSP_CAMPAIGN_WORKER_CRASH"))
        if (std::strtol(crash, nullptr, 10) == shard) {
            std::fprintf(stderr, "shard %ld: injected crash\n", shard);
            return 3;
        }

    // Deterministic chaos: look up this process's (shard, round, attempt)
    // coordinate in the fault plan. Startup faults strike here; emit-time
    // faults ride along to emit_partial. A malformed plan is a loud exit —
    // a typo'd chaos run must never pass as a clean one.
    pssp::dist::fault_rule fault;
    if (const char* plan_text = std::getenv(pssp::dist::fault_plan_env)) {
        try {
            const auto plan = pssp::dist::parse_fault_plan(plan_text);
            const char* round_env = std::getenv(pssp::dist::fault_round_env);
            const char* attempt_env = std::getenv(pssp::dist::fault_attempt_env);
            // Process faults only: net-* rules in a mixed plan belong to
            // the node daemon's transport loop, never to this process.
            fault = pssp::dist::decide_process_fault(
                plan, static_cast<std::uint64_t>(shard),
                round_env != nullptr ? std::strtoull(round_env, nullptr, 10) : 0,
                attempt_env != nullptr ? std::strtoull(attempt_env, nullptr, 10)
                                       : 1);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "shard %ld: %s\n", shard, e.what());
            return 2;
        }
        using pssp::dist::fault_kind;
        if (fault.kind == fault_kind::crash) {
            std::fprintf(stderr, "shard %ld: injected crash\n", shard);
            return 3;
        }
        if (fault.kind == fault_kind::hang) {
            // Block forever, before touching stdin — only the supervisor's
            // deadline SIGKILL ends this process.
            std::fprintf(stderr, "shard %ld: injected hang\n", shard);
            for (;;) ::pause();
        }
        if (fault.kind == fault_kind::slow)
            ::usleep(static_cast<useconds_t>(fault.param * 1000));
    }

    try {
        pssp::dist::partial_report report;
        report.shard_index = static_cast<std::uint32_t>(shard);
        report.shard_count = static_cast<std::uint32_t>(shards);

        if (round_mode) {
            const auto job = pssp::dist::round_job_from_json(read_stdin());
            if (pssp::dist::spec_digest(job.spec) != job.manifest.digest)
                throw std::runtime_error{
                    "round job spec digest disagrees with its spec"};
            validate_manifest(job.spec, job.manifest);
            pssp::obs::flight_checkpoint();  // input parsed and validated

            pssp::campaign::engine engine{job.spec};
            if (flight)
                engine.set_progress([](std::uint64_t done, std::uint64_t) {
                    if (done % 256 == 0) pssp::obs::flight_checkpoint();
                });
            const auto partials = engine.run_blocks(job.manifest.blocks);

            report.round = job.manifest.round;
            report.digest = job.manifest.digest;
            report.blocks.reserve(job.manifest.blocks.size());
            for (std::size_t i = 0; i < job.manifest.blocks.size(); ++i)
                report.blocks.push_back(pssp::dist::partial_block{
                    job.manifest.blocks[i].index, job.manifest.blocks[i].cell,
                    partials[i]});
            return emit_partial(std::move(report), shard, fault);
        }

        const auto spec = pssp::dist::spec_from_json(read_stdin());
        const auto plan = pssp::dist::plan_shard(
            spec, static_cast<std::uint32_t>(shard),
            static_cast<std::uint32_t>(shards));

        pssp::obs::flight_checkpoint();  // input parsed, plan derived

        pssp::campaign::engine engine{spec};
        if (flight)
            engine.set_progress([](std::uint64_t done, std::uint64_t) {
                if (done % 256 == 0) pssp::obs::flight_checkpoint();
            });
        const auto partials = engine.run_blocks(plan.blocks);

        report.digest = pssp::dist::spec_digest(spec);
        report.blocks.reserve(plan.blocks.size());
        for (std::size_t i = 0; i < plan.blocks.size(); ++i)
            report.blocks.push_back(pssp::dist::partial_block{
                plan.blocks[i].index, plan.blocks[i].cell, partials[i]});
        return emit_partial(std::move(report), shard, fault);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "shard %ld: %s\n", shard, e.what());
        return 1;
    }
}
