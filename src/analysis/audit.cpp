#include "analysis/audit.hpp"

#include <algorithm>
#include <set>

namespace pssp::analysis {

namespace {

constexpr std::uint16_t bit(canary_source s) noexcept {
    return static_cast<std::uint16_t>(s);
}

}  // namespace

audit_result audit_rewrite(const binfmt::linked_binary& ssp_binary) {
    audit_result result;
    result.pre = prove_canary_protocol(ssp_binary);

    binfmt::linked_binary upgraded = ssp_binary;
    const auto pre_layout = binfmt::take_layout_snapshot(upgraded);
    const rewriter::binary_rewriter rw;
    result.report = rw.upgrade_to_pssp(upgraded);
    const auto post_layout = binfmt::take_layout_snapshot(upgraded);
    result.post = prove_canary_protocol(upgraded);

    auto& issues = result.issues;

    // ---- Protocol: both sides must prove clean ---------------------------
    for (const auto& v : result.pre.all_violations())
        issues.push_back({v.function, "pre-rewrite: " + v.message});
    for (const auto& v : result.post.all_violations())
        issues.push_back({v.function, "post-rewrite: " + v.message});

    // ---- Accounting: skipped set == analyzer's unprotected set -----------
    std::set<std::string> analyzer_unprotected;
    for (const auto& f : result.pre.functions)
        if (f.analyzed && !f.is_protected) analyzer_unprotected.insert(f.name);
    std::set<std::string> reported_skipped{result.report.skipped_functions.begin(),
                                           result.report.skipped_functions.end()};
    for (const auto& name : reported_skipped)
        if (!analyzer_unprotected.contains(name))
            issues.push_back({name,
                              "rewrite_report skips a function the analyzer "
                              "proves protected in the input image"});
    for (const auto& name : analyzer_unprotected)
        if (!reported_skipped.contains(name))
            issues.push_back({name,
                              "analyzer finds no canary protocol in the input "
                              "image but rewrite_report does not list the "
                              "function as skipped"});

    // ---- Pairing: prologue and epilogue patched together or not at all ---
    for (const auto& pre_fn : result.pre.functions) {
        if (!pre_fn.analyzed || !pre_fn.is_protected) continue;
        const auto* post_fn = result.post.find(pre_fn.name);
        if (post_fn == nullptr) {
            issues.push_back({pre_fn.name, "function missing from post image"});
            continue;
        }
        const bool prologue_patched =
            (post_fn->sources & bit(canary_source::tls_shadow_c0)) != 0;
        const bool epilogue_patched = post_fn->saw_checking_call();
        if (prologue_patched && !epilogue_patched)
            issues.push_back({pre_fn.name,
                              "patched prologue with unpatched epilogue: the "
                              "shadow pair is installed but still checked "
                              "inline against %fs:0x28"});
        if (!prologue_patched && epilogue_patched)
            issues.push_back({pre_fn.name,
                              "patched epilogue with unpatched prologue: "
                              "__stack_chk_fail verifies a word that was "
                              "never loaded from the shadow pair"});
        if (!prologue_patched && !epilogue_patched &&
            !reported_skipped.contains(pre_fn.name))
            issues.push_back({pre_fn.name,
                              "protected function left entirely unpatched but "
                              "not reported as skipped"});
    }

    // ---- Layout: nothing may move ----------------------------------------
    if (!binfmt::layout_preserved(pre_layout, post_layout))
        issues.push_back({"",
                          "layout not preserved: a symbol, entry, or function "
                          "size moved during the rewrite"});

    return result;
}

}  // namespace pssp::analysis
