// Adaptive allocator: deterministic round planning, CI-driven stopping,
// widest-first priority, and the real-engine identity + savings contracts
// the acceptance criteria pin.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "campaign/allocator.hpp"
#include "campaign/engine.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

// 3 cells x 3 blocks (192 trials per cell), breadth-first default round.
campaign::campaign_spec synthetic_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::raf_ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 192;
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.1;
    spec.min_trials_per_cell = 64;
    spec.round_blocks = 0;  // one block per cell per round
    return spec;
}

// A synthetic block partial: the allocator's decisions consume only the
// integer tallies, so the Welford channels can stay empty.
campaign::cell_partial synth(std::uint64_t trials, std::uint64_t detections,
                             std::uint64_t hijacks = 0) {
    campaign::cell_partial p;
    p.trials = trials;
    p.detections = detections;
    p.hijacks = hijacks;
    return p;
}

TEST(campaign_allocator, halfwidth_metric_is_the_wider_of_both_cis) {
    // Empty cell: the vacuous {0,1} Wilson interval on both axes.
    EXPECT_DOUBLE_EQ(campaign::cell_ci_halfwidth(synth(0, 0)), 0.5);
    // Extreme detections but mid-range hijacks: the hijack CI dominates.
    const auto skewed = campaign::cell_ci_halfwidth(synth(64, 64, 32));
    const auto extreme = campaign::cell_ci_halfwidth(synth(64, 64, 0));
    EXPECT_GT(skewed, extreme);
    EXPECT_GT(skewed, 0.1);
    EXPECT_LT(extreme, 0.05);
}

TEST(campaign_allocator, converged_cells_stop_and_budget_flows_to_wide_ones) {
    campaign::adaptive_allocator alloc{synthetic_spec()};
    ASSERT_FALSE(alloc.done());

    // Round 1: nothing measured yet, every cell at half-width 0.5 — one
    // block per cell, ascending canonical index (cells own blocks
    // {0,1,2}, {3,4,5}, {6,7,8}).
    const auto round1 = alloc.plan_round();
    ASSERT_EQ(round1.size(), 3u);
    EXPECT_EQ(round1[0].index, 0u);
    EXPECT_EQ(round1[1].index, 3u);
    EXPECT_EQ(round1[2].index, 6u);

    // Cell 0 detects everything (tight CI), cell 1 sits at 0.5 (wide),
    // cell 2 hijacks everything (tight again).
    alloc.record_round(round1, std::vector<campaign::cell_partial>{
                                   synth(64, 64), synth(64, 32),
                                   synth(64, 0, 64)});
    EXPECT_TRUE(alloc.cell_converged(0));
    EXPECT_FALSE(alloc.cell_converged(1));
    EXPECT_TRUE(alloc.cell_converged(2));
    EXPECT_EQ(alloc.trials_run(), 192u);

    // Round 2: only cell 1 is active; the whole round budget (3 blocks)
    // flows to it, capped by its 2 remaining blocks.
    const auto round2 = alloc.plan_round();
    ASSERT_EQ(round2.size(), 2u);
    EXPECT_EQ(round2[0].index, 4u);
    EXPECT_EQ(round2[1].index, 5u);
    alloc.record_round(round2, std::vector<campaign::cell_partial>{
                                   synth(64, 32), synth(64, 32)});

    // 192 trials at p = 0.5 put the Wilson half-width just under 0.1.
    EXPECT_TRUE(alloc.cell_converged(1));
    EXPECT_TRUE(alloc.done());
    EXPECT_TRUE(alloc.plan_round().empty());
    EXPECT_EQ(alloc.rounds_completed(), 2u);
    EXPECT_EQ(alloc.trials_run(), 320u);

    // The report covers exactly the executed blocks — converged cells kept
    // their 64 trials, the wide cell ran its full 192.
    const auto report = alloc.report();
    ASSERT_EQ(report.cells.size(), 3u);
    EXPECT_EQ(report.cells[0].trials, 64u);
    EXPECT_EQ(report.cells[1].trials, 192u);
    EXPECT_EQ(report.cells[2].trials, 64u);
}

TEST(campaign_allocator, priority_is_halfwidth_desc_with_cell_index_tiebreak) {
    campaign::campaign_spec spec = synthetic_spec();
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.trials_per_cell = 128;  // 2 blocks per cell
    spec.round_blocks = 1;       // one block per round: pure priority probe
    spec.target_ci_halfwidth = 0.01;  // nothing converges in these few trials
    campaign::adaptive_allocator alloc{spec};

    // Round 1: both cells at 0.5 — the tiebreak picks cell 0 (block 0).
    auto round = alloc.plan_round();
    ASSERT_EQ(round.size(), 1u);
    EXPECT_EQ(round[0].index, 0u);
    alloc.record_round(round, std::vector<campaign::cell_partial>{synth(64, 32)});

    // Round 2: cell 1 (still 0.5) is wider than cell 0 (~0.12) — block 2.
    round = alloc.plan_round();
    ASSERT_EQ(round.size(), 1u);
    EXPECT_EQ(round[0].index, 2u);
    alloc.record_round(round, std::vector<campaign::cell_partial>{synth(64, 64)});

    // Round 3: cell 0 (~0.12) is now wider than cell 1 (~0.03) — block 1.
    round = alloc.plan_round();
    ASSERT_EQ(round.size(), 1u);
    EXPECT_EQ(round[0].index, 1u);
    alloc.record_round(round, std::vector<campaign::cell_partial>{synth(64, 32)});

    // Round 4: cell 0 exhausted its budget; cell 1's last block runs.
    round = alloc.plan_round();
    ASSERT_EQ(round.size(), 1u);
    EXPECT_EQ(round[0].index, 3u);
    alloc.record_round(round, std::vector<campaign::cell_partial>{synth(64, 64)});

    EXPECT_TRUE(alloc.done());
    EXPECT_EQ(alloc.trials_run(), spec.trial_count());
}

TEST(campaign_allocator, target_zero_degenerates_to_the_fixed_allocation) {
    // A Wilson half-width on n >= 1 trials is strictly positive, so target
    // 0 can never stop a cell early: the adaptive run covers the whole
    // canonical block space, exactly like fixed allocation.
    auto spec = synthetic_spec();
    spec.target_ci_halfwidth = 0.0;
    campaign::adaptive_allocator alloc{spec};
    while (!alloc.done()) {
        const auto round = alloc.plan_round();
        ASSERT_FALSE(round.empty());
        std::vector<campaign::cell_partial> partials;
        for (const auto& b : round) partials.push_back(synth(b.trials, 0));
        alloc.record_round(round, partials);
    }
    EXPECT_EQ(alloc.trials_run(), spec.trial_count());
    EXPECT_EQ(alloc.executed_blocks().size(), campaign::blocks_for(spec).size());
}

TEST(campaign_allocator, min_trials_floor_blocks_early_convergence) {
    auto spec = synthetic_spec();
    spec.schemes = {scheme_kind::ssp};
    spec.trials_per_cell = 192;
    spec.min_trials_per_cell = 128;  // one tight block is not enough
    campaign::adaptive_allocator alloc{spec};

    auto round = alloc.plan_round();
    ASSERT_EQ(round.size(), 1u);
    alloc.record_round(round, std::vector<campaign::cell_partial>{synth(64, 64)});
    // Half-width ~0.028 <= 0.1, but only 64 of the required 128 trials ran.
    EXPECT_FALSE(alloc.cell_converged(0));
    ASSERT_FALSE(alloc.done());

    round = alloc.plan_round();
    ASSERT_EQ(round.size(), 1u);
    EXPECT_EQ(round[0].index, 1u);
    alloc.record_round(round, std::vector<campaign::cell_partial>{synth(64, 64)});
    EXPECT_TRUE(alloc.cell_converged(0));
    EXPECT_TRUE(alloc.done());
    EXPECT_EQ(alloc.trials_run(), 128u);
}

TEST(campaign_allocator, record_round_validates_its_inputs) {
    campaign::adaptive_allocator alloc{synthetic_spec()};
    const auto round = alloc.plan_round();
    ASSERT_EQ(round.size(), 3u);

    // Planning again with a round in flight is a logic error.
    EXPECT_THROW((void)alloc.plan_round(), std::logic_error);

    // Wrong partial count.
    EXPECT_THROW(alloc.record_round(
                     round, std::vector<campaign::cell_partial>{synth(64, 0)}),
                 std::invalid_argument);
    // Wrong trial count inside a partial.
    EXPECT_THROW(
        alloc.record_round(round, std::vector<campaign::cell_partial>{
                                      synth(63, 0), synth(64, 0), synth(64, 0)}),
        std::invalid_argument);
    // Blocks that are not the planned ones.
    auto wrong = std::vector<campaign::block_ref>{round[0], round[1], round[1]};
    EXPECT_THROW(
        alloc.record_round(wrong, std::vector<campaign::cell_partial>{
                                      synth(64, 0), synth(64, 0), synth(64, 0)}),
        std::invalid_argument);
    // Recording with no round planned is a logic error.
    alloc.record_round(round, std::vector<campaign::cell_partial>{
                                  synth(64, 0), synth(64, 0), synth(64, 0)});
    EXPECT_THROW(alloc.record_round(round, std::vector<campaign::cell_partial>{
                                               synth(64, 0), synth(64, 0),
                                               synth(64, 0)}),
                 std::logic_error);
}

TEST(campaign_allocator, rejects_bad_targets) {
    auto spec = synthetic_spec();
    spec.target_ci_halfwidth = -0.1;
    EXPECT_THROW(campaign::adaptive_allocator{spec}, std::invalid_argument);
    EXPECT_THROW(campaign::engine{spec}, std::invalid_argument);
    spec.target_ci_halfwidth = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(campaign::adaptive_allocator{spec}, std::invalid_argument);
}

TEST(campaign_allocator, degenerate_specs_start_out_done_with_valid_reports) {
    // Empty axes and zero budgets are well-defined: no rounds, and the
    // report is a valid (parseable) zero-cell or zero-trial document.
    for (auto mutate : {+[](campaign::campaign_spec& s) { s.schemes.clear(); },
                        +[](campaign::campaign_spec& s) { s.attacks.clear(); },
                        +[](campaign::campaign_spec& s) { s.targets.clear(); },
                        +[](campaign::campaign_spec& s) {
                            s.trials_per_cell = 0;
                        }}) {
        auto spec = synthetic_spec();
        mutate(spec);
        campaign::adaptive_allocator alloc{spec};
        EXPECT_TRUE(alloc.done());
        EXPECT_TRUE(alloc.plan_round().empty());
        EXPECT_EQ(alloc.trials_run(), 0u);
        const auto report = alloc.report();
        // Every cell of the (possibly empty) cross product is present with
        // zero trials and vacuous CIs, and the JSON is well-formed.
        EXPECT_EQ(report.cells.size(), spec.cell_count());
        for (const auto& c : report.cells) {
            EXPECT_EQ(c.trials, 0u);
            EXPECT_DOUBLE_EQ(c.detection_ci.lo, 0.0);
            EXPECT_DOUBLE_EQ(c.detection_ci.hi, 1.0);
        }
        EXPECT_NO_THROW((void)util::parse_json(report.to_json()));
    }
}

// ---- Real-engine contracts ----

campaign::campaign_spec real_adaptive_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 80;  // 2 ragged blocks per cell
    spec.master_seed = 77;
    spec.query_budget = 600;
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.2;
    spec.min_trials_per_cell = 16;
    return spec;
}

TEST(campaign_allocator, adaptive_report_identical_across_jobs_levels) {
    auto spec = real_adaptive_spec();
    spec.jobs = 1;
    const auto serial = campaign::engine{spec}.run().to_json();
    spec.jobs = 8;
    const auto parallel = campaign::engine{spec}.run().to_json();
    EXPECT_EQ(serial, parallel);
    // And the report says what ran it: the adaptive knobs are part of the
    // outcome-relevant record.
    EXPECT_NE(serial.find("\"adaptive\":true"), std::string::npos);
}

TEST(campaign_allocator, adaptive_stops_cells_the_fixed_run_would_overspend) {
    // Acceptance-criteria floor, in-process: on the default campaign matrix
    // (with test-sized execution knobs) the adaptive run must save >= 25%
    // of the fixed trial budget at the same target precision.
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 112;
    spec.query_budget = 1024;
    spec.brute_unknown_bits = 8;
    spec.jobs = 0;  // all cores
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.1;
    spec.min_trials_per_cell = 64;
    const auto report = campaign::engine{spec}.run();

    std::uint64_t adaptive_trials = 0;
    for (const auto& c : report.cells) {
        adaptive_trials += c.trials;
        // Whatever stopped early must actually have met the target (cells
        // that ran the whole budget are allowed to stay wide).
        if (c.trials < spec.trials_per_cell) {
            EXPECT_LE(c.detection_ci.half_width(), spec.target_ci_halfwidth);
            EXPECT_LE(c.hijack_ci.half_width(), spec.target_ci_halfwidth);
            EXPECT_GE(c.trials, spec.min_trials_per_cell);
        }
    }
    const auto fixed_trials = spec.trial_count();
    EXPECT_LE(adaptive_trials * 4, fixed_trials * 3)
        << "adaptive ran " << adaptive_trials << " of " << fixed_trials
        << " fixed trials — less than 25% saved";
}

}  // namespace
}  // namespace pssp
