// Mutation self-test: seeded single-op corruptions of the instrumentation
// the checker is supposed to prove, each of which the checker must catch.
//
// A static verifier that never fires is indistinguishable from one that
// cannot fire. This harness enumerates, from a *clean* proof of a binary,
// every point where one instruction edit breaks the canary protocol —
// dropping an install, dropping the final comparison, inverting a guard
// into an unconditional jump, removing the abort arm, clobbering a live
// slot, retargeting an install — applies each in isolation (same-length,
// no relayout: every address and resolved target stays valid), re-proves,
// and demands a violation or a profile drift for every single site.
// Zero false negatives on mutants, zero findings on the clean build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/canary_proof.hpp"
#include "binfmt/image.hpp"

namespace pssp::analysis {

enum class mutation_kind : std::uint8_t {
    drop_install,        // installing store -> nop
    drop_check_compare,  // final flags producer of a check -> nop
    bypass_guard,        // guard jcc -> unconditional jmp to its target
    drop_abort_arm,      // the trap/call abort arm next to a guard -> nop
    clobber_slot,        // insn after the last install -> mov [rbp-slot], 0x41
    retarget_install,    // installing store displaced one word down
};

[[nodiscard]] std::string to_string(mutation_kind kind);

struct mutation_site {
    mutation_kind kind = mutation_kind::drop_install;
    std::string function;
    std::uint32_t insn_index = 0;  // function-relative instruction index
    std::int32_t slot = 0;         // the canary slot involved (when any)
};

struct mutation_outcome {
    mutation_site site;
    bool caught = false;       // re-proof flagged the mutant
    std::string how;           // first violation message / drift description
};

struct mutation_report {
    std::vector<mutation_outcome> outcomes;
    int clean_violations = 0;  // findings on the unmutated binary (must be 0)

    [[nodiscard]] bool all_caught() const noexcept;
    [[nodiscard]] int missed() const noexcept;
};

// Enumerates every single-op mutation site for `binary`, derived from a
// clean proof of it (install/check records give the exact indices).
[[nodiscard]] std::vector<mutation_site> enumerate_mutation_sites(
    const binfmt::linked_binary& binary, const proof_result& clean_proof);

// Applies `site` to a copy of `binary`. Never relayouts: the replacement
// occupies the same instruction slot, so all addresses stay valid.
[[nodiscard]] binfmt::linked_binary apply_mutation(
    const binfmt::linked_binary& binary, const mutation_site& site);

// Runs the whole self-test: prove clean, enumerate, mutate, re-prove each.
// A mutant counts as caught when its function gains a violation or its
// proof profile drifts from the clean one (protection lost, slot set or
// source mask changed, a check gone).
[[nodiscard]] mutation_report run_mutation_self_test(
    const binfmt::linked_binary& binary);

}  // namespace pssp::analysis
