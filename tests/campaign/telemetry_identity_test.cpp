// The telemetry layer's one inviolable rule: it is a side channel. A
// campaign report is a pure function of its spec — turning on tracing,
// metrics, round observers, JSONL telemetry or the flight recorder must
// not move a single report byte, at any --jobs level or shard count.
// This test runs the same campaign with everything off and with
// everything on, in-process (jobs 1 and 8) and fork/exec-sharded
// (1 and 4 shards), and compares the serialized reports byte for byte.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "campaign/engine.hpp"
#include "dist/orchestrator.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace pssp {
namespace {

campaign::campaign_spec small_spec() {
    // The full default 9-cell matrix with reduced cost knobs — identity is
    // knob-independent, so cheap knobs lose no coverage.
    auto spec = campaign::default_spec();
    spec.trials_per_cell = 6;
    spec.brute_unknown_bits = 8;
    spec.query_budget = 1024;
    return spec;
}

std::string run_plain(campaign::campaign_spec spec, unsigned jobs) {
    spec.jobs = jobs;
    return campaign::engine{spec}.run().to_json();
}

std::string run_with_telemetry(campaign::campaign_spec spec, unsigned jobs) {
    spec.jobs = jobs;
    obs::enable_tracing(true);
    campaign::engine eng{spec};
    std::uint64_t rounds_seen = 0;
    eng.set_round_observer(
        [&rounds_seen](const obs::round_summary&) { ++rounds_seen; });
    const auto json = eng.run().to_json();
    obs::enable_tracing(false);
    obs::clear_spans_for_test();
    EXPECT_GE(rounds_seen, 1u) << "observer never fired — nothing was tested";
    return json;
}

TEST(telemetry_identity, in_process_report_identical_with_telemetry_on) {
    const auto spec = small_spec();
    const auto reference = run_plain(spec, 1);
    for (const unsigned jobs : {1u, 8u}) {
        EXPECT_EQ(run_plain(spec, jobs), reference) << "jobs=" << jobs;
        EXPECT_EQ(run_with_telemetry(spec, jobs), reference)
            << "jobs=" << jobs << " with telemetry";
    }
}

TEST(telemetry_identity, adaptive_report_identical_with_telemetry_on) {
    auto spec = small_spec();
    spec.trials_per_cell = 16;
    spec.adaptive = true;
    spec.min_trials_per_cell = 8;
    const auto reference = run_plain(spec, 1);
    for (const unsigned jobs : {1u, 8u})
        EXPECT_EQ(run_with_telemetry(spec, jobs), reference)
            << "jobs=" << jobs << " with telemetry";
}

TEST(telemetry_identity, sharded_report_identical_with_telemetry_on) {
    const auto spec = small_spec();
    const auto reference = run_plain(spec, 1);
    for (const unsigned shards : {1u, 4u}) {
        dist::sharded_options plain;
        plain.shards = shards;
        plain.flight_recorder = false;
        EXPECT_EQ(dist::run_sharded(spec, plain).to_json(), reference)
            << "shards=" << shards;

        // Everything on: JSONL telemetry to a temp file, the in-process
        // observer, orchestrator tracing, and per-worker flight recorders.
        const std::string jsonl =
            ::testing::TempDir() + "telemetry_identity_" +
            std::to_string(shards) + ".jsonl";
        dist::sharded_options loud;
        loud.shards = shards;
        loud.telemetry_path = jsonl;
        loud.postmortem_dir = ::testing::TempDir();
        std::uint64_t rounds_seen = 0;
        loud.round_observer =
            [&rounds_seen](const obs::round_summary&) { ++rounds_seen; };
        obs::enable_tracing(true);
        const auto report = dist::run_sharded(spec, loud).to_json();
        obs::enable_tracing(false);
        obs::clear_spans_for_test();
        EXPECT_EQ(report, reference) << "shards=" << shards << " with telemetry";
        EXPECT_GE(rounds_seen, 1u);
        std::remove(jsonl.c_str());
    }
}

}  // namespace
}  // namespace pssp
