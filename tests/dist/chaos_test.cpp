// The deterministic fault-plan grammar: parse, defaults, matching
// precedence, and loud rejection of malformed plans. Pure unit tests —
// the end-to-end injection paths (a worker actually crashing/hanging/
// corrupting on schedule) are exercised by tests/dist/supervisor_test.cpp
// through real fork/exec.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <string_view>

#include "dist/chaos.hpp"

namespace pssp {
namespace {

TEST(dist_chaos, parses_every_fault_kind) {
    const auto plan = dist::parse_fault_plan(
        "crash,crash-late,hang,trunc,corrupt,wrong-block,slow=250");
    ASSERT_EQ(plan.rules.size(), 7u);
    EXPECT_EQ(plan.rules[0].kind, dist::fault_kind::crash);
    EXPECT_EQ(plan.rules[1].kind, dist::fault_kind::crash_late);
    EXPECT_EQ(plan.rules[2].kind, dist::fault_kind::hang);
    EXPECT_EQ(plan.rules[3].kind, dist::fault_kind::trunc);
    EXPECT_EQ(plan.rules[4].kind, dist::fault_kind::corrupt);
    EXPECT_EQ(plan.rules[5].kind, dist::fault_kind::wrong_block);
    EXPECT_EQ(plan.rules[6].kind, dist::fault_kind::slow);
    EXPECT_EQ(plan.rules[6].param, 250u);
}

TEST(dist_chaos, defaults_any_shard_any_round_first_attempt_only) {
    const auto plan = dist::parse_fault_plan("crash");
    ASSERT_EQ(plan.rules.size(), 1u);
    // Any shard, any round — but first attempt only, so the retry heals
    // unless the plan explicitly says otherwise.
    EXPECT_NE(dist::decide_fault(plan, 0, 0, 1).kind, dist::fault_kind::none);
    EXPECT_NE(dist::decide_fault(plan, 7, 42, 1).kind, dist::fault_kind::none);
    EXPECT_EQ(dist::decide_fault(plan, 0, 0, 2).kind, dist::fault_kind::none);
}

TEST(dist_chaos, full_coordinates_match_exactly) {
    const auto plan = dist::parse_fault_plan("corrupt:2:3:1");
    EXPECT_EQ(dist::decide_fault(plan, 2, 3, 1).kind,
              dist::fault_kind::corrupt);
    EXPECT_EQ(dist::decide_fault(plan, 1, 3, 1).kind, dist::fault_kind::none);
    EXPECT_EQ(dist::decide_fault(plan, 2, 2, 1).kind, dist::fault_kind::none);
    EXPECT_EQ(dist::decide_fault(plan, 2, 3, 2).kind, dist::fault_kind::none);
}

TEST(dist_chaos, wildcard_attempt_matches_every_attempt) {
    const auto plan = dist::parse_fault_plan("crash:1:*:*");
    for (std::uint64_t attempt = 1; attempt <= 5; ++attempt)
        EXPECT_EQ(dist::decide_fault(plan, 1, 9, attempt).kind,
                  dist::fault_kind::crash);
    EXPECT_EQ(dist::decide_fault(plan, 0, 9, 1).kind, dist::fault_kind::none);
}

TEST(dist_chaos, first_matching_rule_wins) {
    const auto plan = dist::parse_fault_plan("hang:0,crash:*");
    EXPECT_EQ(dist::decide_fault(plan, 0, 0, 1).kind, dist::fault_kind::hang);
    EXPECT_EQ(dist::decide_fault(plan, 1, 0, 1).kind, dist::fault_kind::crash);
}

TEST(dist_chaos, parses_every_net_fault_kind) {
    const auto plan = dist::parse_fault_plan(
        "net-die,net-drop,net-garble,net-delay=40,net-partition=600,"
        "net-stall-hb");
    ASSERT_EQ(plan.rules.size(), 6u);
    EXPECT_EQ(plan.rules[0].kind, dist::fault_kind::net_die);
    EXPECT_EQ(plan.rules[1].kind, dist::fault_kind::net_drop);
    EXPECT_EQ(plan.rules[2].kind, dist::fault_kind::net_garble);
    EXPECT_EQ(plan.rules[3].kind, dist::fault_kind::net_delay);
    EXPECT_EQ(plan.rules[3].param, 40u);
    EXPECT_EQ(plan.rules[4].kind, dist::fault_kind::net_partition);
    EXPECT_EQ(plan.rules[4].param, 600u);
    EXPECT_EQ(plan.rules[5].kind, dist::fault_kind::net_stall_hb);
    for (const auto& rule : plan.rules)
        EXPECT_TRUE(dist::is_net_fault(rule.kind))
            << dist::to_string(rule.kind);
}

TEST(dist_chaos, fault_family_selectors_split_process_and_net_rules) {
    // A mixed plan: each transport layer must see only its own family,
    // with first-match-wins preserved *within* the family even when a
    // foreign-family rule sits in front.
    const auto plan =
        dist::parse_fault_plan("net-drop:0,crash:0,net-stall-hb:*,hang:*");
    EXPECT_EQ(dist::decide_process_fault(plan, 0, 0, 1).kind,
              dist::fault_kind::crash);
    EXPECT_EQ(dist::decide_process_fault(plan, 3, 0, 1).kind,
              dist::fault_kind::hang);
    EXPECT_EQ(dist::decide_net_fault(plan, 0, 0, 1).kind,
              dist::fault_kind::net_drop);
    EXPECT_EQ(dist::decide_net_fault(plan, 3, 0, 1).kind,
              dist::fault_kind::net_stall_hb);
    // Unrestricted decide_fault still honours plain plan order.
    EXPECT_EQ(dist::decide_fault(plan, 0, 0, 1).kind,
              dist::fault_kind::net_drop);
    // And a family with no matching rule yields none.
    const auto net_only = dist::parse_fault_plan("net-garble:1");
    EXPECT_EQ(dist::decide_process_fault(net_only, 1, 0, 1).kind,
              dist::fault_kind::none);
}

TEST(dist_chaos, empty_plan_is_legal_but_empty_entries_are_not) {
    EXPECT_TRUE(dist::parse_fault_plan("").empty());
    // A stray comma is a typo, and a typo'd chaos plan must never
    // green-run; the error names which entry is blank.
    try {
        (void)dist::parse_fault_plan("crash,,trunc");
        FAIL() << "empty entry must throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_STREQ(e.what(),
                     "fault plan: entry 2: empty rule (stray comma?)");
    }
    try {
        (void)dist::parse_fault_plan("crash,");
        FAIL() << "trailing comma must throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_STREQ(e.what(),
                     "fault plan: entry 2: empty rule (stray comma?)");
    }
}

// Every diagnostic carries the 1-based entry index and the offending
// token, so a CI chaos log points straight at the typo.
TEST(dist_chaos, malformed_plans_throw_naming_entry_and_token) {
    const auto expect_message = [](std::string_view plan,
                                   std::string_view want) {
        try {
            (void)dist::parse_fault_plan(plan);
            FAIL() << "plan \"" << plan << "\" must throw";
        } catch (const std::invalid_argument& e) {
            EXPECT_STREQ(e.what(), std::string{want}.c_str()) << plan;
        }
    };
    expect_message("bogus:1",
                   "fault plan: entry 1: unknown fault \"bogus\" in rule "
                   "\"bogus:1\"");
    expect_message("crash,hang,bogus:1",
                   "fault plan: entry 3: unknown fault \"bogus\" in rule "
                   "\"bogus:1\"");
    expect_message("crash,slow=*",
                   "fault plan: entry 2: slow needs a millisecond count in "
                   "rule \"slow=*\"");
    expect_message("slow=",
                   "fault plan: entry 1: empty coordinate in rule \"slow=\"");
    expect_message("net-delay=x",
                   "fault plan: entry 1: bad coordinate \"x\" in rule "
                   "\"net-delay=x\"");
    expect_message("net-partition=*",
                   "fault plan: entry 1: net-partition needs a millisecond "
                   "count in rule \"net-partition=*\"");
    expect_message("crash:x",
                   "fault plan: entry 1: bad coordinate \"x\" in rule "
                   "\"crash:x\"");
    expect_message("hang,crash:1:2:3:4",
                   "fault plan: entry 2: rule \"crash:1:2:3:4\" has too many "
                   "fields");
    expect_message("crash::1",
                   "fault plan: entry 1: empty coordinate in rule "
                   "\"crash::1\"");
}

}  // namespace
}  // namespace pssp
