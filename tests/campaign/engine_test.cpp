// Campaign engine: scheduling-independent reproducibility and the
// detection-rate ordering the paper's Table I implies.

#include <gtest/gtest.h>

#include <algorithm>

#include "campaign/engine.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 3;
    spec.master_seed = 77;
    spec.query_budget = 2500;
    return spec;
}

const campaign::cell_report& find_cell(const campaign::campaign_report& report,
                                       scheme_kind scheme,
                                       attack::attack_kind attack) {
    const auto it = std::find_if(
        report.cells.begin(), report.cells.end(), [&](const auto& c) {
            return c.scheme == scheme && c.attack == attack;
        });
    EXPECT_NE(it, report.cells.end());
    return *it;
}

TEST(campaign_engine, seeds_depend_only_on_master_seed_and_index) {
    const auto a = campaign::seeds_for_trial(42, 7);
    const auto b = campaign::seeds_for_trial(42, 7);
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.attacker, b.attacker);
    // Streams are split: server != attacker, and neighbors don't collide.
    EXPECT_NE(a.server, a.attacker);
    EXPECT_NE(campaign::seeds_for_trial(42, 8).server, a.server);
    EXPECT_NE(campaign::seeds_for_trial(43, 7).server, a.server);
}

TEST(campaign_engine, report_identical_across_jobs_levels) {
    auto spec = small_spec();
    spec.jobs = 1;
    auto serial = campaign::engine{spec}.run();
    spec.jobs = 4;
    auto parallel = campaign::engine{spec}.run();
    EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(campaign_engine, report_identical_with_and_without_master_pool) {
    // The snapshot-reuse pool is a pure execution-speed knob: trials are a
    // function of their seeds alone, so routing them through recycled
    // masters must not move a single report byte — at any jobs level.
    auto spec = small_spec();
    spec.reuse_masters = true;
    spec.jobs = 4;
    const auto pooled = campaign::engine{spec}.run();
    spec.reuse_masters = false;
    const auto fresh = campaign::engine{spec}.run();
    EXPECT_EQ(pooled.to_json(), fresh.to_json());
    spec.reuse_masters = true;
    spec.jobs = 1;
    const auto pooled_serial = campaign::engine{spec}.run();
    EXPECT_EQ(pooled.to_json(), pooled_serial.to_json());
}

TEST(campaign_engine, pssp_detection_beats_ssp_on_byte_by_byte) {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 5;
    spec.master_seed = 2018;
    spec.query_budget = 4096;
    spec.jobs = 0;  // all cores
    const auto report = campaign::engine{spec}.run();

    const auto& ssp = find_cell(report, scheme_kind::ssp,
                                attack::attack_kind::byte_by_byte);
    const auto& pssp = find_cell(report, scheme_kind::p_ssp,
                                 attack::attack_kind::byte_by_byte);
    // SSP falls to byte-by-byte (shared canary across forks); P-SSP turns
    // every trial into a detected failure.
    EXPECT_GT(pssp.detection_rate, ssp.detection_rate);
    EXPECT_EQ(pssp.hijacks, 0u);
    EXPECT_GT(ssp.hijack_rate, 0.5);
    // The paper's expected cost on SSP: ~8 * 2^7 queries per compromise.
    EXPECT_GT(ssp.queries_to_compromise.count(), 0u);
    EXPECT_LT(ssp.queries_to_compromise.mean(), 2500.0);
}

TEST(campaign_engine, leak_replay_bytes_valid_separates_schemes) {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 4;
    spec.master_seed = 5;
    spec.jobs = 0;
    const auto report = campaign::engine{spec}.run();

    const auto& ssp = find_cell(report, scheme_kind::ssp,
                                attack::attack_kind::leak_replay);
    const auto& pssp = find_cell(report, scheme_kind::p_ssp,
                                 attack::attack_kind::leak_replay);
    // A leaked SSP canary is the process canary: all 8 bytes stay valid.
    EXPECT_DOUBLE_EQ(ssp.leaked_bytes_valid.mean(), 8.0);
    EXPECT_DOUBLE_EQ(ssp.hijack_rate, 1.0);
    // P-SSP re-randomizes per fork: the leak goes stale almost entirely.
    EXPECT_LT(pssp.leaked_bytes_valid.mean(), 2.0);
}

TEST(campaign_engine, reduce_cell_statistics) {
    std::vector<campaign::trial_result> trials;
    for (int i = 0; i < 10; ++i) {
        campaign::trial_result t;
        t.hijacked = i < 3;
        t.detected = i >= 3;
        t.oracle_queries = static_cast<std::uint64_t>(100 + i);
        t.canary_detections = t.detected ? 5 : 0;
        t.other_crashes = 2;
        t.leaked_bytes_valid = static_cast<unsigned>(i % 2);
        trials.push_back(t);
    }
    const auto cell = campaign::reduce_cell(scheme_kind::ssp,
                                            attack::attack_kind::brute_force,
                                            workload::target_kind::nginx, trials);
    EXPECT_EQ(cell.trials, 10u);
    EXPECT_EQ(cell.hijacks, 3u);
    EXPECT_EQ(cell.detections, 7u);
    EXPECT_DOUBLE_EQ(cell.hijack_rate, 0.3);
    EXPECT_DOUBLE_EQ(cell.detection_rate, 0.7);
    EXPECT_EQ(cell.canary_detections, 35u);
    EXPECT_EQ(cell.other_crashes, 20u);
    EXPECT_EQ(cell.queries.count(), 10u);
    EXPECT_DOUBLE_EQ(cell.queries.mean(), 104.5);
    EXPECT_EQ(cell.queries_to_compromise.count(), 3u);
    EXPECT_DOUBLE_EQ(cell.queries_to_compromise.mean(), 101.0);
    // Wilson interval brackets the point estimate and stays in [0,1].
    EXPECT_GT(cell.detection_rate, cell.detection_ci.lo);
    EXPECT_LT(cell.detection_rate, cell.detection_ci.hi);
    EXPECT_GE(cell.detection_ci.lo, 0.0);
    EXPECT_LE(cell.detection_ci.hi, 1.0);
}

TEST(campaign_engine, full_spec_covers_every_campaign_capable_scheme) {
    const auto spec = campaign::full_spec();
    const std::vector<scheme_kind> expected{
        scheme_kind::ssp,  scheme_kind::raf_ssp, scheme_kind::dynaguard,
        scheme_kind::dcr,  scheme_kind::p_ssp,   scheme_kind::p_ssp_owf};
    EXPECT_EQ(spec.schemes, expected);
    // brute_force is deliberately absent: it cannot model DCR (the engine
    // rejects the pairing), and full_spec includes dcr.
    EXPECT_EQ(std::count(spec.attacks.begin(), spec.attacks.end(),
                         attack::attack_kind::brute_force),
              0);
    EXPECT_NO_THROW(campaign::engine{spec});
}

// One smoke campaign per full_spec scheme: every scheme must survive a
// real (tiny) trial run and produce a coherent cell.
class full_spec_scheme_smoke : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(full_spec_scheme_smoke, runs_two_trials) {
    campaign::campaign_spec spec;
    spec.schemes = {GetParam()};
    spec.attacks = {attack::attack_kind::byte_by_byte};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 2;
    spec.master_seed = 2018;
    spec.query_budget = 2500;
    const auto report = campaign::engine{spec}.run();
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_EQ(report.cells[0].scheme, GetParam());
    EXPECT_EQ(report.cells[0].trials, 2u);
    EXPECT_EQ(report.cells[0].queries.count(), 2u);
    // Every trial ends somehow: hijacked, detected, or crashed out.
    EXPECT_GT(report.cells[0].hijacks + report.cells[0].detections +
                  report.cells[0].other_crashes,
              0u);
}

INSTANTIATE_TEST_SUITE_P(
    all_full_spec_schemes, full_spec_scheme_smoke,
    ::testing::ValuesIn(campaign::full_spec().schemes),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
        std::string name = core::to_string(info.param);
        for (auto& c : name)
            if (c == '-') c = '_';
        return name;
    });

TEST(campaign_engine, resolve_jobs_clamps_to_at_least_one) {
    // Regression: jobs == 0 means "one per hardware thread", but
    // hardware_concurrency() may itself return 0 — the resolved count must
    // still be a runnable worker pool.
    EXPECT_GE(campaign::resolve_jobs(0), 1u);
    EXPECT_EQ(campaign::resolve_jobs(1), 1u);
    EXPECT_EQ(campaign::resolve_jobs(7), 7u);
}

TEST(campaign_engine, cell_partial_add_merge_matches_reduce_cell) {
    // reduce_cell == blockwise add()+merge() by construction; pin it so
    // the wire path (which replays exactly this) can't drift.
    std::vector<campaign::trial_result> trials;
    for (int i = 0; i < 150; ++i) {  // spans multiple reduction blocks
        campaign::trial_result t;
        t.hijacked = (i % 3) == 0;
        t.detected = (i % 3) != 0;
        t.oracle_queries = static_cast<std::uint64_t>(10 * i + 1);
        t.leaked_bytes_valid = static_cast<unsigned>(i % 9);
        trials.push_back(t);
    }
    const auto direct = campaign::reduce_cell(
        scheme_kind::ssp, attack::attack_kind::byte_by_byte,
        workload::target_kind::nginx, trials);

    campaign::cell_partial merged;
    for (std::size_t start = 0; start < trials.size();
         start += campaign::reduce_block_trials) {
        campaign::cell_partial block;
        const std::size_t end = std::min<std::size_t>(
            start + campaign::reduce_block_trials, trials.size());
        for (std::size_t i = start; i < end; ++i) block.add(trials[i]);
        merged.merge(block);
    }
    const auto finalized = campaign::finalize_cell(
        campaign::cell_id{workload::target_kind::nginx, scheme_kind::ssp,
                          attack::attack_kind::byte_by_byte},
        merged);
    EXPECT_EQ(finalized.trials, direct.trials);
    EXPECT_EQ(finalized.hijacks, direct.hijacks);
    EXPECT_EQ(finalized.detections, direct.detections);
    // Bit equality on the float statistics — same operations, same order.
    EXPECT_EQ(finalized.queries.mean(), direct.queries.mean());
    EXPECT_EQ(finalized.queries.stddev(), direct.queries.stddev());
    EXPECT_EQ(finalized.detection_ci.lo, direct.detection_ci.lo);
    EXPECT_EQ(finalized.detection_ci.hi, direct.detection_ci.hi);
}

TEST(campaign_engine, ragged_last_blocks_identical_across_jobs_levels) {
    // The reduce_block_trials boundary, pinned rather than incidental:
    // below a block (1), one short (63), exactly one (64), one over (65)
    // and one under two (127). Every size must be jobs-invariant.
    for (const std::uint64_t trials : {1ull, 63ull, 64ull, 65ull, 127ull}) {
        campaign::campaign_spec spec;
        spec.schemes = {scheme_kind::ssp};
        spec.attacks = {attack::attack_kind::leak_replay};
        spec.targets = {workload::target_kind::nginx};
        spec.trials_per_cell = trials;
        spec.master_seed = 31;
        spec.query_budget = 600;
        spec.jobs = 1;
        const auto serial = campaign::engine{spec}.run();
        spec.jobs = 8;
        const auto parallel = campaign::engine{spec}.run();
        EXPECT_EQ(serial.to_json(), parallel.to_json())
            << "trials_per_cell=" << trials;
        ASSERT_EQ(serial.cells.size(), 1u);
        EXPECT_EQ(serial.cells[0].trials, trials);
    }
}

TEST(campaign_spec, degenerate_specs_yield_empty_blocks_and_valid_reports) {
    // trials_per_cell == 0 and empty axes are well-defined at the
    // campaign-type level (the engine separately refuses to run them):
    // empty block lists, and assemble_report produces a valid JSON body.
    for (auto mutate : {+[](campaign::campaign_spec& s) { s.schemes.clear(); },
                        +[](campaign::campaign_spec& s) { s.attacks.clear(); },
                        +[](campaign::campaign_spec& s) { s.targets.clear(); },
                        +[](campaign::campaign_spec& s) {
                            s.trials_per_cell = 0;
                        }}) {
        auto spec = campaign::default_spec();
        mutate(spec);
        const auto blocks = campaign::blocks_for(spec);
        EXPECT_TRUE(blocks.empty());
        const auto report = campaign::assemble_report(
            spec, blocks, std::vector<campaign::cell_partial>{});
        EXPECT_EQ(report.cells.size(), spec.cell_count());
        const auto json = report.to_json();
        EXPECT_NO_THROW((void)util::parse_json(json));
        EXPECT_NE(json.find("\"cells\":["), std::string::npos);
        // And the human rendering stays well-formed too.
        EXPECT_NO_THROW((void)report.to_table());
    }
    // finalize_cell on an empty partial: zero rates, vacuous CIs — no
    // division by zero.
    const auto cell = campaign::finalize_cell(
        campaign::cell_id{workload::target_kind::nginx, scheme_kind::ssp,
                          attack::attack_kind::leak_replay},
        campaign::cell_partial{});
    EXPECT_EQ(cell.trials, 0u);
    EXPECT_DOUBLE_EQ(cell.hijack_rate, 0.0);
    EXPECT_DOUBLE_EQ(cell.detection_ci.lo, 0.0);
    EXPECT_DOUBLE_EQ(cell.detection_ci.hi, 1.0);
}

TEST(campaign_engine, rejects_empty_spec) {
    campaign::campaign_spec spec;
    EXPECT_THROW(campaign::engine{spec}, std::invalid_argument);
}

TEST(campaign_engine, rejects_brute_force_against_dcr) {
    // The brute-force payload model needs DCR's per-victim link offset,
    // which the campaign cannot derive; a silent 0.0 hijack rate would
    // masquerade as genuine prevention.
    auto spec = small_spec();
    spec.schemes.push_back(scheme_kind::dcr);
    spec.attacks.push_back(attack::attack_kind::brute_force);
    EXPECT_THROW(campaign::engine{spec}, std::invalid_argument);
}

}  // namespace
}  // namespace pssp
