// VM semantics: instruction behavior, control flow, traps, syscalls, and
// the accounting the benchmarks depend on.

#include <gtest/gtest.h>

#include "binfmt/image.hpp"
#include <algorithm>
#include <optional>

#include "binfmt/stdlib.hpp"
#include "vm/machine.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::machine;
using vm::reg;
using vm::xreg;

// Builds a one-function ("f") program: emit into `f`, then build().
struct mini_program {
    binfmt::image img;
    binfmt::bin_function& f;
    std::optional<binfmt::linked_binary> binary;
    std::optional<machine> m;

    mini_program() : f{img.add_function("f")} {}

    void build() {
        binary.emplace(img.link(binfmt::link_mode::dynamic_glibc));
        m.emplace(binary->make_program(), vm::memory::layout{}, 1);
    }

    vm::run_result run() {
        if (!m) build();
        m->call_function(binary->symbols.at("f"));
        m->set_fuel(m->steps() + 10'000);
        return m->run();
    }
};

TEST(machine, mov_and_arithmetic) {
    mini_program p;
    auto& code = p.f;
    code.emit({mov_ri(reg::rax, 40), mov_ri(reg::rcx, 2), add_rr(reg::rax, reg::rcx),
               ret()});
    const auto r = p.run();
    ASSERT_EQ(r.status, vm::exec_status::exited);
    EXPECT_EQ(r.exit_code, 42);
}

TEST(machine, xor_sets_zero_flag) {
    mini_program p;
    auto& code = p.f;
    const auto ok = code.new_label();
    code.emit({mov_ri(reg::rax, 7), mov_ri(reg::rcx, 7), xor_rr(reg::rax, reg::rcx),
               je(ok), mov_ri(reg::rax, 1), ret()});
    code.place(ok);
    code.emit({mov_ri(reg::rax, 0), ret()});
    EXPECT_EQ(p.run().exit_code, 0);
}

TEST(machine, stack_push_pop_and_leave) {
    mini_program p;
    auto& code = p.f;
    code.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32),
               mov_ri(reg::rax, 0x1234), mov_mr(mem(reg::rbp, -8), reg::rax),
               mov_ri(reg::rax, 0), mov_rm(reg::rax, mem(reg::rbp, -8)), leave(),
               ret()});
    EXPECT_EQ(p.run().exit_code, 0x1234);
}

TEST(machine, byte_and_dword_memory_ops) {
    mini_program p;
    auto& code = p.f;
    code.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 16),
               mov_ri(reg::rcx, 0x11223344556677abull),
               mov8_mr(mem(reg::rbp, -16), reg::rcx),   // stores 0xab
               movzx8_rm(reg::rax, mem(reg::rbp, -16)), // rax = 0xab
               mov32_mr(mem(reg::rbp, -8), reg::rcx),   // stores 0x556677ab
               mov32_rm(reg::rdx, mem(reg::rbp, -8)),
               add_rr(reg::rax, reg::rdx), leave(), ret()});
    EXPECT_EQ(p.run().exit_code, 0xab + 0x556677abll);
}

TEST(machine, signed_and_unsigned_compares) {
    mini_program p;
    auto& code = p.f;
    const auto l1 = code.new_label();
    const auto l2 = code.new_label();
    // -1 unsigned-above 1, but signed-below: jb not taken, jl taken.
    code.emit({mov_ri(reg::rax, static_cast<std::uint64_t>(-1)),
               mov_ri(reg::rcx, 1), cmp_rr(reg::rax, reg::rcx), jb(l1), jl(l2),
               mov_ri(reg::rax, 3), ret()});
    code.place(l1);
    code.emit({mov_ri(reg::rax, 1), ret()});
    code.place(l2);
    code.emit({mov_ri(reg::rax, 2), ret()});
    EXPECT_EQ(p.run().exit_code, 2);
}

TEST(machine, call_and_ret_across_functions) {
    binfmt::image img;
    auto& callee = img.add_function("callee");
    callee.emit({mov_ri(reg::rax, 99), ret()});
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym("callee")), add_ri(reg::rax, 1), ret()});
    auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.call_function(binary.symbols.at("f"));
    EXPECT_EQ(m.run().exit_code, 100);
}

TEST(machine, overwritten_return_address_is_an_invalid_jump) {
    mini_program p;
    auto& code = p.f;
    // Clobber our own return address (the sentinel) with garbage.
    code.emit({mov_ri(reg::rax, 0x123456), mov_mr(mem(reg::rsp, 0), reg::rax), ret()});
    const auto r = p.run();
    EXPECT_EQ(r.status, vm::exec_status::trapped);
    EXPECT_EQ(r.trap, vm::trap_kind::invalid_jump);
    EXPECT_EQ(r.fault_addr, 0x123456u);
}

TEST(machine, unmapped_access_is_a_segfault) {
    mini_program p;
    auto& code = p.f;
    code.emit({mov_ri(reg::rcx, 0x10), mov_rm(reg::rax, mem(reg::rcx, 0)), ret()});
    const auto r = p.run();
    EXPECT_EQ(r.status, vm::exec_status::trapped);
    EXPECT_EQ(r.trap, vm::trap_kind::segfault);
}

TEST(machine, writes_to_text_fault) {
    mini_program p;
    auto& code = p.f;
    code.emit({mov_ri(reg::rcx, binfmt::default_text_base),
               mov_mr(mem(reg::rcx, 0), reg::rcx), ret()});
    EXPECT_EQ(p.run().trap, vm::trap_kind::segfault);  // W^X
}

TEST(machine, fuel_stops_runaway_loops) {
    mini_program p;
    auto& code = p.f;
    const auto spin = code.new_label();
    code.place(spin);
    code.emit({nop(), jmp(spin)});
    code.emit(ret());
    p.build();
    p.m->call_function(p.binary->symbols.at("f"));
    p.m->set_fuel(1000);
    EXPECT_EQ(p.m->run().status, vm::exec_status::out_of_fuel);
}

TEST(machine, trap_abort_is_stack_smash) {
    mini_program p;
    auto& code = p.f;
    code.emit(trap_abort());
    EXPECT_EQ(p.run().trap, vm::trap_kind::stack_smash);
}

TEST(machine, rdrand_sets_carry_and_register) {
    mini_program p;
    auto& code = p.f;
    code.emit({rdrand(reg::rax), ret()});
    const auto r = p.run();
    ASSERT_EQ(r.status, vm::exec_status::exited);
    EXPECT_TRUE(p.m->flags().cf);
    EXPECT_NE(r.exit_code, 0);  // 64 random bits are never 0 in practice
}

TEST(machine, rdtsc_is_monotonic) {
    mini_program p;
    auto& code = p.f;
    code.emit({rdtsc(), mov_rr(reg::rcx, reg::rax), rdtsc(),
               sub_rr(reg::rax, reg::rcx), ret()});
    const auto r = p.run();
    EXPECT_GT(r.exit_code, 0);  // cycles advanced between reads
}

TEST(machine, xmm_pack_store_compare) {
    mini_program p;
    auto& code = p.f;
    const auto ok = code.new_label();
    code.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32),
               mov_ri(reg::r13, 0x1111), mov_ri(reg::r12, 0x2222),
               movq_xr(xreg::xmm1, reg::r13), punpckhqdq_xr(xreg::xmm1, reg::r12),
               movdqu_mx(mem(reg::rbp, -16), xreg::xmm1),
               cmp128_xm(xreg::xmm1, mem(reg::rbp, -16)), je(ok),
               mov_ri(reg::rax, 1), leave(), ret()});
    code.place(ok);
    code.emit({mov_ri(reg::rax, 0), leave(), ret()});
    EXPECT_EQ(p.run().exit_code, 0);
    EXPECT_EQ(p.m->get_x(xreg::xmm1).lo, 0x1111u);
    EXPECT_EQ(p.m->get_x(xreg::xmm1).hi, 0x2222u);
}

TEST(machine, sys_write_appends_to_output) {
    binfmt::image img;
    img.add_data({"msg", 8, {'h', 'i', '!', 0}});
    auto& f = img.add_function("f");
    auto load_msg = mov_ri(reg::rsi, 0);
    load_msg.sym = img.sym("msg");
    f.emit({mov_ri(reg::rdi, 1), load_msg, mov_ri(reg::rdx, 3),
            syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_write)), ret()});
    auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.mem().write_bytes(binary.data_symbols.at("msg"),
                        std::vector<std::uint8_t>{'h', 'i', '!'});
    m.call_function(binary.symbols.at("f"));
    ASSERT_EQ(m.run().status, vm::exec_status::exited);
    EXPECT_EQ(m.output(), "hi!");
}

TEST(machine, fork_syscall_pauses_for_process_layer) {
    mini_program p;
    auto& code = p.f;
    code.emit({syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_fork)),
               ret()});
    p.build();
    p.m->call_function(p.binary->symbols.at("f"));
    const auto r = p.m->run();
    ASSERT_EQ(r.status, vm::exec_status::syscalled);
    EXPECT_EQ(r.syscall_number,
              static_cast<std::uint32_t>(vm::syscall_no::sys_fork));
    p.m->complete_syscall(1234);  // "parent" resumes with child pid
    EXPECT_EQ(p.m->run().exit_code, 1234);
}

TEST(machine, getpid_returns_assigned_pid) {
    mini_program p;
    auto& code = p.f;
    code.emit({syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_getpid)),
               ret()});
    p.build();
    p.m->set_pid(77);
    EXPECT_EQ(p.run().exit_code, 77);
}

TEST(machine, cycle_accounting_uses_cost_model) {
    mini_program p;
    auto& code = p.f;
    code.emit({rdrand(reg::rax), ret()});
    p.build();
    const auto before = p.m->cycles();
    (void)p.run();
    // rdrand alone costs hundreds of modeled cycles (Table V calibration).
    EXPECT_GE(p.m->cycles() - before, p.m->costs().rdrand);
}

TEST(machine, sys_write_output_is_capped) {
    // A runaway worker hammering sys_write must not balloon host memory:
    // bytes past max_output_bytes are dropped while the syscall still
    // reports full success to the program.
    mini_program p;
    auto& code = p.f;
    const auto loop = code.new_label();
    code.emit(mov_ri(reg::rcx, 40));  // 40 writes x 256 KiB = 10 MiB offered
    code.place(loop);
    code.emit({mov_ri(reg::rsi, vm::default_globals_base),
               mov_ri(reg::rdx, vm::default_globals_size),
               syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_write)),
               sub_ri(reg::rcx, 1), cmp_ri(reg::rcx, 0), jne(loop),
               mov_ri(reg::rax, 0), ret()});
    p.build();
    p.m->set_fuel(p.m->steps() + 10'000);
    p.m->call_function(p.binary->symbols.at("f"));
    const auto r = p.m->run();
    ASSERT_EQ(r.status, vm::exec_status::exited);
    EXPECT_EQ(p.m->output().size(), vm::max_output_bytes);
}

TEST(machine, restore_rewinds_execution_state) {
    mini_program p;
    auto& code = p.f;
    code.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32),
               mov_mr(mem(reg::rbp, -8), reg::rdi), mov_rm(reg::rax, mem(reg::rbp, -8)),
               add_ri(reg::rax, 1), leave(), ret()});
    p.build();
    machine& m = *p.m;
    const machine snap = m;  // snapshot, then start dirty tracking
    m.mem().mark_clean(vm::dirty_channel::restore);

    m.set(reg::rdi, 41);
    m.call_function(p.binary->symbols.at("f"));
    ASSERT_EQ(m.run().exit_code, 42);
    const auto cycles_after_first = m.cycles();

    // Rewind and replay: same input must give the same machine evolution,
    // including the accounting counters.
    m.restore_from(snap);
    EXPECT_EQ(m.cycles(), snap.cycles());
    EXPECT_EQ(m.steps(), snap.steps());
    m.set(reg::rdi, 41);
    m.call_function(p.binary->symbols.at("f"));
    ASSERT_EQ(m.run().exit_code, 42);
    EXPECT_EQ(m.cycles(), cycles_after_first);
}

TEST(machine, sync_replicates_a_diverged_machine) {
    mini_program p;
    auto& code = p.f;
    code.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32),
               mov_mr(mem(reg::rbp, -8), reg::rdi), mov_rm(reg::rax, mem(reg::rbp, -8)),
               leave(), ret()});
    p.build();
    machine& parent = *p.m;
    machine worker = parent;  // the one full copy
    worker.mem().mark_clean(vm::dirty_channel::fork);
    parent.mem().mark_clean(vm::dirty_channel::fork);

    // Worker runs (diverges); parent also moves on a little.
    worker.set(reg::rdi, 7);
    worker.call_function(p.binary->symbols.at("f"));
    ASSERT_EQ(worker.run().exit_code, 7);
    parent.mem().store64(parent.mem().regions().globals_base, 0x77);

    // Re-fork by sync: worker must now equal the parent exactly.
    worker.sync_from(parent);
    EXPECT_EQ(worker.cycles(), parent.cycles());
    EXPECT_EQ(worker.mem().load64(worker.mem().regions().globals_base), 0x77u);
    EXPECT_TRUE(std::equal(worker.mem().stack_bytes().begin(),
                           worker.mem().stack_bytes().end(),
                           parent.mem().stack_bytes().begin()));
    // And it runs like a fresh clone of the parent would.
    worker.set(reg::rdi, 9);
    worker.call_function(p.binary->symbols.at("f"));
    EXPECT_EQ(worker.run().exit_code, 9);
}

TEST(machine, copies_are_independent) {
    mini_program p;
    auto& code = p.f;
    code.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 16),
               mov_ri(reg::rax, 5), mov_mr(mem(reg::rbp, -8), reg::rax),
               mov_rm(reg::rax, mem(reg::rbp, -8)), leave(), ret()});
    p.build();
    machine clone = *p.m;  // fork analog
    EXPECT_EQ(p.run().exit_code, 5);
    // The clone was snapshotted before execution; it runs independently.
    clone.call_function(p.binary->symbols.at("f"));
    EXPECT_EQ(clone.run().exit_code, 5);
}

}  // namespace
}  // namespace pssp
