// Thread-local storage layout used by every canary scheme.
//
// Mirrors Section V-A of the paper:
//   * %fs:0x28            — the TLS canary C (glibc's stack_guard slot);
//   * %fs:0x2a8..0x2b7    — the P-SSP TLS *shadow* canary pair (C0, C1).
// The remaining slots are reserved for the comparator schemes and the
// extensions; they occupy otherwise-unused TCB space:
//   * %fs:0x30            — DynaGuard: top-of-CAB pointer;
//   * %fs:0x38            — DCR: address of the newest stack canary (list head);
//   * %fs:0x40            — P-SSP-GB: top pointer into the global canary buffer;
//   * %fs:0x48/0x50       — P-SSP-OWF: AES key backup (r12/r13 are primary).
#pragma once

#include <cstdint>

#include "vm/machine.hpp"

namespace pssp::core {

inline constexpr std::int32_t tls_canary = 0x28;       // C
inline constexpr std::int32_t tls_shadow_c0 = 0x2a8;   // C0
inline constexpr std::int32_t tls_shadow_c1 = 0x2b0;   // C1
inline constexpr std::int32_t tls_cab_top = 0x30;      // DynaGuard
inline constexpr std::int32_t tls_dcr_head = 0x38;     // DCR
inline constexpr std::int32_t tls_gbuf_top = 0x40;     // P-SSP-GB
inline constexpr std::int32_t tls_owf_key_lo = 0x48;   // P-SSP-OWF
inline constexpr std::int32_t tls_owf_key_hi = 0x50;   // P-SSP-OWF

// Fixed global-region carve-outs (see DESIGN.md §5). Workload data is laid
// out from the bottom of the globals region; these live near the top.
inline constexpr std::uint64_t cab_offset = 0x30000;   // DynaGuard CAB, 8 KiB
inline constexpr std::uint64_t cab_bytes = 0x2000;
inline constexpr std::uint64_t gbuf_offset = 0x32000;  // P-SSP-GB buffer, 8 KiB
inline constexpr std::uint64_t gbuf_bytes = 0x2000;

[[nodiscard]] inline std::uint64_t cab_base(const vm::machine& m) {
    return m.mem().regions().globals_base + cab_offset;
}

[[nodiscard]] inline std::uint64_t gbuf_base(const vm::machine& m) {
    return m.mem().regions().globals_base + gbuf_offset;
}

// Convenience accessors for TLS words.
[[nodiscard]] inline std::uint64_t tls_load(const vm::machine& m, std::int32_t offset) {
    return m.mem().load64(m.fs_base() + static_cast<std::uint64_t>(offset));
}

inline void tls_store(vm::machine& m, std::int32_t offset, std::uint64_t value) {
    m.mem().store64(m.fs_base() + static_cast<std::uint64_t>(offset), value);
}

}  // namespace pssp::core
