// PRNG and entropy-source tests: determinism, uniformity, stream
// independence — the properties canary freshness rests on.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "crypto/entropy.hpp"
#include "crypto/prng.hpp"
#include "crypto/one_way.hpp"
#include "util/stats.hpp"

namespace pssp {
namespace {

using crypto::entropy_source;
using crypto::xoshiro256;

TEST(xoshiro, deterministic_from_seed) {
    xoshiro256 a{123};
    xoshiro256 b{123};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(xoshiro, different_seeds_diverge) {
    xoshiro256 a{1};
    xoshiro256 b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a() == b();
    EXPECT_EQ(same, 0);
}

TEST(xoshiro, below_respects_bound) {
    xoshiro256 rng{7};
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 255ull, 1000000007ull}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(xoshiro, below_is_uniform) {
    xoshiro256 rng{99};
    std::vector<std::size_t> buckets(16, 0);
    for (int i = 0; i < 160000; ++i) ++buckets[rng.below(16)];
    EXPECT_LT(util::chi_square_uniform(buckets), util::chi_square_critical_999(15));
}

TEST(xoshiro, byte_output_is_uniform) {
    xoshiro256 rng{4242};
    std::vector<std::size_t> buckets(256, 0);
    std::vector<std::uint8_t> buf(1 << 16);
    rng.fill(buf);
    for (const auto b : buf) ++buckets[b];
    EXPECT_LT(util::chi_square_uniform(buckets), util::chi_square_critical_999(255));
}

TEST(xoshiro, fill_handles_unaligned_sizes) {
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u}) {
        xoshiro256 rng{5};
        std::vector<std::uint8_t> buf(n, 0xcc);
        rng.fill(buf);
        if (n >= 8) {
            bool any_changed = false;
            for (const auto b : buf) any_changed |= b != 0xcc;
            EXPECT_TRUE(any_changed) << n;
        }
    }
}

TEST(xoshiro, split_streams_are_distinct) {
    xoshiro256 parent{321};
    xoshiro256 child1 = parent.split();
    xoshiro256 child2 = parent.split();
    std::unordered_set<std::uint64_t> seen;
    for (int i = 0; i < 256; ++i) {
        seen.insert(child1());
        seen.insert(child2());
        seen.insert(parent());
    }
    EXPECT_EQ(seen.size(), 3u * 256u);  // no collisions across streams
}

TEST(entropy, rdrand_succeeds_by_default) {
    entropy_source src{11};
    std::uint64_t v = 0;
    for (int i = 0; i < 50; ++i) EXPECT_TRUE(src.rdrand64(v));
    EXPECT_EQ(src.reads(), 50u);
}

TEST(entropy, transient_failures_and_retry) {
    entropy_source src{11};
    src.set_failure_rate(3);  // one in three reads fails
    int failures = 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 3000; ++i) failures += !src.rdrand64(v);
    EXPECT_GT(failures, 700);
    EXPECT_LT(failures, 1300);
    // next64 retries internally and always delivers.
    for (int i = 0; i < 100; ++i) (void)src.next64();
}

TEST(entropy, distinct_seeds_give_distinct_streams) {
    entropy_source a{1};
    entropy_source b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next64() == b.next64();
    EXPECT_EQ(same, 0);
}

// ---- one-way function contract -------------------------------------------------

class owf_test : public ::testing::TestWithParam<crypto::owf_kind> {};

INSTANTIATE_TEST_SUITE_P(instantiations, owf_test,
                         ::testing::Values(crypto::owf_kind::aes128,
                                           crypto::owf_kind::sha1));

TEST_P(owf_test, deterministic) {
    const auto f = crypto::make_owf(GetParam());
    EXPECT_EQ(f->evaluate(1, 2, 3, 4), f->evaluate(1, 2, 3, 4));
    EXPECT_EQ(f->evaluate128(1, 2, 3, 4), f->evaluate128(1, 2, 3, 4));
}

TEST_P(owf_test, binds_to_key) {
    const auto f = crypto::make_owf(GetParam());
    EXPECT_NE(f->evaluate(1, 2, 3, 4), f->evaluate(9, 2, 3, 4));
    EXPECT_NE(f->evaluate(1, 2, 3, 4), f->evaluate(1, 9, 3, 4));
}

TEST_P(owf_test, binds_to_return_address_and_nonce) {
    const auto f = crypto::make_owf(GetParam());
    EXPECT_NE(f->evaluate(1, 2, 3, 4), f->evaluate(1, 2, 9, 4));  // ret
    EXPECT_NE(f->evaluate(1, 2, 3, 4), f->evaluate(1, 2, 3, 9));  // nonce
}

TEST(owf, instantiations_differ) {
    const auto aes = crypto::make_owf(crypto::owf_kind::aes128);
    const auto sha = crypto::make_owf(crypto::owf_kind::sha1);
    EXPECT_NE(aes->evaluate(1, 2, 3, 4), sha->evaluate(1, 2, 3, 4));
    EXPECT_NE(aes->name(), sha->name());
}

}  // namespace
}  // namespace pssp
