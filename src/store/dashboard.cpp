#include "store/dashboard.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "campaign/allocator.hpp"
#include "store/query.hpp"
#include "util/json.hpp"

namespace pssp::store {

namespace {

void append_hex16_string(std::string& out, const char* key,
                         std::uint64_t value, bool comma = true) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    util::append_kv(out, key, std::string{buf}, comma);
}

// Per-cell CI half-width after each adaptive round: the convergence
// series. Round provenance comes straight off the block rows; tallies are
// re-merged cumulatively, so the curve is exact, not sampled.
struct convergence {
    std::vector<std::uint64_t> rounds;
    // One row per charted cell: name + one half-width per round (negative
    // = cell not yet active that round, emitted as JSON null).
    std::vector<std::pair<std::string, std::vector<double>>> series;
    std::uint64_t folded = 0;  // cells beyond the 8-series cap
};

convergence compute_convergence(const store_data& data) {
    convergence out;
    const auto rows = dedup_blocks(data);
    const auto ids = campaign::cells_for(data.meta.spec);

    std::map<std::uint64_t, std::vector<const block_row*>> by_round;
    for (const auto& r : rows)
        if (r.round >= 1) by_round[r.round].push_back(&r);
    if (by_round.size() < 2) return out;  // fixed run or single round: no curve

    std::map<std::uint64_t, campaign::cell_partial> merged;  // canonical order
    std::map<std::uint64_t, std::vector<double>> curves;
    for (const auto& [round, round_rows] : by_round) {
        out.rounds.push_back(round);
        for (const auto* r : round_rows) merged[r->block.cell].merge(r->block.partial);
        for (const auto& [cell, partial] : merged) {
            auto& curve = curves[cell];
            curve.resize(out.rounds.size() - 1, -1.0);  // null before first data
            curve.push_back(campaign::cell_ci_halfwidth(partial));
        }
    }
    for (auto& [cell, curve] : curves) curve.resize(out.rounds.size(), -1.0);

    // Widest final half-width first — the cells still converging lead.
    std::vector<std::uint64_t> order;
    for (const auto& [cell, curve] : curves) order.push_back(cell);
    std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
        const double fa = curves[a].back(), fb = curves[b].back();
        if (fa != fb) return fa > fb;
        return a < b;
    });
    const std::size_t keep = std::min<std::size_t>(order.size(), 8);
    out.folded = order.size() - keep;
    for (std::size_t i = 0; i < keep; ++i)
        out.series.emplace_back(cell_name(ids[order[i]]),
                                std::move(curves[order[i]]));
    return out;
}

std::string payload_json(const store_data& data) {
    const auto cells = aggregate_cells(data, query_filter{});
    const auto curves = compute_convergence(data);

    std::uint64_t trials = 0;
    for (const auto& c : cells) trials += c.report.trials;

    std::string out = "{\"meta\":{";
    append_hex16_string(out, "digest", data.meta.spec_digest);
    util::append_kv_bool(out, "complete", data.complete);
    util::append_kv_bool(out, "adaptive", data.meta.spec.adaptive);
    util::append_kv(out, "target_halfwidth",
                    data.meta.spec.target_ci_halfwidth);
    util::append_kv(out, "trials", trials);
    util::append_kv(out, "cells", static_cast<std::uint64_t>(cells.size()));
    util::append_kv(out, "rounds",
                    static_cast<std::uint64_t>(data.rounds.size()));
    util::append_kv(out, "repaired_segments", data.repaired_segments);
    util::append_kv_bool(out, "dropped_torn_tail", data.dropped_torn_tail,
                         /*comma=*/false);
    out += "},\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        if (i > 0) out += ',';
        out += '{';
        util::append_kv(out, "name", cell_name(c.id));
        util::append_kv(out, "trials", c.report.trials);
        util::append_kv(out, "hijacks", c.report.hijacks);
        util::append_kv(out, "detections", c.report.detections);
        util::append_kv(out, "det_rate", c.report.detection_rate);
        util::append_kv(out, "det_lo", c.report.detection_ci.lo);
        util::append_kv(out, "det_hi", c.report.detection_ci.hi);
        util::append_kv(out, "hij_rate", c.report.hijack_rate);
        util::append_kv(out, "hij_lo", c.report.hijack_ci.lo);
        util::append_kv(out, "hij_hi", c.report.hijack_ci.hi);
        util::append_kv(out, "canary", c.report.canary_detections);
        util::append_kv(out, "crashes", c.report.other_crashes, /*comma=*/false);
        out += '}';
    }
    out += "],\"convergence\":{\"rounds\":[";
    for (std::size_t i = 0; i < curves.rounds.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(curves.rounds[i]);
    }
    out += "],\"series\":[";
    for (std::size_t i = 0; i < curves.series.size(); ++i) {
        if (i > 0) out += ',';
        out += '{';
        util::append_kv(out, "name", curves.series[i].first);
        out += "\"hw\":[";
        const auto& hw = curves.series[i].second;
        for (std::size_t j = 0; j < hw.size(); ++j) {
            if (j > 0) out += ',';
            if (hw[j] < 0.0)
                out += "null";
            else
                util::append_number(out, hw[j]);
        }
        out += "]}";
    }
    out += "],";
    util::append_kv(out, "folded", curves.folded, /*comma=*/false);
    out += "},\"timeline\":[";
    for (std::size_t i = 0; i < data.rounds.size(); ++i) {
        const auto& s = data.rounds[i].summary;
        if (i > 0) out += ',';
        out += '{';
        util::append_kv(out, "round", s.round);
        util::append_kv(out, "blocks", s.blocks);
        util::append_kv(out, "trials", s.trials);
        util::append_kv(out, "cum", s.cumulative_trials);
        util::append_kv(out, "max_hw", s.max_halfwidth);
        util::append_kv(out, "widest", s.widest_cell);
        util::append_kv(out, "wall", s.wall_seconds);
        util::append_kv(out, "shards",
                        static_cast<std::uint64_t>(s.shards.size()));
        util::append_kv(out, "retries", s.retries);
        util::append_kv(out, "requeued", s.requeued_blocks);
        util::append_kv(out, "timeouts", s.timeouts);
        util::append_kv_bool(out, "resumed", s.resumed, /*comma=*/false);
        out += '}';
    }
    out += "]}";
    return out;
}

// The validated reference palette (light/dark categorical slots, ink
// tokens, status colors). Dark mode is its own selected steps behind
// prefers-color-scheme — not an automatic flip of the light values.
constexpr const char* html_head = R"html(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Campaign observatory</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --gridline: #e1e0d9;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --gridline: #2c2c2a;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --surface-2: #383835;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --gridline: #2c2c2a;
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  --series-7: #9085e9; --series-8: #e66767;
}
.viz-root {
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  margin: 0; padding: 24px; min-height: 100vh; box-sizing: border-box;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 10px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 18px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile { border: 1px solid var(--gridline); border-radius: 8px;
        padding: 10px 16px; min-width: 110px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.chip { display: inline-flex; align-items: center; gap: 5px;
        border-radius: 999px; padding: 1px 9px; font-size: 12px;
        border: 1px solid var(--gridline); color: var(--text-secondary); }
.chip .dot { width: 8px; height: 8px; border-radius: 50%; }
table.data { border-collapse: collapse; width: 100%; max-width: 980px; }
table.data th { text-align: left; color: var(--text-secondary);
  font-weight: 500; font-size: 12px; border-bottom: 1px solid var(--gridline);
  padding: 5px 10px 5px 0; }
table.data td { border-bottom: 1px solid var(--gridline);
  padding: 5px 10px 5px 0; font-variant-numeric: tabular-nums; }
table.data td.num { text-align: right; }
table.data th.num { text-align: right; }
.ci { color: var(--text-muted); font-size: 12px; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 8px 0;
          color: var(--text-secondary); font-size: 12px; }
.legend .item { display: inline-flex; gap: 6px; align-items: center; }
.legend .sw { width: 10px; height: 10px; border-radius: 3px; }
#chart-wrap { position: relative; max-width: 980px; }
#tooltip { position: absolute; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--gridline);
  border-radius: 6px; padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,.12); white-space: nowrap; z-index: 2; }
#tooltip .row { display: flex; gap: 6px; align-items: center;
  color: var(--text-secondary); }
#tooltip .row b { color: var(--text-primary); font-weight: 600; }
.note { color: var(--text-muted); font-size: 12px; }
footer { margin-top: 28px; color: var(--text-muted); font-size: 12px; }
</style>
</head>
<body class="viz-root">
<h1>Campaign observatory</h1>
<p class="sub" id="subtitle"></p>
<div class="tiles" id="tiles"></div>
<h2>Detection rate by cell</h2>
<table class="data" id="cells-table"></table>
<h2>Convergence &mdash; CI half-width by round</h2>
<div class="legend" id="legend"></div>
<div id="chart-wrap"><div id="tooltip"></div><div id="chart"></div></div>
<p class="note" id="chart-note"></p>
<h2>Round &amp; recovery timeline</h2>
<table class="data" id="timeline-table"></table>
<footer id="footer"></footer>
<script id="pssp-data" type="application/json">)html";

constexpr const char* html_tail = R"html(</script>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("pssp-data").textContent);
const fmt = (x, d) => x.toFixed(d === undefined ? 4 : d);
const el = (tag, attrs, text) => {
  const e = document.createElement(tag);
  for (const k in attrs || {}) e.setAttribute(k, attrs[k]);
  if (text !== undefined) e.textContent = text;
  return e;
};
const svgEl = (tag, attrs) => {
  const e = document.createElementNS("http://www.w3.org/2000/svg", tag);
  for (const k in attrs || {}) e.setAttribute(k, attrs[k]);
  return e;
};
const seriesColor = i => `var(--series-${(i % 8) + 1})`;

// ---- header ----
{
  const m = DATA.meta;
  document.getElementById("subtitle").textContent =
    `campaign ${m.digest} · ` + (m.adaptive
      ? `adaptive, target half-width ${fmt(m.target_halfwidth, 3)}`
      : "fixed allocation");
  const tiles = document.getElementById("tiles");
  const tile = (v, k) => {
    const t = el("div", { class: "tile" });
    t.appendChild(el("div", { class: "v" }, v));
    t.appendChild(el("div", { class: "k" }, k));
    tiles.appendChild(t);
  };
  tile(DATA.meta.trials.toLocaleString("en-US"), "trials ingested");
  tile(String(DATA.meta.cells), "cells");
  tile(String(DATA.meta.rounds), "rounds recorded");
  const status = el("div", { class: "tile" });
  const chip = el("span", { class: "chip" });
  const dot = el("span", { class: "dot" });
  dot.style.background = m.complete ? "var(--status-good)"
                                    : "var(--status-warning)";
  chip.appendChild(dot);
  chip.appendChild(document.createTextNode(
      m.complete ? "✓ complete" : "○ running"));
  status.appendChild(chip);
  const health = el("div", { class: "k" },
    m.repaired_segments > 0 || m.dropped_torn_tail
      ? `repaired ${m.repaired_segments} segment(s)` +
        (m.dropped_torn_tail ? ", dropped torn tail" : "")
      : "store intact");
  status.appendChild(health);
  tiles.appendChild(status);
}

// ---- detection table ----
{
  const table = document.getElementById("cells-table");
  const head = el("tr");
  [["cell"], ["trials", 1], ["detection rate", 1], ["95% CI", 1],
   ["hijack rate", 1], ["95% CI", 1], ["canary", 1], ["other crashes", 1]]
    .forEach(([h, num]) =>
      head.appendChild(el("th", num ? { class: "num" } : {}, h)));
  table.appendChild(head);
  for (const c of DATA.cells) {
    const tr = el("tr");
    tr.appendChild(el("td", {}, c.name));
    tr.appendChild(el("td", { class: "num" },
                      c.trials.toLocaleString("en-US")));
    tr.appendChild(el("td", { class: "num" }, fmt(c.det_rate)));
    tr.appendChild(el("td", { class: "num ci" },
                      `[${fmt(c.det_lo)}, ${fmt(c.det_hi)}]`));
    tr.appendChild(el("td", { class: "num" }, fmt(c.hij_rate)));
    tr.appendChild(el("td", { class: "num ci" },
                      `[${fmt(c.hij_lo)}, ${fmt(c.hij_hi)}]`));
    tr.appendChild(el("td", { class: "num" }, String(c.canary)));
    tr.appendChild(el("td", { class: "num" }, String(c.crashes)));
    table.appendChild(tr);
  }
}

// ---- convergence chart ----
{
  const conv = DATA.convergence;
  const note = document.getElementById("chart-note");
  if (conv.series.length === 0) {
    note.textContent =
      "No convergence curve: fixed allocation or fewer than two rounds.";
  } else {
    const W = 960, H = 300, L = 56, R = 16, T = 12, B = 30;
    const rounds = conv.rounds;
    let maxHW = DATA.meta.adaptive ? DATA.meta.target_halfwidth : 0;
    for (const s of conv.series)
      for (const v of s.hw) if (v !== null && v > maxHW) maxHW = v;
    if (maxHW <= 0) maxHW = 1;
    maxHW *= 1.08;
    const x = r => L + (W - L - R) *
      (rounds.length === 1 ? 0.5
        : (r - rounds[0]) / (rounds[rounds.length - 1] - rounds[0]));
    const y = v => T + (H - T - B) * (1 - v / maxHW);
    const svg = svgEl("svg",
      { viewBox: `0 0 ${W} ${H}`, width: "100%", role: "img",
        "aria-label": "CI half-width per round, one line per cell" });

    for (let i = 0; i <= 4; i++) {               // recessive y grid
      const v = (maxHW * i) / 4;
      svg.appendChild(svgEl("line", { x1: L, x2: W - R, y1: y(v), y2: y(v),
                                      stroke: "var(--gridline)",
                                      "stroke-width": 1 }));
      const lbl = svgEl("text", { x: L - 8, y: y(v) + 4, "text-anchor": "end",
                                  fill: "var(--text-muted)",
                                  "font-size": 11 });
      lbl.textContent = fmt(v, 3);
      svg.appendChild(lbl);
    }
    const step = Math.max(1, Math.ceil(rounds.length / 12));
    rounds.forEach((r, i) => {                   // x labels
      if (i % step !== 0 && i !== rounds.length - 1) return;
      const lbl = svgEl("text", { x: x(r), y: H - B + 18,
                                  "text-anchor": "middle",
                                  fill: "var(--text-muted)",
                                  "font-size": 11 });
      lbl.textContent = String(r);
      svg.appendChild(lbl);
    });
    const axisName = svgEl("text", { x: L, y: H - 2,
                                     fill: "var(--text-secondary)",
                                     "font-size": 11 });
    axisName.textContent = "round";
    svg.appendChild(axisName);

    if (DATA.meta.adaptive) {                    // target: dashed reference
      const ty = y(DATA.meta.target_halfwidth);
      svg.appendChild(svgEl("line", { x1: L, x2: W - R, y1: ty, y2: ty,
                                      stroke: "var(--text-muted)",
                                      "stroke-width": 1,
                                      "stroke-dasharray": "5 4" }));
      const lbl = svgEl("text", { x: W - R, y: ty - 5, "text-anchor": "end",
                                  fill: "var(--text-muted)",
                                  "font-size": 11 });
      lbl.textContent = `target ${fmt(DATA.meta.target_halfwidth, 3)}`;
      svg.appendChild(lbl);
    }

    conv.series.forEach((s, si) => {
      let d = "";
      s.hw.forEach((v, i) => {
        if (v === null) return;
        d += (d === "" ? "M" : "L") + fmt(x(rounds[i]), 1) + " " +
             fmt(y(v), 1);
      });
      svg.appendChild(svgEl("path", { d, fill: "none",
                                      stroke: seriesColor(si),
                                      "stroke-width": 2,
                                      "stroke-linejoin": "round" }));
      if (conv.series.length <= 4) {             // selective direct labels
        for (let i = s.hw.length - 1; i >= 0; i--) {
          if (s.hw[i] === null) continue;
          const lbl = svgEl("text", { x: x(rounds[i]) - 4,
                                      y: y(s.hw[i]) - 7,
                                      "text-anchor": "end",
                                      fill: "var(--text-secondary)",
                                      "font-size": 11 });
          lbl.textContent = s.name;
          svg.appendChild(lbl);
          break;
        }
      }
    });

    // hover layer: crosshair + tooltip at the nearest round
    const cross = svgEl("line", { y1: T, y2: H - B, stroke: "var(--gridline)",
                                  "stroke-width": 1, visibility: "hidden" });
    svg.appendChild(cross);
    const dots = conv.series.map((s, si) => {
      const c = svgEl("circle", { r: 4, fill: seriesColor(si),
                                  stroke: "var(--surface-1)",
                                  "stroke-width": 2, visibility: "hidden" });
      svg.appendChild(c);
      return c;
    });
    const hit = svgEl("rect", { x: L, y: T, width: W - L - R,
                                height: H - T - B, fill: "transparent" });
    svg.appendChild(hit);
    const tooltip = document.getElementById("tooltip");
    const wrap = document.getElementById("chart-wrap");
    hit.addEventListener("mousemove", ev => {
      const box = svg.getBoundingClientRect();
      const px = (ev.clientX - box.left) * (W / box.width);
      let best = 0, bestD = Infinity;
      rounds.forEach((r, i) => {
        const d = Math.abs(x(r) - px);
        if (d < bestD) { bestD = d; best = i; }
      });
      const r = rounds[best];
      cross.setAttribute("x1", x(r));
      cross.setAttribute("x2", x(r));
      cross.setAttribute("visibility", "visible");
      tooltip.innerHTML = "";
      tooltip.appendChild(el("div", { class: "row" }, `round ${r}`));
      conv.series.forEach((s, si) => {
        const v = s.hw[best];
        if (v === null) { dots[si].setAttribute("visibility", "hidden"); return; }
        dots[si].setAttribute("cx", x(r));
        dots[si].setAttribute("cy", y(v));
        dots[si].setAttribute("visibility", "visible");
        const row = el("div", { class: "row" });
        const sw = el("span", { class: "sw",
                                style: `width:8px;height:8px;border-radius:2px;
                                        background:${seriesColor(si)}` });
        row.appendChild(sw);
        row.appendChild(document.createTextNode(s.name + " "));
        row.appendChild(el("b", {}, fmt(v)));
        tooltip.appendChild(row);
      });
      const wb = wrap.getBoundingClientRect();
      tooltip.style.display = "block";
      tooltip.style.left =
        Math.min(ev.clientX - wb.left + 14, wb.width - 220) + "px";
      tooltip.style.top = (ev.clientY - wb.top + 14) + "px";
    });
    hit.addEventListener("mouseleave", () => {
      cross.setAttribute("visibility", "hidden");
      dots.forEach(d => d.setAttribute("visibility", "hidden"));
      tooltip.style.display = "none";
    });

    document.getElementById("chart").appendChild(svg);
    const legend = document.getElementById("legend");
    conv.series.forEach((s, si) => {
      const item = el("span", { class: "item" });
      const sw = el("span", { class: "sw" });
      sw.style.background = seriesColor(si);
      item.appendChild(sw);
      item.appendChild(document.createTextNode(s.name));
      legend.appendChild(item);
    });
    if (conv.folded > 0)
      note.textContent = `${conv.folded} additional cell(s) below the ` +
        "8-series cap are not charted; every cell appears in the table above.";
  }
}

// ---- timeline ----
{
  const table = document.getElementById("timeline-table");
  const head = el("tr");
  [["round"], ["blocks", 1], ["trials", 1], ["cumulative", 1],
   ["max half-width", 1], ["widest cell"], ["wall s", 1], ["shards", 1],
   ["status"]].forEach(([h, num]) =>
    head.appendChild(el("th", num ? { class: "num" } : {}, h)));
  table.appendChild(head);
  const chip = (color, label) => {
    const c = el("span", { class: "chip" });
    const dot = el("span", { class: "dot" });
    dot.style.background = color;
    c.appendChild(dot);
    c.appendChild(document.createTextNode(label));
    return c;
  };
  for (const r of DATA.timeline) {
    const tr = el("tr");
    tr.appendChild(el("td", {}, r.round === 0 ? "fixed" : String(r.round)));
    tr.appendChild(el("td", { class: "num" }, String(r.blocks)));
    tr.appendChild(el("td", { class: "num" },
                      r.trials.toLocaleString("en-US")));
    tr.appendChild(el("td", { class: "num" },
                      r.cum.toLocaleString("en-US")));
    tr.appendChild(el("td", { class: "num" }, fmt(r.max_hw)));
    tr.appendChild(el("td", {}, r.widest || "—"));
    tr.appendChild(el("td", { class: "num" }, fmt(r.wall, 3)));
    tr.appendChild(el("td", { class: "num" },
                      r.shards > 0 ? String(r.shards) : "—"));
    const status = el("td");
    if (r.resumed)
      status.appendChild(chip("var(--text-muted)", "↻ replayed"));
    if (r.timeouts > 0)
      status.appendChild(chip("var(--status-critical)",
                              `✖ ${r.timeouts} timeout(s)`));
    if (r.retries > 0)
      status.appendChild(chip("var(--status-serious)",
                              `⚠ ${r.retries} retries, ` +
                              `${r.requeued} requeued`));
    if (!r.resumed && r.timeouts === 0 && r.retries === 0)
      status.appendChild(chip("var(--status-good)", "✓ clean"));
    tr.appendChild(status);
    table.appendChild(tr);
  }
  if (DATA.timeline.length === 0) {
    const tr = el("tr");
    tr.appendChild(el("td", { colspan: "9", class: "note" },
                      "No round summaries ingested."));
    table.appendChild(tr);
  }
}

document.getElementById("footer").textContent =
  "Exported by campaign_query --html · every number recomputed from " +
  "the store's integer tallies · self-contained, no external assets.";
</script>
</body>
</html>
)html";

}  // namespace

std::string render_dashboard(const store_data& data) {
    std::string out;
    const std::string payload = payload_json(data);
    out.reserve(payload.size() + 24 * 1024);
    out += html_head;
    out += payload;
    out += html_tail;
    return out;
}

}  // namespace pssp::store
