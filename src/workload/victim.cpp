#include "workload/victim.hpp"

#include <stdexcept>

#include "compiler/codegen.hpp"
#include "workload/webserver.hpp"

namespace pssp::workload {

std::string to_string(target_kind target) {
    switch (target) {
        case target_kind::nginx: return "nginx_m";
        case target_kind::apache: return "apache_m";
        case target_kind::ali: return "ali_m";
    }
    throw std::invalid_argument{"to_string: unknown target_kind"};
}

target_kind target_kind_from_string(const std::string& name) {
    for (const auto target : all_target_kinds())
        if (to_string(target) == name) return target;
    throw std::invalid_argument{"target_kind_from_string: unknown target \"" +
                                name + "\""};
}

const std::vector<target_kind>& all_target_kinds() {
    static const std::vector<target_kind> targets{
        target_kind::nginx,
        target_kind::apache,
        target_kind::ali,
    };
    return targets;
}

namespace {

server_profile profile_for(target_kind target) {
    switch (target) {
        case target_kind::nginx: return nginx_profile();
        case target_kind::apache: return apache_profile();
        case target_kind::ali: return ali_profile();
    }
    throw std::invalid_argument{"profile_for: unknown target_kind"};
}

}  // namespace

victim make_victim(target_kind target, core::scheme_kind scheme,
                   const core::scheme_options& options) {
    const auto profile = profile_for(target);
    auto binary = std::make_shared<const binfmt::linked_binary>(
        compiler::build_module(make_server_module(profile),
                               core::make_scheme(scheme, options)));

    proc::server_batch batch{binary, scheme, options, server_config_for(profile)};
    auto pool = std::make_shared<proc::master_pool>(
        binary, scheme, options, batch.config(), batch.program());

    victim v{
        .binary = binary,
        .batch = std::move(batch),
        .pool = std::move(pool),
        .scheme = scheme,
        .target = target,
        .prefix_bytes = attack_prefix_bytes(profile),
        .canary_bytes = static_cast<unsigned>(
            core::make_scheme(scheme, options)->stack_canary_bytes()),
        .ret_target = binary->symbols.at("win"),
        .saved_rbp = binary->data_base,
    };
    return v;
}

}  // namespace pssp::workload
