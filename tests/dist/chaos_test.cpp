// The deterministic fault-plan grammar: parse, defaults, matching
// precedence, and loud rejection of malformed plans. Pure unit tests —
// the end-to-end injection paths (a worker actually crashing/hanging/
// corrupting on schedule) are exercised by tests/dist/supervisor_test.cpp
// through real fork/exec.

#include <gtest/gtest.h>

#include <stdexcept>

#include "dist/chaos.hpp"

namespace pssp {
namespace {

TEST(dist_chaos, parses_every_fault_kind) {
    const auto plan = dist::parse_fault_plan(
        "crash,crash-late,hang,trunc,corrupt,wrong-block,slow=250");
    ASSERT_EQ(plan.rules.size(), 7u);
    EXPECT_EQ(plan.rules[0].kind, dist::fault_kind::crash);
    EXPECT_EQ(plan.rules[1].kind, dist::fault_kind::crash_late);
    EXPECT_EQ(plan.rules[2].kind, dist::fault_kind::hang);
    EXPECT_EQ(plan.rules[3].kind, dist::fault_kind::trunc);
    EXPECT_EQ(plan.rules[4].kind, dist::fault_kind::corrupt);
    EXPECT_EQ(plan.rules[5].kind, dist::fault_kind::wrong_block);
    EXPECT_EQ(plan.rules[6].kind, dist::fault_kind::slow);
    EXPECT_EQ(plan.rules[6].param, 250u);
}

TEST(dist_chaos, defaults_any_shard_any_round_first_attempt_only) {
    const auto plan = dist::parse_fault_plan("crash");
    ASSERT_EQ(plan.rules.size(), 1u);
    // Any shard, any round — but first attempt only, so the retry heals
    // unless the plan explicitly says otherwise.
    EXPECT_NE(dist::decide_fault(plan, 0, 0, 1).kind, dist::fault_kind::none);
    EXPECT_NE(dist::decide_fault(plan, 7, 42, 1).kind, dist::fault_kind::none);
    EXPECT_EQ(dist::decide_fault(plan, 0, 0, 2).kind, dist::fault_kind::none);
}

TEST(dist_chaos, full_coordinates_match_exactly) {
    const auto plan = dist::parse_fault_plan("corrupt:2:3:1");
    EXPECT_EQ(dist::decide_fault(plan, 2, 3, 1).kind,
              dist::fault_kind::corrupt);
    EXPECT_EQ(dist::decide_fault(plan, 1, 3, 1).kind, dist::fault_kind::none);
    EXPECT_EQ(dist::decide_fault(plan, 2, 2, 1).kind, dist::fault_kind::none);
    EXPECT_EQ(dist::decide_fault(plan, 2, 3, 2).kind, dist::fault_kind::none);
}

TEST(dist_chaos, wildcard_attempt_matches_every_attempt) {
    const auto plan = dist::parse_fault_plan("crash:1:*:*");
    for (std::uint64_t attempt = 1; attempt <= 5; ++attempt)
        EXPECT_EQ(dist::decide_fault(plan, 1, 9, attempt).kind,
                  dist::fault_kind::crash);
    EXPECT_EQ(dist::decide_fault(plan, 0, 9, 1).kind, dist::fault_kind::none);
}

TEST(dist_chaos, first_matching_rule_wins) {
    const auto plan = dist::parse_fault_plan("hang:0,crash:*");
    EXPECT_EQ(dist::decide_fault(plan, 0, 0, 1).kind, dist::fault_kind::hang);
    EXPECT_EQ(dist::decide_fault(plan, 1, 0, 1).kind, dist::fault_kind::crash);
}

TEST(dist_chaos, empty_plan_and_empty_rules_are_legal) {
    EXPECT_TRUE(dist::parse_fault_plan("").empty());
    // Stray commas are tolerated; empty rules between them are skipped.
    EXPECT_EQ(dist::parse_fault_plan("crash,,trunc,").rules.size(), 2u);
}

TEST(dist_chaos, malformed_plans_throw_naming_the_token) {
    // A typo'd chaos run must never silently pass as a clean one.
    try {
        (void)dist::parse_fault_plan("bogus:1");
        FAIL() << "unknown fault must throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("bogus"), std::string::npos);
    }
    EXPECT_THROW((void)dist::parse_fault_plan("slow=*"), std::invalid_argument);
    EXPECT_THROW((void)dist::parse_fault_plan("slow="), std::invalid_argument);
    EXPECT_THROW((void)dist::parse_fault_plan("crash:x"), std::invalid_argument);
    EXPECT_THROW((void)dist::parse_fault_plan("crash:1:2:3:4"),
                 std::invalid_argument);
    EXPECT_THROW((void)dist::parse_fault_plan("crash::1"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace pssp
