// Canary-tracking comparators: DynaGuard and DCR.
//
// Both follow the "update the TLS canary, then fix up every stale stack
// canary" approach the paper contrasts P-SSP against. Their cost is the
// bookkeeping needed to *find* those canaries:
//   * DynaGuard keeps a canary-address buffer (CAB): the prologue appends
//     the canary's address, the epilogue pops it, and the fork wrapper
//     walks the CAB rewriting every live canary to the renewed C.
//   * DCR embeds, in each stack canary word, the offset from itself to the
//     previous canary — an in-stack linked list threaded through the
//     frames, with the head pointer in TLS. Verification uses the
//     non-offset half of the word; the fork wrapper walks the list.
// DCR exists only as a static binary rewrite in the original work, so its
// prologue/epilogue carry a sim_delay modeling the Dyninst trampoline +
// register spill/restore around each relocated sequence (calibrated in
// scheme_options::dcr_trampoline_cycles; see DESIGN.md §5).

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/schemes/schemes_internal.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core::detail {

using namespace vm::isa;
using vm::reg;

namespace {

class dynaguard_scheme final : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::dynaguard; }
    std::string name() const override { return "DynaGuard (canary address buffer)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({// SSP part: install the TLS canary.
                mov_rm(reg::rax, fs(tls_canary)), mov_mr(mem(reg::rbp, slot), reg::rax),
                // CAB part: push the canary's address.
                mov_rm(reg::rcx, fs(tls_cab_top)), lea(reg::rdx, mem(reg::rbp, slot)),
                mov_mr(mem(reg::rcx, 0), reg::rdx), add_ri(reg::rcx, 8),
                mov_mr(fs(tls_cab_top), reg::rcx)});
    }

    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({// Pop the CAB entry for this frame.
                mov_rm(reg::rcx, fs(tls_cab_top)), sub_ri(reg::rcx, 8),
                mov_mr(fs(tls_cab_top), reg::rcx),
                // SSP check.
                mov_rm(reg::rdx, mem(reg::rbp, slot)), xor_rm(reg::rdx, fs(tls_canary))});
        emit_check_tail(f, img);
    }

    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        tls_store(m, tls_canary, fresh_tls_canary(rng));
        tls_store(m, tls_cab_top, cab_base(m));
    }

    // Fork wrapper: renew C in the child AND rewrite every recorded stack
    // canary so inherited frames stay consistent — DynaGuard's fix for the
    // RAF-SSP correctness bug.
    void runtime_on_fork_child(vm::machine& child, crypto::xoshiro256& rng) const override {
        const std::uint64_t renewed = fresh_tls_canary(rng);
        const std::uint64_t base = cab_base(child);
        const std::uint64_t top = tls_load(child, tls_cab_top);
        for (std::uint64_t entry = base; entry < top; entry += 8) {
            const std::uint64_t canary_addr = child.mem().load64(entry);
            child.mem().store64(canary_addr, renewed);
            child.charge(6);  // modeled cost of the rewrite loop iteration
        }
        tls_store(child, tls_canary, renewed);
    }

    bool updates_tls_on_fork() const noexcept override { return true; }
};

// DCR canary word: high 32 bits taken from the TLS canary (the checkable
// half), low 32 bits = byte offset from this canary slot to the previous
// one up the stack (the list link).
class dcr_scheme final : public scheme {
  public:
    explicit dcr_scheme(const scheme_options& options)
        : trampoline_cycles_{options.dcr_trampoline_cycles} {}

    scheme_kind kind() const noexcept override { return scheme_kind::dcr; }
    std::string name() const override { return "DCR (in-stack canary list)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({sim_delay(trampoline_cycles_),
                // rax = high half of C, in place.
                mov_rm(reg::rax, fs(tls_canary)), shr_ri(reg::rax, 32),
                shl_ri(reg::rax, 32),
                // rdx = offset from this canary to the previous one.
                mov_rm(reg::rdx, fs(tls_dcr_head)), lea(reg::rcx, mem(reg::rbp, slot)),
                sub_rr(reg::rdx, reg::rcx), shl_ri(reg::rdx, 32), shr_ri(reg::rdx, 32),
                // Compose and install; this frame becomes the list head.
                or_rr(reg::rax, reg::rdx), mov_mr(mem(reg::rbp, slot), reg::rax),
                mov_mr(fs(tls_dcr_head), reg::rcx)});
    }

    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({sim_delay(trampoline_cycles_),
                mov_rm(reg::rdx, mem(reg::rbp, slot)),
                // Unlink: head = &this_canary + embedded offset.
                lea(reg::rsi, mem(reg::rbp, slot)), mov_rr(reg::rdi, reg::rdx),
                shl_ri(reg::rdi, 32), shr_ri(reg::rdi, 32), add_rr(reg::rsi, reg::rdi),
                mov_mr(fs(tls_dcr_head), reg::rsi),
                // Check the high halves.
                shr_ri(reg::rdx, 32), mov_rm(reg::rcx, fs(tls_canary)),
                shr_ri(reg::rcx, 32), xor_rr(reg::rdx, reg::rcx)});
        emit_check_tail(f, img);
    }

    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        tls_store(m, tls_canary, fresh_tls_canary(rng));
        // Empty-list sentinel: the stack top (no canary can live there).
        tls_store(m, tls_dcr_head, m.mem().regions().stack_top);
    }

    void runtime_on_fork_child(vm::machine& child, crypto::xoshiro256& rng) const override {
        const std::uint64_t renewed = fresh_tls_canary(rng);
        const std::uint64_t renewed_high = renewed & 0xffffffff00000000ull;
        const std::uint64_t sentinel = child.mem().regions().stack_top;
        std::uint64_t head = tls_load(child, tls_dcr_head);
        while (head != sentinel) {
            const std::uint64_t word = child.mem().load64(head);
            child.mem().store64(head, renewed_high | (word & 0xffffffffull));
            head += word & 0xffffffffull;
            child.charge(8);  // modeled cost of the list walk
        }
        tls_store(child, tls_canary, renewed);
    }

    bool updates_tls_on_fork() const noexcept override { return true; }

  private:
    std::uint32_t trampoline_cycles_;
};

}  // namespace

std::unique_ptr<scheme> make_dynaguard() { return std::make_unique<dynaguard_scheme>(); }

std::unique_ptr<scheme> make_dcr(const scheme_options& options) {
    return std::make_unique<dcr_scheme>(options);
}

}  // namespace pssp::core::detail
