// Database-server workloads (the MySQL/SQLite analogs of Table IV).
//
// A query-processing loop: each query is parsed into a protected stack
// buffer (bounded copy — the DB code is not the vulnerable party here),
// "executed" against an in-memory table via lookup/aggregation loops, and
// answered. The per-query canary work is amortized over a transaction
// thousands of cycles long — which is why Table IV reports effectively
// zero overhead and why we report per-query cycle cost plus resident
// memory for the same three build flavors.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/ir.hpp"

namespace pssp::workload {

struct db_profile {
    std::string name;
    std::uint64_t queries;       // queries per benchmark run
    std::uint64_t parse_iters;   // per-query parse work
    std::uint64_t lookup_iters;  // per-query index-walk work
    std::uint32_t query_buffer = 128;
};

// sysbench-oltp-ish point queries: short and index-bound.
[[nodiscard]] db_profile mysql_profile();
// threadtest3-ish batch: fewer, much heavier statements.
[[nodiscard]] db_profile sqlite_profile();

// Entry point: "db_main". Returns total of all query results (checksum).
[[nodiscard]] compiler::ir_module make_db_module(const db_profile& profile);

}  // namespace pssp::workload
