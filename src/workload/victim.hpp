// Victim factory: one attackable server build, packaged for campaigns.
//
// A campaign trial needs more than a module — it needs the compiled binary,
// the fork-server config whose symbols match it, and the attacker's public
// knowledge (buffer-to-canary distance, canary width, the win gadget's
// address, a plausible saved rbp). make_victim() derives all of that from a
// (target, scheme) pair once; the result is immutable and shared across
// every trial of that campaign cell, each of which boots its own server
// from the embedded batch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "binfmt/image.hpp"
#include "core/scheme.hpp"
#include "proc/fork_server.hpp"
#include "proc/master_pool.hpp"

namespace pssp::workload {

// The forking-server targets of the paper's Section VI-C attack runs.
enum class target_kind : std::uint8_t {
    nginx,   // lean event-loop-style handler
    apache,  // heavier per-request processing
    ali,     // small RPC-ish service, tighter buffer
};

[[nodiscard]] std::string to_string(target_kind target);

// Inverse of to_string; throws std::invalid_argument on an unknown name.
[[nodiscard]] target_kind target_kind_from_string(const std::string& name);
[[nodiscard]] const std::vector<target_kind>& all_target_kinds();

struct victim {
    std::shared_ptr<const binfmt::linked_binary> binary;
    proc::server_batch batch;             // stamps out per-trial servers
    // Boot-amortizing pool over the same build; shared (victims are copied
    // into campaign cells) and thread-safe. lease_server() and
    // make_server() produce byte-identical oracles for equal seeds.
    std::shared_ptr<proc::master_pool> pool;
    core::scheme_kind scheme;
    target_kind target;
    std::uint64_t prefix_bytes = 0;       // buffer start -> canary distance
    unsigned canary_bytes = 8;            // scheme's stack canary area width
    std::uint64_t ret_target = 0;         // address of the win gadget
    std::uint64_t saved_rbp = 0;          // plausible frame-pointer value

    // Boots one fresh oracle for a trial; `seed` is the trial's server
    // stream (it determines the master's TLS canary C).
    [[nodiscard]] proc::fork_server make_server(std::uint64_t seed) const {
        return batch.make(seed);
    }

    // Pool-backed equivalent: reuses a parked master when one is idle.
    [[nodiscard]] proc::master_pool::lease lease_server(std::uint64_t seed) const {
        return pool->acquire(seed);
    }
};

// Compiles the target's module under `scheme` and derives the attack
// surface constants. Expensive (full compile + link): call once per
// campaign cell, share the result across trials.
[[nodiscard]] victim make_victim(target_kind target, core::scheme_kind scheme,
                                 const core::scheme_options& options = {});

}  // namespace pssp::workload
