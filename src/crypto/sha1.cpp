#include "crypto/sha1.hpp"

#include "util/bytes.hpp"

namespace pssp::crypto {

namespace {

[[nodiscard]] constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
    return (x << k) | (x >> (32 - k));
}

}  // namespace

void sha1::reset() noexcept {
    h_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
    block_len_ = 0;
    total_bits_ = 0;
}

void sha1::update(std::span<const std::uint8_t> data) noexcept {
    total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
    for (std::uint8_t byte : data) {
        block_[block_len_++] = byte;
        if (block_len_ == block_.size()) {
            process_block(std::span<const std::uint8_t, 64>{block_});
            block_len_ = 0;
        }
    }
}

std::array<std::uint8_t, sha1_digest_size> sha1::finish() noexcept {
    // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
    const std::uint64_t bits = total_bits_;
    std::uint8_t pad = 0x80;
    update(std::span{&pad, 1});
    total_bits_ -= 8;  // padding is not message content
    std::uint8_t zero = 0;
    while (block_len_ != 56) {
        update(std::span{&zero, 1});
        total_bits_ -= 8;
    }
    std::array<std::uint8_t, 8> len_bytes{};
    for (int i = 0; i < 8; ++i)
        len_bytes[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    update(len_bytes);

    std::array<std::uint8_t, sha1_digest_size> out{};
    for (int i = 0; i < 5; ++i)
        for (int b = 0; b < 4; ++b)
            out[4 * i + b] = static_cast<std::uint8_t>(h_[i] >> (24 - 8 * b));
    return out;
}

std::array<std::uint8_t, sha1_digest_size> sha1::digest(
    std::span<const std::uint8_t> data) noexcept {
    sha1 ctx;
    ctx.update(data);
    return ctx.finish();
}

std::uint64_t sha1::digest64(std::span<const std::uint8_t> data) noexcept {
    const auto d = digest(data);
    return util::load_le64(std::span{d}.subspan(0, 8));
}

void sha1::process_block(std::span<const std::uint8_t, 64> block) noexcept {
    std::array<std::uint32_t, 80> w{};
    for (int t = 0; t < 16; ++t)
        w[t] = (std::uint32_t{block[4 * t]} << 24) | (std::uint32_t{block[4 * t + 1]} << 16) |
               (std::uint32_t{block[4 * t + 2]} << 8) | std::uint32_t{block[4 * t + 3]};
    for (int t = 16; t < 80; ++t)
        w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int t = 0; t < 80; ++t) {
        std::uint32_t f = 0;
        std::uint32_t k = 0;
        if (t < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999u;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

}  // namespace pssp::crypto
