// Quickstart: protect a vulnerable function with P-SSP and watch it catch
// an overflow.
//
//   $ ./quickstart
//
// Walks through the library's core loop:
//   1. describe a function in the mini-IR (a 64-byte buffer + unbounded
//      strcpy — the classic bug);
//   2. compile it twice, natively and under P-SSP;
//   3. run a benign and a malicious input through both and compare.

#include <cstdio>
#include <string>

#include "compiler/codegen.hpp"
#include "core/scheme.hpp"
#include "proc/process.hpp"

using namespace pssp;

namespace {

// uint64_t greet(void) { char buf[64]; strcpy(buf, g_input); return 1; }
compiler::ir_module make_module() {
    compiler::ir_module mod;
    mod.name = "quickstart";
    mod.add_global("g_input", 1024);

    auto& fn = mod.add_function("greet");
    const int buf = compiler::add_local(fn, "buf", 64, /*is_buffer=*/true);
    fn.body.push_back(compiler::call_stmt{
        "strcpy", {compiler::addr_of{buf}, compiler::global_addr{"g_input"}},
        std::nullopt, /*writes_memory=*/true});
    fn.body.push_back(compiler::return_stmt{compiler::const_ref{1}});
    return mod;
}

void run_once(core::scheme_kind kind, const std::string& input) {
    // Compile + link (the scheme is the "compiler pass")...
    const auto binary = compiler::build_module(make_module(), core::make_scheme(kind));
    // ...load a process (the runtime initializes the TLS canary)...
    proc::process_manager manager{core::make_scheme(kind), /*seed=*/2024};
    vm::machine m = manager.create_process(binary);
    // ...deliver input and call the function.
    std::string bytes = input;
    bytes.push_back('\0');
    m.mem().write_bytes(binary.data_symbols.at("g_input"),
                        {reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size()});
    m.call_function(binary.symbols.at("greet"));
    m.set_fuel(100'000);
    const vm::run_result r = m.run();

    std::printf("  %-28s input=%3zu bytes  ->  %s%s\n",
                core::to_string(kind).c_str(), input.size(),
                vm::to_string(r.status).c_str(),
                r.status == vm::exec_status::trapped
                    ? (" (" + vm::to_string(r.trap) + ")").c_str()
                    : "");
}

}  // namespace

int main() {
    std::printf("P-SSP quickstart — compile, run, overflow, detect\n\n");

    const std::string benign(30, 'h');
    const std::string evil(120, 'A');

    std::printf("benign 30-byte input:\n");
    run_once(core::scheme_kind::none, benign);
    run_once(core::scheme_kind::ssp, benign);
    run_once(core::scheme_kind::p_ssp, benign);

    std::printf("\nmalicious 120-byte input (overflows the 64-byte buffer):\n");
    run_once(core::scheme_kind::none, evil);   // corrupts silently / crashes late
    run_once(core::scheme_kind::ssp, evil);    // caught: stack smashing detected
    run_once(core::scheme_kind::p_ssp, evil);  // caught, and leak-resilient

    std::printf("\nThe P-SSP build stores a polymorphic pair (C0, C1) with\n"
                "C0 xor C1 == TLS canary; see examples/forking_server_attack for\n"
                "why that defeats the byte-by-byte attack that breaks plain SSP.\n");
    return 0;
}
