#include "analysis/mutate.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "binfmt/stdlib.hpp"
#include "vm/isa.hpp"

namespace pssp::analysis {

using vm::opcode;
using namespace vm::isa;

namespace {

[[nodiscard]] std::set<std::uint64_t> abort_addresses(
    const binfmt::linked_binary& binary) {
    std::set<std::uint64_t> addrs;
    for (const char* sym : {binfmt::sym_stack_chk_fail, binfmt::sym_fortify_fail,
                            "__pssp_stack_chk_fail"}) {
        const auto it = binary.symbols.find(sym);
        if (it != binary.symbols.end()) addrs.insert(it->second);
    }
    return addrs;
}

// Profile drift between the clean and mutated proof of one function: the
// catch criterion for mutants that stay protocol-consistent but no longer
// implement the *same* protocol (e.g. an install retargeted onto the
// neighboring slot of a pair).
[[nodiscard]] std::string drift(const function_proof& clean,
                                const function_proof& mutated) {
    if (clean.is_protected != mutated.is_protected)
        return "protection profile drifted: function no longer proves as protected";
    if (clean.slots != mutated.slots)
        return "protection profile drifted: canary slot set changed";
    if (clean.sources != mutated.sources)
        return "protection profile drifted: canary source mask changed (" +
               source_names(clean.sources) + " -> " + source_names(mutated.sources) +
               ")";
    if (mutated.checks.size() < clean.checks.size())
        return "protection profile drifted: a canary check disappeared";
    if (mutated.installs.size() < clean.installs.size())
        return "protection profile drifted: a canary install disappeared";
    return {};
}

}  // namespace

std::string to_string(mutation_kind kind) {
    switch (kind) {
        case mutation_kind::drop_install: return "drop_install";
        case mutation_kind::drop_check_compare: return "drop_check_compare";
        case mutation_kind::bypass_guard: return "bypass_guard";
        case mutation_kind::drop_abort_arm: return "drop_abort_arm";
        case mutation_kind::clobber_slot: return "clobber_slot";
        case mutation_kind::retarget_install: return "retarget_install";
    }
    return "?";
}

std::vector<mutation_site> enumerate_mutation_sites(
    const binfmt::linked_binary& binary, const proof_result& clean_proof) {
    const auto prog = binary.make_program();
    const auto aborts = abort_addresses(binary);

    std::vector<mutation_site> sites;
    std::set<std::tuple<mutation_kind, std::string, std::uint32_t>> seen;
    const auto add = [&](mutation_kind kind, const std::string& fn,
                         std::uint32_t rel, std::int32_t slot) {
        if (seen.emplace(kind, fn, rel).second)
            sites.push_back({kind, fn, rel, slot});
    };

    for (const auto& f : clean_proof.functions) {
        if (!f.analyzed || !f.is_protected) continue;
        std::uint32_t last_install_rel = 0;
        for (const auto& inst : f.installs) {
            const auto rel = inst.op_index - f.first_index;
            add(mutation_kind::drop_install, f.name, rel, inst.slot);
            add(mutation_kind::retarget_install, f.name, rel, inst.slot);
            last_install_rel = std::max(last_install_rel, rel);
        }
        if (!f.installs.empty() && last_install_rel + 1 < f.insn_count)
            add(mutation_kind::clobber_slot, f.name, last_install_rel + 1,
                f.slots.front().offset);
        for (const auto& check : f.checks) {
            const auto guard_rel = check.guard_index - f.first_index;
            add(mutation_kind::bypass_guard, f.name, guard_rel, 0);
            if (check.compare_index != vm::no_id &&
                check.compare_index >= f.first_index)
                add(mutation_kind::drop_check_compare, f.name,
                    check.compare_index - f.first_index, 0);
            // The abort arm our instrumentation shapes use is always the
            // guard's fall-through (je past the failure call / trap).
            const auto arm = check.guard_index + 1;
            if (arm < prog->insns.size()) {
                const auto& insn = prog->insns[arm];
                const bool is_abort =
                    insn.op == opcode::trap_abort ||
                    (insn.op == opcode::call && aborts.contains(insn.imm));
                if (is_abort && arm - f.first_index < f.insn_count)
                    add(mutation_kind::drop_abort_arm, f.name, arm - f.first_index, 0);
            }
        }
    }
    return sites;
}

binfmt::linked_binary apply_mutation(const binfmt::linked_binary& binary,
                                     const mutation_site& site) {
    binfmt::linked_binary mutated = binary;
    auto* fn = mutated.find(site.function);
    if (fn == nullptr || site.insn_index >= fn->insns.size())
        throw std::out_of_range{"apply_mutation: bad site " + site.function + "@" +
                                std::to_string(site.insn_index)};
    auto& insn = fn->insns[site.insn_index];
    switch (site.kind) {
        case mutation_kind::drop_install:
        case mutation_kind::drop_check_compare:
        case mutation_kind::drop_abort_arm:
            insn = nop();
            break;
        case mutation_kind::bypass_guard: {
            // Same resolved target, condition gone. The stored address maps
            // stay untouched (no relayout), so the target remains valid.
            auto j = jmp(0);
            j.label = vm::no_id;
            j.imm = insn.imm;
            insn = j;
            break;
        }
        case mutation_kind::clobber_slot:
            insn = mov_mi(mem(vm::reg::rbp, site.slot), 0x41);
            break;
        case mutation_kind::retarget_install:
            insn.mem.disp -= 8;
            break;
    }
    return mutated;
}

bool mutation_report::all_caught() const noexcept {
    return std::all_of(outcomes.begin(), outcomes.end(),
                       [](const mutation_outcome& o) { return o.caught; });
}

int mutation_report::missed() const noexcept {
    return static_cast<int>(std::count_if(
        outcomes.begin(), outcomes.end(),
        [](const mutation_outcome& o) { return !o.caught; }));
}

mutation_report run_mutation_self_test(const binfmt::linked_binary& binary) {
    mutation_report report;
    const auto clean = prove_canary_protocol(binary);
    report.clean_violations = static_cast<int>(clean.all_violations().size());

    for (const auto& site : enumerate_mutation_sites(binary, clean)) {
        const auto mutated_binary = apply_mutation(binary, site);
        const auto mutated = prove_canary_protocol(mutated_binary);

        mutation_outcome outcome;
        outcome.site = site;
        const auto* clean_fn = clean.find(site.function);
        const auto* mutated_fn = mutated.find(site.function);
        if (clean_fn == nullptr || mutated_fn == nullptr) {
            outcome.how = "function vanished from proof";
        } else if (!mutated_fn->violations.empty()) {
            outcome.caught = true;
            outcome.how = mutated_fn->violations.front().message;
        } else if (auto d = drift(*clean_fn, *mutated_fn); !d.empty()) {
            outcome.caught = true;
            outcome.how = std::move(d);
        } else {
            outcome.how = "mutant proved clean with an unchanged profile";
        }
        report.outcomes.push_back(std::move(outcome));
    }
    return report;
}

}  // namespace pssp::analysis
