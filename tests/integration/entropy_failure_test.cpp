// Failure injection: transient rdrand failures (CF=0 on real silicon when
// the DRNG underflows) must never weaken or break the rdrand-based
// schemes — the emitted prologues carry retry loops.

#include <gtest/gtest.h>

#include "core/tls_layout.hpp"
#include "test_helpers.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

class entropy_failure_test : public ::testing::TestWithParam<scheme_kind> {};

INSTANTIATE_TEST_SUITE_P(rdrand_schemes, entropy_failure_test,
                         ::testing::Values(scheme_kind::p_ssp_nt,
                                           scheme_kind::p_ssp_lv,
                                           scheme_kind::p_ssp_gb),
                         [](const ::testing::TestParamInfo<scheme_kind>& info) {
                             std::string name = core::to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST_P(entropy_failure_test, prologue_retries_until_entropy_arrives) {
    testing::built_program bp{testing::vulnerable_module(), GetParam()};
    // One in three rdrand reads fails — far worse than real hardware.
    bp.proc0.entropy().set_failure_rate(3);
    for (int i = 0; i < 50; ++i) {
        const auto r = bp.run_with_request("benign request");
        ASSERT_EQ(r.status, vm::exec_status::exited)
            << core::to_string(GetParam()) << " iteration " << i << ": "
            << vm::to_string(r.trap);
    }
}

TEST_P(entropy_failure_test, detection_still_works_under_entropy_pressure) {
    testing::built_program bp{testing::vulnerable_module(64), GetParam()};
    bp.proc0.entropy().set_failure_rate(3);
    const auto r = bp.run_with_request(testing::filler(64 + 16));
    ASSERT_EQ(r.status, vm::exec_status::trapped);
    EXPECT_EQ(r.trap, vm::trap_kind::stack_smash);
}

TEST(entropy_failure, canaries_stay_fresh_across_retries) {
    // Even with failures interleaved, successive calls must produce
    // *distinct* stack canaries (no stale-register reuse) — inspect the
    // C0 slot of the global buffer under P-SSP-GB, which records one entry
    // per successful prologue.
    testing::built_program bp{testing::vulnerable_module(), scheme_kind::p_ssp_gb};
    bp.proc0.entropy().set_failure_rate(2);
    std::vector<std::uint64_t> observed;
    for (int i = 0; i < 16; ++i) {
        ASSERT_EQ(bp.run_with_request("x").status, vm::exec_status::exited);
        // After return the top pointer is back at base; the C1 of the last
        // call is still in the buffer's first slot.
        observed.push_back(bp.proc0.mem().load64(core::gbuf_base(bp.proc0)));
    }
    std::sort(observed.begin(), observed.end());
    EXPECT_EQ(std::unique(observed.begin(), observed.end()), observed.end())
        << "stale canary material reused across calls";
}

}  // namespace
}  // namespace pssp
