// Monte-Carlo attack-campaign curves — Table I's outcome column, measured.
//
// The paper states each scheme/attack outcome once ("prevented" /
// "compromised"); this bench reruns every pairing as a seeded campaign of
// independent trials — fresh server (fresh TLS canary C) per trial — and
// reports the outcome *distribution*: hijack and detection rates with
// Wilson 95% intervals, mean oracle queries to compromise, and the
// residual value of leaked canary bytes at replay time.
//
// Reproducibility contract: the report JSON is a pure function of
// (--seed, --trials, --budget); --jobs only changes wall-clock. Verify:
//   bench_campaign_curves --jobs 1 --json a.json
//   bench_campaign_curves --jobs 8 --json b.json
//   cmp a.json b.json

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "campaign/engine.hpp"
#include "dist/orchestrator.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "vm/dispatch.hpp"

namespace {

using namespace pssp;

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--trials N] [--jobs N] [--shards N] [--seed S]\n"
                 "          [--dispatch threaded|switch]\n"
                 "          [--budget Q] [--json PATH|-] [--bench-json PATH|-]\n"
                 "          [--adaptive] [--target H] [--round-blocks N]\n"
                 "          [--min-trials N] [--adaptive-bench PATH|-]\n"
                 "          [--min-savings PCT]\n"
                 "          [--fresh-masters] [--worker PATH] [--progress]\n"
                 "  --trials N   trials per campaign cell (default 112: 9 cells\n"
                 "               x 112 = 1008 total trials)\n"
                 "  --jobs N     worker threads (default 1; 0 = all cores)\n"
                 "  --shards N   fan the campaign out across N worker processes\n"
                 "               (default 0 = in-process; the report is\n"
                 "               byte-identical either way)\n"
                 "  --worker PATH  campaign worker binary for --shards\n"
                 "  --seed S     master seed (default 2018)\n"
                 "  --budget Q   oracle-query budget per trial (default 4096)\n"
                 "  --json PATH  write the campaign_report JSON ('-' = stdout)\n"
                 "  --bench-json PATH  write BENCH_campaign.json throughput\n"
                 "               numbers (wall-time, trials/sec, per-cell cost)\n"
                 "  --adaptive   CI-driven adaptive allocation (--trials is the\n"
                 "               per-cell budget; cells stop when both Wilson\n"
                 "               CI half-widths reach the target)\n"
                 "  --target H   adaptive CI half-width target (default 0.05)\n"
                 "  --round-blocks N  blocks per adaptive round (default: one\n"
                 "               per cell)\n"
                 "  --min-trials N   per-cell floor before a cell may stop\n"
                 "               (default 64)\n"
                 "  --adaptive-bench PATH  run the fixed campaign too and write\n"
                 "               BENCH_adaptive.json: trials saved vs fixed\n"
                 "               allocation at the same CI target\n"
                 "  --min-savings PCT  with --adaptive-bench: exit non-zero if\n"
                 "               the adaptive run saves less than PCT%% of the\n"
                 "               fixed trial budget\n"
                 "  --fresh-masters    boot a fresh fork server per trial instead\n"
                 "               of the snapshot-reuse pool (report is identical\n"
                 "               either way; this is a perf A/B knob)\n"
                 "  --dispatch M   VM dispatch engine: threaded (default) or\n"
                 "               switch; exported to shard workers via\n"
                 "               PSSP_VM_DISPATCH (report is identical either\n"
                 "               way; this is a perf A/B knob)\n"
                 "  --progress   live trial counter on stderr\n"
                 "  --telemetry PATH  per-round summary JSONL ('-' = stderr);\n"
                 "               side channel only, never changes the report\n"
                 "  --trace-out PATH  Chrome trace_event JSON of this run's\n"
                 "               spans (rounds, victim builds, trial blocks,\n"
                 "               wire traffic) for chrome://tracing/Perfetto\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv) {
    campaign::campaign_spec spec = campaign::default_spec();
    spec.trials_per_cell = 112;
    const char* json_path = nullptr;
    const char* bench_json_path = nullptr;
    const char* adaptive_bench_path = nullptr;
    double min_savings_percent = -1.0;
    bool progress = false;
    unsigned shards = 0;  // 0 = in-process engine
    const char* worker_path = nullptr;
    const char* telemetry_path = nullptr;
    const char* trace_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--trials")) {
            spec.trials_per_cell = std::strtoull(next_value("--trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--jobs")) {
            spec.jobs = static_cast<unsigned>(
                std::strtoul(next_value("--jobs"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--shards")) {
            shards = static_cast<unsigned>(
                std::strtoul(next_value("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--worker")) {
            worker_path = next_value("--worker");
        } else if (!std::strcmp(argv[i], "--seed")) {
            spec.master_seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--budget")) {
            spec.query_budget = std::strtoull(next_value("--budget"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next_value("--json");
        } else if (!std::strcmp(argv[i], "--bench-json")) {
            bench_json_path = next_value("--bench-json");
        } else if (!std::strcmp(argv[i], "--adaptive")) {
            spec.adaptive = true;
        } else if (!std::strcmp(argv[i], "--target")) {
            spec.target_ci_halfwidth =
                std::strtod(next_value("--target"), nullptr);
        } else if (!std::strcmp(argv[i], "--round-blocks")) {
            spec.round_blocks =
                std::strtoull(next_value("--round-blocks"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--min-trials")) {
            spec.min_trials_per_cell =
                std::strtoull(next_value("--min-trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--adaptive-bench")) {
            adaptive_bench_path = next_value("--adaptive-bench");
        } else if (!std::strcmp(argv[i], "--min-savings")) {
            min_savings_percent = std::strtod(next_value("--min-savings"), nullptr);
        } else if (!std::strcmp(argv[i], "--fresh-masters")) {
            spec.reuse_masters = false;
        } else if (!std::strcmp(argv[i], "--dispatch")) {
            const char* value = next_value("--dispatch");
            const auto mode = vm::dispatch_from_string(value);
            if (!mode) {
                std::fprintf(stderr, "--dispatch must be threaded or switch\n");
                return 2;
            }
            vm::set_default_dispatch(*mode);
            // Exported before any worker threads or shard processes exist
            // so fork/exec'd campaign workers run the same engine.
            ::setenv("PSSP_VM_DISPATCH", value, /*overwrite=*/1);
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strcmp(argv[i], "--telemetry")) {
            telemetry_path = next_value("--telemetry");
        } else if (!std::strcmp(argv[i], "--trace-out")) {
            trace_path = next_value("--trace-out");
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (adaptive_bench_path != nullptr && !spec.adaptive) {
        std::fprintf(stderr, "--adaptive-bench needs --adaptive\n");
        return 2;
    }
    if (min_savings_percent >= 0.0 && adaptive_bench_path == nullptr) {
        std::fprintf(stderr, "--min-savings needs --adaptive-bench\n");
        return 2;
    }

    bench::print_header("Attack-campaign detection curves",
                        "Table I outcomes as measured probabilities "
                        "(Sections III-C, IV-C, VI-C)");
    std::printf("campaign: %llu cells x %llu trials, seed %llu, budget %llu, "
                "jobs %u\n\n",
                static_cast<unsigned long long>(spec.cell_count()),
                static_cast<unsigned long long>(spec.trials_per_cell),
                static_cast<unsigned long long>(spec.master_seed),
                static_cast<unsigned long long>(spec.query_budget), spec.jobs);

    if (trace_path != nullptr) obs::enable_tracing(true);
    // In-process runs write the JSONL here; sharded runs hand the path to
    // the orchestrator instead (exactly one of the two opens the file).
    obs::telemetry_writer telemetry;
    const bool want_telemetry = telemetry_path != nullptr && shards == 0 &&
                                telemetry.open(telemetry_path);

    campaign::campaign_report report;
    double wall_seconds = 0.0;
    try {
        const auto start = std::chrono::steady_clock::now();
        if (shards > 0) {
            // Multi-process fan-out; merged report byte-identical to the
            // in-process path below (per-trial progress stays in-process
            // only — workers own their trials).
            dist::sharded_options options;
            options.shards = shards;
            if (worker_path != nullptr) options.worker_path = worker_path;
            if (telemetry_path != nullptr)
                options.telemetry_path = telemetry_path;
            report = dist::run_sharded(spec, options);
        } else {
            campaign::engine eng{spec};
            if (progress)
                eng.set_progress([](std::uint64_t done, std::uint64_t total) {
                    std::fprintf(stderr, "\r%llu/%llu trials",
                                 static_cast<unsigned long long>(done),
                                 static_cast<unsigned long long>(total));
                    if (done == total) std::fprintf(stderr, "\n");
                });
            if (want_telemetry)
                eng.set_round_observer([&telemetry](
                                           const obs::round_summary& round) {
                    telemetry.append(round);
                });
            report = eng.run();
        }
        wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    std::printf("%s\n", report.to_table().c_str());
    std::printf(
        "paper: byte-by-byte compromises SSP (expected ~8*2^7+1 = 1025\n"
        "       queries) and fails against P-SSP with detection rate ~1;\n"
        "       RAF-SSP also defeats byte-by-byte (C renewed per fork) but\n"
        "       its leak window matches SSP's. Leaked canaries stay fully\n"
        "       valid under SSP (8/8 bytes) and go stale under P-SSP.\n");

    if (json_path) {
        const auto json = report.to_json();
        if (!std::strcmp(json_path, "-")) {
            std::printf("%s\n", json.c_str());
        } else {
            std::ofstream out{json_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", json_path);
                return 1;
            }
            out << json << '\n';
        }
    }

    if (adaptive_bench_path) {
        // Trial-savings A/B (BENCH_adaptive.json): the fixed twin of the
        // same spec runs the full trials_per_cell budget everywhere; the
        // adaptive run above stopped each cell at the CI target. Savings =
        // trials not run for the same target precision (cells that
        // exhausted the budget without converging ran identically in both).
        campaign::campaign_spec fixed_spec = spec;
        fixed_spec.adaptive = false;
        double fixed_seconds = 0.0;
        std::uint64_t fixed_trials = 0;
        try {
            const auto start = std::chrono::steady_clock::now();
            campaign::campaign_report fixed_report;
            if (shards > 0) {
                dist::sharded_options options;
                options.shards = shards;
                if (worker_path != nullptr) options.worker_path = worker_path;
                fixed_report = dist::run_sharded(fixed_spec, options);
            } else {
                fixed_report = campaign::engine{fixed_spec}.run();
            }
            fixed_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
            fixed_trials = fixed_report.total_trials();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error (fixed twin): %s\n", e.what());
            return 2;
        }

        const std::uint64_t adaptive_trials = report.total_trials();
        const double savings_percent =
            fixed_trials == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(adaptive_trials) /
                                     static_cast<double>(fixed_trials));
        std::uint64_t cells_converged = 0;
        for (const auto& c : report.cells)
            if (c.trials < spec.trials_per_cell) ++cells_converged;

        std::string bench;
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "{\n"
            "  \"bench\": \"campaign_adaptive\",\n"
            "  \"target_ci_halfwidth\": %g,\n"
            "  \"min_trials_per_cell\": %llu,\n"
            "  \"trials_budget_per_cell\": %llu,\n"
            "  \"trials_fixed\": %llu,\n"
            "  \"trials_adaptive\": %llu,\n"
            "  \"savings_percent\": %.1f,\n"
            "  \"cells_stopped_early\": %llu,\n"
            "  \"cells_total\": %llu,\n"
            "  \"wall_seconds_fixed\": %.3f,\n"
            "  \"wall_seconds_adaptive\": %.3f,\n"
            "  \"cells\": [\n",
            spec.target_ci_halfwidth,
            static_cast<unsigned long long>(spec.min_trials_per_cell),
            static_cast<unsigned long long>(spec.trials_per_cell),
            static_cast<unsigned long long>(fixed_trials),
            static_cast<unsigned long long>(adaptive_trials), savings_percent,
            static_cast<unsigned long long>(cells_converged),
            static_cast<unsigned long long>(spec.cell_count()), fixed_seconds,
            wall_seconds);
        bench += buf;
        for (std::size_t i = 0; i < report.cells.size(); ++i) {
            const auto& c = report.cells[i];
            std::snprintf(
                buf, sizeof buf,
                "    {\"scheme\": \"%s\", \"attack\": \"%s\", "
                "\"trials\": %llu, \"detection_ci_halfwidth\": %.4f, "
                "\"hijack_ci_halfwidth\": %.4f, \"stopped_early\": %s}%s\n",
                core::to_string(c.scheme).c_str(),
                attack::to_string(c.attack).c_str(),
                static_cast<unsigned long long>(c.trials),
                c.detection_ci.half_width(), c.hijack_ci.half_width(),
                c.trials < spec.trials_per_cell ? "true" : "false",
                i + 1 < report.cells.size() ? "," : "");
            bench += buf;
        }
        bench += "  ]\n}\n";

        if (!std::strcmp(adaptive_bench_path, "-")) {
            std::printf("%s", bench.c_str());
        } else {
            std::ofstream out{adaptive_bench_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", adaptive_bench_path);
                return 1;
            }
            out << bench;
        }
        std::printf(
            "adaptive allocation: %llu of %llu fixed trials (%.1f%% saved) "
            "at target half-width %g; %llu/%llu cells stopped early\n",
            static_cast<unsigned long long>(adaptive_trials),
            static_cast<unsigned long long>(fixed_trials), savings_percent,
            spec.target_ci_halfwidth,
            static_cast<unsigned long long>(cells_converged),
            static_cast<unsigned long long>(spec.cell_count()));

        if (min_savings_percent >= 0.0 &&
            savings_percent < min_savings_percent) {
            std::fprintf(stderr,
                         "FAIL: adaptive savings %.1f%% below the --min-savings "
                         "floor of %.1f%%\n",
                         savings_percent, min_savings_percent);
            return 1;
        }
    }

    if (bench_json_path) {
        // Throughput sidecar (BENCH_campaign.json). Deliberately separate
        // from the report: the report is a pure function of the spec, this
        // is a property of the machine and build that ran it.
        const double trials = static_cast<double>(spec.trial_count());
        const double cells = static_cast<double>(spec.cell_count());
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "{\n"
            "  \"bench\": \"campaign_curves\",\n"
            "  \"trials\": %llu,\n"
            "  \"cells\": %llu,\n"
            "  \"jobs\": %u,\n"
            "  \"reuse_masters\": %s,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"trials_per_sec\": %.1f,\n"
            "  \"seconds_per_cell_mean\": %.4f\n"
            "}\n",
            static_cast<unsigned long long>(spec.trial_count()),
            static_cast<unsigned long long>(spec.cell_count()), spec.jobs,
            spec.reuse_masters ? "true" : "false", wall_seconds,
            trials / wall_seconds, wall_seconds / cells);
        if (!std::strcmp(bench_json_path, "-")) {
            std::printf("%s", buf);
        } else {
            std::ofstream out{bench_json_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", bench_json_path);
                return 1;
            }
            out << buf;
        }
    }

    if (trace_path != nullptr) {
        const auto trace = obs::chrome_trace_json("bench_campaign_curves");
        std::ofstream out{trace_path, std::ios::binary};
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", trace_path);
            return 1;
        }
        out << trace;
        std::fprintf(stderr, "trace written to %s\n", trace_path);
    }
    return 0;
}
