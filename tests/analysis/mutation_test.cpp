// Mutation self-test of the proof engine: every seeded single-op
// corruption of an install/check sequence must be caught, and the clean
// builds must stay finding-free — 0 false negatives, 0 false positives.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "analysis/mutate.hpp"
#include "compiler/codegen.hpp"
#include "core/scheme.hpp"
#include "rewriter/rewriter.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

binfmt::linked_binary server_binary(core::scheme_kind kind) {
    const auto mod = workload::make_server_module(workload::nginx_profile());
    const auto sch = std::shared_ptr<const core::scheme>(core::make_scheme(kind));
    return compiler::build_module(mod, sch);
}

TEST(mutation, every_scheme_catches_every_mutant) {
    for (const auto kind : core::all_scheme_kinds()) {
        if (kind == core::scheme_kind::none) continue;
        const auto report = analysis::run_mutation_self_test(server_binary(kind));
        EXPECT_GT(report.outcomes.size(), 0u) << core::to_string(kind);
        EXPECT_EQ(report.clean_violations, 0) << core::to_string(kind);
        EXPECT_TRUE(report.all_caught())
            << core::to_string(kind) << ": missed " << report.missed();
        for (const auto& o : report.outcomes)
            EXPECT_TRUE(o.caught)
                << core::to_string(kind) << " "
                << analysis::to_string(o.site.kind) << " " << o.site.function
                << "@" << o.site.insn_index << ": " << o.how;
    }
}

TEST(mutation, rewritten_static_binary_catches_every_mutant) {
    auto binary = server_binary(core::scheme_kind::ssp);
    auto upgraded = binary;
    rewriter::binary_rewriter{}.upgrade_to_pssp(upgraded);
    const auto report = analysis::run_mutation_self_test(upgraded);
    EXPECT_GT(report.outcomes.size(), 0u);
    EXPECT_EQ(report.clean_violations, 0);
    EXPECT_TRUE(report.all_caught()) << "missed " << report.missed();
}

TEST(mutation, site_enumeration_covers_every_kind) {
    const auto binary = server_binary(core::scheme_kind::ssp);
    const auto clean = analysis::prove_canary_protocol(binary);
    const auto sites = analysis::enumerate_mutation_sites(binary, clean);
    std::set<analysis::mutation_kind> kinds;
    for (const auto& s : sites) kinds.insert(s.kind);
    EXPECT_TRUE(kinds.contains(analysis::mutation_kind::drop_install));
    EXPECT_TRUE(kinds.contains(analysis::mutation_kind::drop_check_compare));
    EXPECT_TRUE(kinds.contains(analysis::mutation_kind::bypass_guard));
    EXPECT_TRUE(kinds.contains(analysis::mutation_kind::drop_abort_arm));
    EXPECT_TRUE(kinds.contains(analysis::mutation_kind::clobber_slot));
    EXPECT_TRUE(kinds.contains(analysis::mutation_kind::retarget_install));
}

TEST(mutation, mutants_preserve_the_address_layout) {
    // apply_mutation never relayouts: every function entry and symbol keeps
    // its address (a replaced instruction may encode to a different byte
    // width, so sizes can drift — addresses must not).
    const auto binary = server_binary(core::scheme_kind::p_ssp);
    const auto clean = analysis::prove_canary_protocol(binary);
    const auto pre = binfmt::take_layout_snapshot(binary);
    for (const auto& site : analysis::enumerate_mutation_sites(binary, clean)) {
        const auto mutated = analysis::apply_mutation(binary, site);
        const auto post = binfmt::take_layout_snapshot(mutated);
        ASSERT_EQ(pre.functions.size(), post.functions.size());
        for (std::size_t i = 0; i < pre.functions.size(); ++i) {
            EXPECT_EQ(pre.functions[i].name, post.functions[i].name);
            EXPECT_EQ(pre.functions[i].entry, post.functions[i].entry)
                << analysis::to_string(site.kind) << " moved "
                << pre.functions[i].name;
        }
        EXPECT_EQ(pre.symbols, post.symbols)
            << analysis::to_string(site.kind) << " moved a symbol";
        EXPECT_NE(mutated.make_program(), nullptr);
    }
}

TEST(mutation, dropped_install_yields_the_pinned_diagnostic) {
    const auto binary = server_binary(core::scheme_kind::ssp);
    const auto clean = analysis::prove_canary_protocol(binary);
    for (const auto& site : analysis::enumerate_mutation_sites(binary, clean)) {
        if (site.kind != analysis::mutation_kind::drop_install) continue;
        const auto mutated_proof =
            analysis::prove_canary_protocol(analysis::apply_mutation(binary, site));
        const auto* fn = mutated_proof.find(site.function);
        ASSERT_NE(fn, nullptr);
        // Either the slot is now never installed (profile drift to
        // unprotected) or a surviving sibling install leaves a path where
        // the check reads an uninstalled slot — both must be flagged.
        const bool flagged = !fn->clean() || !fn->is_protected ||
                             fn->slots != clean.find(site.function)->slots;
        EXPECT_TRUE(flagged) << site.function << "@" << site.insn_index;
        break;  // one site suffices for the pinned shape
    }
}

}  // namespace
}  // namespace pssp
