#include "vm/program.hpp"

namespace pssp::vm {

void program::finalize() {
    flow.assign(insns.size(), resolved_flow{});
    for (std::size_t i = 0; i < insns.size(); ++i) {
        const instruction& insn = insns[i];
        switch (insn.op) {
            case opcode::je:
            case opcode::jne:
            case opcode::jb:
            case opcode::jae:
            case opcode::jl:
            case opcode::jge:
            case opcode::jnc:
            case opcode::jmp:
                flow[i].target = index_of(insn.imm);
                break;
            case opcode::call: {
                // Natives win over code: a call into the PLT region never
                // has an instruction at its target. Pointers into `natives`
                // stay valid because the program is immutable once loaded.
                const auto it = natives.find(insn.imm);
                if (it != natives.end())
                    flow[i].native = &it->second;
                else
                    flow[i].target = index_of(insn.imm);
                flow[i].return_addr = addrs[i] + encoded_length(insn);
                break;
            }
            default:
                break;
        }
    }
}

}  // namespace pssp::vm
