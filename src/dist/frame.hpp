// The network wire: length-prefixed, integrity-hashed message frames.
//
// Everything the TCP coordinator and its remote worker nodes exchange
// travels as one frame:
//
//   u32   payload length (little-endian; counts payload bytes only)
//   u8    frame type (frame_type below)
//   ...   payload bytes
//   u64   FNV-1a 64 over the type byte followed by the payload
//
// The trailer hash is the partition-tolerance workhorse: a garbled or
// bit-flipped frame is detected at the receiver, classified as a protocol
// failure, and the connection is dropped — the lease the sender held is
// requeued under the at-least-once + dedup-by-block invariant, so a
// corrupted byte on the wire can never reach the merge. The length prefix
// is bounded (max_frame_payload) so a hostile or scrambled prefix cannot
// make a receiver buffer gigabytes.
//
// Payloads are the *same* deterministic JSON the local pipe transport
// uses (dist/wire.hpp round-job and partial messages); the lease and
// result frames prepend a small fixed envelope (shard identity, attempt,
// wait status) that the local transport carries on argv / in the wait4
// status instead.
//
// frame_reader decodes incrementally — feed() any byte dribble the
// kernel hands you (short reads, EINTR-split reads, one byte at a time)
// and next() yields complete frames exactly as if they had arrived whole.
// frame_conn wraps a non-blocking socket with a frame_reader and a write
// buffer so single-threaded poll() loops on both ends can interleave many
// connections without ever blocking on one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pssp::dist {

// v1: hello/welcome handshake, lease/result envelopes, heartbeats.
inline constexpr std::uint32_t net_protocol_version = 1;

// A scrambled length prefix must not buffer unbounded memory.
inline constexpr std::uint32_t max_frame_payload = 64u * 1024u * 1024u;

enum class frame_type : std::uint8_t {
    hello = 1,      // worker -> coordinator: version, name, capabilities
    welcome = 2,    // coordinator -> worker: version, heartbeat interval
    lease = 3,      // coordinator -> worker: shard/attempt envelope + round job
    result = 4,     // worker -> coordinator: wait-status envelope + partial
    heartbeat = 5,  // worker -> coordinator: liveness (empty payload)
    shutdown = 6,   // coordinator -> worker: campaign over, exit cleanly
    error = 7,      // either direction: human-readable refusal, then close
};

[[nodiscard]] const char* to_string(frame_type type) noexcept;

struct frame {
    frame_type type = frame_type::error;
    std::string payload;
};

// One encoded frame, ready for the socket.
[[nodiscard]] std::string encode_frame(frame_type type,
                                       std::string_view payload);

// Incremental decoder. feed() bytes in any fragmentation; next() returns
// the next complete frame or nullopt. Throws std::runtime_error on an
// oversized length prefix or an integrity-hash mismatch — the connection
// is poisoned and must be closed.
class frame_reader {
  public:
    void feed(const char* data, std::size_t size) { buf_.append(data, size); }

    [[nodiscard]] std::optional<frame> next();

    // Bytes buffered but not yet decodable — nonzero at EOF means the
    // peer closed mid-frame.
    [[nodiscard]] std::size_t pending_bytes() const noexcept {
        return buf_.size();
    }

  private:
    std::string buf_;
};

// The error a blocking/polling receiver reports when the peer closes with
// a partial frame buffered (exact message pinned by tests).
[[nodiscard]] std::string closed_mid_frame_error(std::size_t pending_bytes);

// ---- Envelopes ----
//
// Fixed little-endian prefixes in front of the JSON payloads; the JSON
// itself stays byte-identical to the local pipe transport.

// lease payload = lease_envelope + round_job JSON (wire::round_job_to_json)
struct lease_envelope {
    std::uint32_t shard = 0;        // manifest slot this lease covers ...
    std::uint32_t shard_count = 0;  // ... of how many this round
    std::uint32_t attempt = 1;      // 1-based; requeues increment it
    std::uint64_t round = 0;        // chaos coordinate + worker env
};

// result payload = result_envelope + the compute child's raw stdout
// (partial JSON on success; anything or nothing on failure — the
// coordinator classifies from wait_status first, output second, exactly
// like the local supervisor).
struct result_envelope {
    std::uint32_t shard = 0;
    std::uint32_t shard_count = 0;
    std::uint32_t attempt = 1;
    std::int32_t wait_status = 0;  // raw wait4 status of the compute child
};

[[nodiscard]] std::string encode_lease(const lease_envelope& env,
                                       std::string_view job_json);
// Throws std::runtime_error on a payload too short for the envelope.
[[nodiscard]] lease_envelope decode_lease(std::string_view payload,
                                          std::string_view* job_json);

[[nodiscard]] std::string encode_result(const result_envelope& env,
                                        std::string_view output);
[[nodiscard]] result_envelope decode_result(std::string_view payload,
                                            std::string_view* output);

// ---- Non-blocking connection state ----
//
// One socket plus its read/write buffering, driven by a poll() loop:
// read_frames() drains the socket into decoded frames, queue() appends an
// encoded frame to the write buffer, pump_writes() flushes as much as the
// socket accepts. All EINTR-retrying, EAGAIN-yielding.
class frame_conn {
  public:
    frame_conn() = default;
    explicit frame_conn(int fd) : fd_{fd} {}
    frame_conn(const frame_conn&) = delete;
    frame_conn& operator=(const frame_conn&) = delete;
    frame_conn(frame_conn&& other) noexcept;
    frame_conn& operator=(frame_conn&& other) noexcept;
    ~frame_conn() { close(); }

    [[nodiscard]] int fd() const noexcept { return fd_; }
    [[nodiscard]] bool open() const noexcept { return fd_ >= 0; }
    void close();

    enum class io_status : std::uint8_t {
        ok,      // socket still open, frames (possibly none) decoded
        closed,  // clean EOF with no partial frame buffered
        failed,  // read error, EOF mid-frame, or protocol (hash/size) error
    };

    // Drains the socket until EAGAIN/EOF, appending decoded frames to
    // `out`. On `failed`, error() describes why (exact framing messages).
    [[nodiscard]] io_status read_frames(std::vector<frame>& out);

    // Appends one frame to the write buffer (does not write yet).
    void queue(frame_type type, std::string_view payload);

    // Flushes buffered writes until EAGAIN or done. Returns false on a
    // hard write error (error() says why).
    [[nodiscard]] bool pump_writes();

    [[nodiscard]] bool wants_write() const noexcept { return !wbuf_.empty(); }
    [[nodiscard]] const std::string& error() const noexcept { return error_; }

  private:
    int fd_ = -1;
    frame_reader reader_;
    std::string wbuf_;
    std::size_t woff_ = 0;
    std::string error_;
};

// ---- Handshake payload helpers (JSON bodies of hello / welcome) ----

struct hello_msg {
    std::uint32_t version = net_protocol_version;
    std::string name;          // worker's self-chosen identity
    std::uint64_t reconnects = 0;  // this worker's reconnect count so far
};

struct welcome_msg {
    std::uint32_t version = net_protocol_version;
    std::uint64_t heartbeat_ms = 250;  // worker must heartbeat this often
    std::uint64_t spec_digest = 0;     // campaign the coordinator serves
};

[[nodiscard]] std::string hello_to_json(const hello_msg& msg);
[[nodiscard]] hello_msg hello_from_json(std::string_view text);
[[nodiscard]] std::string welcome_to_json(const welcome_msg& msg);
[[nodiscard]] welcome_msg welcome_from_json(std::string_view text);

}  // namespace pssp::dist
