#include "core/scheme.hpp"

#include <stdexcept>

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/schemes/schemes_internal.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core {

std::string to_string(scheme_kind kind) {
    switch (kind) {
        case scheme_kind::none: return "native";
        case scheme_kind::ssp: return "SSP";
        case scheme_kind::raf_ssp: return "RAF-SSP";
        case scheme_kind::dynaguard: return "DynaGuard";
        case scheme_kind::dcr: return "DCR";
        case scheme_kind::p_ssp: return "P-SSP";
        case scheme_kind::p_ssp_nt: return "P-SSP-NT";
        case scheme_kind::p_ssp_lv: return "P-SSP-LV";
        case scheme_kind::p_ssp_owf: return "P-SSP-OWF";
        case scheme_kind::p_ssp32: return "P-SSP-32";
        case scheme_kind::p_ssp_gb: return "P-SSP-GB";
        case scheme_kind::p_ssp_c0tls: return "P-SSP-C0TLS";
    }
    return "?";
}

scheme_kind scheme_kind_from_string(const std::string& name) {
    for (const auto kind : all_scheme_kinds())
        if (to_string(kind) == name) return kind;
    throw std::invalid_argument{"scheme_kind_from_string: unknown scheme \"" +
                                name + "\""};
}

bool scheme::wants_protection(const std::vector<local_desc>& locals) const {
    // The -fstack-protector heuristic: protect any frame holding an array.
    for (const auto& local : locals)
        if (local.is_buffer) return true;
    return false;
}

namespace {

[[nodiscard]] constexpr std::int32_t round8(std::uint32_t bytes) noexcept {
    return static_cast<std::int32_t>((bytes + 7) & ~7u);
}

[[nodiscard]] constexpr std::int32_t round16(std::int32_t bytes) noexcept {
    return (bytes + 15) & ~15;
}

}  // namespace

frame_plan scheme::plan_frame(const std::vector<local_desc>& locals) const {
    frame_plan plan;
    plan.local_offsets.resize(locals.size(), 0);
    plan.protected_frame = wants_protection(locals);

    std::int32_t cursor = 0;
    if (plan.protected_frame && stack_canary_bytes() > 0) {
        cursor = stack_canary_bytes();
        plan.canaries.push_back({-cursor, stack_canary_bytes(), -1});
    }

    // Buffers sit immediately below the canary area so that any overflow
    // out of a buffer must march through the canary before reaching the
    // saved rbp / return address (gcc's array-reordering behavior).
    for (std::size_t i = 0; i < locals.size(); ++i) {
        if (!locals[i].is_buffer) continue;
        cursor += round8(locals[i].size);
        plan.local_offsets[i] = -cursor;
    }
    for (std::size_t i = 0; i < locals.size(); ++i) {
        if (locals[i].is_buffer) continue;
        cursor += round8(locals[i].size);
        plan.local_offsets[i] = -cursor;
    }

    plan.frame_bytes = round16(cursor);
    return plan;
}

void scheme::emit_write_site_check(binfmt::bin_function&, binfmt::image&,
                                   const frame_plan&) const {
    // Only P-SSP-LV opts into mid-function checks.
}

void scheme::runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const {
    tls_store(m, tls_canary, fresh_tls_canary(rng));
}

void scheme::runtime_on_fork_child(vm::machine&, crypto::xoshiro256&) const {
    // Stock SSP semantics: the child inherits the parent's TLS untouched.
}

void scheme::runtime_on_thread_create(vm::machine& thread, crypto::xoshiro256& rng) const {
    // By default a new thread gets the same treatment as a forked child:
    // its TLS block was just cloned from the creator.
    runtime_on_fork_child(thread, rng);
}

void scheme::emit_check_tail(binfmt::bin_function& f, binfmt::image& img) {
    using namespace vm::isa;
    const auto ok = f.new_label();
    f.emit(je(ok));
    f.emit(call_sym(img.sym(binfmt::sym_stack_chk_fail)));
    f.place(ok);  // binds to whatever the codegen emits next (leave/ret)
}

std::unique_ptr<scheme> make_scheme(scheme_kind kind, const scheme_options& options) {
    switch (kind) {
        case scheme_kind::none: return detail::make_none();
        case scheme_kind::ssp: return detail::make_ssp();
        case scheme_kind::raf_ssp: return detail::make_raf_ssp();
        case scheme_kind::dynaguard: return detail::make_dynaguard();
        case scheme_kind::dcr: return detail::make_dcr(options);
        case scheme_kind::p_ssp: return detail::make_p_ssp();
        case scheme_kind::p_ssp_nt: return detail::make_p_ssp_nt();
        case scheme_kind::p_ssp_lv: return detail::make_p_ssp_lv(options);
        case scheme_kind::p_ssp_owf: return detail::make_p_ssp_owf(options);
        case scheme_kind::p_ssp32: return detail::make_p_ssp32();
        case scheme_kind::p_ssp_gb: return detail::make_p_ssp_gb();
        case scheme_kind::p_ssp_c0tls: return detail::make_p_ssp_c0tls();
    }
    throw std::invalid_argument{"make_scheme: unknown kind"};
}

const std::vector<scheme_kind>& all_scheme_kinds() {
    static const std::vector<scheme_kind> kinds = {
        scheme_kind::none,     scheme_kind::ssp,      scheme_kind::raf_ssp,
        scheme_kind::dynaguard, scheme_kind::dcr,      scheme_kind::p_ssp,
        scheme_kind::p_ssp_nt, scheme_kind::p_ssp_lv, scheme_kind::p_ssp_owf,
        scheme_kind::p_ssp32,  scheme_kind::p_ssp_gb, scheme_kind::p_ssp_c0tls,
    };
    return kinds;
}

}  // namespace pssp::core
