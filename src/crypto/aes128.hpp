// Software AES-128 (FIPS-197).
//
// Stands in for Intel AES-NI, which P-SSP-OWF uses as the one-way function F
// (Algorithm 3, Codes 8/9): the TLS canary held in r12/r13 is the key, and
// the concatenation of the timestamp nonce and the return address is the
// plaintext block. Only encryption is needed — the epilogue re-encrypts and
// compares rather than decrypting.
//
// This is a byte-oriented reference implementation (no T-tables): clarity
// and testability against the FIPS-197 vectors matter more here than raw
// throughput, because the *cost* of AES-NI is modeled separately by the
// VM's cycle model, not by host wall-clock.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pssp::crypto {

inline constexpr std::size_t aes128_block_size = 16;
inline constexpr std::size_t aes128_key_size = 16;
inline constexpr std::size_t aes128_rounds = 10;

// Expanded key schedule: 11 round keys of 16 bytes each.
class aes128 {
  public:
    // Expands `key` (exactly 16 bytes) into the round-key schedule.
    explicit aes128(std::span<const std::uint8_t, aes128_key_size> key) noexcept;

    // Convenience: key given as two 64-bit words (lo = bytes 0..7 LE),
    // matching how P-SSP-OWF assembles the key from r12/r13.
    aes128(std::uint64_t key_lo, std::uint64_t key_hi) noexcept;

    // Encrypts one 16-byte block in place.
    void encrypt_block(std::span<std::uint8_t, aes128_block_size> block) const noexcept;

    // Encrypts a 128-bit value given as two 64-bit words; returns (lo, hi).
    struct block128 {
        std::uint64_t lo;
        std::uint64_t hi;
        friend bool operator==(const block128&, const block128&) = default;
    };
    [[nodiscard]] block128 encrypt(block128 plaintext) const noexcept;

  private:
    std::array<std::array<std::uint8_t, 16>, aes128_rounds + 1> round_keys_{};

    void expand_key(std::span<const std::uint8_t, aes128_key_size> key) noexcept;
};

}  // namespace pssp::crypto
