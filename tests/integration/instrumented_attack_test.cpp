// End-to-end security of the *instrumentation* deployment: a legacy SSP
// server binary, rewritten to P-SSP-32, must gain the same byte-by-byte
// resistance the compiler deployment has — with the reduced 32-bit
// entropy the Section V-C caveat defends.

#include <gtest/gtest.h>

#include "attack/byte_by_byte.hpp"
#include "compiler/codegen.hpp"
#include "core/runtime.hpp"
#include "proc/fork_server.hpp"
#include "rewriter/rewriter.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

binfmt::linked_binary hardened_server(binfmt::link_mode mode) {
    auto binary = compiler::build_module(
        workload::make_server_module(workload::nginx_profile()),
        core::make_scheme(scheme_kind::ssp), mode);
    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);
    if (mode == binfmt::link_mode::dynamic_glibc)
        core::bind_instrumented_stack_chk_fail(binary);
    return binary;
}

class instrumented_server_test : public ::testing::TestWithParam<binfmt::link_mode> {};

INSTANTIATE_TEST_SUITE_P(both_modes, instrumented_server_test,
                         ::testing::Values(binfmt::link_mode::dynamic_glibc,
                                           binfmt::link_mode::static_glibc),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(instrumented_server_test, serves_and_detects_like_the_compiler_build) {
    const auto binary = hardened_server(GetParam());
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp32), 51,
                             workload::server_config_for(workload::nginx_profile())};
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(server.serve("GET /x HTTP/1.1").outcome, proc::worker_outcome::ok);
    const std::vector<std::uint8_t> smash(160, 'A');
    EXPECT_EQ(server.serve(smash).outcome, proc::worker_outcome::crashed_canary);
    EXPECT_TRUE(server.alive());
}

TEST_P(instrumented_server_test, byte_by_byte_attack_is_defeated) {
    const auto binary = hardened_server(GetParam());
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp32), 52,
                             workload::server_config_for(workload::nginx_profile())};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = 64;
    cfg.canary_bytes = 8;       // the packed pair occupies one word
    cfg.max_trials = 2500;      // > the budget that cracks stock SSP
    attack::byte_by_byte atk{server, cfg};
    const auto campaign =
        atk.run_campaign(binary.symbols.at("win"), binary.data_base);
    EXPECT_FALSE(campaign.hijacked) << to_string(GetParam());
}

// Control: the same legacy binary WITHOUT the rewriting falls as usual —
// pinning that the hardening (not some harness artifact) stops the attack.
TEST(instrumented_server, unhardened_legacy_binary_still_falls) {
    const auto binary = compiler::build_module(
        workload::make_server_module(workload::nginx_profile()),
        core::make_scheme(scheme_kind::ssp));
    proc::fork_server server{binary, core::make_scheme(scheme_kind::ssp), 53,
                             workload::server_config_for(workload::nginx_profile())};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = 64;
    cfg.canary_bytes = 8;
    cfg.max_trials = 2500;
    attack::byte_by_byte atk{server, cfg};
    EXPECT_TRUE(atk.run_campaign(binary.symbols.at("win"), binary.data_base).hijacked);
}

// The SSP-compatibility property of the patched __stack_chk_fail (Section
// V-C): a *mixed* process where instrumented code and untouched SSP code
// share the interposed handler must neither false-positive nor miss.
TEST(instrumented_server, handles_requests_at_capacity_boundaries) {
    const auto binary = hardened_server(binfmt::link_mode::dynamic_glibc);
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp32), 54,
                             workload::server_config_for(workload::nginx_profile())};
    // Largest benign request (buffer is 64 bytes; memcpy length-delimited).
    EXPECT_EQ(server.serve(std::vector<std::uint8_t>(64, 'x')).outcome,
              proc::worker_outcome::ok);
    // One byte over: corrupts the canary's low byte, must trap.
    EXPECT_EQ(server.serve(std::vector<std::uint8_t>(65, 'x')).outcome,
              proc::worker_outcome::crashed_canary);
    // Maximum wire size: clamped by the server; the runaway copy dies in
    // flight (segfault past the stack top) — a crash either way, never a
    // clean exit and never a hijack.
    const auto huge = server.serve(std::vector<std::uint8_t>(8192, 'x'));
    EXPECT_NE(huge.outcome, proc::worker_outcome::ok);
    EXPECT_NE(huge.outcome, proc::worker_outcome::hijacked);
}

}  // namespace
}  // namespace pssp
