#include "obs/span.hpp"

#if PSSP_OBS

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include <unistd.h>

namespace pssp::obs {
namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint32_t> g_ring_capacity{4096};

struct span_record {
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::int64_t arg = -1;
    const char* category = nullptr;  // static literal
    std::uint32_t tid = 0;
    char name[48] = {};
};

// One ring per thread. Writes are single-threaded by construction (only
// the owning thread appends); exports snapshot under the global mutex
// while holding no illusions about entries racing in — trace export is a
// diagnostic, the write index is monotonic, and torn reads of an entry
// being overwritten can at worst misreport one span in a live dump.
struct span_ring {
    explicit span_ring(std::uint32_t cap, std::uint32_t tid_)
        : capacity(cap), tid(tid_), entries(cap) {}
    const std::uint32_t capacity;
    const std::uint32_t tid;
    std::atomic<std::uint64_t> next{0};  // monotonic write index
    std::vector<span_record> entries;
};

struct ring_registry {
    std::mutex mutex;
    std::vector<std::shared_ptr<span_ring>> rings;
    std::string flight_path;
};

ring_registry& rings() {
    static ring_registry* r = new ring_registry;  // never destructed
    return *r;
}

span_ring& this_thread_ring() {
    // shared_ptr keeps the ring alive in the registry after thread exit,
    // so export never dangles; sequential small tids keep traces legible.
    thread_local std::shared_ptr<span_ring> ring = [] {
        auto& r = rings();
        std::lock_guard lock{r.mutex};
        auto created = std::make_shared<span_ring>(
            g_ring_capacity.load(std::memory_order_relaxed),
            static_cast<std::uint32_t>(r.rings.size()));
        r.rings.push_back(created);
        return created;
    }();
    return *ring;
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void record(const char* name, const char* category, std::uint64_t start_ns,
            std::uint64_t dur_ns, std::int64_t arg) noexcept {
    auto& ring = this_thread_ring();
    const auto index = ring.next.load(std::memory_order_relaxed);
    auto& slot = ring.entries[index % ring.capacity];
    slot.start_ns = start_ns;
    slot.dur_ns = dur_ns;
    slot.arg = arg;
    slot.category = category;
    slot.tid = ring.tid;
    std::strncpy(slot.name, name, sizeof slot.name - 1);
    slot.name[sizeof slot.name - 1] = '\0';
    // Publish after the fields: exports read next first, then entries.
    ring.next.store(index + 1, std::memory_order_release);
}

std::string quoted(const char* text) {
    std::string out = "\"";
    for (; *text != '\0'; ++text) {
        if (*text == '"' || *text == '\\') out += '\\';
        out += *text;
    }
    out += '"';
    return out;
}

// Snapshot every ring's buffered records, oldest first within a ring.
std::vector<span_record> collect_all() {
    auto& r = rings();
    std::vector<std::shared_ptr<span_ring>> refs;
    {
        std::lock_guard lock{r.mutex};
        refs = r.rings;
    }
    std::vector<span_record> out;
    for (const auto& ring : refs) {
        const auto next = ring->next.load(std::memory_order_acquire);
        const auto count =
            std::min<std::uint64_t>(next, ring->capacity);
        out.reserve(out.size() + count);
        for (std::uint64_t i = next - count; i < next; ++i)
            out.push_back(ring->entries[i % ring->capacity]);
    }
    return out;
}

void append_event(std::string& json, const span_record& rec,
                  bool comma) {
    char buf[192];
    // Chrome's importer wants microseconds; keep sub-µs precision as the
    // fraction so short spans don't collapse to zero width.
    std::snprintf(buf, sizeof buf,
                  "{\"name\": %s, \"cat\": %s, \"ph\": \"X\", "
                  "\"ts\": %llu.%03llu, \"dur\": %llu.%03llu, "
                  "\"pid\": %d, \"tid\": %u",
                  quoted(rec.name).c_str(),
                  quoted(rec.category == nullptr ? "pssp" : rec.category)
                      .c_str(),
                  static_cast<unsigned long long>(rec.start_ns / 1000),
                  static_cast<unsigned long long>(rec.start_ns % 1000),
                  static_cast<unsigned long long>(rec.dur_ns / 1000),
                  static_cast<unsigned long long>(rec.dur_ns % 1000),
                  static_cast<int>(::getpid()), rec.tid);
    json += buf;
    if (rec.arg >= 0) {
        std::snprintf(buf, sizeof buf, ", \"args\": {\"n\": %lld}",
                      static_cast<long long>(rec.arg));
        json += buf;
    }
    json += comma ? "},\n" : "}\n";
}

}  // namespace

void enable_tracing(bool on) noexcept {
    g_tracing.store(on, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
    return g_tracing.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept { return now_ns(); }

void emit_span(const char* name, const char* category,
               std::uint64_t start_ns, std::uint64_t duration_ns,
               std::int64_t arg) noexcept {
    if (!tracing_enabled()) return;
    record(name, category, start_ns, duration_ns, arg);
}

span::span(const char* name, const char* category, std::int64_t arg) noexcept
    : arg_{arg}, category_{category} {
    if (!tracing_enabled()) return;
    armed_ = true;
    std::strncpy(name_, name, sizeof name_ - 1);
    start_ns_ = now_ns();
}

span::~span() {
    if (!armed_) return;
    record(name_, category_, start_ns_, now_ns() - start_ns_, arg_);
}

void set_ring_capacity(std::uint32_t spans) {
    g_ring_capacity.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
}

void clear_spans_for_test() {
    auto& r = rings();
    std::lock_guard lock{r.mutex};
    for (auto& ring : r.rings) ring->next.store(0, std::memory_order_release);
}

std::uint64_t buffered_span_count() {
    std::uint64_t total = 0;
    auto& r = rings();
    std::lock_guard lock{r.mutex};
    for (const auto& ring : r.rings)
        total += std::min<std::uint64_t>(
            ring->next.load(std::memory_order_acquire), ring->capacity);
    return total;
}

std::string chrome_trace_json(const std::string& process_name) {
    auto records = collect_all();
    std::sort(records.begin(), records.end(),
              [](const auto& a, const auto& b) {
                  return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                  : a.tid < b.tid;
              });
    std::string json = "{\"traceEvents\": [\n";
    if (!process_name.empty()) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": %d, \"args\": {\"name\": %s}}%s\n",
                      static_cast<int>(::getpid()),
                      quoted(process_name.c_str()).c_str(),
                      records.empty() ? "" : ",");
        json += buf;
    }
    for (std::size_t i = 0; i < records.size(); ++i)
        append_event(json, records[i], i + 1 < records.size());
    json += "], \"displayTimeUnit\": \"ms\"}\n";
    return json;
}

std::string flight_record_json(std::size_t max_spans) {
    auto records = collect_all();
    // Newest by end time first, truncate, then chronological for reading.
    std::sort(records.begin(), records.end(),
              [](const auto& a, const auto& b) {
                  return a.start_ns + a.dur_ns > b.start_ns + b.dur_ns;
              });
    if (records.size() > max_spans) records.resize(max_spans);
    std::reverse(records.begin(), records.end());
    std::string json = "{\"spans\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto& rec = records[i];
        char buf[224];
        std::snprintf(
            buf, sizeof buf,
            "{\"name\": %s, \"cat\": %s, \"start_ns\": %llu, "
            "\"dur_ns\": %llu, \"tid\": %u, \"arg\": %lld}%s\n",
            quoted(rec.name).c_str(),
            quoted(rec.category == nullptr ? "pssp" : rec.category).c_str(),
            static_cast<unsigned long long>(rec.start_ns),
            static_cast<unsigned long long>(rec.dur_ns), rec.tid,
            static_cast<long long>(rec.arg),
            i + 1 < records.size() ? "," : "");
        json += buf;
    }
    json += "]}\n";
    return json;
}

void set_flight_path(std::string path) {
    auto& r = rings();
    std::lock_guard lock{r.mutex};
    r.flight_path = std::move(path);
}

void flight_checkpoint() noexcept {
    std::string path;
    {
        auto& r = rings();
        std::lock_guard lock{r.mutex};
        path = r.flight_path;
    }
    if (path.empty()) return;
    // tmp + rename: the file at `path` is always a complete document even
    // if this process dies mid-checkpoint — which is the whole point.
    const std::string tmp = path + ".tmp";
    const auto json = flight_record_json();
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return;
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !ok) {
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

}  // namespace pssp::obs

#endif  // PSSP_OBS
