// The libc analog: string routines, fork, __stack_chk_fail and the AES-NI
// helper, in both deployment flavors.
//
//   * dynamic_glibc — string routines and the stack-check failure path are
//     host-native handlers behind PLT slots. This is the configuration the
//     P-SSP runtime later interposes on (the LD_PRELOAD analog), and it is
//     why instrumented dynamically linked binaries show ZERO code expansion
//     in Table II.
//   * static_glibc — everything is VM code embedded in .text, so a binary
//     rewriter that needs a P-SSP-aware __stack_chk_fail or fork must
//     append a code section (Section V-D; Table II's 2.78%).
//
// AES_ENCRYPT_128 is native in both modes: it models the AES-NI *hardware*
// path of P-SSP-OWF, not library code (DESIGN.md, substitutions table).
// Its cycle price is charged through the VM cost model.
#pragma once

#include "binfmt/image.hpp"

namespace pssp::binfmt {

// Registers the standard library into `img` for the given mode. Call once
// per image, after the application functions are added (layout places libc
// after app code, as a static link would).
void add_standard_library(image& img, link_mode mode);

// Names used throughout (kept verbatim from the paper / glibc).
inline constexpr const char* sym_stack_chk_fail = "__stack_chk_fail";
inline constexpr const char* sym_fortify_fail = "__GI__fortify_fail";
inline constexpr const char* sym_aes_encrypt = "AES_ENCRYPT_128";
inline constexpr const char* sym_sha1_owf = "SHA1_OWF_128";
inline constexpr const char* sym_fork = "fork";
inline constexpr const char* sym_strcpy = "strcpy";
inline constexpr const char* sym_memcpy = "memcpy";
inline constexpr const char* sym_memset = "memset";
inline constexpr const char* sym_strlen = "strlen";

// Individual native handlers, exposed so the P-SSP runtime can re-use the
// default behavior when composing its interposed versions.
namespace native {

// Default glibc behavior: a called __stack_chk_fail unconditionally aborts.
void stack_chk_fail_abort(vm::machine& m);

// AES-NI analog: xmm15 <- AES-128-Encrypt(key = xmm1, block = xmm15).
void aes_encrypt_128(vm::machine& m);

// The SHA-1 instantiation of F for the OWF ablation: same register
// contract as aes_encrypt_128 but costed as *software* hashing — there is
// no SHA hardware in the modeled CPU, making the paper's "prohibitively
// expensive without hardware support" remark measurable.
void sha1_owf_128(vm::machine& m);

void strcpy_impl(vm::machine& m);
void memcpy_impl(vm::machine& m);
void memset_impl(vm::machine& m);
void strlen_impl(vm::machine& m);

}  // namespace native

}  // namespace pssp::binfmt
