// Workload modules: the SPEC-like suite, the servers and the databases
// must compute identical results under every scheme (protection must never
// change program semantics) and expose the call-density spread Figure 5
// depends on.

#include <gtest/gtest.h>

#include <unordered_set>

#include "compiler/codegen.hpp"
#include "proc/fork_server.hpp"
#include "workload/database.hpp"
#include "workload/harness.hpp"
#include "workload/spec.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using core::scheme_kind;
using workload::harness_options;
using workload::measure_module;

TEST(spec_suite, has_28_programs_with_unique_names) {
    const auto& profiles = workload::spec2006_profiles();
    EXPECT_EQ(profiles.size(), 28u);
    std::unordered_set<std::string> names;
    for (const auto& p : profiles) EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(spec_suite, covers_a_wide_call_density_range) {
    const auto& profiles = workload::spec2006_profiles();
    std::uint64_t min_inner = ~0ull;
    std::uint64_t max_inner = 0;
    for (const auto& p : profiles) {
        min_inner = std::min(min_inner, p.inner_iters);
        max_inner = std::max(max_inner, p.inner_iters);
    }
    EXPECT_LE(min_inner, 50u);    // call-heavy end (perlbench-like)
    EXPECT_GE(max_inner, 1200u);  // loop-heavy end (lbm-like)
}

// Protection must be semantically invisible: identical checksums across
// every scheme for every program. (Runs a subset; the Fig 5 bench sweeps
// all 28.)
class spec_semantics_test : public ::testing::TestWithParam<scheme_kind> {};

INSTANTIATE_TEST_SUITE_P(schemes, spec_semantics_test,
                         ::testing::Values(scheme_kind::ssp, scheme_kind::p_ssp,
                                           scheme_kind::p_ssp_nt,
                                           scheme_kind::p_ssp_owf,
                                           scheme_kind::dynaguard, scheme_kind::dcr),
                         [](const ::testing::TestParamInfo<scheme_kind>& info) {
                             std::string name = core::to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST_P(spec_semantics_test, checksums_match_native_build) {
    const auto& profiles = workload::spec2006_profiles();
    for (std::size_t i = 0; i < profiles.size(); i += 9) {
        const auto mod = workload::make_spec_module(profiles[i]);
        const auto native = measure_module(mod, scheme_kind::none, {});
        const auto protected_run = measure_module(mod, GetParam(), {});
        ASSERT_TRUE(native.completed);
        ASSERT_TRUE(protected_run.completed) << profiles[i].name;
        EXPECT_EQ(native.exit_code, protected_run.exit_code) << profiles[i].name;
    }
}

TEST(spec_suite, protection_costs_cycles_but_not_correctness) {
    const auto mod = workload::make_spec_module(workload::spec2006_profiles()[0]);
    const auto native = measure_module(mod, scheme_kind::none, {});
    const auto ssp = measure_module(mod, scheme_kind::ssp, {});
    const auto pssp = measure_module(mod, scheme_kind::p_ssp, {});
    EXPECT_GT(ssp.cycles, native.cycles);
    EXPECT_GT(pssp.cycles, ssp.cycles);  // 16-byte pair > single word
    // ...but by less than a percent on the call-heaviest program.
    EXPECT_LT(static_cast<double>(pssp.cycles),
              static_cast<double>(native.cycles) * 1.03);
}

TEST(spec_suite, instrumented_build_costs_more_than_compiled) {
    const auto mod = workload::make_spec_module(workload::spec2006_profiles()[0]);
    const auto compiled = measure_module(mod, scheme_kind::p_ssp, {});
    harness_options instr;
    instr.dep = workload::deployment::instrumented_dynamic;
    const auto instrumented = measure_module(mod, scheme_kind::p_ssp32, instr);
    EXPECT_GT(instrumented.cycles, compiled.cycles);
}

TEST(databases, queries_compute_identical_results_across_schemes) {
    for (const auto& profile : {workload::mysql_profile(), workload::sqlite_profile()}) {
        const auto mod = workload::make_db_module(profile);
        harness_options opt;
        opt.entry = "db_main";
        const auto native = measure_module(mod, scheme_kind::none, opt);
        const auto pssp = measure_module(mod, scheme_kind::p_ssp, opt);
        ASSERT_TRUE(native.completed && pssp.completed) << profile.name;
        EXPECT_EQ(native.exit_code, pssp.exit_code) << profile.name;
    }
}

TEST(databases, sqlite_queries_are_heavier_than_mysql) {
    harness_options opt;
    opt.entry = "db_main";
    const auto my = measure_module(workload::make_db_module(workload::mysql_profile()),
                                   scheme_kind::none, opt);
    const auto lite = measure_module(
        workload::make_db_module(workload::sqlite_profile()), scheme_kind::none, opt);
    const double my_per_query =
        static_cast<double>(my.cycles) / static_cast<double>(workload::mysql_profile().queries);
    const double lite_per_query =
        static_cast<double>(lite.cycles) /
        static_cast<double>(workload::sqlite_profile().queries);
    // Table IV's shape: SQLite's batch statements dwarf MySQL point queries.
    EXPECT_GT(lite_per_query, 10 * my_per_query);
}

TEST(webserver, profiles_differ_in_per_request_work) {
    EXPECT_GT(workload::apache_profile().parse_iters,
              workload::nginx_profile().parse_iters);
    EXPECT_EQ(workload::attack_prefix_bytes(workload::nginx_profile()), 64u);
}

TEST(webserver, server_module_has_expected_symbols) {
    const auto mod = workload::make_server_module(workload::nginx_profile());
    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::ssp));
    for (const char* sym : {"server_main", "accept_loop", "handle_request", "win"})
        EXPECT_TRUE(binary.symbols.contains(sym)) << sym;
    for (const char* data : {"g_request", "g_request_len", "g_response"})
        EXPECT_TRUE(binary.data_symbols.contains(data)) << data;
}

TEST(webserver, non_leaky_profile_refuses_the_leak_magic) {
    const auto profile = workload::ali_profile();  // leaky = false
    const auto binary = compiler::build_module(workload::make_server_module(profile),
                                               core::make_scheme(scheme_kind::ssp));
    proc::fork_server server{binary, core::make_scheme(scheme_kind::ssp), 3,
                             workload::server_config_for(profile)};
    const auto r = server.serve("LEAK");
    EXPECT_EQ(r.outcome, proc::worker_outcome::ok);
    // Only the 8-byte response — no stack dump.
    EXPECT_LE(r.output.size(), 8u);
}

}  // namespace
}  // namespace pssp
