// Deep-recursion integration: many live protected frames at once stress
// each scheme's per-frame state — DCR's in-stack linked list, P-SSP-GB's
// global buffer stack discipline, OWF's per-frame ciphertexts — and the
// fork hooks that must fix all of them.

#include <gtest/gtest.h>

#include "core/tls_layout.hpp"
#include "proc/process.hpp"
#include "test_helpers.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

// rec(depth): leaf writes through a buffer; every level is protected.
compiler::ir_module recursion_module() {
    compiler::ir_module mod;
    mod.name = "deep";
    mod.add_global("g_input", 256, {'d', 'e', 'e', 'p', 0});

    auto& fn = mod.add_function("rec");
    fn.param_count = 1;
    const int depth = compiler::add_local(fn, "depth");
    const int buf = compiler::add_local(fn, "buf", 16, /*is_buffer=*/true,
                                        /*is_critical=*/true);
    const int out = compiler::add_local(fn, "out");

    compiler::if_stmt base{compiler::local_ref{depth}, compiler::relop::eq,
                           compiler::const_ref{0}, {}, {}};
    base.then_body.push_back(compiler::call_stmt{
        "strcpy", {compiler::addr_of{buf}, compiler::global_addr{"g_input"}},
        std::nullopt, /*writes_memory=*/true});
    base.then_body.push_back(compiler::return_stmt{compiler::const_ref{1}});
    fn.body.push_back(base);

    const int next = compiler::add_local(fn, "next");
    fn.body.push_back(compiler::compute_stmt{next, compiler::local_ref{depth},
                                             compiler::binop::sub,
                                             compiler::const_ref{1}});
    fn.body.push_back(compiler::call_stmt{"rec", {compiler::local_ref{next}}, out});
    fn.body.push_back(compiler::compute_stmt{out, compiler::local_ref{out},
                                             compiler::binop::add,
                                             compiler::const_ref{1}});
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{out}});
    return mod;
}

class deep_recursion_test
    : public ::testing::TestWithParam<std::tuple<scheme_kind, int>> {};

INSTANTIATE_TEST_SUITE_P(
    schemes_by_depth, deep_recursion_test,
    ::testing::Combine(::testing::Values(scheme_kind::ssp, scheme_kind::dynaguard,
                                         scheme_kind::dcr, scheme_kind::p_ssp,
                                         scheme_kind::p_ssp_nt, scheme_kind::p_ssp_lv,
                                         scheme_kind::p_ssp_owf, scheme_kind::p_ssp32,
                                         scheme_kind::p_ssp_gb),
                       ::testing::Values(1, 17, 100)));

TEST_P(deep_recursion_test, all_frames_verify_on_unwind) {
    const auto [kind, depth] = GetParam();
    const auto binary =
        compiler::build_module(recursion_module(), core::make_scheme(kind));
    proc::process_manager manager{core::make_scheme(kind), 42};
    auto m = manager.create_process(binary);
    m.set(vm::reg::rdi, static_cast<std::uint64_t>(depth));
    m.call_function(binary.symbols.at("rec"));
    m.set_fuel(5'000'000);
    const auto r = m.run();
    ASSERT_EQ(r.status, vm::exec_status::exited)
        << core::to_string(kind) << " depth=" << depth << " trap="
        << vm::to_string(r.trap);
    EXPECT_EQ(r.exit_code, depth + 1);  // leaf returns 1, +1 per level
}

TEST(deep_recursion, dcr_list_head_returns_to_sentinel) {
    const auto binary =
        compiler::build_module(recursion_module(), core::make_scheme(scheme_kind::dcr));
    proc::process_manager manager{core::make_scheme(scheme_kind::dcr), 42};
    auto m = manager.create_process(binary);
    const auto sentinel = core::tls_load(m, core::tls_dcr_head);
    m.set(vm::reg::rdi, 50);
    m.call_function(binary.symbols.at("rec"));
    m.set_fuel(5'000'000);
    ASSERT_EQ(m.run().status, vm::exec_status::exited);
    // Every epilogue unlinked its frame: the list is empty again.
    EXPECT_EQ(core::tls_load(m, core::tls_dcr_head), sentinel);
}

TEST(deep_recursion, gb_top_pointer_balances) {
    const auto binary = compiler::build_module(recursion_module(),
                                               core::make_scheme(scheme_kind::p_ssp_gb));
    proc::process_manager manager{core::make_scheme(scheme_kind::p_ssp_gb), 42};
    auto m = manager.create_process(binary);
    const auto base = core::tls_load(m, core::tls_gbuf_top);
    m.set(vm::reg::rdi, 50);
    m.call_function(binary.symbols.at("rec"));
    m.set_fuel(5'000'000);
    ASSERT_EQ(m.run().status, vm::exec_status::exited);
    EXPECT_EQ(core::tls_load(m, core::tls_gbuf_top), base)
        << "push/pop discipline of the global canary buffer broke";
}

TEST(deep_recursion, owf_gives_every_frame_a_distinct_canary) {
    // Run partway down the chain, then inspect the live ciphertexts: the
    // nonce makes each frame's 16-byte canary unique even though the
    // return address of recursive calls repeats.
    const auto binary = compiler::build_module(recursion_module(),
                                               core::make_scheme(scheme_kind::p_ssp_owf));
    proc::process_manager manager{core::make_scheme(scheme_kind::p_ssp_owf), 42};
    auto m = manager.create_process(binary);
    m.set(vm::reg::rdi, 12);
    m.call_function(binary.symbols.at("rec"));
    m.set_fuel(5'000'000);
    ASSERT_EQ(m.run().status, vm::exec_status::exited);
    // (Frames are gone after the run; the uniqueness property is asserted
    // live by the leak tests — here we confirm the deep chain verified,
    // which would fail if two frames shared a nonce slot.)
}

TEST(deep_recursion, fork_mid_chain_preserves_all_inherited_frames) {
    // Fork hooks must leave a 100-frame inherited stack verifiable.
    for (const auto kind : {scheme_kind::p_ssp, scheme_kind::dynaguard,
                            scheme_kind::dcr, scheme_kind::p_ssp_gb}) {
        compiler::ir_module mod = recursion_module();
        // Replace the leaf's strcpy with a fork so the chain forks at depth 0.
        for (auto& fn : mod.functions) {
            if (fn.name != "rec") continue;
            auto& leaf = std::get<compiler::if_stmt>(fn.body[0].node);
            leaf.then_body.clear();
            const int pid = compiler::add_local(fn, "pid");
            leaf.then_body.push_back(compiler::call_stmt{"fork", {}, pid});
            leaf.then_body.push_back(compiler::return_stmt{compiler::const_ref{1}});
        }
        const auto binary = compiler::build_module(mod, core::make_scheme(kind));
        proc::process_manager manager{core::make_scheme(kind), 43};
        auto parent = manager.create_process(binary);
        parent.set(vm::reg::rdi, 100);
        parent.call_function(binary.symbols.at("rec"));
        parent.set_fuel(5'000'000);
        ASSERT_EQ(parent.run().status, vm::exec_status::syscalled)
            << core::to_string(kind);

        auto child = manager.fork_child(parent);
        child.complete_syscall(0);
        child.set_fuel(child.steps() + 5'000'000);
        const auto r = child.run();
        EXPECT_EQ(r.status, vm::exec_status::exited)
            << core::to_string(kind) << ": child failed unwinding inherited "
            << "frames (" << vm::to_string(r.trap) << ")";

        parent.complete_syscall(child.pid());
        parent.set_fuel(parent.steps() + 5'000'000);
        EXPECT_EQ(parent.run().status, vm::exec_status::exited)
            << core::to_string(kind) << ": parent failed its own unwind";
    }
}

}  // namespace
}  // namespace pssp
