// Memory region semantics and the cycle cost model — the two VM pieces the
// other suites exercise only indirectly.

#include <gtest/gtest.h>

#include <algorithm>

#include "vm/cost_model.hpp"
#include "vm/memory.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::memory;
using vm::reg;

TEST(memory, regions_are_disjoint_and_reachable) {
    memory m;
    const auto& lay = m.regions();
    m.store64(lay.globals_base, 1);
    m.store64(lay.stack_top - 8, 2);
    m.store64(lay.tls_base + 0x28, 3);
    EXPECT_EQ(m.load64(lay.globals_base), 1u);
    EXPECT_EQ(m.load64(lay.stack_top - 8), 2u);
    EXPECT_EQ(m.load64(lay.tls_base + 0x28), 3u);
}

TEST(memory, little_endian_byte_order) {
    memory m;
    const auto base = m.regions().globals_base;
    m.store64(base, 0x0102030405060708ull);
    EXPECT_EQ(m.load8(base), 0x08);      // lowest byte at lowest address
    EXPECT_EQ(m.load8(base + 7), 0x01);
    EXPECT_EQ(m.load32(base), 0x05060708u);
}

TEST(memory, faults_on_unmapped_and_straddling_access) {
    memory m;
    EXPECT_THROW((void)m.load64(0x10), vm::mem_fault);
    EXPECT_THROW(m.store8(0x10, 1), vm::mem_fault);
    // One byte past the end of the stack region.
    EXPECT_THROW((void)m.load64(m.regions().stack_top - 4), vm::mem_fault);
    // Region-straddling multi-byte access at the TLS end.
    EXPECT_THROW((void)m.load64(m.regions().tls_base + m.regions().tls_size - 4),
                 vm::mem_fault);
}

TEST(memory, fault_reports_address_and_size) {
    memory m;
    try {
        (void)m.load64(0x1234);
        FAIL() << "expected mem_fault";
    } catch (const vm::mem_fault& f) {
        EXPECT_EQ(f.addr(), 0x1234u);
        EXPECT_EQ(f.size(), 8u);
    }
}

TEST(memory, zero_length_write_at_region_base_is_harmless) {
    // Regression: a size-0 write at buffer offset 0 must not wrap the
    // dirty-page range computation (buf_off + size - 1).
    memory m;
    m.mark_all_clean();
    m.write_bytes(m.regions().stack_top - m.regions().stack_size, {});
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 0u);
}

TEST(memory, bulk_io_round_trips) {
    memory m;
    const auto base = m.regions().globals_base + 100;
    std::vector<std::uint8_t> out{1, 2, 3, 4, 5};
    m.write_bytes(base, out);
    std::vector<std::uint8_t> in(5);
    m.read_bytes(base, in);
    EXPECT_EQ(in, out);
}

TEST(memory, contains_checks_full_range) {
    memory m;
    EXPECT_TRUE(m.contains(m.regions().globals_base, 8));
    EXPECT_FALSE(m.contains(m.regions().globals_base + m.regions().globals_size - 4, 8));
    EXPECT_FALSE(m.contains(0, 1));
}

TEST(memory, resident_bytes_counts_all_regions) {
    memory m;
    const auto& lay = m.regions();
    EXPECT_EQ(m.resident_bytes(), lay.globals_size + lay.stack_size + lay.tls_size);
}

TEST(memory, try_at_resolves_like_the_throwing_api) {
    memory m;
    const auto& lay = m.regions();
    EXPECT_NE(m.try_at(lay.globals_base, 8), nullptr);
    EXPECT_NE(m.try_at(lay.stack_top - 8, 8), nullptr);
    EXPECT_NE(m.try_at(lay.tls_base + 0x28, 8), nullptr);
    EXPECT_EQ(m.try_at(0x10, 1), nullptr);                       // unmapped
    EXPECT_EQ(m.try_at(lay.stack_top - 4, 8), nullptr);          // past the end
    EXPECT_EQ(m.try_at(lay.tls_base + lay.tls_size - 4, 8), nullptr);  // straddle
    // The mutable variant resolves identically and is what stores use.
    EXPECT_NE(m.try_at_mut(lay.globals_base, 8), nullptr);
    EXPECT_EQ(m.try_at_mut(0x10, 1), nullptr);
}

TEST(memory, stores_mark_pages_dirty_loads_do_not) {
    memory m;
    m.mark_all_clean();
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 0u);
    (void)m.load64(m.regions().globals_base);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 0u);
    m.store8(m.regions().globals_base, 1);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 1u);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::fork), 1u);
    // A store spanning a page boundary dirties both pages (the first of
    // which the store8 above already marked).
    m.store64(m.regions().globals_base + memory::page_bytes - 4, 7);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 2u);
    m.store8(m.regions().globals_base + 3 * memory::page_bytes, 1);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 3u);
}

TEST(memory, restore_rewinds_dirty_pages_only) {
    memory m;
    const auto base = m.regions().globals_base;
    m.store64(base, 0x1111);
    m.store64(m.regions().stack_top - 16, 0x2222);
    const memory snap = m;  // snapshot while...
    m.mark_clean(vm::dirty_channel::restore);  // ...the restore channel is clean

    m.store64(base, 0xdead);
    m.store64(base + 64 * 1024, 0xbeef);
    m.store64(m.regions().tls_base + 0x28, 0xcafe);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 3u);

    m.restore_from(snap);
    EXPECT_EQ(m.dirty_pages(vm::dirty_channel::restore), 0u);
    EXPECT_EQ(m.load64(base), 0x1111u);
    EXPECT_EQ(m.load64(base + 64 * 1024), 0u);
    EXPECT_EQ(m.load64(m.regions().tls_base + 0x28), 0u);
    EXPECT_EQ(m.load64(m.regions().stack_top - 16), 0x2222u);
    // The full images agree, not just the probed words.
    EXPECT_TRUE(std::equal(m.stack_bytes().begin(), m.stack_bytes().end(),
                           snap.stack_bytes().begin()));
    EXPECT_TRUE(std::equal(m.globals_bytes().begin(), m.globals_bytes().end(),
                           snap.globals_bytes().begin()));
    EXPECT_TRUE(std::equal(m.tls_bytes().begin(), m.tls_bytes().end(),
                           snap.tls_bytes().begin()));
}

TEST(memory, restored_pages_show_up_on_the_fork_channel) {
    memory m;
    const memory snap = m;
    m.mark_all_clean();
    m.store64(m.regions().globals_base, 1);
    memory twin = m;  // identical from here on
    twin.mark_clean(vm::dirty_channel::fork);
    m.mark_clean(vm::dirty_channel::fork);

    m.restore_from(snap);  // rewinds the store; twin must learn about it
    EXPECT_GE(m.dirty_pages(vm::dirty_channel::fork), 1u);
    twin.sync_from(m);
    EXPECT_EQ(twin.load64(twin.regions().globals_base), 0u);
}

TEST(memory, sync_converges_diverged_images) {
    memory a;
    memory b = a;
    a.mark_clean(vm::dirty_channel::fork);
    b.mark_clean(vm::dirty_channel::fork);

    a.store64(a.regions().globals_base, 0xaaaa);          // a-side divergence
    b.store64(b.regions().stack_top - 8, 0xbbbb);         // b-side divergence
    b.store64(b.regions().globals_base + 8192, 0xcccc);

    a.sync_from(b);
    EXPECT_EQ(a.load64(a.regions().globals_base), 0u);    // a's write undone
    EXPECT_EQ(a.load64(a.regions().stack_top - 8), 0xbbbbu);
    EXPECT_EQ(a.load64(a.regions().globals_base + 8192), 0xccccu);
    EXPECT_EQ(a.dirty_pages(vm::dirty_channel::fork), 0u);
    EXPECT_EQ(b.dirty_pages(vm::dirty_channel::fork), 0u);
    EXPECT_TRUE(std::equal(a.stack_bytes().begin(), a.stack_bytes().end(),
                           b.stack_bytes().begin()));
    EXPECT_TRUE(std::equal(a.globals_bytes().begin(), a.globals_bytes().end(),
                           b.globals_bytes().begin()));
}

TEST(memory, restore_rejects_mismatched_layouts) {
    memory a;
    vm::mem_layout small;
    small.stack_size = 64 * 1024;
    memory b{small};
    EXPECT_THROW(a.restore_from(b), std::invalid_argument);
    EXPECT_THROW(a.sync_from(b), std::invalid_argument);
}

TEST(cost_model, calibration_constants_match_table5_inputs) {
    const vm::cost_model costs;
    // These anchor Table V (DESIGN.md §5); changing them silently would
    // invalidate EXPERIMENTS.md.
    EXPECT_EQ(costs.rdrand, 330u);
    EXPECT_EQ(costs.aes_helper, 118u);
    EXPECT_EQ(costs.rdtsc, 24u);
    EXPECT_EQ(costs.cost_of(mov_rr(reg::rax, reg::rcx)), costs.alu);
    EXPECT_EQ(costs.cost_of(rdrand(reg::rax)), costs.rdrand);
    EXPECT_EQ(costs.cost_of(call_sym(0)), costs.call);
    EXPECT_EQ(costs.cost_of(je(0)), costs.branch);
    EXPECT_EQ(costs.cost_of(syscall_i(57)), costs.syscall);
}

TEST(cost_model, sim_delay_charges_its_immediate) {
    const vm::cost_model costs;
    EXPECT_EQ(costs.cost_of(sim_delay(450)), 450u);
}

TEST(cost_model, dbi_tax_applies_to_every_instruction) {
    vm::cost_model costs;
    costs.dbi_tax = 2;
    EXPECT_EQ(costs.cost_of(nop()), costs.alu + 2);
    EXPECT_EQ(costs.cost_of(rdrand(reg::rax)), costs.rdrand + 2);
}

}  // namespace
}  // namespace pssp
