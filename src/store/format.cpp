#include "store/format.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/json.hpp"

namespace pssp::store {

namespace {

// Every ingest.log line is {"e":<body>,"fnv":"<16 hex>"} — the same
// fixed-width armor idiom as the dist checkpoint, under a different
// wrapper key so a store log can never be mistaken for a checkpoint.
constexpr std::string_view line_prefix = "{\"e\":";
constexpr std::string_view fnv_prefix = ",\"fnv\":\"";
constexpr std::size_t fnv_hex_digits = 16;
constexpr std::size_t line_suffix_size = fnv_prefix.size() + fnv_hex_digits + 2;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error{"store: " + what};
}

void append_hexdouble(std::string& out, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%a\"", value);
    out += buf;
}

const char* kind_name(entry_kind kind) {
    switch (kind) {
        case entry_kind::blocks: return "blocks";
        case entry_kind::round: return "round";
        case entry_kind::metrics: return "metrics";
        case entry_kind::complete: return "complete";
    }
    throw std::invalid_argument{"store: unknown entry_kind"};
}

std::string entry_body(const log_entry& entry) {
    std::string body = "{";
    util::append_kv(body, "k", std::string{kind_name(entry.kind)});
    util::append_kv(body, "seq", entry.seq);
    switch (entry.kind) {
        case entry_kind::blocks: {
            util::append_kv(body, "round", entry.round);
            body += "\"blocks\":[";
            for (std::size_t i = 0; i < entry.blocks.size(); ++i) {
                if (i > 0) body += ',';
                dist::append_partial_block(body, entry.blocks[i]);
            }
            body += "]}";
            return body;
        }
        case entry_kind::round: {
            body += "\"summary\":";
            body += obs::round_summary_json(entry.summary);
            body += '}';
            return body;
        }
        case entry_kind::metrics: {
            body += "\"metrics\":";
            body += entry.metrics;
            body += '}';
            return body;
        }
        case entry_kind::complete: {
            util::append_kv(body, "rounds", entry.done.rounds);
            body += "\"report_fnv\":\"";
            util::append_hex16(body, entry.done.report_fnv);
            body += "\"}";
            return body;
        }
    }
    throw std::invalid_argument{"store: unknown entry_kind"};
}

}  // namespace

log_entry log_entry::make_blocks(std::uint64_t seq, std::uint64_t round,
                                 std::span<const dist::partial_block> blocks) {
    log_entry e;
    e.kind = entry_kind::blocks;
    e.seq = seq;
    e.round = round;
    e.blocks.assign(blocks.begin(), blocks.end());
    return e;
}

log_entry log_entry::make_round(std::uint64_t seq,
                                const obs::round_summary& summary) {
    log_entry e;
    e.kind = entry_kind::round;
    e.seq = seq;
    e.summary = summary;
    return e;
}

log_entry log_entry::make_metrics(std::uint64_t seq, std::string metrics_json) {
    log_entry e;
    e.kind = entry_kind::metrics;
    e.seq = seq;
    e.metrics = std::move(metrics_json);
    return e;
}

log_entry log_entry::make_complete(std::uint64_t seq, std::uint64_t rounds,
                                   std::uint64_t report_fnv) {
    log_entry e;
    e.kind = entry_kind::complete;
    e.seq = seq;
    e.done = completion{seq, rounds, report_fnv};
    return e;
}

std::string encode_log_line(const log_entry& entry) {
    const std::string body = entry_body(entry);
    std::string line;
    line.reserve(body.size() + line_prefix.size() + line_suffix_size + 1);
    line += line_prefix;
    line += body;
    line += fnv_prefix;
    util::append_hex16(line, util::fnv1a64(body));
    line += "\"}\n";
    return line;
}

obs::round_summary round_summary_from_json(const util::json_value& v) {
    obs::round_summary s;
    s.round = v.at("round").as_u64();
    s.blocks = v.at("blocks").as_u64();
    s.trials = v.at("trials").as_u64();
    s.cumulative_trials = v.at("cumulative_trials").as_u64();
    s.max_halfwidth = v.at("max_halfwidth").as_double();
    s.widest_cell = v.at("widest_cell").as_string();
    s.wall_seconds = v.at("wall_seconds").as_double();
    if (const auto* shards = v.find("shards")) {
        for (const auto& e : shards->elements()) {
            obs::shard_time t;
            t.shard = static_cast<std::uint32_t>(e.at("shard").as_u64());
            t.wall_seconds = e.at("wall").as_double();
            t.user_seconds = e.at("user").as_double();
            t.sys_seconds = e.at("sys").as_double();
            s.shards.push_back(t);
        }
    }
    if (const auto* rec = v.find("recovery")) {
        s.retries = rec->at("retries").as_u64();
        s.requeued_blocks = rec->at("requeued_blocks").as_u64();
        s.timeouts = rec->at("timeouts").as_u64();
        s.resumed = rec->at("resumed").as_bool();
    }
    return s;
}

log_entry decode_log_line(const std::string& path, std::size_t line_no,
                          std::string_view line) {
    auto bad = [&path, line_no](const std::string& why) -> std::runtime_error {
        return std::runtime_error{"store: " + path + " line " +
                                  std::to_string(line_no) + ": " + why};
    };
    if (line.size() < line_prefix.size() + line_suffix_size + 2 ||
        line.substr(0, line_prefix.size()) != line_prefix)
        throw bad("truncated or malformed entry");
    const std::string_view suffix = line.substr(line.size() - line_suffix_size);
    if (suffix.substr(0, fnv_prefix.size()) != fnv_prefix ||
        suffix.substr(line_suffix_size - 2) != "\"}")
        throw bad("truncated or malformed entry (bad integrity suffix)");
    std::uint64_t expected = 0;
    if (!util::parse_hex16(suffix.substr(fnv_prefix.size(), fnv_hex_digits),
                           expected))
        throw bad("malformed integrity hash");
    const std::string_view body = line.substr(
        line_prefix.size(), line.size() - line_prefix.size() - line_suffix_size);
    if (util::fnv1a64(body) != expected)
        throw bad("integrity hash mismatch — entry is corrupt");

    log_entry entry;
    try {
        const auto doc = util::parse_json(body);
        const auto& kind = doc.at("k").as_string();
        entry.seq = doc.at("seq").as_u64();
        if (kind == "blocks") {
            entry.kind = entry_kind::blocks;
            entry.round = doc.at("round").as_u64();
            for (const auto& b : doc.at("blocks").elements())
                entry.blocks.push_back(dist::partial_block_from_json(b));
        } else if (kind == "round") {
            entry.kind = entry_kind::round;
            entry.summary = round_summary_from_json(doc.at("summary"));
        } else if (kind == "metrics") {
            entry.kind = entry_kind::metrics;
            // The snapshot travels verbatim: the header's key order is
            // fixed, so the bytes after the first "metrics": up to the
            // body's closing brace are exactly what was ingested (the
            // parse above already validated them).
            (void)doc.at("metrics");
            constexpr std::string_view marker = "\"metrics\":";
            const auto pos = body.find(marker);
            entry.metrics = std::string{body.substr(
                pos + marker.size(), body.size() - pos - marker.size() - 1)};
        } else if (kind == "complete") {
            entry.kind = entry_kind::complete;
            entry.done.seq = entry.seq;
            entry.done.rounds = doc.at("rounds").as_u64();
            if (!util::parse_hex16(doc.at("report_fnv").as_string(),
                                   entry.done.report_fnv))
                throw std::runtime_error{"bad report_fnv"};
        } else {
            throw std::runtime_error{"unknown entry kind \"" + kind + "\""};
        }
    } catch (const std::exception& e) {
        throw bad(std::string{"unreadable entry: "} + e.what());
    }
    return entry;
}

std::string encode_manifest(const manifest& m) {
    std::string out = "{\"store\":{";
    util::append_kv(out, "version", static_cast<std::uint64_t>(m.version));
    util::append_kv(out, "spec_digest", m.spec_digest);
    util::append_kv(out, "compacted_seq", m.compacted_seq);
    util::append_kv_bool(out, "complete", m.complete);
    out += "\"spec\":";
    dist::append_spec_object(out, m.spec);
    out += ",\"segments\":[";
    for (std::size_t i = 0; i < m.segments.size(); ++i) {
        const auto& s = m.segments[i];
        if (i > 0) out += ',';
        out += '{';
        util::append_kv(out, "file", s.file);
        util::append_kv(out, "first_seq", s.first_seq);
        util::append_kv(out, "last_seq", s.last_seq);
        util::append_kv(out, "block_rows", s.block_rows);
        util::append_kv(out, "round_rows", s.round_rows);
        out += "\"fnv\":\"";
        util::append_hex16(out, s.fnv);
        out += "\"}";
    }
    out += "]}}\n";
    return out;
}

manifest decode_manifest(const std::string& path, std::string_view text) {
    manifest m;
    try {
        const auto doc = util::parse_json(text);
        const auto& s = doc.at("store");
        m.version = static_cast<std::uint32_t>(s.at("version").as_u64());
        if (m.version != store_format_version)
            throw std::runtime_error{"store format version " +
                                     std::to_string(m.version) + " != " +
                                     std::to_string(store_format_version)};
        m.spec_digest = s.at("spec_digest").as_u64();
        m.compacted_seq = s.at("compacted_seq").as_u64();
        m.complete = s.at("complete").as_bool();
        m.spec = dist::spec_from_object(s.at("spec"));
        for (const auto& e : s.at("segments").elements()) {
            segment_info info;
            info.file = e.at("file").as_string();
            info.first_seq = e.at("first_seq").as_u64();
            info.last_seq = e.at("last_seq").as_u64();
            info.block_rows = e.at("block_rows").as_u64();
            info.round_rows = e.at("round_rows").as_u64();
            if (!util::parse_hex16(e.at("fnv").as_string(), info.fnv))
                throw std::runtime_error{"bad segment fnv"};
            m.segments.push_back(std::move(info));
        }
    } catch (const std::exception& e) {
        fail(path + " is unreadable: " + e.what());
    }
    return m;
}

namespace {

// ---- column emit helpers ----

template <class Row, class Get>
void append_u64_column(std::string& out, const char* key,
                       std::span<const Row> rows, Get get, bool comma = true) {
    out += '"';
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(static_cast<std::uint64_t>(get(rows[i])));
    }
    out += ']';
    if (comma) out += ',';
}

template <class Row, class Get>
void append_hex_column(std::string& out, const char* key,
                       std::span<const Row> rows, Get get, bool comma = true) {
    out += '"';
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) out += ',';
        append_hexdouble(out, get(rows[i]));
    }
    out += ']';
    if (comma) out += ',';
}

template <class Row, class Get>
void append_string_column(std::string& out, const char* key,
                          std::span<const Row> rows, Get get,
                          bool comma = true) {
    out += '"';
    out += key;
    out += "\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += util::json_escape(get(rows[i]));
        out += '"';
    }
    out += ']';
    if (comma) out += ',';
}

// A Welford accumulator column group: six parallel arrays of its raw
// recurrence state, n as integers, the doubles hexfloat-exact.
template <class Get>
void append_welford_columns(std::string& out, const char* key,
                            std::span<const block_row> rows, Get get,
                            bool comma = true) {
    out += '"';
    out += key;
    out += "\":{";
    append_u64_column(out, "n", rows,
                      [&get](const block_row& r) { return get(r).save().n; });
    append_hex_column(out, "mean", rows,
                      [&get](const block_row& r) { return get(r).save().mean; });
    append_hex_column(out, "m2", rows,
                      [&get](const block_row& r) { return get(r).save().m2; });
    append_hex_column(out, "min", rows,
                      [&get](const block_row& r) { return get(r).save().min; });
    append_hex_column(out, "max", rows,
                      [&get](const block_row& r) { return get(r).save().max; });
    append_hex_column(
        out, "total", rows,
        [&get](const block_row& r) { return get(r).save().total; },
        /*comma=*/false);
    out += '}';
    if (comma) out += ',';
}

// ---- column parse helpers ----

std::vector<std::uint64_t> u64_column(const util::json_value& table,
                                      const char* key, std::size_t expect) {
    std::vector<std::uint64_t> out;
    for (const auto& e : table.at(key).elements()) out.push_back(e.as_u64());
    if (out.size() != expect)
        throw std::runtime_error{std::string{"column \""} + key +
                                 "\" length mismatch"};
    return out;
}

std::vector<double> hex_column(const util::json_value& table, const char* key,
                               std::size_t expect) {
    std::vector<double> out;
    for (const auto& e : table.at(key).elements())
        out.push_back(e.as_double_exact());
    if (out.size() != expect)
        throw std::runtime_error{std::string{"column \""} + key +
                                 "\" length mismatch"};
    return out;
}

util::welford_accumulator welford_at(const util::json_value& group,
                                     std::size_t i) {
    util::welford_accumulator::state s;
    s.n = group.at("n").elements().at(i).as_u64();
    s.mean = group.at("mean").elements().at(i).as_double_exact();
    s.m2 = group.at("m2").elements().at(i).as_double_exact();
    s.min = group.at("min").elements().at(i).as_double_exact();
    s.max = group.at("max").elements().at(i).as_double_exact();
    s.total = group.at("total").elements().at(i).as_double_exact();
    return util::welford_accumulator::restore(s);
}

}  // namespace

std::string encode_segment(std::span<const block_row> blocks,
                           std::span<const round_row> rounds) {
    std::string out;
    out.reserve(256 + blocks.size() * 512 + rounds.size() * 256);
    out += "{\"segment\":{";
    util::append_kv(out, "version",
                    static_cast<std::uint64_t>(store_format_version));
    util::append_kv(out, "block_rows", blocks.size());
    util::append_kv(out, "round_rows", rounds.size());

    out += "\"blocks\":{";
    append_u64_column(out, "seq", blocks,
                      [](const block_row& r) { return r.seq; });
    append_u64_column(out, "round", blocks,
                      [](const block_row& r) { return r.round; });
    append_u64_column(out, "index", blocks,
                      [](const block_row& r) { return r.block.index; });
    append_u64_column(out, "cell", blocks,
                      [](const block_row& r) { return r.block.cell; });
    append_u64_column(out, "trials", blocks,
                      [](const block_row& r) { return r.block.partial.trials; });
    append_u64_column(out, "hijacks", blocks, [](const block_row& r) {
        return r.block.partial.hijacks;
    });
    append_u64_column(out, "detections", blocks, [](const block_row& r) {
        return r.block.partial.detections;
    });
    append_u64_column(out, "canary_detections", blocks, [](const block_row& r) {
        return r.block.partial.canary_detections;
    });
    append_u64_column(out, "other_crashes", blocks, [](const block_row& r) {
        return r.block.partial.other_crashes;
    });
    append_welford_columns(
        out, "queries", blocks,
        [](const block_row& r) -> const util::welford_accumulator& {
            return r.block.partial.queries;
        });
    append_welford_columns(
        out, "queries_to_compromise", blocks,
        [](const block_row& r) -> const util::welford_accumulator& {
            return r.block.partial.queries_to_compromise;
        });
    append_welford_columns(
        out, "leaked_bytes_valid", blocks,
        [](const block_row& r) -> const util::welford_accumulator& {
            return r.block.partial.leaked_bytes_valid;
        },
        /*comma=*/false);
    out += "},";

    out += "\"rounds\":{";
    append_u64_column(out, "seq", rounds,
                      [](const round_row& r) { return r.seq; });
    append_u64_column(out, "round", rounds,
                      [](const round_row& r) { return r.summary.round; });
    append_u64_column(out, "blocks", rounds,
                      [](const round_row& r) { return r.summary.blocks; });
    append_u64_column(out, "trials", rounds,
                      [](const round_row& r) { return r.summary.trials; });
    append_u64_column(out, "cumulative_trials", rounds, [](const round_row& r) {
        return r.summary.cumulative_trials;
    });
    append_hex_column(out, "max_halfwidth", rounds, [](const round_row& r) {
        return r.summary.max_halfwidth;
    });
    append_string_column(
        out, "widest_cell", rounds,
        [](const round_row& r) -> const std::string& {
            return r.summary.widest_cell;
        });
    append_hex_column(out, "wall_seconds", rounds, [](const round_row& r) {
        return r.summary.wall_seconds;
    });
    append_u64_column(out, "retries", rounds,
                      [](const round_row& r) { return r.summary.retries; });
    append_u64_column(out, "requeued_blocks", rounds, [](const round_row& r) {
        return r.summary.requeued_blocks;
    });
    append_u64_column(out, "timeouts", rounds,
                      [](const round_row& r) { return r.summary.timeouts; });
    append_u64_column(out, "resumed", rounds, [](const round_row& r) {
        return r.summary.resumed ? 1u : 0u;
    });
    // Shard rusage rows flattened into parallel columns; "row" points each
    // shard sample back at its round row.
    struct shard_sample {
        std::uint64_t row;
        obs::shard_time time;
    };
    std::vector<shard_sample> samples;
    for (std::size_t i = 0; i < rounds.size(); ++i)
        for (const auto& t : rounds[i].summary.shards)
            samples.push_back(shard_sample{i, t});
    const std::span<const shard_sample> sample_span{samples};
    out += "\"shards\":{";
    append_u64_column(out, "row", sample_span,
                      [](const shard_sample& s) { return s.row; });
    append_u64_column(out, "shard", sample_span,
                      [](const shard_sample& s) { return s.time.shard; });
    append_hex_column(out, "wall", sample_span, [](const shard_sample& s) {
        return s.time.wall_seconds;
    });
    append_hex_column(out, "user", sample_span, [](const shard_sample& s) {
        return s.time.user_seconds;
    });
    append_hex_column(
        out, "sys", sample_span,
        [](const shard_sample& s) { return s.time.sys_seconds; },
        /*comma=*/false);
    out += "}}}}\n";
    return out;
}

void decode_segment(const std::string& path, std::string_view text,
                    std::vector<block_row>& blocks,
                    std::vector<round_row>& rounds) {
    try {
        const auto doc = util::parse_json(text);
        const auto& seg = doc.at("segment");
        const auto version = seg.at("version").as_u64();
        if (version != store_format_version)
            throw std::runtime_error{"segment version " +
                                     std::to_string(version) + " != " +
                                     std::to_string(store_format_version)};
        const std::size_t n_blocks = seg.at("block_rows").as_u64();
        const std::size_t n_rounds = seg.at("round_rows").as_u64();

        const auto& bt = seg.at("blocks");
        const auto seq = u64_column(bt, "seq", n_blocks);
        const auto round = u64_column(bt, "round", n_blocks);
        const auto index = u64_column(bt, "index", n_blocks);
        const auto cell = u64_column(bt, "cell", n_blocks);
        const auto trials = u64_column(bt, "trials", n_blocks);
        const auto hijacks = u64_column(bt, "hijacks", n_blocks);
        const auto detections = u64_column(bt, "detections", n_blocks);
        const auto canary = u64_column(bt, "canary_detections", n_blocks);
        const auto other = u64_column(bt, "other_crashes", n_blocks);
        const auto& queries = bt.at("queries");
        const auto& qtc = bt.at("queries_to_compromise");
        const auto& leaked = bt.at("leaked_bytes_valid");
        for (std::size_t i = 0; i < n_blocks; ++i) {
            block_row r;
            r.seq = seq[i];
            r.round = round[i];
            r.block.index = index[i];
            r.block.cell = cell[i];
            r.block.partial.trials = trials[i];
            r.block.partial.hijacks = hijacks[i];
            r.block.partial.detections = detections[i];
            r.block.partial.canary_detections = canary[i];
            r.block.partial.other_crashes = other[i];
            r.block.partial.queries = welford_at(queries, i);
            r.block.partial.queries_to_compromise = welford_at(qtc, i);
            r.block.partial.leaked_bytes_valid = welford_at(leaked, i);
            blocks.push_back(std::move(r));
        }

        const auto& rt = seg.at("rounds");
        const auto rseq = u64_column(rt, "seq", n_rounds);
        const auto rround = u64_column(rt, "round", n_rounds);
        const auto rblocks = u64_column(rt, "blocks", n_rounds);
        const auto rtrials = u64_column(rt, "trials", n_rounds);
        const auto rcum = u64_column(rt, "cumulative_trials", n_rounds);
        const auto rhw = hex_column(rt, "max_halfwidth", n_rounds);
        const auto& rcell = rt.at("widest_cell").elements();
        const auto rwall = hex_column(rt, "wall_seconds", n_rounds);
        const auto rretries = u64_column(rt, "retries", n_rounds);
        const auto rrequeued = u64_column(rt, "requeued_blocks", n_rounds);
        const auto rtimeouts = u64_column(rt, "timeouts", n_rounds);
        const auto rresumed = u64_column(rt, "resumed", n_rounds);
        if (rcell.size() != n_rounds)
            throw std::runtime_error{"column \"widest_cell\" length mismatch"};
        const std::size_t base = rounds.size();
        for (std::size_t i = 0; i < n_rounds; ++i) {
            round_row r;
            r.seq = rseq[i];
            r.summary.round = rround[i];
            r.summary.blocks = rblocks[i];
            r.summary.trials = rtrials[i];
            r.summary.cumulative_trials = rcum[i];
            r.summary.max_halfwidth = rhw[i];
            r.summary.widest_cell = rcell[i].as_string();
            r.summary.wall_seconds = rwall[i];
            r.summary.retries = rretries[i];
            r.summary.requeued_blocks = rrequeued[i];
            r.summary.timeouts = rtimeouts[i];
            r.summary.resumed = rresumed[i] != 0;
            rounds.push_back(std::move(r));
        }
        const auto& st = rt.at("shards");
        const auto& srow = st.at("row").elements();
        const auto& sshard = st.at("shard").elements();
        const auto& swall = st.at("wall").elements();
        const auto& suser = st.at("user").elements();
        const auto& ssys = st.at("sys").elements();
        for (std::size_t i = 0; i < srow.size(); ++i) {
            const std::size_t row = srow[i].as_u64();
            if (row >= n_rounds)
                throw std::runtime_error{"shard sample points past round rows"};
            obs::shard_time t;
            t.shard = static_cast<std::uint32_t>(sshard[i].as_u64());
            t.wall_seconds = swall.at(i).as_double_exact();
            t.user_seconds = suser.at(i).as_double_exact();
            t.sys_seconds = ssys.at(i).as_double_exact();
            rounds[base + row].summary.shards.push_back(t);
        }
    } catch (const std::exception& e) {
        fail(path + " is unreadable: " + e.what());
    }
}

std::string segment_file_name(std::uint64_t first_seq) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "seg-%012llu.json",
                  static_cast<unsigned long long>(first_seq));
    return buf;
}

}  // namespace pssp::store
