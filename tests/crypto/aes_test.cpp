// AES-128 known-answer tests (FIPS-197 / SP 800-38A) and properties the
// P-SSP-OWF construction depends on.

#include <gtest/gtest.h>

#include <array>

#include "crypto/aes128.hpp"
#include "util/bytes.hpp"

namespace pssp {
namespace {

using crypto::aes128;

std::array<std::uint8_t, 16> from_hex(const char* hex) {
    std::array<std::uint8_t, 16> out{};
    for (int i = 0; i < 16; ++i) {
        auto nyb = [&](char c) -> std::uint8_t {
            if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
            return static_cast<std::uint8_t>(c - 'a' + 10);
        };
        out[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((nyb(hex[2 * i]) << 4) | nyb(hex[2 * i + 1]));
    }
    return out;
}

TEST(aes128, fips197_appendix_b_vector) {
    const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
    auto block = from_hex("3243f6a8885a308d313198a2e0370734");
    const auto expected = from_hex("3925841d02dc09fbdc118597196a0b32");
    aes128 cipher{std::span<const std::uint8_t, 16>{key}};
    cipher.encrypt_block(std::span<std::uint8_t, 16>{block});
    EXPECT_EQ(block, expected);
}

TEST(aes128, fips197_appendix_c_vector) {
    const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
    auto block = from_hex("00112233445566778899aabbccddeeff");
    const auto expected = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
    aes128 cipher{std::span<const std::uint8_t, 16>{key}};
    cipher.encrypt_block(std::span<std::uint8_t, 16>{block});
    EXPECT_EQ(block, expected);
}

TEST(aes128, sp800_38a_ecb_vectors) {
    const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
    aes128 cipher{std::span<const std::uint8_t, 16>{key}};
    struct kat {
        const char* pt;
        const char* ct;
    };
    const kat kats[] = {
        {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
        {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
        {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
        {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
    };
    for (const auto& k : kats) {
        auto block = from_hex(k.pt);
        cipher.encrypt_block(std::span<std::uint8_t, 16>{block});
        EXPECT_EQ(block, from_hex(k.ct)) << k.pt;
    }
}

TEST(aes128, word_interface_matches_byte_interface) {
    const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
    auto block = from_hex("00112233445566778899aabbccddeeff");
    const std::uint64_t key_lo = util::load_le64(std::span{key}.subspan(0, 8));
    const std::uint64_t key_hi = util::load_le64(std::span{key}.subspan(8, 8));
    const std::uint64_t pt_lo = util::load_le64(std::span{block}.subspan(0, 8));
    const std::uint64_t pt_hi = util::load_le64(std::span{block}.subspan(8, 8));

    aes128 byte_cipher{std::span<const std::uint8_t, 16>{key}};
    byte_cipher.encrypt_block(std::span<std::uint8_t, 16>{block});

    const aes128 word_cipher{key_lo, key_hi};
    const auto ct = word_cipher.encrypt({pt_lo, pt_hi});
    EXPECT_EQ(ct.lo, util::load_le64(std::span{block}.subspan(0, 8)));
    EXPECT_EQ(ct.hi, util::load_le64(std::span{block}.subspan(8, 8)));
}

TEST(aes128, deterministic) {
    const aes128 cipher{0x0123456789abcdefull, 0xfedcba9876543210ull};
    EXPECT_EQ(cipher.encrypt({1, 2}), cipher.encrypt({1, 2}));
}

TEST(aes128, key_sensitivity) {
    const aes128 a{1, 0};
    const aes128 b{2, 0};
    EXPECT_NE(a.encrypt({42, 42}), b.encrypt({42, 42}));
}

TEST(aes128, plaintext_sensitivity_single_bit) {
    const aes128 cipher{7, 7};
    const auto base = cipher.encrypt({0, 0});
    for (int bit = 0; bit < 64; bit += 13) {
        const auto flipped = cipher.encrypt({std::uint64_t{1} << bit, 0});
        EXPECT_NE(base, flipped) << "bit " << bit;
    }
}

// Avalanche: flipping one plaintext bit flips roughly half the ciphertext
// bits — the property that makes OWF canaries unforgeable byte-by-byte.
TEST(aes128, avalanche) {
    const aes128 cipher{0xdeadbeef, 0xfeedface};
    const auto a = cipher.encrypt({0x1111, 0x2222});
    const auto b = cipher.encrypt({0x1111 ^ 1, 0x2222});
    const int flipped = __builtin_popcountll(a.lo ^ b.lo) +
                        __builtin_popcountll(a.hi ^ b.hi);
    EXPECT_GT(flipped, 40);
    EXPECT_LT(flipped, 88);
}

}  // namespace
}  // namespace pssp
