// End-to-end detection properties, per scheme: benign inputs pass, canary-
// crossing overflows are caught, and each scheme's layout behaves as
// documented. These are the library's most important invariants, so they
// run as parameterized sweeps over every protecting scheme.

#include <gtest/gtest.h>

#include "core/tls_layout.hpp"
#include "test_helpers.hpp"

namespace pssp {
namespace {

using core::scheme_kind;
using testing::built_program;
using testing::filler;
using testing::vulnerable_module;

class detection_test : public ::testing::TestWithParam<scheme_kind> {};

// Every protecting scheme in the library.
const scheme_kind protecting[] = {
    scheme_kind::ssp,      scheme_kind::raf_ssp,   scheme_kind::dynaguard,
    scheme_kind::dcr,      scheme_kind::p_ssp,     scheme_kind::p_ssp_nt,
    scheme_kind::p_ssp_lv, scheme_kind::p_ssp_owf, scheme_kind::p_ssp32,
    scheme_kind::p_ssp_gb, scheme_kind::p_ssp_c0tls,
};

INSTANTIATE_TEST_SUITE_P(all_schemes, detection_test,
                         ::testing::ValuesIn(protecting),
                         [](const ::testing::TestParamInfo<scheme_kind>& info) {
                             std::string name = core::to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST_P(detection_test, benign_request_executes_normally) {
    built_program bp{vulnerable_module(), GetParam()};
    const auto r = bp.run_with_request("hello world");
    ASSERT_EQ(r.status, vm::exec_status::exited) << vm::to_string(r.trap);
    // checksum = 7 * 33 = 231 (the handler's arithmetic ran to completion).
    EXPECT_EQ(r.exit_code, 231);
}

TEST_P(detection_test, empty_request_executes_normally) {
    built_program bp{vulnerable_module(), GetParam()};
    const auto r = bp.run_with_request("");
    ASSERT_EQ(r.status, vm::exec_status::exited);
}

TEST_P(detection_test, request_filling_buffer_exactly_is_benign) {
    // 63 bytes + NUL fills the 64-byte buffer without spilling.
    built_program bp{vulnerable_module(64), GetParam()};
    const auto r = bp.run_with_request(filler(63));
    ASSERT_EQ(r.status, vm::exec_status::exited) << vm::to_string(r.trap);
}

TEST_P(detection_test, overflow_into_canary_is_detected) {
    built_program bp{vulnerable_module(64), GetParam()};
    // 64 buffer bytes + enough to plough through any canary layout (the
    // widest is OWF's 24 bytes) but stop before the saved rbp.
    const auto r = bp.run_with_request(filler(64 + 8));
    ASSERT_EQ(r.status, vm::exec_status::trapped);
    EXPECT_EQ(r.trap, vm::trap_kind::stack_smash) << vm::to_string(r.trap);
}

TEST_P(detection_test, overflow_through_return_address_is_detected) {
    built_program bp{vulnerable_module(64), GetParam()};
    const auto r = bp.run_with_request(filler(64 + 64));
    ASSERT_EQ(r.status, vm::exec_status::trapped);
    // The canary check fires before the corrupted return address is used.
    EXPECT_EQ(r.trap, vm::trap_kind::stack_smash) << vm::to_string(r.trap);
}

class overflow_length_test
    : public ::testing::TestWithParam<std::tuple<scheme_kind, int>> {};

INSTANTIATE_TEST_SUITE_P(
    length_sweep, overflow_length_test,
    ::testing::Combine(::testing::Values(scheme_kind::ssp, scheme_kind::p_ssp,
                                         scheme_kind::p_ssp_nt,
                                         scheme_kind::p_ssp_owf,
                                         scheme_kind::p_ssp_gb),
                       ::testing::Values(1, 2, 7, 8, 15, 16, 24, 32)));

// Property: ANY overflow past the buffer that reaches the canary word is
// caught. (A 1-byte spill already corrupts the canary's lowest byte: the
// canary area starts directly above the buffer in every layout.)
TEST_P(overflow_length_test, spill_of_any_length_is_caught) {
    const auto [kind, spill] = GetParam();
    built_program bp{vulnerable_module(64), kind};
    const auto r = bp.run_with_request(filler(64 + static_cast<std::size_t>(spill)));
    ASSERT_EQ(r.status, vm::exec_status::trapped)
        << core::to_string(kind) << " spill=" << spill;
    EXPECT_EQ(r.trap, vm::trap_kind::stack_smash);
}

// An unprotected ("native") build lets the same overflow through to the
// saved registers — establishing that detection above is the scheme's
// doing, not an artifact of the harness.
TEST(native_baseline, overflow_is_not_detected_as_smash) {
    built_program bp{vulnerable_module(64), scheme_kind::none};
    const auto r = bp.run_with_request(filler(64 + 32, 'B'));
    ASSERT_EQ(r.status, vm::exec_status::trapped);
    EXPECT_NE(r.trap, vm::trap_kind::stack_smash);  // crashes, but uncaught
}

// The TLS canary C must never change across the protected call itself.
TEST_P(detection_test, tls_canary_is_stable_across_calls) {
    built_program bp{vulnerable_module(), GetParam()};
    const auto before = core::tls_load(bp.proc0, core::tls_canary);
    (void)bp.run_with_request("ping");
    EXPECT_EQ(core::tls_load(bp.proc0, core::tls_canary), before);
}

}  // namespace
}  // namespace pssp
