// util module: statistics, byte packing, table rendering.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace pssp {
namespace {

TEST(stats, mean_and_stddev) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(util::mean(xs), 5.0);
    EXPECT_NEAR(util::stddev(xs), 2.138, 0.001);
}

TEST(stats, empty_and_single) {
    EXPECT_EQ(util::mean({}), 0.0);
    EXPECT_EQ(util::stddev({}), 0.0);
    const std::vector<double> one{3.0};
    EXPECT_EQ(util::stddev(one), 0.0);
    EXPECT_EQ(util::quantile(one, 0.5), 3.0);
}

TEST(stats, quantiles) {
    const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(util::quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(util::quantile(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(util::quantile(xs, 0.5), 5.5);
}

TEST(stats, geomean) {
    const std::vector<double> xs{1, 10, 100};
    EXPECT_NEAR(util::geomean(xs), 10.0, 1e-9);
    EXPECT_THROW((void)util::geomean(std::vector<double>{1, 0}), std::invalid_argument);
}

TEST(stats, overhead_percent) {
    EXPECT_DOUBLE_EQ(util::overhead_percent(100, 101), 1.0);
    EXPECT_DOUBLE_EQ(util::overhead_percent(200, 190), -5.0);
    EXPECT_DOUBLE_EQ(util::overhead_percent(0, 10), 0.0);
}

TEST(stats, chi_square_uniform_detects_bias) {
    std::vector<std::size_t> fair(16, 1000);
    EXPECT_LT(util::chi_square_uniform(fair), 1e-9);
    std::vector<std::size_t> biased(16, 1000);
    biased[0] = 5000;
    EXPECT_GT(util::chi_square_uniform(biased),
              util::chi_square_critical_999(15));
}

TEST(stats, chi_square_critical_reasonable) {
    // Known reference values: chi2_{0.999}(255) ~ 330.5, chi2_{0.999}(15) ~ 37.7.
    EXPECT_NEAR(util::chi_square_critical_999(255), 330.5, 5.0);
    EXPECT_NEAR(util::chi_square_critical_999(15), 37.7, 1.5);
}

TEST(stats, accumulator_matches_batch) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    util::accumulator acc;
    for (const double x : xs) acc.add(x);
    EXPECT_DOUBLE_EQ(acc.mean(), util::mean(xs));
    EXPECT_NEAR(acc.stddev(), util::stddev(xs), 1e-12);
    EXPECT_EQ(acc.min(), 2);
    EXPECT_EQ(acc.max(), 9);
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_DOUBLE_EQ(acc.total(), 40.0);
}

TEST(stats, wilson_interval_reference_values) {
    // 8/10 successes at 95%: classic textbook check.
    const auto iv = util::wilson_interval(8, 10);
    EXPECT_NEAR(iv.lo, 0.490, 0.005);
    EXPECT_NEAR(iv.hi, 0.943, 0.005);
    // Degenerate proportions stay inside [0,1] (the normal approximation
    // would not) and still have nonzero width.
    const auto zero = util::wilson_interval(0, 50);
    EXPECT_DOUBLE_EQ(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0);
    EXPECT_LT(zero.hi, 0.1);
    const auto one = util::wilson_interval(50, 50);
    EXPECT_DOUBLE_EQ(one.hi, 1.0);
    EXPECT_LT(one.lo, 1.0);
    EXPECT_GT(one.lo, 0.9);
    // No data: vacuous bounds.
    const auto none = util::wilson_interval(3, 0);
    EXPECT_DOUBLE_EQ(none.lo, 0.0);
    EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(stats, wilson_interval_validates_z_before_the_empty_sample_return) {
    // Regression: the n == 0 early return used to precede the z check, so a
    // nonsensical confidence level was silently accepted exactly when the
    // sample was empty — and only blew up once data arrived.
    EXPECT_THROW((void)util::wilson_interval(0, 0, 0.0), std::invalid_argument);
    EXPECT_THROW((void)util::wilson_interval(0, 0, -1.96), std::invalid_argument);
    EXPECT_THROW((void)util::wilson_interval(5, 10, 0.0), std::invalid_argument);
    // Valid z on an empty sample keeps the vacuous-bounds contract.
    const auto none = util::wilson_interval(0, 0, 2.58);
    EXPECT_DOUBLE_EQ(none.lo, 0.0);
    EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(stats, interval_half_width) {
    EXPECT_DOUBLE_EQ((util::interval{0.25, 0.75}).half_width(), 0.25);
    EXPECT_DOUBLE_EQ((util::interval{}).half_width(), 0.0);
    EXPECT_DOUBLE_EQ((util::interval{0.0, 1.0}).half_width(), 0.5);
}

TEST(stats, wilson_interval_tightens_with_n) {
    const auto small = util::wilson_interval(5, 10);
    const auto large = util::wilson_interval(500, 1000);
    EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(stats, welford_merge_matches_single_stream) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9, 1, 12};
    util::welford_accumulator whole;
    for (const double x : xs) whole.add(x);

    util::welford_accumulator left, right;
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i < 4 ? left : right).add(xs[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_DOUBLE_EQ(left.total(), whole.total());
}

TEST(stats, welford_merge_with_empty) {
    util::welford_accumulator a, empty;
    a.add(3.0);
    a.add(5.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
    EXPECT_DOUBLE_EQ(empty.min(), 3.0);
}

TEST(bytes, little_endian_roundtrip) {
    std::vector<std::uint8_t> buf(8, 0);
    util::store_le64(buf, 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0xef);  // lowest byte first (the byte the attack
    EXPECT_EQ(buf[7], 0x01);  // guesses first)
    EXPECT_EQ(util::load_le64(buf), 0x0123456789abcdefull);
    util::store_le32(buf, 0xdeadbeef);
    EXPECT_EQ(util::load_le32(buf), 0xdeadbeefu);
    util::store_le16(buf, 0xcafe);
    EXPECT_EQ(util::load_le16(buf), 0xcafe);
}

TEST(bytes, byte_of_and_with_byte) {
    const std::uint64_t v = 0x1122334455667788ull;
    EXPECT_EQ(util::byte_of(v, 0), 0x88);
    EXPECT_EQ(util::byte_of(v, 7), 0x11);
    EXPECT_EQ(util::with_byte(v, 0, 0xff), 0x11223344556677ffull);
    EXPECT_EQ(util::with_byte(v, 7, 0x00), 0x0022334455667788ull);
}

TEST(bytes, hex_rendering) {
    const std::vector<std::uint8_t> data{0xde, 0xad, 0xbe, 0xef};
    EXPECT_EQ(util::to_hex(data), "de ad be ef");
    EXPECT_EQ(util::hex64(0x28), "0x0000000000000028");
    EXPECT_NE(util::hex_dump(data, 0x1000).find("001000"), std::string::npos);
}

TEST(table, renders_header_rows_and_padding) {
    util::text_table t{{"name", "value"}};
    t.add_row({"alpha", "1"});
    t.add_row({"much-longer-name", "2"});
    const auto out = t.render("title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| alpha"), std::string::npos);
    EXPECT_NE(out.find("much-longer-name"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(table, short_rows_are_padded) {
    util::text_table t{{"a", "b", "c"}};
    t.add_row({"only-one"});
    EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

TEST(table, bar_chart_scales_to_max) {
    util::bar_chart chart{"units", 10};
    chart.add("big", 100.0);
    chart.add("half", 50.0);
    const auto out = chart.render();
    EXPECT_NE(out.find("##########"), std::string::npos);  // full-width bar
    EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(table, formatters) {
    EXPECT_EQ(util::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(util::fmt_percent(0.246, 2), "0.25%");
    EXPECT_EQ(util::fmt_bytes(512), "512 B");
    EXPECT_EQ(util::fmt_bytes(2048), "2.00 KiB");
    EXPECT_EQ(util::fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(json, emit_and_parse_round_trip) {
    std::string out;
    out += '{';
    util::append_kv(out, "name", std::string{"P-SSP"});
    util::append_kv(out, "count", std::uint64_t{42});
    util::append_kv(out, "rate", 0.125);
    util::append_kv_bool(out, "flag", true);
    util::append_kv_exact(out, "exact", 1.0 / 3.0);
    util::append_interval(out, "ci", util::interval{0.25, 0.75},
                          /*comma=*/false);
    out += '}';

    const auto doc = util::parse_json(out);
    EXPECT_EQ(doc.at("name").as_string(), "P-SSP");
    EXPECT_EQ(doc.at("count").as_u64(), 42u);
    EXPECT_DOUBLE_EQ(doc.at("rate").as_double(), 0.125);
    EXPECT_TRUE(doc.at("flag").as_bool());
    // Hexfloat channel is bit-exact, not approximately equal.
    EXPECT_EQ(doc.at("exact").as_double_exact(), 1.0 / 3.0);
    const auto& ci = doc.at("ci").elements();
    ASSERT_EQ(ci.size(), 2u);
    EXPECT_DOUBLE_EQ(ci[0].as_double(), 0.25);
    EXPECT_DOUBLE_EQ(ci[1].as_double(), 0.75);
}

TEST(json, parser_handles_structure_and_rejects_garbage) {
    const auto doc = util::parse_json(
        " { \"a\" : [ 1 , -2.5e3 , \"x\\\"y\" , null , false ] , \"b\" : {} } ");
    const auto& a = doc.at("a").elements();
    ASSERT_EQ(a.size(), 5u);
    EXPECT_EQ(a[0].as_u64(), 1u);
    EXPECT_DOUBLE_EQ(a[1].as_double(), -2500.0);
    EXPECT_EQ(a[2].as_string(), "x\"y");
    EXPECT_EQ(a[3].type(), util::json_value::kind::null);
    EXPECT_FALSE(a[4].as_bool());
    EXPECT_EQ(doc.at("b").members().size(), 0u);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
    EXPECT_THROW((void)a[0].as_string(), std::runtime_error);

    // A negative count is a parse error, not a strtoull wraparound.
    EXPECT_THROW((void)util::parse_json("-2").as_u64(), std::runtime_error);
    EXPECT_DOUBLE_EQ(util::parse_json("-2").as_double(), -2.0);

    EXPECT_THROW((void)util::parse_json(""), std::runtime_error);
    EXPECT_THROW((void)util::parse_json("{\"a\":1,}"), std::runtime_error);
    EXPECT_THROW((void)util::parse_json("{\"a\":1} trailing"),
                 std::runtime_error);
    EXPECT_THROW((void)util::parse_json("[1, 2"), std::runtime_error);
    EXPECT_THROW((void)util::parse_json("truthy"), std::runtime_error);
}

TEST(json, rejects_trailing_garbage_with_a_position) {
    // A truncated or corrupt worker partial concatenated with junk must be
    // a loud, position-bearing parse error — never silently parsed as the
    // leading complete value.
    for (const char* bad : {"{}x", "{} x", "123x", "{\"a\":1}}", "[1,2]garbage",
                            "truex", "null0", "\"s\"\"t\"", "{}{}"}) {
        try {
            (void)util::parse_json(bad);
            FAIL() << "accepted: " << bad;
        } catch (const std::runtime_error& e) {
            EXPECT_NE(std::string{e.what()}.find("at byte"), std::string::npos)
                << "error must carry a position: " << e.what();
        }
    }
    // Trailing whitespace alone stays legal.
    EXPECT_NO_THROW((void)util::parse_json("{} \n\t "));
}

TEST(json, rejects_malformed_number_tokens_at_parse_time) {
    // Regression: number tokens used to be scanned greedily and validated
    // only in as_u64()/as_double(), so a corrupt numeric field that nobody
    // accessed slipped through the parse. The grammar is now enforced up
    // front.
    for (const char* bad :
         {"{\"n\":1e}", "{\"n\":-}", "{\"n\":1.2.3}", "{\"n\":1e+}",
          "{\"n\":01}", "{\"n\":.5}", "{\"n\":5.}", "{\"n\":--2}",
          "{\"n\":1e5e5}", "[-]"}) {
        EXPECT_THROW((void)util::parse_json(bad), std::runtime_error) << bad;
    }
    // The full legal grammar still parses.
    EXPECT_EQ(util::parse_json("0").as_u64(), 0u);
    EXPECT_DOUBLE_EQ(util::parse_json("-0.5e-2").as_double(), -0.005);
    EXPECT_DOUBLE_EQ(util::parse_json("1E+3").as_double(), 1000.0);
    EXPECT_DOUBLE_EQ(util::parse_json("0.125").as_double(), 0.125);
    EXPECT_EQ(util::parse_json("18446744073709551615").as_u64(),
              18446744073709551615ull);
}

TEST(stats, welford_save_restore_is_bit_exact) {
    util::welford_accumulator acc;
    for (const double x : {0.1, 0.2, 0.30000000000000004, -7.25, 1e18})
        acc.add(x);
    const auto restored = util::welford_accumulator::restore(acc.save());
    EXPECT_EQ(restored.count(), acc.count());
    EXPECT_EQ(restored.mean(), acc.mean());
    EXPECT_EQ(restored.stddev(), acc.stddev());
    EXPECT_EQ(restored.min(), acc.min());
    EXPECT_EQ(restored.max(), acc.max());
    EXPECT_EQ(restored.total(), acc.total());
    // Continuing to add on the restored copy tracks the original exactly.
    auto a = acc;
    auto b = restored;
    a.add(3.5);
    b.add(3.5);
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.stddev(), b.stddev());
}

}  // namespace
}  // namespace pssp
