#include "vm/machine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/bytes.hpp"

namespace pssp::vm {

std::string to_string(exec_status status) {
    switch (status) {
        case exec_status::running: return "running";
        case exec_status::exited: return "exited";
        case exec_status::trapped: return "trapped";
        case exec_status::syscalled: return "syscalled";
        case exec_status::out_of_fuel: return "out_of_fuel";
    }
    return "?";
}

std::string to_string(trap_kind trap) {
    switch (trap) {
        case trap_kind::none: return "none";
        case trap_kind::stack_smash: return "stack_smash";
        case trap_kind::segfault: return "segfault";
        case trap_kind::invalid_jump: return "invalid_jump";
        case trap_kind::stack_overrun: return "stack_overrun";
    }
    return "?";
}

machine::machine(std::shared_ptr<const program> prog, memory::layout layout,
                 std::uint64_t entropy_seed)
    : prog_{std::move(prog)},
      mem_{layout},
      fs_base_{layout.tls_base},
      entropy_{entropy_seed} {
    if (!prog_) throw std::invalid_argument{"machine requires a program"};
    if (prog_->flow.size() != prog_->insns.size() ||
        prog_->code.size() != prog_->insns.size() + 1)
        throw std::invalid_argument{
            "machine requires a finalized program (program::finalize resolves "
            "control flow and lowers the decoded stream; "
            "linked_binary::make_program does this for you)"};
    gpr_[static_cast<std::size_t>(reg::rsp)] = layout.stack_top - initial_stack_headroom;
}

std::uint64_t machine::get(reg r) const noexcept {
    assert(r != reg::none);
    return gpr_[static_cast<std::size_t>(r)];
}

void machine::set(reg r, std::uint64_t value) noexcept {
    assert(r != reg::none);
    gpr_[static_cast<std::size_t>(r)] = value;
}

machine::xmm_value machine::get_x(xreg x) const noexcept {
    assert(x != xreg::none);
    return xmm_[static_cast<std::size_t>(x)];
}

void machine::set_x(xreg x, xmm_value value) noexcept {
    assert(x != xreg::none);
    xmm_[static_cast<std::size_t>(x)] = value;
}

std::uint64_t machine::effective_address(const mem_operand& m) const noexcept {
    std::uint64_t addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(m.disp));
    if (m.base != reg::none) addr += get(m.base);
    if (m.seg == segment::fs) addr += fs_base_;
    return addr;
}

bool machine::ld(std::uint64_t addr, std::size_t size, std::uint64_t& value,
                 run_result& out) noexcept {
    if (const std::uint8_t* p = mem_.try_at(addr, size)) [[likely]] {
        switch (size) {
            case 1: value = *p; break;
            case 4: value = util::load_le32(std::span{p, 4}); break;
            default: value = util::load_le64(std::span{p, 8}); break;
        }
        return true;
    }
    out.status = exec_status::trapped;
    out.trap = trap_kind::segfault;
    out.fault_addr = addr;
    return false;
}

bool machine::st(std::uint64_t addr, std::size_t size, std::uint64_t value,
                 run_result& out) noexcept {
    if (std::uint8_t* p = mem_.try_at_mut(addr, size)) [[likely]] {
        switch (size) {
            case 1: *p = static_cast<std::uint8_t>(value); break;
            case 4: util::store_le32(std::span{p, 4},
                                     static_cast<std::uint32_t>(value)); break;
            default: util::store_le64(std::span{p, 8}, value); break;
        }
        return true;
    }
    out.status = exec_status::trapped;
    out.trap = trap_kind::segfault;
    out.fault_addr = addr;
    return false;
}

bool machine::push64(std::uint64_t value, run_result& out) noexcept {
    const std::uint64_t rsp = get(reg::rsp) - 8;
    if (!st(rsp, 8, value, out)) return false;
    set(reg::rsp, rsp);
    return true;
}

bool machine::pop64(std::uint64_t& value, run_result& out) noexcept {
    const std::uint64_t rsp = get(reg::rsp);
    if (!ld(rsp, 8, value, out)) return false;
    set(reg::rsp, rsp + 8);
    return true;
}

bool machine::jump_to(std::uint64_t addr, run_result& out) {
    const std::uint32_t index = prog_->index_of(addr);
    if (index == no_id) {
        out.status = exec_status::trapped;
        out.trap = trap_kind::invalid_jump;
        out.fault_addr = addr;
        return false;
    }
    rip_ = index;
    return true;
}

void machine::call_function(std::uint64_t entry) {
    finished_valid_ = false;
    set(reg::rsp, mem_.regions().stack_top - initial_stack_headroom);
    mem_.store64(get(reg::rsp) - 8, return_sentinel);
    set(reg::rsp, get(reg::rsp) - 8);
    const std::uint32_t index = prog_->index_of(entry);
    if (index == no_id)
        throw std::invalid_argument{"call_function: entry is not an instruction start"};
    rip_ = index;
    rip_valid_ = true;
}

void machine::complete_syscall(std::uint64_t rax_value) {
    set(reg::rax, rax_value);
}

void machine::set_alu_flags(std::uint64_t result) noexcept {
    flags_.zf = result == 0;
}

run_result machine::exec_one_switch(const cost_table& ct) {
    run_result out;
    const instruction& insn = prog_->insns[rip_];
    cycles_ += ct[insn.op];
    ++steps_;

    // Most instructions fall through; control flow overrides this.
    std::uint32_t next_rip = rip_ + 1;

    switch (insn.op) {
        case opcode::nop:
            break;
        case opcode::push_r:
            if (!push64(get(insn.r1), out)) return out;
            break;
        case opcode::push_i:
            if (!push64(insn.imm, out)) return out;
            break;
        case opcode::pop_r: {
            std::uint64_t v;
            if (!pop64(v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov_rr:
            set(insn.r1, get(insn.r2));
            break;
        case opcode::mov_ri:
            set(insn.r1, insn.imm);
            break;
        case opcode::mov_rm: {
            std::uint64_t v;
            if (!ld(effective_address(insn.mem), 8, v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov_mr:
            if (!st(effective_address(insn.mem), 8, get(insn.r2), out)) return out;
            break;
        case opcode::mov_mi:
            if (!st(effective_address(insn.mem), 8, insn.imm, out)) return out;
            break;
        case opcode::mov32_rm: {
            std::uint64_t v;
            if (!ld(effective_address(insn.mem), 4, v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov32_mr:
            if (!st(effective_address(insn.mem), 4,
                    static_cast<std::uint32_t>(get(insn.r2)), out))
                return out;
            break;
        case opcode::movzx8_rm: {
            std::uint64_t v;
            if (!ld(effective_address(insn.mem), 1, v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov8_mr:
            if (!st(effective_address(insn.mem), 1,
                    static_cast<std::uint8_t>(get(insn.r2)), out))
                return out;
            break;
        case opcode::lea:
            set(insn.r1, effective_address(insn.mem));
            break;
        case opcode::add_rr: {
            const std::uint64_t v = get(insn.r1) + get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::add_ri: {
            const std::uint64_t v = get(insn.r1) + insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::sub_rr: {
            const std::uint64_t v = get(insn.r1) - get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::sub_ri: {
            const std::uint64_t v = get(insn.r1) - insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_rr: {
            const std::uint64_t v = get(insn.r1) ^ get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_ri: {
            const std::uint64_t v = get(insn.r1) ^ insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_rm: {
            std::uint64_t mval;
            if (!ld(effective_address(insn.mem), 8, mval, out)) return out;
            const std::uint64_t v = get(insn.r1) ^ mval;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::or_rr: {
            const std::uint64_t v = get(insn.r1) | get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::and_ri: {
            const std::uint64_t v = get(insn.r1) & insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::shl_ri:
            set(insn.r1, get(insn.r1) << (insn.imm & 63));
            set_alu_flags(get(insn.r1));
            break;
        case opcode::shr_ri:
            set(insn.r1, get(insn.r1) >> (insn.imm & 63));
            set_alu_flags(get(insn.r1));
            break;
        case opcode::imul_rr:
            set(insn.r1, get(insn.r1) * get(insn.r2));
            break;
        case opcode::imul_ri:
            set(insn.r1, get(insn.r1) * insn.imm);
            break;
        case opcode::cmp_rr:
        case opcode::cmp_ri:
        case opcode::cmp_rm: {
            const std::uint64_t a = get(insn.r1);
            std::uint64_t b = 0;
            if (insn.op == opcode::cmp_rr) {
                b = get(insn.r2);
            } else if (insn.op == opcode::cmp_ri) {
                b = insn.imm;
            } else {
                if (!ld(effective_address(insn.mem), 8, b, out)) return out;
            }
            flags_.zf = a == b;
            flags_.lt_unsigned = a < b;
            flags_.lt_signed = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
            break;
        }
        case opcode::test_rr:
            flags_.zf = (get(insn.r1) & get(insn.r2)) == 0;
            break;
        case opcode::je:
        case opcode::jne:
        case opcode::jb:
        case opcode::jae:
        case opcode::jl:
        case opcode::jge:
        case opcode::jnc:
        case opcode::jmp: {
            bool taken = true;
            switch (insn.op) {
                case opcode::je: taken = flags_.zf; break;
                case opcode::jne: taken = !flags_.zf; break;
                case opcode::jb: taken = flags_.lt_unsigned; break;
                case opcode::jae: taken = !flags_.lt_unsigned; break;
                case opcode::jl: taken = flags_.lt_signed; break;
                case opcode::jge: taken = !flags_.lt_signed; break;
                case opcode::jnc: taken = !flags_.cf; break;
                default: break;  // jmp
            }
            if (taken) {
                const std::uint32_t target = prog_->flow[rip_].target;
                if (target == no_id) {
                    out.status = exec_status::trapped;
                    out.trap = trap_kind::invalid_jump;
                    out.fault_addr = insn.imm;
                    return out;
                }
                next_rip = target;
            }
            break;
        }
        case opcode::call: {
            const resolved_flow& fl = prog_->flow[rip_];
            if (fl.native != nullptr) {
                // Native helper: model the full call/ret round trip so the
                // helper can observe a genuine frame (return address on the
                // stack) while executing host-side. This is the only edge
                // where exceptions still travel — helpers are arbitrary
                // host code using the throwing memory API and native_trap.
                if (!push64(fl.return_addr, out)) return out;
                try {
                    (*fl.native)(*this);
                } catch (const mem_fault& fault) {
                    out.status = exec_status::trapped;
                    out.trap = trap_kind::segfault;
                    out.fault_addr = fault.addr();
                    return out;
                } catch (const native_trap& trap) {
                    out.status = exec_status::trapped;
                    out.trap = trap.kind;
                    out.fault_addr = current_address();
                    return out;
                }
                std::uint64_t back;
                if (!pop64(back, out)) return out;
                if (back != fl.return_addr) {
                    if (!jump_to(back, out)) return out;
                    next_rip = rip_;
                }
                break;
            }
            if (fl.target == no_id) {
                out.status = exec_status::trapped;
                out.trap = trap_kind::invalid_jump;
                out.fault_addr = insn.imm;
                return out;
            }
            if (!push64(fl.return_addr, out)) return out;
            next_rip = fl.target;
            break;
        }
        case opcode::ret: {
            // The popped target is data from the simulated stack — exactly
            // what an overflow corrupts — so it must resolve dynamically.
            std::uint64_t target;
            if (!pop64(target, out)) return out;
            if (target == return_sentinel) {
                out.status = exec_status::exited;
                out.exit_code = static_cast<std::int64_t>(get(reg::rax));
                return out;
            }
            if (!jump_to(target, out)) return out;
            next_rip = rip_;
            break;
        }
        case opcode::leave: {
            set(reg::rsp, get(reg::rbp));
            std::uint64_t v;
            if (!pop64(v, out)) return out;
            set(reg::rbp, v);
            break;
        }
        case opcode::rdrand_r: {
            std::uint64_t value = 0;
            flags_.cf = entropy_.rdrand64(value);
            if (flags_.cf) set(insn.r1, value);
            break;
        }
        case opcode::rdtsc: {
            const std::uint64_t tsc = tsc_base_ + cycles_;
            set(reg::rax, tsc & 0xffffffffull);
            set(reg::rdx, tsc >> 32);
            break;
        }
        case opcode::movq_xr: {
            xmm_value x = get_x(insn.x1);
            x.lo = get(insn.r2);
            x.hi = 0;
            set_x(insn.x1, x);
            break;
        }
        case opcode::movq_rx:
            set(insn.r1, get_x(insn.x2).lo);
            break;
        case opcode::movhps_xm: {
            xmm_value x = get_x(insn.x1);
            if (!ld(effective_address(insn.mem), 8, x.hi, out)) return out;
            set_x(insn.x1, x);
            break;
        }
        case opcode::punpckhqdq_xr: {
            xmm_value x = get_x(insn.x1);
            x.hi = get(insn.r2);
            set_x(insn.x1, x);
            break;
        }
        case opcode::movdqu_mx: {
            const std::uint64_t addr = effective_address(insn.mem);
            const xmm_value x = get_x(insn.x2);
            if (!st(addr, 8, x.lo, out)) return out;
            if (!st(addr + 8, 8, x.hi, out)) return out;
            break;
        }
        case opcode::movdqu_xm: {
            const std::uint64_t addr = effective_address(insn.mem);
            std::uint64_t lo, hi;
            if (!ld(addr, 8, lo, out)) return out;
            if (!ld(addr + 8, 8, hi, out)) return out;
            set_x(insn.x1, {lo, hi});
            break;
        }
        case opcode::cmp128_xm: {
            const std::uint64_t addr = effective_address(insn.mem);
            const xmm_value x = get_x(insn.x1);
            std::uint64_t lo, hi;
            if (!ld(addr, 8, lo, out)) return out;
            if (!ld(addr + 8, 8, hi, out)) return out;
            flags_.zf = x.lo == lo && x.hi == hi;
            break;
        }
        case opcode::syscall_i: {
            const auto number = static_cast<std::uint32_t>(insn.imm);
            switch (static_cast<syscall_no>(number)) {
                case syscall_no::sys_exit:
                    out.status = exec_status::exited;
                    out.exit_code = static_cast<std::int64_t>(get(reg::rdi));
                    return out;
                case syscall_no::sys_getpid:
                    set(reg::rax, pid_);
                    break;
                case syscall_no::sys_write: {
                    const std::uint64_t buf = get(reg::rsi);
                    const std::uint64_t count = get(reg::rdx);
                    const std::uint8_t* p = mem_.try_at(buf, count);
                    if (p == nullptr) {
                        out.status = exec_status::trapped;
                        out.trap = trap_kind::segfault;
                        out.fault_addr = buf;
                        return out;
                    }
                    // Append straight out of guest memory — no temporary —
                    // and stop retaining bytes past the output cap.
                    if (output_.size() < max_output_bytes) {
                        const std::size_t take = std::min<std::size_t>(
                            count, max_output_bytes - output_.size());
                        output_.append(reinterpret_cast<const char*>(p), take);
                    }
                    set(reg::rax, count);
                    break;
                }
                case syscall_no::sys_fork:
                    // Serviced by the process layer: stop with rip already
                    // advanced so both parent and child resume after the
                    // syscall once complete_syscall() fills in rax.
                    rip_ = next_rip;
                    out.status = exec_status::syscalled;
                    out.syscall_number = number;
                    return out;
            }
            break;
        }
        case opcode::trap_abort:
            out.status = exec_status::trapped;
            out.trap = trap_kind::stack_smash;
            out.fault_addr = prog_->addrs[rip_];
            return out;
        case opcode::hlt:
            out.status = exec_status::exited;
            out.exit_code = static_cast<std::int64_t>(get(reg::rax));
            return out;
        case opcode::sim_delay:
            // Cost-model artifact; no architectural effect. Its per-site
            // cycle charge lives in the immediate (the flat table only
            // carries the dbi_tax component).
            cycles_ += insn.imm;
            break;
    }

    rip_ = next_rip;
    out.status = exec_status::running;
    return out;
}

run_result machine::run(std::uint64_t max_steps) {
    if (dispatch_ == dispatch_mode::threaded)
        return profile_ ? run_threaded_impl<true>(max_steps)
                        : run_threaded_impl<false>(max_steps);
    return run_switch(max_steps);
}

run_result machine::step() { return run_switch(1); }

const cost_table& machine::refresh_cost_cache() {
    if (!cost_cache_ || !(cost_cache_key_ == costs_)) {
        cost_cache_ = std::make_shared<const cost_table>(costs_.table());
        cost_cache_key_ = costs_;
    }
    return *cost_cache_;
}

run_result machine::run_switch(std::uint64_t max_steps) {
    if (finished_valid_) return finished_;
    if (!rip_valid_) throw std::logic_error{"machine::run before call_function"};

    const cost_table& ct = refresh_cost_cache();

    run_result out;
    std::uint64_t executed = 0;
    for (;;) {
        if (fuel_ != 0 && steps_ >= fuel_) {
            out.status = exec_status::out_of_fuel;
            break;
        }
        if (max_steps != 0 && executed >= max_steps) {
            out.status = exec_status::running;
            return out;  // resumable: not a terminal state
        }
        if (rip_ >= prog_->insns.size()) {
            out.status = exec_status::trapped;
            out.trap = trap_kind::invalid_jump;
            out.fault_addr = current_address();
            break;
        }
        if (profile_ != nullptr) {
            // Debug-engine profiling: attribute by opcode (the stepper
            // never executes fused ids) and charge by cycle delta, which
            // also captures sim_delay's per-site immediate.
            const auto handler = static_cast<std::uint16_t>(prog_->insns[rip_].op);
            const std::uint64_t before = cycles_;
            out = exec_one_switch(ct);
            ++profile_->hits[handler];
            profile_->cycles[handler] += cycles_ - before;
        } else {
            out = exec_one_switch(ct);
        }
        ++executed;
        if (out.status == exec_status::syscalled) return out;  // resumable
        if (out.status != exec_status::running) break;
    }
    finished_ = out;
    finished_valid_ = true;
    return out;
}

// ---- Direct-threaded engine ------------------------------------------------
// One dispatch per decoded op: computed goto under GCC/Clang, a
// token-threaded switch over the same handler ids elsewhere. The X-macro
// lists below must stay in opcode-enum / hop-id order — they generate the
// jump table positionally; the dispatch unit tests and the differential
// stepper test pin the correspondence.

#if defined(__GNUC__) || defined(__clang__)
#define PSSP_COMPUTED_GOTO 1
#else
#define PSSP_COMPUTED_GOTO 0
#endif

// PSSP_BASE_OPS / PSSP_FUSED_OPS — the positional handler lists shared
// with the handler-name table — live in vm/dispatch.hpp.

#if PSSP_COMPUTED_GOTO
#define PSSP_OPC(name) h_##name:
#define PSSP_FUSED(name) h_##name:
#define PSSP_DISPATCH()                                                        \
    do {                                                                       \
        if (budget == 0) goto budget_stop;                                     \
        --budget;                                                              \
        op = code + ip;                                                        \
        PSSP_PROFILE_HIT();                                                    \
        goto* jump_table[op->handler];                                         \
    } while (0)
#else
#define PSSP_OPC(name) case static_cast<std::uint16_t>(opcode::name):
#define PSSP_FUSED(name) case hop::name:
#define PSSP_DISPATCH()                                                        \
    do {                                                                       \
        if (budget == 0) goto budget_stop;                                     \
        --budget;                                                              \
        op = code + ip;                                                        \
        PSSP_PROFILE_HIT();                                                    \
        goto dispatch_top;                                                     \
    } while (0)
#endif

// Profiling hooks, compiled in only for the kProfile=true instantiation —
// the production (unprofiled) loop carries literally no profiling code.
// `ph` is the handler id of the current dispatch; fused pairs keep it
// across both halves, so every cycle a superinstruction charges is
// attributed to the superinstruction.
#define PSSP_PROFILE_HIT()                                                     \
    do {                                                                       \
        if constexpr (kProfile) {                                              \
            ph = op->handler;                                                  \
            ++prof->hits[ph];                                                  \
        }                                                                      \
    } while (0)
#define PSSP_PROFILE_CYC(amount)                                               \
    do {                                                                       \
        if constexpr (kProfile) prof->cycles[ph] += (amount);                  \
    } while (0)

// Charge one instruction against the batched accumulators. Base handlers
// name their opcode so the table index is a compile-time constant.
#define PSSP_CHARGE(name)                                                      \
    do {                                                                       \
        cyc += ct[opcode::name];                                               \
        ++executed;                                                            \
        PSSP_PROFILE_CYC(ct[opcode::name]);                                    \
    } while (0)

namespace {

// Condition evaluation shared by the jcc handler and the fused
// compare+branch tail; identical to the stepper's inner switch.
[[nodiscard]] inline bool jcc_taken(opcode op, const flags_state& f) noexcept {
    switch (op) {
        case opcode::je: return f.zf;
        case opcode::jne: return !f.zf;
        case opcode::jb: return f.lt_unsigned;
        case opcode::jae: return !f.lt_unsigned;
        case opcode::jl: return f.lt_signed;
        case opcode::jge: return !f.lt_signed;
        case opcode::jnc: return !f.cf;
        default: return true;  // jmp
    }
}

}  // namespace

template <bool kProfile>
run_result machine::run_threaded_impl(std::uint64_t max_steps) {
    if (finished_valid_) return finished_;
    if (!rip_valid_) throw std::logic_error{"machine::run before call_function"};

    const cost_table& ct = refresh_cost_cache();
    const decoded_op* const code = prog_->code.data();

    // Profiling state; dead (and unread) in the kProfile=false
    // instantiation — run() only selects <true> when profile_ is set.
    [[maybe_unused]] exec_profile* const prof = profile_.get();
    [[maybe_unused]] std::uint16_t ph = 0;

    // Batched accounting: steps and cycles accumulate in locals (registers)
    // and are reconciled into steps_/cycles_ exactly at every exit event —
    // and flushed around native calls, which may observe or charge the
    // member counters.
    std::uint64_t executed = 0;  // steps retired this run, not yet in steps_
    std::uint64_t cyc = 0;       // cycles charged this run, not yet in cycles_
    // Unified step countdown to the nearest of fuel_ / max_steps; ~0 when
    // neither binds (2^64 steps cannot retire in a process lifetime). The
    // stepper checks fuel before max_steps, so ties resolve to out_of_fuel
    // at budget_stop below.
    std::uint64_t budget = ~std::uint64_t{0};
    if (fuel_ != 0) budget = fuel_ > steps_ ? fuel_ - steps_ : 0;
    if (max_steps != 0 && max_steps < budget) budget = max_steps;

    std::uint32_t ip = rip_;
    const decoded_op* op = nullptr;
    run_result out;

    // Effective address of a decoded memory operand; mirrors
    // effective_address(mem_operand) field for field.
    const auto ea = [this](const decoded_op& d) noexcept {
        std::uint64_t addr =
            static_cast<std::uint64_t>(static_cast<std::int64_t>(d.disp));
        if (d.mbase != reg::none) addr += get(d.mbase);
        if (d.fs != 0) addr += fs_base_;
        return addr;
    };

#if PSSP_COMPUTED_GOTO
#define PSSP_LBL(name) &&h_##name,
    static const void* const jump_table[hop::count] = {
        PSSP_BASE_OPS(PSSP_LBL) PSSP_FUSED_OPS(PSSP_LBL)};
#undef PSSP_LBL
    PSSP_DISPATCH();
#else
    PSSP_DISPATCH();
dispatch_top:
    switch (op->handler) {
#endif

    PSSP_OPC(nop) {
        PSSP_CHARGE(nop);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(push_r) {
        PSSP_CHARGE(push_r);
        if (!push64(get(op->r1), out)) goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(push_i) {
        PSSP_CHARGE(push_i);
        if (!push64(op->imm, out)) goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(pop_r) {
        PSSP_CHARGE(pop_r);
        std::uint64_t v;
        if (!pop64(v, out)) goto stop_terminal;
        set(op->r1, v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov_rr) {
        PSSP_CHARGE(mov_rr);
        set(op->r1, get(op->r2));
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov_ri) {
        PSSP_CHARGE(mov_ri);
        set(op->r1, op->imm);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov_rm) {
        PSSP_CHARGE(mov_rm);
        std::uint64_t v;
        if (!ld(ea(*op), 8, v, out)) goto stop_terminal;
        set(op->r1, v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov_mr) {
        PSSP_CHARGE(mov_mr);
        if (!st(ea(*op), 8, get(op->r2), out)) goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov_mi) {
        PSSP_CHARGE(mov_mi);
        if (!st(ea(*op), 8, op->imm, out)) goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov32_rm) {
        PSSP_CHARGE(mov32_rm);
        std::uint64_t v;
        if (!ld(ea(*op), 4, v, out)) goto stop_terminal;
        set(op->r1, v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov32_mr) {
        PSSP_CHARGE(mov32_mr);
        if (!st(ea(*op), 4, static_cast<std::uint32_t>(get(op->r2)), out))
            goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(movzx8_rm) {
        PSSP_CHARGE(movzx8_rm);
        std::uint64_t v;
        if (!ld(ea(*op), 1, v, out)) goto stop_terminal;
        set(op->r1, v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(mov8_mr) {
        PSSP_CHARGE(mov8_mr);
        if (!st(ea(*op), 1, static_cast<std::uint8_t>(get(op->r2)), out))
            goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(lea) {
        PSSP_CHARGE(lea);
        set(op->r1, ea(*op));
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(add_rr) {
        PSSP_CHARGE(add_rr);
        const std::uint64_t v = get(op->r1) + get(op->r2);
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(add_ri) {
        PSSP_CHARGE(add_ri);
        const std::uint64_t v = get(op->r1) + op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(sub_rr) {
        PSSP_CHARGE(sub_rr);
        const std::uint64_t v = get(op->r1) - get(op->r2);
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(sub_ri) {
        PSSP_CHARGE(sub_ri);
        const std::uint64_t v = get(op->r1) - op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(xor_rr) {
        PSSP_CHARGE(xor_rr);
        const std::uint64_t v = get(op->r1) ^ get(op->r2);
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(xor_ri) {
        PSSP_CHARGE(xor_ri);
        const std::uint64_t v = get(op->r1) ^ op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(xor_rm) {
        PSSP_CHARGE(xor_rm);
        std::uint64_t mval;
        if (!ld(ea(*op), 8, mval, out)) goto stop_terminal;
        const std::uint64_t v = get(op->r1) ^ mval;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(or_rr) {
        PSSP_CHARGE(or_rr);
        const std::uint64_t v = get(op->r1) | get(op->r2);
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(and_ri) {
        PSSP_CHARGE(and_ri);
        const std::uint64_t v = get(op->r1) & op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(shl_ri) {
        PSSP_CHARGE(shl_ri);
        set(op->r1, get(op->r1) << (op->imm & 63));
        set_alu_flags(get(op->r1));
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(shr_ri) {
        PSSP_CHARGE(shr_ri);
        set(op->r1, get(op->r1) >> (op->imm & 63));
        set_alu_flags(get(op->r1));
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(imul_rr) {
        PSSP_CHARGE(imul_rr);
        set(op->r1, get(op->r1) * get(op->r2));
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(imul_ri) {
        PSSP_CHARGE(imul_ri);
        set(op->r1, get(op->r1) * op->imm);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(cmp_rr) {
        PSSP_CHARGE(cmp_rr);
        const std::uint64_t a = get(op->r1);
        const std::uint64_t b = get(op->r2);
        flags_.zf = a == b;
        flags_.lt_unsigned = a < b;
        flags_.lt_signed =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(cmp_ri) {
        PSSP_CHARGE(cmp_ri);
        const std::uint64_t a = get(op->r1);
        const std::uint64_t b = op->imm;
        flags_.zf = a == b;
        flags_.lt_unsigned = a < b;
        flags_.lt_signed =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(cmp_rm) {
        PSSP_CHARGE(cmp_rm);
        const std::uint64_t a = get(op->r1);
        std::uint64_t b;
        if (!ld(ea(*op), 8, b, out)) goto stop_terminal;
        flags_.zf = a == b;
        flags_.lt_unsigned = a < b;
        flags_.lt_signed =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(test_rr) {
        PSSP_CHARGE(test_rr);
        flags_.zf = (get(op->r1) & get(op->r2)) == 0;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(je)
    PSSP_OPC(jne)
    PSSP_OPC(jb)
    PSSP_OPC(jae)
    PSSP_OPC(jl)
    PSSP_OPC(jge)
    PSSP_OPC(jnc)
    PSSP_OPC(jmp) {
        cyc += ct[op->op];
        ++executed;
        PSSP_PROFILE_CYC(ct[op->op]);
        if (jcc_taken(op->op, flags_)) {
            if (op->target == no_id) {
                out.status = exec_status::trapped;
                out.trap = trap_kind::invalid_jump;
                out.fault_addr = op->imm;
                goto stop_terminal;
            }
            ip = op->target;
        } else {
            ++ip;
        }
        PSSP_DISPATCH();
    }
    PSSP_OPC(call) {
        PSSP_CHARGE(call);
        if (op->native != nullptr) {
            // Native helper: model the full call/ret round trip so the
            // helper can observe a genuine frame while executing host-side.
            // Natives observe and charge the member counters (and may read
            // current_address()), so reconcile the batch before crossing
            // the edge — this is the only flush inside the loop.
            if (!push64(op->return_addr, out)) goto stop_terminal;
            steps_ += executed;
            executed = 0;
            cycles_ += cyc;
            cyc = 0;
            rip_ = ip;
            try {
                (*op->native)(*this);
            } catch (const mem_fault& fault) {
                out.status = exec_status::trapped;
                out.trap = trap_kind::segfault;
                out.fault_addr = fault.addr();
                goto stop_terminal;
            } catch (const native_trap& trap) {
                out.status = exec_status::trapped;
                out.trap = trap.kind;
                out.fault_addr = current_address();
                goto stop_terminal;
            }
            std::uint64_t back;
            if (!pop64(back, out)) goto stop_terminal;
            if (back != op->return_addr) {
                const std::uint32_t index = prog_->index_of(back);
                if (index == no_id) {
                    out.status = exec_status::trapped;
                    out.trap = trap_kind::invalid_jump;
                    out.fault_addr = back;
                    goto stop_terminal;
                }
                ip = index;
            } else {
                ++ip;
            }
            PSSP_DISPATCH();
        }
        if (op->target == no_id) {
            out.status = exec_status::trapped;
            out.trap = trap_kind::invalid_jump;
            out.fault_addr = op->imm;
            goto stop_terminal;
        }
        if (!push64(op->return_addr, out)) goto stop_terminal;
        ip = op->target;
        PSSP_DISPATCH();
    }
    PSSP_OPC(ret) {
        PSSP_CHARGE(ret);
        // The popped target is data from the simulated stack — exactly
        // what an overflow corrupts — so it must resolve dynamically.
        std::uint64_t target;
        if (!pop64(target, out)) goto stop_terminal;
        if (target == return_sentinel) {
            out.status = exec_status::exited;
            out.exit_code = static_cast<std::int64_t>(get(reg::rax));
            goto stop_terminal;
        }
        {
            const std::uint32_t index = prog_->index_of(target);
            if (index == no_id) {
                out.status = exec_status::trapped;
                out.trap = trap_kind::invalid_jump;
                out.fault_addr = target;
                goto stop_terminal;
            }
            ip = index;
        }
        PSSP_DISPATCH();
    }
    PSSP_OPC(leave) {
        PSSP_CHARGE(leave);
        set(reg::rsp, get(reg::rbp));
        std::uint64_t v;
        if (!pop64(v, out)) goto stop_terminal;
        set(reg::rbp, v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(rdrand_r) {
        PSSP_CHARGE(rdrand_r);
        std::uint64_t value = 0;
        flags_.cf = entropy_.rdrand64(value);
        if (flags_.cf) set(op->r1, value);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(rdtsc) {
        PSSP_CHARGE(rdtsc);
        // cycles_ lags by the batched cyc, which already includes this
        // rdtsc's own charge — exactly the stepper's accounting.
        const std::uint64_t tsc = tsc_base_ + cycles_ + cyc;
        set(reg::rax, tsc & 0xffffffffull);
        set(reg::rdx, tsc >> 32);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(movq_xr) {
        PSSP_CHARGE(movq_xr);
        xmm_value x = get_x(op->x1);
        x.lo = get(op->r2);
        x.hi = 0;
        set_x(op->x1, x);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(movq_rx) {
        PSSP_CHARGE(movq_rx);
        set(op->r1, get_x(op->x2).lo);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(movhps_xm) {
        PSSP_CHARGE(movhps_xm);
        xmm_value x = get_x(op->x1);
        if (!ld(ea(*op), 8, x.hi, out)) goto stop_terminal;
        set_x(op->x1, x);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(punpckhqdq_xr) {
        PSSP_CHARGE(punpckhqdq_xr);
        xmm_value x = get_x(op->x1);
        x.hi = get(op->r2);
        set_x(op->x1, x);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(movdqu_mx) {
        PSSP_CHARGE(movdqu_mx);
        const std::uint64_t addr = ea(*op);
        const xmm_value x = get_x(op->x2);
        if (!st(addr, 8, x.lo, out)) goto stop_terminal;
        if (!st(addr + 8, 8, x.hi, out)) goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(movdqu_xm) {
        PSSP_CHARGE(movdqu_xm);
        const std::uint64_t addr = ea(*op);
        std::uint64_t lo, hi;
        if (!ld(addr, 8, lo, out)) goto stop_terminal;
        if (!ld(addr + 8, 8, hi, out)) goto stop_terminal;
        set_x(op->x1, {lo, hi});
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(cmp128_xm) {
        PSSP_CHARGE(cmp128_xm);
        const std::uint64_t addr = ea(*op);
        const xmm_value x = get_x(op->x1);
        std::uint64_t lo, hi;
        if (!ld(addr, 8, lo, out)) goto stop_terminal;
        if (!ld(addr + 8, 8, hi, out)) goto stop_terminal;
        flags_.zf = x.lo == lo && x.hi == hi;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(syscall_i) {
        PSSP_CHARGE(syscall_i);
        const auto number = static_cast<std::uint32_t>(op->imm);
        switch (static_cast<syscall_no>(number)) {
            case syscall_no::sys_exit:
                out.status = exec_status::exited;
                out.exit_code = static_cast<std::int64_t>(get(reg::rdi));
                goto stop_terminal;
            case syscall_no::sys_getpid:
                set(reg::rax, pid_);
                break;
            case syscall_no::sys_write: {
                const std::uint64_t buf = get(reg::rsi);
                const std::uint64_t count = get(reg::rdx);
                const std::uint8_t* p = mem_.try_at(buf, count);
                if (p == nullptr) {
                    out.status = exec_status::trapped;
                    out.trap = trap_kind::segfault;
                    out.fault_addr = buf;
                    goto stop_terminal;
                }
                if (output_.size() < max_output_bytes) {
                    const std::size_t take = std::min<std::size_t>(
                        count, max_output_bytes - output_.size());
                    output_.append(reinterpret_cast<const char*>(p), take);
                }
                set(reg::rax, count);
                break;
            }
            case syscall_no::sys_fork:
                // Serviced by the process layer: pause with rip already
                // advanced so both sides resume after the syscall once
                // complete_syscall() fills in rax. Resumable, so finished_
                // stays unset.
                rip_ = ip + 1;
                out.status = exec_status::syscalled;
                out.syscall_number = number;
                steps_ += executed;
                cycles_ += cyc;
                return out;
        }
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_OPC(trap_abort) {
        PSSP_CHARGE(trap_abort);
        out.status = exec_status::trapped;
        out.trap = trap_kind::stack_smash;
        out.fault_addr = prog_->addrs[ip];
        goto stop_terminal;
    }
    PSSP_OPC(hlt) {
        PSSP_CHARGE(hlt);
        out.status = exec_status::exited;
        out.exit_code = static_cast<std::int64_t>(get(reg::rax));
        goto stop_terminal;
    }
    PSSP_OPC(sim_delay) {
        // Cost-model artifact; the flat table carries only the dbi_tax
        // component, the per-site charge lives in the immediate.
        PSSP_CHARGE(sim_delay);
        cyc += op->imm;
        PSSP_PROFILE_CYC(op->imm);
        ++ip;
        PSSP_DISPATCH();
    }

    // ---- Fused superinstructions (vm/dispatch.hpp) ----
    // Each executes positions ip and ip+1 in one dispatch, charging and
    // retiring the halves in order so fuel boundaries and second-half
    // faults land exactly where the stepper would put them.
    PSSP_FUSED(fuse_cmp_rr_jcc) {
        PSSP_CHARGE(cmp_rr);
        const std::uint64_t a = get(op->r1);
        const std::uint64_t b = get(op->r2);
        flags_.zf = a == b;
        flags_.lt_unsigned = a < b;
        flags_.lt_signed =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        goto fused_jcc_tail;
    }
    PSSP_FUSED(fuse_cmp_ri_jcc) {
        PSSP_CHARGE(cmp_ri);
        const std::uint64_t a = get(op->r1);
        const std::uint64_t b = op->imm;
        flags_.zf = a == b;
        flags_.lt_unsigned = a < b;
        flags_.lt_signed =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        goto fused_jcc_tail;
    }
    PSSP_FUSED(fuse_test_rr_jcc) {
        PSSP_CHARGE(test_rr);
        flags_.zf = (get(op->r1) & get(op->r2)) == 0;
        goto fused_jcc_tail;
    }
    PSSP_FUSED(fuse_xor_rm_jcc) {
        // The SSP epilogue's canary check: xor rcx, fs:0x28 ; jne fail.
        PSSP_CHARGE(xor_rm);
        std::uint64_t mval;
        if (!ld(ea(*op), 8, mval, out)) goto stop_terminal;
        const std::uint64_t v = get(op->r1) ^ mval;
        set(op->r1, v);
        set_alu_flags(v);
        goto fused_jcc_tail;
    }
    PSSP_FUSED(fuse_push_push) {
        PSSP_CHARGE(push_r);
        if (!push64(get(op->r1), out)) goto stop_terminal;
        ++ip;
        if (budget == 0) goto budget_stop;
        --budget;
        op = code + ip;
        PSSP_CHARGE(push_r);
        if (!push64(get(op->r1), out)) goto stop_terminal;
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_FUSED(fuse_push_mov_rr) {
        // Frame setup: push rbp ; mov rbp, rsp.
        PSSP_CHARGE(push_r);
        if (!push64(get(op->r1), out)) goto stop_terminal;
        ++ip;
        if (budget == 0) goto budget_stop;
        --budget;
        op = code + ip;
        PSSP_CHARGE(mov_rr);
        set(op->r1, get(op->r2));
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_FUSED(fuse_mov_rm_add_rr) {
        PSSP_CHARGE(mov_rm);
        std::uint64_t v;
        if (!ld(ea(*op), 8, v, out)) goto stop_terminal;
        set(op->r1, v);
        ++ip;
        if (budget == 0) goto budget_stop;
        --budget;
        op = code + ip;
        PSSP_CHARGE(add_rr);
        const std::uint64_t sum = get(op->r1) + get(op->r2);
        set(op->r1, sum);
        set_alu_flags(sum);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_FUSED(fuse_sub_ri_cmp_ri) {
        PSSP_CHARGE(sub_ri);
        const std::uint64_t v = get(op->r1) - op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        if (budget == 0) goto budget_stop;
        --budget;
        op = code + ip;
        PSSP_CHARGE(cmp_ri);
        const std::uint64_t a = get(op->r1);
        const std::uint64_t b = op->imm;
        flags_.zf = a == b;
        flags_.lt_unsigned = a < b;
        flags_.lt_signed =
            static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_FUSED(fuse_mov_mr_xor_ri) {
        PSSP_CHARGE(mov_mr);
        if (!st(ea(*op), 8, get(op->r2), out)) goto stop_terminal;
        ++ip;
        if (budget == 0) goto budget_stop;
        --budget;
        op = code + ip;
        PSSP_CHARGE(xor_ri);
        const std::uint64_t v = get(op->r1) ^ op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        PSSP_DISPATCH();
    }
    PSSP_FUSED(fuse_add_ri_ret) {
        PSSP_CHARGE(add_ri);
        const std::uint64_t v = get(op->r1) + op->imm;
        set(op->r1, v);
        set_alu_flags(v);
        ++ip;
        if (budget == 0) goto budget_stop;
        --budget;
        op = code + ip;
        PSSP_CHARGE(ret);
        std::uint64_t target;
        if (!pop64(target, out)) goto stop_terminal;
        if (target == return_sentinel) {
            out.status = exec_status::exited;
            out.exit_code = static_cast<std::int64_t>(get(reg::rax));
            goto stop_terminal;
        }
        {
            const std::uint32_t index = prog_->index_of(target);
            if (index == no_id) {
                out.status = exec_status::trapped;
                out.trap = trap_kind::invalid_jump;
                out.fault_addr = target;
                goto stop_terminal;
            }
            ip = index;
        }
        PSSP_DISPATCH();
    }
    PSSP_FUSED(sentinel) {
        // rip walked past the last instruction: the legacy loop's bounds
        // check, reproduced as a trapping op. Charges nothing — the
        // stepper never executed an instruction here either.
        rip_ = ip;
        out.status = exec_status::trapped;
        out.trap = trap_kind::invalid_jump;
        out.fault_addr = current_address();
        goto stop_terminal;
    }

#if !PSSP_COMPUTED_GOTO
    }
    // Unreachable: finalize() only emits handler ids covered above.
    out.status = exec_status::trapped;
    out.trap = trap_kind::invalid_jump;
    goto stop_terminal;
#endif

fused_jcc_tail:
    // Second half of the flags-producing fused pairs: the conditional
    // branch at ip+1.
    ++ip;
    if (budget == 0) goto budget_stop;
    --budget;
    op = code + ip;
    cyc += ct[op->op];
    ++executed;
    PSSP_PROFILE_CYC(ct[op->op]);
    if (jcc_taken(op->op, flags_)) {
        if (op->target == no_id) {
            out.status = exec_status::trapped;
            out.trap = trap_kind::invalid_jump;
            out.fault_addr = op->imm;
            goto stop_terminal;
        }
        ip = op->target;
    } else {
        ++ip;
    }
    PSSP_DISPATCH();

budget_stop:
    // The step countdown ran dry before the next (sub-)instruction. The
    // stepper checks fuel before max_steps, so fuel wins ties; a
    // max_steps pause is resumable and leaves finished_ unset.
    rip_ = ip;
    steps_ += executed;
    cycles_ += cyc;
    if (fuel_ != 0 && steps_ >= fuel_) {
        out.status = exec_status::out_of_fuel;
        finished_ = out;
        finished_valid_ = true;
        return out;
    }
    out.status = exec_status::running;
    return out;

stop_terminal:
    // Terminal event (exit, trap, fuel handled above): reconcile the
    // batched accounting, park rip on the event instruction, latch the
    // sticky result.
    rip_ = ip;
    steps_ += executed;
    cycles_ += cyc;
    finished_ = out;
    finished_valid_ = true;
    return out;
}

#undef PSSP_OPC
#undef PSSP_FUSED
#undef PSSP_DISPATCH
#undef PSSP_CHARGE
#undef PSSP_PROFILE_HIT
#undef PSSP_PROFILE_CYC
#undef PSSP_COMPUTED_GOTO

std::uint64_t machine::current_address() const noexcept {
    if (rip_ < prog_->addrs.size()) return prog_->addrs[rip_];
    return 0;
}

void machine::copy_scalars_from(const machine& src) {
    assert(prog_ == src.prog_);
    gpr_ = src.gpr_;
    xmm_ = src.xmm_;
    flags_ = src.flags_;
    fs_base_ = src.fs_base_;
    rip_ = src.rip_;
    rip_valid_ = src.rip_valid_;
    costs_ = src.costs_;
    // The flattened cost table is immutable behind a shared pointer, so
    // snapshot restore and the per-request fork fast path move 16 bytes
    // here instead of re-copying the whole per-opcode array.
    cost_cache_ = src.cost_cache_;
    cost_cache_key_ = src.cost_cache_key_;
    dispatch_ = src.dispatch_;
    // Shared, not cloned: all copies of a profiled master feed one table.
    profile_ = src.profile_;
    cycles_ = src.cycles_;
    steps_ = src.steps_;
    fuel_ = src.fuel_;
    tsc_base_ = src.tsc_base_;
    entropy_ = src.entropy_;
    pid_ = src.pid_;
    // Skip the copy when already equal: on the per-request fork fast path
    // both sides' output is (almost) always empty, and the fork tail
    // clears the child's output right after anyway.
    if (output_ != src.output_) output_ = src.output_;
    finished_ = src.finished_;
    finished_valid_ = src.finished_valid_;
}

void machine::restore_from(const machine& snap) {
    if (prog_ != snap.prog_)
        throw std::invalid_argument{"machine::restore_from: different program"};
    copy_scalars_from(snap);
    mem_.restore_from(snap.mem_);
}

void machine::sync_from(machine& src) {
    if (prog_ != src.prog_)
        throw std::invalid_argument{"machine::sync_from: different program"};
    copy_scalars_from(src);
    mem_.sync_from(src.mem_);
}

}  // namespace pssp::vm
