// Fork-per-request web-server workloads (the Apache2/Nginx analogs).
//
// Module shape (all VM code, compiled under whichever scheme is under
// test):
//
//   server_main()                    // has a local buffer => protected
//     -> accept_loop()               // protected; loops:
//          pid = fork()              //   real sys_fork, worker per request
//          if (pid == 0) {
//            handle_request();       //   the vulnerable handler
//            return;                 //   back through *inherited* frames
//          }
//
//   handle_request()
//     char buf[N];                   // protected frame
//     parse work (arithmetic loop)
//     memcpy(buf, g_request, g_request_len);   // THE BUG: length unchecked
//     if (*(u64*)g_request == "LEAK") write(1, buf, N + 64);  // over-read
//     response work; write(response)
//
// The leak path is optional and models the second vulnerability class the
// paper's Section IV-C exposure-resilience discussion assumes.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/ir.hpp"
#include "proc/fork_server.hpp"

namespace pssp::workload {

struct server_profile {
    std::string name = "nginx_m";
    std::uint64_t parse_iters = 6;      // per-request header-parse work
    std::uint64_t response_iters = 4;   // per-request response work
    std::uint32_t buffer_bytes = 64;    // the vulnerable buffer
    bool leaky = true;                  // include the over-read path
    bool critical_buffer = true;        // mark buf critical (P-SSP-LV's V)
};

// Apache2 analog: heavier per-request processing (richer module system).
[[nodiscard]] server_profile apache_profile();
// Nginx analog: lean event-loop-style handler.
[[nodiscard]] server_profile nginx_profile();
// "Ali" analog (the second target of the paper's Section VI-C attack run):
// a small RPC-ish service with a tighter buffer.
[[nodiscard]] server_profile ali_profile();

[[nodiscard]] compiler::ir_module make_server_module(const server_profile& profile);

// The fork_server configuration matching make_server_module's symbols.
[[nodiscard]] proc::server_config server_config_for(const server_profile& profile);

// Distance from buffer start to the canary area — what the attacker reads
// off the (public) binary.
[[nodiscard]] std::uint64_t attack_prefix_bytes(const server_profile& profile);

}  // namespace pssp::workload
