#include "vm/memory.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/bytes.hpp"

namespace pssp::vm {

namespace {

constexpr std::size_t page_align(std::size_t n) noexcept {
    return (n + memory::page_bytes - 1) & ~(memory::page_bytes - 1);
}

}  // namespace

memory::memory(const layout& lay) : layout_{lay} {
    // Stack first: it takes the overwhelming majority of interpreter
    // accesses (push/pop/locals), so the descriptor scan usually exits on
    // its first iteration. Page-aligned offsets keep a dirty page inside
    // one region, which makes restore diffs easy to reason about.
    const std::size_t stack_off = 0;
    const std::size_t globals_off = stack_off + page_align(lay.stack_size);
    const std::size_t tls_off = globals_off + page_align(lay.globals_size);
    desc_[0] = {lay.stack_top - lay.stack_size, lay.stack_size, stack_off};
    desc_[1] = {lay.globals_base, lay.globals_size, globals_off};
    desc_[2] = {lay.tls_base, lay.tls_size, tls_off};
    buf_.assign(tls_off + page_align(lay.tls_size), 0);
    const std::size_t words = (buf_.size() / page_bytes + 63) / 64;
    dirty_[0].assign(words, 0);
    dirty_[1].assign(words, 0);
}

std::uint8_t memory::load8(std::uint64_t addr) const {
    const std::uint8_t* p = try_at(addr, 1);
    if (p == nullptr) throw mem_fault{addr, 1, "load8: unmapped address"};
    return *p;
}

std::uint32_t memory::load32(std::uint64_t addr) const {
    const std::uint8_t* p = try_at(addr, 4);
    if (p == nullptr) throw mem_fault{addr, 4, "load32: unmapped address"};
    return util::load_le32(std::span{p, 4});
}

std::uint64_t memory::load64(std::uint64_t addr) const {
    const std::uint8_t* p = try_at(addr, 8);
    if (p == nullptr) throw mem_fault{addr, 8, "load64: unmapped address"};
    return util::load_le64(std::span{p, 8});
}

void memory::store8(std::uint64_t addr, std::uint8_t value) {
    std::uint8_t* p = try_at_mut(addr, 1);
    if (p == nullptr) throw mem_fault{addr, 1, "store8: unmapped address"};
    *p = value;
}

void memory::store32(std::uint64_t addr, std::uint32_t value) {
    std::uint8_t* p = try_at_mut(addr, 4);
    if (p == nullptr) throw mem_fault{addr, 4, "store32: unmapped address"};
    util::store_le32(std::span{p, 4}, value);
}

void memory::store64(std::uint64_t addr, std::uint64_t value) {
    std::uint8_t* p = try_at_mut(addr, 8);
    if (p == nullptr) throw mem_fault{addr, 8, "store64: unmapped address"};
    util::store_le64(std::span{p, 8}, value);
}

void memory::read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
    if (out.empty()) return;  // empty span may carry a null data()
    const std::uint8_t* p = try_at(addr, out.size());
    if (p == nullptr) throw mem_fault{addr, out.size(), "read_bytes: unmapped range"};
    std::memcpy(out.data(), p, out.size());
}

void memory::write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data) {
    if (data.empty()) return;  // empty span may carry a null data()
    std::uint8_t* p = try_at_mut(addr, data.size());
    if (p == nullptr) throw mem_fault{addr, data.size(), "write_bytes: unmapped range"};
    std::memcpy(p, data.data(), data.size());
}

void memory::mark_clean(dirty_channel channel) noexcept {
    auto& bits = dirty_[static_cast<unsigned>(channel)];
    std::fill(bits.begin(), bits.end(), 0);
}

void memory::mark_all_clean() noexcept {
    mark_clean(dirty_channel::restore);
    mark_clean(dirty_channel::fork);
}

void memory::restore_from(const memory& snap) {
    if (snap.buf_.size() != buf_.size() ||
        std::memcmp(&snap.layout_, &layout_, sizeof layout_) != 0)
        throw std::invalid_argument{"memory::restore_from: layout mismatch"};
    auto& restore_bits = dirty_[static_cast<unsigned>(dirty_channel::restore)];
    auto& fork_bits = dirty_[static_cast<unsigned>(dirty_channel::fork)];
    for (std::size_t w = 0; w < restore_bits.size(); ++w) {
        std::uint64_t bits = restore_bits[w];
        if (bits == 0) continue;
        fork_bits[w] |= bits;  // the restore itself changes those pages
        restore_bits[w] = 0;
        while (bits != 0) {
            const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::size_t off = ((w << 6) + b) * page_bytes;
            const std::size_t n = std::min(page_bytes, buf_.size() - off);
            std::memcpy(buf_.data() + off, snap.buf_.data() + off, n);
        }
    }
}

void memory::sync_from(memory& src) {
    if (src.buf_.size() != buf_.size() ||
        std::memcmp(&src.layout_, &layout_, sizeof layout_) != 0)
        throw std::invalid_argument{"memory::sync_from: layout mismatch"};
    auto& mine = dirty_[static_cast<unsigned>(dirty_channel::fork)];
    auto& theirs = src.dirty_[static_cast<unsigned>(dirty_channel::fork)];
    for (std::size_t w = 0; w < mine.size(); ++w) {
        std::uint64_t bits = mine[w] | theirs[w];
        mine[w] = 0;
        theirs[w] = 0;
        while (bits != 0) {
            const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::size_t off = ((w << 6) + b) * page_bytes;
            const std::size_t n = std::min(page_bytes, buf_.size() - off);
            std::memcpy(buf_.data() + off, src.buf_.data() + off, n);
        }
    }
}

std::size_t memory::dirty_pages(dirty_channel channel) const noexcept {
    std::size_t count = 0;
    for (const std::uint64_t word : dirty_[static_cast<unsigned>(channel)])
        count += static_cast<std::size_t>(std::popcount(word));
    return count;
}

bool memory::contains(std::uint64_t addr, std::size_t size) const noexcept {
    return try_at(addr, size) != nullptr;
}

std::span<const std::uint8_t> memory::stack_bytes() const noexcept {
    return {buf_.data() + desc_[0].off, static_cast<std::size_t>(desc_[0].size)};
}
std::span<const std::uint8_t> memory::tls_bytes() const noexcept {
    return {buf_.data() + desc_[2].off, static_cast<std::size_t>(desc_[2].size)};
}
std::span<const std::uint8_t> memory::globals_bytes() const noexcept {
    return {buf_.data() + desc_[1].off, static_cast<std::size_t>(desc_[1].size)};
}

std::size_t memory::resident_bytes() const noexcept {
    return layout_.globals_size + layout_.stack_size + layout_.tls_size;
}

}  // namespace pssp::vm
