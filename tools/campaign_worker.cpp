// One shard of a distributed campaign, as a process.
//
// Protocol (see src/dist/orchestrator.cpp, which speaks the other side):
//   stdin   wire spec JSON (the whole campaign_spec; jobs/reuse_masters
//           are this shard's execution knobs as set by the orchestrator)
//   argv    --shard K --shards N   which slice of the canonical block
//           space this process owns (dist::plan_shard)
//   stdout  wire partial-report JSON: the shard's per-block mergeable
//           partials, hexfloat-exact
//   stderr  diagnostics only
// Exit 0 on success; any failure is a non-zero exit with a message on
// stderr — the orchestrator turns that into a loud run failure.
//
// Test hook: PSSP_CAMPAIGN_WORKER_CRASH=<K> makes shard K exit(3) before
// doing any work, so the crashed-worker path is testable without a real
// fault.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/shard.hpp"
#include "dist/wire.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --shard K --shards N < spec.json > partial.json\n"
                 "Runs shard K of an N-way campaign split; spec JSON on stdin\n"
                 "(dist wire format), partial report JSON on stdout.\n",
                 argv0);
    return 2;
}

std::string read_stdin() {
    std::string input;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error{"reading spec from stdin failed"};
        }
        if (n == 0) return input;
        input.append(buf, static_cast<std::size_t>(n));
    }
}

}  // namespace

int main(int argc, char** argv) {
    long shard = -1;
    long shards = -1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--shard") && i + 1 < argc)
            shard = std::strtol(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--shards") && i + 1 < argc)
            shards = std::strtol(argv[++i], nullptr, 10);
        else
            return usage(argv[0]);
    }
    if (shard < 0 || shards <= 0 || shard >= shards) return usage(argv[0]);

    if (const char* crash = std::getenv("PSSP_CAMPAIGN_WORKER_CRASH"))
        if (std::strtol(crash, nullptr, 10) == shard) {
            std::fprintf(stderr, "shard %ld: injected crash\n", shard);
            return 3;
        }

    try {
        const auto spec = pssp::dist::spec_from_json(read_stdin());
        const auto plan = pssp::dist::plan_shard(
            spec, static_cast<std::uint32_t>(shard),
            static_cast<std::uint32_t>(shards));

        pssp::campaign::engine engine{spec};
        const auto partials = engine.run_blocks(plan.blocks);

        pssp::dist::partial_report report;
        report.shard_index = plan.shard_index;
        report.shard_count = plan.shard_count;
        report.digest = pssp::dist::spec_digest(spec);
        report.blocks.reserve(plan.blocks.size());
        for (std::size_t i = 0; i < plan.blocks.size(); ++i)
            report.blocks.push_back(pssp::dist::partial_block{
                plan.blocks[i].index, plan.blocks[i].cell, partials[i]});

        const auto json = pssp::dist::partial_to_json(report);
        if (std::fwrite(json.data(), 1, json.size(), stdout) != json.size() ||
            std::fflush(stdout) != 0) {
            std::fprintf(stderr, "shard %ld: writing partial failed\n", shard);
            return 1;
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "shard %ld: %s\n", shard, e.what());
        return 1;
    }
}
