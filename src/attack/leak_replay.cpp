#include "attack/leak_replay.hpp"

#include "util/bytes.hpp"

namespace pssp::attack {

leak_replay_result leak_replay::run(std::uint64_t ret_target, std::uint64_t saved_rbp) {
    leak_replay_result result;

    // Step 1: the leak query. The handler's over-read path dumps its stack
    // buffer *plus* the adjacent frame metadata into the response.
    std::uint8_t magic[8];
    util::store_le64(magic, leak_magic);
    const auto leak = oracle_.serve(std::span<const std::uint8_t>{magic, 8});
    ++result.trials;
    if (leak.output.size() < config_.leak_offset + config_.canary_bytes) return result;

    result.leaked_canary.assign(
        leak.output.begin() + static_cast<std::ptrdiff_t>(config_.leak_offset),
        leak.output.begin() +
            static_cast<std::ptrdiff_t>(config_.leak_offset + config_.canary_bytes));
    result.leak_succeeded = true;

    // Step 2: replay against a fresh worker.
    std::vector<std::uint8_t> payload(config_.prefix_bytes, 'A');
    payload.insert(payload.end(), result.leaked_canary.begin(),
                   result.leaked_canary.end());
    std::uint8_t w[8];
    util::store_le64(w, saved_rbp);
    payload.insert(payload.end(), w, w + 8);
    util::store_le64(w, ret_target);
    payload.insert(payload.end(), w, w + 8);

    const auto replay = oracle_.serve(payload);
    ++result.trials;
    result.hijacked = replay.outcome == proc::worker_outcome::hijacked;
    return result;
}

}  // namespace pssp::attack
