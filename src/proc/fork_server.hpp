// Fork-per-request network server — the byte-by-byte attack's oracle.
//
// Models the application class the attack targets (Section II-B): a master
// process that forks a worker per request, where
//   * every worker inherits the master's TLS (same canary C — and, under
//     P-SSP, a shadow pair the fork hook refreshes);
//   * a crashed worker is simply reaped and the master forks another, so
//     the attacker gets unlimited oracle queries;
//   * the worker's request handler contains a stack buffer overflow
//     (an unbounded strcpy of the request).
//
// The master runs real VM code: its main() calls into an accept loop that
// executes the fork *syscall* per request; the child returns from the loop
// through frames its parent created — the inherited-frame path on which
// RAF-SSP breaks and P-SSP must not (Section VI-C's compatibility run).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "binfmt/image.hpp"
#include "proc/process.hpp"
#include "vm/machine.hpp"

namespace pssp::proc {

// Marker a successful control-flow hijack writes via sys_write; see
// workload::add_win_function.
inline constexpr const char* hijack_marker = "PWNED";

enum class worker_outcome : std::uint8_t {
    ok,              // worker exited normally
    crashed_canary,  // __stack_chk_fail path (stack smashing detected)
    crashed_segv,    // wild write/read
    crashed_cf,      // invalid control transfer (clobbered return address)
    hijacked,        // control reached the attacker's target
    out_of_fuel,     // runaway loop (counts as a crash for the oracle)
};

[[nodiscard]] std::string to_string(worker_outcome outcome);

struct serve_result {
    worker_outcome outcome = worker_outcome::ok;
    vm::run_result raw{};          // the worker's terminal machine state
    std::string output;            // worker's sys_write bytes
    std::uint64_t worker_cycles = 0;
    std::uint64_t worker_steps = 0;
};

struct server_config {
    std::string entry = "server_main";      // master entry symbol
    std::string request_symbol = "g_request";  // data object receiving requests
    // Data object receiving the request byte count (read()-style handlers
    // copy exactly this many bytes — the attack-relevant path). Ignored if
    // the binary has no such symbol.
    std::string length_symbol = "g_request_len";
    std::uint64_t request_capacity = 4096;  // bytes available at that object
    std::uint64_t worker_fuel = 4'000'000;  // instruction budget per worker
    std::uint64_t master_fuel = 4'000'000;  // budget between two forks
    // Keep a pre-boot snapshot so the server can be reboot()ed for a new
    // trial seed without re-allocating its image. Costs one extra machine
    // copy at construction; master_pool turns it on, one-shot users don't.
    bool reusable = false;
};

class fork_server {
  public:
    // Boots the master from `binary` and runs it up to its first fork.
    // Pass `program` to share one loaded vm::program across many servers
    // of the same binary (a campaign boots thousands; rebuilding the
    // instruction stream and address index per boot dominated boot cost);
    // null means load privately from `binary`.
    fork_server(const binfmt::linked_binary& binary,
                std::shared_ptr<const core::scheme> sch, std::uint64_t seed,
                server_config config = {},
                std::shared_ptr<const vm::program> program = nullptr);

    // Re-derives the whole server for a new trial seed in place: memory
    // rewinds to the pre-boot snapshot (dirty pages only), the manager's
    // pid/entropy/PRNG state rewinds to construction state, and the short
    // boot path replays — producing a master byte-identical to a freshly
    // constructed fork_server with the same seed (pinned by
    // tests/proc/master_pool_test.cpp). Requires config.reusable.
    void reboot(std::uint64_t seed);

    // Handles one request end-to-end: fork worker, deliver `request` into
    // the request buffer, run the worker to completion, resume the master
    // to its next accept. A trailing NUL is appended (network reads are
    // length-delimited; the vulnerable handler treats data as a C string).
    [[nodiscard]] serve_result serve(std::span<const std::uint8_t> request);
    [[nodiscard]] serve_result serve(std::string_view request);

    // True while the master is parked at a fork, ready for requests.
    [[nodiscard]] bool alive() const noexcept { return master_ready_; }

    [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
    [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }

    [[nodiscard]] const vm::machine& master() const noexcept { return master_; }
    [[nodiscard]] process_manager& manager() noexcept { return manager_; }

  private:
    process_manager manager_;
    server_config config_;
    vm::machine master_;
    // Pre-boot snapshot for reboot() (reusable servers only).
    std::unique_ptr<vm::machine> preboot_;
    // The recycled per-request worker: forked by dirty-page sync instead of
    // a full machine copy. Allocated on first serve.
    std::unique_ptr<vm::machine> worker_;
    std::uint64_t entry_addr_ = 0;
    std::uint64_t request_addr_ = 0;
    std::uint64_t length_addr_ = 0;  // 0 = binary has no length symbol
    bool master_ready_ = false;
    std::uint64_t requests_ = 0;
    std::uint64_t crashes_ = 0;

    void boot(std::uint64_t seed);
    void run_master_to_fork();
    [[nodiscard]] vm::machine& next_worker();
};

// Batch trial setup: stamps out independent fork servers from one built
// binary. A Monte-Carlo campaign boots thousands of masters of the same
// (target, scheme) build; compiling and linking once and sharing the image
// is what makes that affordable. The binary is only ever read (process
// creation copies globals out of it), so concurrent make() calls from a
// worker pool are safe; each server gets its own process_manager seeded
// from the caller's per-trial stream.
class server_batch {
  public:
    server_batch(std::shared_ptr<const binfmt::linked_binary> binary,
                 core::scheme_kind kind, core::scheme_options options,
                 server_config config);

    // Boots one fresh master. `seed` drives everything process-side: the
    // entropy stream, hence the TLS canary C and every per-fork pair.
    [[nodiscard]] fork_server make(std::uint64_t seed) const;

    [[nodiscard]] const binfmt::linked_binary& binary() const noexcept {
        return *binary_;
    }
    // The binary loaded once, shared by every server this batch stamps out.
    [[nodiscard]] std::shared_ptr<const vm::program> program() const noexcept {
        return program_;
    }
    [[nodiscard]] core::scheme_kind kind() const noexcept { return kind_; }
    [[nodiscard]] const core::scheme_options& options() const noexcept {
        return options_;
    }
    [[nodiscard]] const server_config& config() const noexcept { return config_; }

  private:
    std::shared_ptr<const binfmt::linked_binary> binary_;
    std::shared_ptr<const vm::program> program_;
    core::scheme_kind kind_;
    core::scheme_options options_;
    server_config config_;
};

}  // namespace pssp::proc
