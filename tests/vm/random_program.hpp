// Seeded random-program generator shared by the differential stepper
// oracle (tests/vm/differential_test.cpp) and the CFG round-trip check
// (tests/analysis/cfg_test.cpp). One generator, two consumers: whatever
// instruction soup the oracle executes is exactly the soup the recovered
// CFG must cover.
#pragma once

#include <cstdint>
#include <vector>

#include "binfmt/image.hpp"
#include "crypto/prng.hpp"
#include "vm/isa.hpp"

namespace pssp::testing {

// Generates a random function: a frame prologue, then `body_len` random
// instructions biased toward the fusable pairs, forward conditional
// branches, in-frame memory traffic, and the occasional wild pointer or
// runaway back-edge. Crashing programs are good programs here — traps are
// events the two engines must agree on, and wild rets are exactly the
// transfers a recovered CFG must classify as unknown-successor.
inline binfmt::image random_image(std::uint64_t seed, std::size_t body_len) {
    using namespace vm::isa;
    using vm::reg;

    std::uint64_t s = seed;
    const auto next = [&s] { return crypto::splitmix64_next(s); };

    binfmt::image img;
    auto& leaf = img.add_function("leaf");
    leaf.emit({add_ri(reg::rax, 3), ret()});
    const auto leaf_sym = img.sym("leaf");

    auto& f = img.add_function("f");
    f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 64)});

    // Forward labels: emitted jumps target one of these; each is placed
    // at a random later point (or at the epilogue if never placed).
    std::vector<std::uint32_t> labels;
    std::vector<bool> placed;
    for (int i = 0; i < 4; ++i) {
        labels.push_back(f.new_label());
        placed.push_back(false);
    }
    const auto back_edge = f.new_label();
    f.place(back_edge);

    const reg regs[] = {reg::rax, reg::rcx, reg::rdx, reg::rsi, reg::rdi,
                        reg::r8, reg::r9, reg::r10};
    const auto rnd_reg = [&] { return regs[next() % std::size(regs)]; };
    const auto frame_slot = [&] {
        return mem(reg::rbp, -8 - static_cast<std::int32_t>(next() % 7) * 8);
    };

    for (std::size_t i = 0; i < body_len; ++i) {
        // Place a pending label at a random spot so forward jumps land.
        if (next() % 5 == 0) {
            for (std::size_t l = 0; l < labels.size(); ++l) {
                if (!placed[l] && next() % 2 == 0) {
                    f.place(labels[l]);
                    placed[l] = true;
                    break;
                }
            }
        }
        switch (next() % 24) {
            case 0: f.emit(mov_ri(rnd_reg(), next() % 4096)); break;
            case 1: f.emit(add_rr(rnd_reg(), rnd_reg())); break;
            case 2: f.emit(sub_ri(rnd_reg(), static_cast<std::int32_t>(next() % 64))); break;
            case 3: f.emit(xor_rr(rnd_reg(), rnd_reg())); break;
            case 4: f.emit(and_ri(rnd_reg(), static_cast<std::int32_t>(next() % 1024))); break;
            case 5: f.emit(shl_ri(rnd_reg(), static_cast<std::uint8_t>(next() % 8))); break;
            case 6: f.emit(imul_ri(rnd_reg(), static_cast<std::int32_t>(1 + next() % 7))); break;
            case 7: f.emit(mov_mr(frame_slot(), rnd_reg())); break;
            case 8: f.emit(mov_rm(rnd_reg(), frame_slot())); break;
            case 9: f.emit(movzx8_rm(rnd_reg(), frame_slot())); break;
            case 10: f.emit(lea(rnd_reg(), frame_slot())); break;
            case 11: f.emit(push_r(rnd_reg())); break;
            case 12: f.emit(pop_r(rnd_reg())); break;
            // The fusable diets, emitted as real adjacent pairs.
            case 13:
                f.emit({cmp_ri(rnd_reg(), static_cast<std::int32_t>(next() % 16)),
                        (next() % 2 != 0) ? je(labels[next() % labels.size()])
                                          : jne(labels[next() % labels.size()])});
                break;
            case 14:
                f.emit({cmp_rr(rnd_reg(), rnd_reg()),
                        (next() % 2 != 0) ? jb(labels[next() % labels.size()])
                                          : jge(labels[next() % labels.size()])});
                break;
            case 15:
                f.emit({test_rr(rnd_reg(), rnd_reg()),
                        je(labels[next() % labels.size()])});
                break;
            case 16:
                f.emit({sub_ri(reg::rdi, 1), cmp_ri(reg::rdi, 0),
                        jne(labels[next() % labels.size()])});
                break;
            case 17:
                f.emit({mov_rm(rnd_reg(), frame_slot()), add_rr(rnd_reg(), rnd_reg())});
                break;
            case 18:
                f.emit({mov_mr(frame_slot(), rnd_reg()),
                        xor_ri(rnd_reg(), static_cast<std::int32_t>(next() % 4096))});
                break;
            case 19: f.emit({push_r(rnd_reg()), push_r(rnd_reg())}); break;
            case 20: f.emit(call_sym(leaf_sym)); break;
            case 21:
                // Rare wild load: usually faults (segfault event).
                if (next() % 8 == 0) {
                    f.emit(mov_ri(reg::r10, 0x10 + next() % 4096));
                    f.emit(mov_rm(reg::r11, mem(reg::r10, 0)));
                }
                break;
            case 22:
                // Rare runaway back-edge: the fuel cap turns it into an
                // out_of_fuel event both engines must time identically.
                if (next() % 16 == 0) f.emit(jmp(back_edge));
                break;
            case 23:
                // Rare return-address clobber: ret then trap or wander.
                if (next() % 16 == 0) {
                    f.emit(mov_ri(reg::r11, next() % 2 ? 0x123456 : 0));
                    f.emit(mov_mr(mem(reg::rsp, 0), reg::r11));
                    f.emit(ret());
                }
                break;
        }
    }
    for (std::size_t l = 0; l < labels.size(); ++l)
        if (!placed[l]) f.place(labels[l]);
    f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    return img;
}

}  // namespace pssp::testing
