#include "crypto/one_way.hpp"

#include <array>

#include "crypto/aes128.hpp"
#include "crypto/sha1.hpp"
#include "util/bytes.hpp"

namespace pssp::crypto {

namespace {

class aes_owf final : public one_way_function {
  public:
    std::uint64_t evaluate(std::uint64_t key_lo, std::uint64_t key_hi, std::uint64_t ret,
                           std::uint64_t nonce) const override {
        return evaluate128(key_lo, key_hi, ret, nonce).lo;
    }

    output128 evaluate128(std::uint64_t key_lo, std::uint64_t key_hi, std::uint64_t ret,
                          std::uint64_t nonce) const override {
        // Code 8 packs the nonce (rdtsc result) into the low quadword of
        // xmm15 and the return address into the high quadword, then
        // encrypts under the key assembled from r12/r13.
        const aes128 cipher{key_lo, key_hi};
        const auto ct = cipher.encrypt({nonce, ret});
        return {ct.lo, ct.hi};
    }

    owf_kind kind() const noexcept override { return owf_kind::aes128; }
    std::string name() const override { return "AES-128 (AES-NI analog)"; }
};

class sha1_owf final : public one_way_function {
  public:
    std::uint64_t evaluate(std::uint64_t key_lo, std::uint64_t key_hi, std::uint64_t ret,
                           std::uint64_t nonce) const override {
        return evaluate128(key_lo, key_hi, ret, nonce).lo;
    }

    output128 evaluate128(std::uint64_t key_lo, std::uint64_t key_hi, std::uint64_t ret,
                          std::uint64_t nonce) const override {
        // Keyed-hash form: H(key || nonce || ret). A secret-prefix MAC's
        // extension weakness does not apply — the attacker never controls a
        // suffix of the hashed message, and the output is truncated.
        std::array<std::uint8_t, 32> msg{};
        util::store_le64(std::span{msg}.subspan(0, 8), key_lo);
        util::store_le64(std::span{msg}.subspan(8, 8), key_hi);
        util::store_le64(std::span{msg}.subspan(16, 8), nonce);
        util::store_le64(std::span{msg}.subspan(24, 8), ret);
        const auto digest = sha1::digest(msg);
        return {util::load_le64(std::span{digest}.subspan(0, 8)),
                util::load_le64(std::span{digest}.subspan(8, 8))};
    }

    owf_kind kind() const noexcept override { return owf_kind::sha1; }
    std::string name() const override { return "SHA-1 (truncated keyed hash)"; }
};

}  // namespace

std::unique_ptr<one_way_function> make_owf(owf_kind kind) {
    switch (kind) {
        case owf_kind::aes128:
            return std::make_unique<aes_owf>();
        case owf_kind::sha1:
            return std::make_unique<sha1_owf>();
    }
    return std::make_unique<aes_owf>();
}

}  // namespace pssp::crypto
