// Shared fixtures for the test suite: tiny IR programs with a known
// vulnerability, and helpers to build/run them under any scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "binfmt/stdlib.hpp"
#include "compiler/codegen.hpp"
#include "compiler/ir.hpp"
#include "core/runtime.hpp"
#include "core/scheme.hpp"
#include "proc/process.hpp"
#include "vm/machine.hpp"

namespace pssp::testing {

// A module with one vulnerable function:
//
//   uint64_t handle(void) {
//     char buf[64];              // local buffer => frame gets protected
//     uint64_t checksum = 7;     // scalar below the buffer
//     strcpy(buf, g_request);    // unbounded copy: the overflow
//     checksum = checksum * 33 + buf_word0;
//     return checksum;
//   }
//
// plus a "win" function that prints the hijack marker — the target a
// return-address overwrite aims at.
[[nodiscard]] inline compiler::ir_module vulnerable_module(
    std::uint32_t buffer_bytes = 64) {
    compiler::ir_module mod;
    mod.name = "vuln";
    mod.add_global("g_request", 4096);

    auto& win = mod.add_function("win");
    win.never_protect = true;
    win.body.push_back(compiler::write_stmt{compiler::global_addr{"g_win_msg"},
                                            compiler::const_ref{5}});
    win.body.push_back(compiler::return_stmt{compiler::const_ref{0x77}});
    mod.add_global("g_win_msg", 8, {'P', 'W', 'N', 'E', 'D', 0, 0, 0});

    auto& fn = mod.add_function("handle");
    const int buf = compiler::add_local(fn, "buf", buffer_bytes, /*is_buffer=*/true);
    const int sum = compiler::add_local(fn, "checksum");
    fn.body.push_back(compiler::assign_stmt{sum, compiler::const_ref{7}});
    fn.body.push_back(compiler::call_stmt{
        "strcpy", {compiler::addr_of{buf}, compiler::global_addr{"g_request"}},
        std::nullopt, /*writes_memory=*/true});
    fn.body.push_back(compiler::compute_stmt{sum, compiler::local_ref{sum},
                                             compiler::binop::mul,
                                             compiler::const_ref{33}});
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{sum}});
    return mod;
}

// Built-and-loaded instance of a module under one scheme.
struct built_program {
    binfmt::linked_binary binary;
    std::shared_ptr<const core::scheme> sch;
    proc::process_manager manager;
    vm::machine proc0;

    built_program(const compiler::ir_module& mod, core::scheme_kind kind,
                  std::uint64_t seed = 42,
                  binfmt::link_mode mode = binfmt::link_mode::dynamic_glibc,
                  core::scheme_options options = {})
        : binary{compiler::build_module(mod, core::make_scheme(kind, options), mode)},
          sch{core::make_scheme(kind, options)},
          manager{sch, seed},
          proc0{manager.create_process(binary)} {}

    // Writes `payload` + NUL into g_request and calls `entry`.
    vm::run_result run_with_request(std::span<const std::uint8_t> payload,
                                    const std::string& entry = "handle") {
        std::vector<std::uint8_t> bytes{payload.begin(), payload.end()};
        bytes.push_back(0);
        proc0.mem().write_bytes(binary.data_symbols.at("g_request"), bytes);
        proc0.call_function(binary.symbols.at(entry));
        proc0.set_fuel(proc0.steps() + 1'000'000);
        return proc0.run();
    }

    vm::run_result run_with_request(const std::string& payload,
                                    const std::string& entry = "handle") {
        return run_with_request(
            std::span{reinterpret_cast<const std::uint8_t*>(payload.data()),
                      payload.size()},
            entry);
    }
};

// Payload of `n` 'A' bytes.
[[nodiscard]] inline std::vector<std::uint8_t> filler(std::size_t n,
                                                      std::uint8_t byte = 'A') {
    return std::vector<std::uint8_t>(n, byte);
}

}  // namespace pssp::testing
