// Table II: code expansion rate of each P-SSP deployment.
//
// Paper row: compilation 0.27% | instrumentation (dynamic) 0 |
//            instrumentation (static) 2.78%.
// Method: for each of the 28 SPEC-like modules, compare .text bytes of
//   * the P-SSP compiler build vs the default (SSP) build;
//   * the rewritten dynamic binary vs its SSP original (must be 0 — every
//     patch is same-length);
//   * the rewritten static binary vs its SSP original (the appended
//     Dyninst-style section with __pssp_stack_chk_fail + fork).

#include <vector>

#include "bench_util.hpp"
#include "workload/spec.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

std::uint64_t text_of(const compiler::ir_module& mod, scheme_kind kind,
                      binfmt::link_mode mode) {
    return compiler::build_module(mod, core::make_scheme(kind), mode).text_bytes();
}

std::uint64_t rewritten_text(const compiler::ir_module& mod, binfmt::link_mode mode) {
    auto binary = compiler::build_module(mod, core::make_scheme(scheme_kind::ssp), mode);
    rewriter::binary_rewriter rw;
    (void)rw.upgrade_to_pssp(binary);
    return binary.text_bytes();
}

}  // namespace

int main() {
    bench::print_header("Table II — code expansion by P-SSP deployment",
                        "Table II (0.27% / 0 / 2.78%)");

    std::vector<double> comp, instr_dyn, instr_static;
    util::text_table per_bench{{"benchmark", "SSP .text", "P-SSP compile",
                                "instr dynamic", "instr static"}};

    for (const auto& profile : workload::spec2006_profiles()) {
        const auto mod = workload::make_spec_module(profile);

        const auto base_dyn = text_of(mod, scheme_kind::ssp, binfmt::link_mode::dynamic_glibc);
        const auto pssp_dyn = text_of(mod, scheme_kind::p_ssp, binfmt::link_mode::dynamic_glibc);
        const auto rw_dyn = rewritten_text(mod, binfmt::link_mode::dynamic_glibc);
        const auto base_static = text_of(mod, scheme_kind::ssp, binfmt::link_mode::static_glibc);
        const auto rw_static = rewritten_text(mod, binfmt::link_mode::static_glibc);

        const double c = util::overhead_percent(static_cast<double>(base_dyn),
                                                static_cast<double>(pssp_dyn));
        const double d = util::overhead_percent(static_cast<double>(base_dyn),
                                                static_cast<double>(rw_dyn));
        const double s = util::overhead_percent(static_cast<double>(base_static),
                                                static_cast<double>(rw_static));
        comp.push_back(c);
        instr_dyn.push_back(d);
        instr_static.push_back(s);
        per_bench.add_row({profile.name, std::to_string(base_dyn),
                           util::fmt_percent(c), util::fmt_percent(d),
                           util::fmt_percent(s)});
    }

    std::printf("%s\n", per_bench.render("Per-benchmark .text expansion").c_str());

    util::text_table summary{
        {"Compilation", "Instrumentation (dynamic link)", "Instrumentation (static link)"}};
    summary.add_row({util::fmt_percent(util::mean(comp)),
                     util::fmt_percent(util::mean(instr_dyn)),
                     util::fmt_percent(util::mean(instr_static))});
    std::printf("%s\n", summary.render("Table II — average expansion rate").c_str());
    std::printf("paper:    0.27%% / 0%% / 2.78%%\n");
    std::printf("measured: %s / %s / %s\n",
                util::fmt_percent(util::mean(comp)).c_str(),
                util::fmt_percent(util::mean(instr_dyn)).c_str(),
                util::fmt_percent(util::mean(instr_static)).c_str());
    return 0;
}
