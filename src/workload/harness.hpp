// Measurement harness shared by the benchmark binaries: builds a module
// under a scheme/deployment combination, runs it, and reports modeled
// cycles, code size and resident memory.
#pragma once

#include <cstdint>
#include <string>

#include "binfmt/image.hpp"
#include "compiler/ir.hpp"
#include "core/scheme.hpp"

namespace pssp::workload {

// How the protection reached the binary — the three build flavors every
// evaluation table compares.
enum class deployment : std::uint8_t {
    compiler_based,          // scheme emitted by the compiler pass
    instrumented_dynamic,    // SSP binary + rewriter + preloaded runtime
    instrumented_static,     // SSP binary + rewriter + appended section
    pin_dbi,                 // DynaGuard's PIN deployment: per-insn DBI tax
};

[[nodiscard]] std::string to_string(deployment dep);

struct run_measurement {
    std::uint64_t cycles = 0;        // modeled cycles for the whole run
    std::uint64_t steps = 0;         // executed instructions
    std::uint64_t text_bytes = 0;    // .text (+ appended sections)
    std::uint64_t resident_bytes = 0;  // memory footprint
    std::int64_t exit_code = 0;
    bool completed = false;          // exited normally
};

struct harness_options {
    deployment dep = deployment::compiler_based;
    core::scheme_options scheme_options{};
    std::string entry = "main";
    std::uint64_t seed = 1234;
    std::uint64_t fuel = 200'000'000;
    std::uint64_t dbi_tax_cycles = 0;  // per-insn tax when dep == pin_dbi
};

// Builds `mod` under `kind` with the given deployment and runs `entry` to
// completion in a fresh process.
//
// For the instrumented deployments the module is first compiled under
// plain SSP (the legacy binary) and then rewritten to P-SSP — exactly the
// paper's upgrade path — so `kind` must be p_ssp32 (what the rewriter
// produces) or ssp/none for baselines.
[[nodiscard]] run_measurement measure_module(const compiler::ir_module& mod,
                                             core::scheme_kind kind,
                                             const harness_options& options = {});

}  // namespace pssp::workload
