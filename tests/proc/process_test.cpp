// Process layer: fork semantics (full clone, divergent continuation,
// entropy reseeding) and the fork-tree executor.

#include <gtest/gtest.h>

#include "proc/process.hpp"
#include "test_helpers.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

TEST(process_manager, assigns_increasing_pids) {
    testing::built_program bp{testing::vulnerable_module(), scheme_kind::ssp};
    const auto child1 = bp.manager.fork_child(bp.proc0);
    const auto child2 = bp.manager.fork_child(bp.proc0);
    EXPECT_LT(bp.proc0.pid(), child1.pid());
    EXPECT_LT(child1.pid(), child2.pid());
}

TEST(process_manager, fork_clones_memory_copy_on_write_semantics) {
    testing::built_program bp{testing::vulnerable_module(), scheme_kind::ssp};
    const std::uint64_t addr = bp.binary.data_symbols.at("g_request");
    bp.proc0.mem().store64(addr, 0x1111);
    auto child = bp.manager.fork_child(bp.proc0);
    EXPECT_EQ(child.mem().load64(addr), 0x1111u);  // inherited
    child.mem().store64(addr, 0x2222);
    EXPECT_EQ(bp.proc0.mem().load64(addr), 0x1111u);  // isolated after fork
}

TEST(process_manager, children_draw_independent_entropy) {
    testing::built_program bp{testing::vulnerable_module(), scheme_kind::ssp};
    auto a = bp.manager.fork_child(bp.proc0);
    auto b = bp.manager.fork_child(bp.proc0);
    int same = 0;
    for (int i = 0; i < 32; ++i) same += a.entropy().next64() == b.entropy().next64();
    EXPECT_EQ(same, 0) << "sibling rdrand streams must not coincide";
}

TEST(process_manager, fork_clears_child_output) {
    testing::built_program bp{testing::vulnerable_module(), scheme_kind::ssp};
    (void)bp.run_with_request("hello");  // generates no output, but be safe
    auto child = bp.manager.fork_child(bp.proc0);
    EXPECT_TRUE(child.output().empty());
}

// A VM program that forks: parent returns child-pid + 1000, child returns 7.
TEST(executor, runs_fork_trees_depth_first) {
    compiler::ir_module mod;
    mod.name = "forky";
    auto& fn = mod.add_function("main");
    const int pid = compiler::add_local(fn, "pid");
    fn.body.push_back(compiler::call_stmt{"fork", {}, pid});
    compiler::if_stmt branch{compiler::local_ref{pid}, compiler::relop::eq,
                             compiler::const_ref{0}, {}, {}};
    branch.then_body.push_back(compiler::return_stmt{compiler::const_ref{7}});
    branch.else_body.push_back(compiler::compute_stmt{
        pid, compiler::local_ref{pid}, compiler::binop::add, compiler::const_ref{1000}});
    branch.else_body.push_back(compiler::return_stmt{compiler::local_ref{pid}});
    fn.body.push_back(branch);

    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::p_ssp));
    proc::process_manager manager{core::make_scheme(scheme_kind::p_ssp), 55};
    auto root = manager.create_process(binary);
    root.call_function(binary.symbols.at("main"));

    proc::executor exec{manager, 100'000};
    const auto outcome = exec.run(root);
    EXPECT_EQ(outcome.result.status, vm::exec_status::exited);
    EXPECT_EQ(outcome.processes, 2u);
    EXPECT_GT(outcome.result.exit_code, 1000);  // parent path, child pid + 1000
}

TEST(executor, fork_chain_under_p_ssp_has_no_false_positives) {
    // Nested forks with protected frames live across each fork: the
    // recursive function forks, the child recurses, everyone returns
    // through frames created before their shadow refresh.
    compiler::ir_module mod;
    mod.name = "chain";
    auto& fn = mod.add_function("chain");
    fn.param_count = 1;
    const int depth = compiler::add_local(fn, "depth");
    (void)compiler::add_local(fn, "buf", 32, /*is_buffer=*/true);
    const int pid = compiler::add_local(fn, "pid");
    const int sub = compiler::add_local(fn, "sub");

    compiler::if_stmt base{compiler::local_ref{depth}, compiler::relop::eq,
                           compiler::const_ref{0}, {}, {}};
    base.then_body.push_back(compiler::return_stmt{compiler::const_ref{1}});
    fn.body.push_back(base);
    fn.body.push_back(compiler::call_stmt{"fork", {}, pid});
    compiler::if_stmt child{compiler::local_ref{pid}, compiler::relop::eq,
                            compiler::const_ref{0}, {}, {}};
    compiler::compute_stmt dec{depth, compiler::local_ref{depth}, compiler::binop::sub,
                               compiler::const_ref{1}};
    child.then_body.push_back(dec);
    child.then_body.push_back(
        compiler::call_stmt{"chain", {compiler::local_ref{depth}}, sub});
    fn.body.push_back(child);
    fn.body.push_back(compiler::return_stmt{compiler::const_ref{2}});

    auto& main_fn = mod.add_function("main");
    (void)compiler::add_local(main_fn, "mbuf", 16, /*is_buffer=*/true);
    const int r = compiler::add_local(main_fn, "r");
    main_fn.body.push_back(
        compiler::call_stmt{"chain", {compiler::const_ref{4}}, r});
    main_fn.body.push_back(compiler::return_stmt{compiler::local_ref{r}});

    for (const auto kind : {scheme_kind::p_ssp, scheme_kind::dynaguard,
                            scheme_kind::dcr, scheme_kind::p_ssp_nt}) {
        const auto binary = compiler::build_module(mod, core::make_scheme(kind));
        proc::process_manager manager{core::make_scheme(kind), 77};
        auto root = manager.create_process(binary);
        root.call_function(binary.symbols.at("main"));
        proc::executor exec{manager, 1'000'000};
        const auto outcome = exec.run(root);
        EXPECT_EQ(outcome.result.status, vm::exec_status::exited)
            << core::to_string(kind) << ": "
            << vm::to_string(outcome.result.trap);
        EXPECT_EQ(outcome.processes, 5u) << core::to_string(kind);
    }
}

TEST(executor, raf_fork_chain_crashes_inherited_frames) {
    // The same chain under RAF-SSP must false-positive: the child's renewed
    // C no longer matches the canary its parent pushed in chain()'s frame.
    compiler::ir_module mod;
    mod.name = "raf_chain";
    auto& fn = mod.add_function("main");
    (void)compiler::add_local(fn, "buf", 16, /*is_buffer=*/true);
    const int pid = compiler::add_local(fn, "pid");
    fn.body.push_back(compiler::call_stmt{"fork", {}, pid});
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{pid}});

    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::raf_ssp));
    proc::process_manager manager{core::make_scheme(scheme_kind::raf_ssp), 88};
    auto root = manager.create_process(binary);
    root.call_function(binary.symbols.at("main"));
    proc::executor exec{manager, 100'000};
    const auto outcome = exec.run(root);
    // The parent exits fine; the child trapped inside the tree. Its crash
    // shows up as a worker failure, which we can see from process count +
    // the child's terminal state captured in the output ordering. Re-run
    // explicitly on the child to pin the behavior:
    auto parent = manager.create_process(binary);
    parent.call_function(binary.symbols.at("main"));
    const auto at_fork = parent.run();
    ASSERT_EQ(at_fork.status, vm::exec_status::syscalled);
    auto child = manager.fork_child(parent);
    child.complete_syscall(0);
    const auto child_end = child.run();
    EXPECT_EQ(child_end.status, vm::exec_status::trapped);
    EXPECT_EQ(child_end.trap, vm::trap_kind::stack_smash);
    (void)outcome;
}

TEST(executor, depth_limit_guards_against_fork_bombs) {
    compiler::ir_module mod;
    mod.name = "bomb";
    auto& fn = mod.add_function("main");
    const int pid = compiler::add_local(fn, "pid");
    const int i = compiler::add_local(fn, "i");
    compiler::loop_stmt loop{i, 1000, {}};
    loop.body.push_back(compiler::call_stmt{"fork", {}, pid});
    // Children fall through into the same loop: exponential blow-up.
    fn.body.push_back(loop);
    fn.body.push_back(compiler::return_stmt{});

    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::none));
    proc::process_manager manager{core::make_scheme(scheme_kind::none), 3};
    auto root = manager.create_process(binary);
    root.call_function(binary.symbols.at("main"));
    proc::executor exec{manager, 1'000'000};
    EXPECT_THROW((void)exec.run(root), std::runtime_error);
}

}  // namespace
}  // namespace pssp
