// P-SSP-LV (extension 2): catching overflows that never touch the return
// address — the "far more stealthy" non-control-data attack of Section
// IV-B.
//
//   $ ./local_variable_protection
//
// The victim models an authentication routine:
//
//   int check_password(void) {
//     char ok_flag[8];              // critical! (is_admin token)
//     char password[32];            // overflowable
//     ok_flag = 0;
//     strcpy(password, g_input);    // the bug
//     if (ok_flag != 0) grant();    // attacker's goal: no ret tampering
//     return;
//   }
//
// Stack layout (descending): [ret][saved rbp][canary?][ok_flag][password].
// A 39-byte input overwrites password and flips ok_flag while stopping
// *short of the classic canary* — so SSP never notices: the attacker gains
// privilege and the function returns cleanly. P-SSP-LV plants a dedicated
// canary directly below ok_flag, so the same payload is caught; with
// write-site checks it is caught before the privileged branch executes.

#include <cstdio>
#include <string>

#include "compiler/codegen.hpp"
#include "core/scheme.hpp"
#include "proc/process.hpp"

using namespace pssp;

namespace {

compiler::ir_module make_module() {
    compiler::ir_module mod;
    mod.name = "auth";
    mod.add_global("g_input", 512);
    mod.add_global("g_granted_msg", 8, {'G', 'R', 'A', 'N', 'T', '!', '\n', 0});

    auto& fn = mod.add_function("check_password");
    // Declared first => placed nearest the frame top, above the password
    // buffer (both are arrays, so the SSP planner does not reorder them).
    const int ok_flag =
        compiler::add_local(fn, "ok_flag", 8, /*is_buffer=*/true, /*is_critical=*/true);
    const int password = compiler::add_local(fn, "password", 32, /*is_buffer=*/true);

    fn.body.push_back(compiler::assign_stmt{ok_flag, compiler::const_ref{0}});
    fn.body.push_back(compiler::call_stmt{
        "strcpy", {compiler::addr_of{password}, compiler::global_addr{"g_input"}},
        std::nullopt, /*writes_memory=*/true});
    compiler::if_stmt gate{compiler::local_ref{ok_flag}, compiler::relop::ne,
                           compiler::const_ref{0}, {}, {}};
    gate.then_body.push_back(compiler::write_stmt{compiler::global_addr{"g_granted_msg"},
                                                  compiler::const_ref{7}});
    fn.body.push_back(gate);
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{ok_flag}});
    return mod;
}

void attempt(core::scheme_kind kind, bool write_site_checks, const std::string& label) {
    core::scheme_options options;
    options.lv_check_after_write = write_site_checks;
    const auto binary =
        compiler::build_module(make_module(), core::make_scheme(kind, options));
    proc::process_manager manager{core::make_scheme(kind, options), 99};
    vm::machine m = manager.create_process(binary);

    // 39 bytes + strcpy's NUL = 40: fills password (32), then flips the
    // eight ok_flag bytes (or, under P-SSP-LV, smashes ok_flag's canary) —
    // and stops before the classic return-address canary.
    std::string payload(39, 0x41);
    payload.push_back('\0');
    m.mem().write_bytes(binary.data_symbols.at("g_input"),
                        {reinterpret_cast<const std::uint8_t*>(payload.data()),
                         payload.size()});
    m.call_function(binary.symbols.at("check_password"));
    m.set_fuel(100'000);
    const auto r = m.run();

    const bool granted = m.output().find("GRANT") != std::string::npos;
    std::printf("  %-34s -> %-22s%s\n", label.c_str(),
                (vm::to_string(r.status) +
                 (r.status == vm::exec_status::trapped
                      ? " (" + vm::to_string(r.trap) + ")"
                      : ""))
                    .c_str(),
                granted ? "  *** PRIVILEGE ESCALATION ***" : "");
}

}  // namespace

int main() {
    std::printf("Non-control-data attack: flip ok_flag via buffer overflow,\n"
                "without ever reaching the return-address canary\n\n");
    attempt(core::scheme_kind::none, false, "native (no canary)");
    attempt(core::scheme_kind::ssp, false, "SSP (return-address canary only)");
    attempt(core::scheme_kind::p_ssp_nt, false, "P-SSP-NT (return guard only)");
    attempt(core::scheme_kind::p_ssp_lv, false, "P-SSP-LV (epilogue check)");
    attempt(core::scheme_kind::p_ssp_lv, true, "P-SSP-LV (+ write-site check)");
    std::printf("\nSSP exits cleanly WITH the escalation — the overflow stopped\n"
                "short of its only canary. P-SSP-LV's per-variable canary flags\n"
                "the corruption; the write-site variant flags it before the\n"
                "privileged branch ever runs.\n");
    return 0;
}
