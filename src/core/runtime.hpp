// The libpoly_canary shared-library analog (Section V-A).
//
// The paper ships a ~358-line LD_PRELOAD library exporting three overrides:
//   * setup_p-ssp       — a constructor-attribute function that initializes
//                         the TLS shadow canary before main();
//   * fork              — wraps glibc fork, refreshing the child's shadow
//                         canary after its TLS is cloned;
//   * pthread_create    — ditto for new threads.
// This class is that library: the process layer invokes it at exactly the
// same points in the process lifecycle. It also provides the native-handler
// interposition used by the *instrumented dynamic* deployment, where the
// modified __stack_chk_fail performs the Fig 4 split-xor check.
#pragma once

#include <memory>

#include "binfmt/image.hpp"
#include "core/scheme.hpp"
#include "crypto/prng.hpp"
#include "vm/machine.hpp"

namespace pssp::core {

class runtime {
  public:
    runtime(std::shared_ptr<const scheme> sch, std::uint64_t seed);

    // Rewinds the runtime's PRNG to the state a fresh runtime{sch, seed}
    // would have. The trial pool uses this to re-derive a recycled master's
    // canary state for a new trial seed exactly as a fresh boot would.
    void reseed(std::uint64_t seed) noexcept { rng_ = crypto::xoshiro256{seed}; }

    // setup_p-ssp: runs once per process image, before its main().
    void setup_process(vm::machine& m);

    // fork wrapper: runs in the child after the TLS clone.
    void on_fork_child(vm::machine& child);

    // pthread_create wrapper: runs in the new thread.
    void on_thread_create(vm::machine& thread);

    [[nodiscard]] const scheme& protection() const noexcept { return *scheme_; }
    [[nodiscard]] std::shared_ptr<const scheme> protection_ptr() const noexcept {
        return scheme_;
    }
    [[nodiscard]] crypto::xoshiro256& rng() noexcept { return rng_; }

  private:
    std::shared_ptr<const scheme> scheme_;
    crypto::xoshiro256 rng_;
};

// Rebinds __stack_chk_fail in a *dynamically linked, instrumented* binary
// to the P-SSP-aware check of Figs 3/4: rdi carries the packed 32-bit
// (C0, C1) stack word; C0 XOR C1 must equal low32(C). On success the
// handler returns with ZF set (the instrumented epilogue's `je` consumes
// it, Code 6); on mismatch it aborts via the fortify path. SSP-compiled
// callers that reach it with a genuinely smashed canary abort too, which
// is the paper's SSP-compatibility argument.
void bind_instrumented_stack_chk_fail(binfmt::linked_binary& binary);

}  // namespace pssp::core
