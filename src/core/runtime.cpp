#include "core/runtime.hpp"

#include <stdexcept>

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core {

runtime::runtime(std::shared_ptr<const scheme> sch, std::uint64_t seed)
    : scheme_{std::move(sch)}, rng_{seed} {
    if (!scheme_) throw std::invalid_argument{"runtime requires a scheme"};
}

void runtime::setup_process(vm::machine& m) { scheme_->runtime_setup(m, rng_); }

void runtime::on_fork_child(vm::machine& child) {
    scheme_->runtime_on_fork_child(child, rng_);
}

void runtime::on_thread_create(vm::machine& thread) {
    scheme_->runtime_on_thread_create(thread, rng_);
}

void bind_instrumented_stack_chk_fail(binfmt::linked_binary& binary) {
    binary.bind_native(binfmt::sym_stack_chk_fail, [](vm::machine& m) {
        const std::uint64_t word = m.get(vm::reg::rdi);
        const canary_pair32 pair = unpack32(word);
        const auto c_low = static_cast<std::uint32_t>(tls_load(m, tls_canary));
        // Fig 4's split/xor/compare (~12 ALU ops) plus the penalty of
        // calling into a cold glibc function on *every* return — the cost
        // that separates the instrumented deployment's ~1% from the
        // compiler deployment's ~0.24% in the paper's Figure 5.
        m.charge(25);
        if (pair.combined() == c_low) {
            m.flags().zf = true;  // the epilogue's je falls through to leave/ret
            return;
        }
        // Either a P-SSP frame was smashed, or an SSP-compiled epilogue
        // called in after its own mismatch (in which case rdi fails the
        // split-xor test with overwhelming probability). Both abort.
        throw vm::native_trap{vm::trap_kind::stack_smash};
    });
}

}  // namespace pssp::core
