// P-SSP-LV: extension 2 — local-variable protection (Algorithm 2).
//
// Every critical variable gets its own canary in the adjacent word at the
// next-lower address (the same relative position the classic canary has to
// the return address), plus one canary guarding the return address. All
// but one canary are fresh rdrand values; the final one is computed so
// that the XOR of every canary in the frame equals the TLS canary C — the
// telescoping invariant the epilogue checks with one xor chain.
//
// The paper leaves the automated compiler pass as future work because of
// variable re-ordering interactions; our compiler owns frame layout end to
// end, so the plan below implements what their Section V-E2 sketches,
// including the optional "check after vulnerable write" placement.

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/schemes/schemes_internal.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core::detail {

using namespace vm::isa;
using vm::reg;

namespace {

[[nodiscard]] constexpr std::int32_t round8(std::uint32_t bytes) noexcept {
    return static_cast<std::int32_t>((bytes + 7) & ~7u);
}

class p_ssp_lv_scheme final : public scheme {
  public:
    explicit p_ssp_lv_scheme(const scheme_options& options)
        : check_after_write_{options.lv_check_after_write} {}

    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp_lv; }
    std::string name() const override { return "P-SSP-LV (per-variable canaries)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    bool wants_protection(const std::vector<local_desc>& locals) const override {
        for (const auto& local : locals)
            if (local.is_buffer || local.is_critical) return true;
        return false;
    }

    // Algorithm 2's layout, addresses descending from rbp:
    //   [rbp-8]            C0, guarding saved rbp + return address
    //   [rbp-8-…]          locals in declaration order (v_n at the top),
    //                      each critical v_i immediately preceded (lower
    //                      address) by its canary C_j.
    // Unlike the SSP-family planner, locals are NOT reordered: Algorithm 2
    // protects variables where they are, which is exactly why it can guard
    // a critical scalar that declaration order placed above a buffer.
    frame_plan plan_frame(const std::vector<local_desc>& locals) const override {
        frame_plan plan;
        plan.local_offsets.resize(locals.size(), 0);
        plan.protected_frame = wants_protection(locals);
        if (!plan.protected_frame) {
            std::int32_t cursor = 0;
            for (std::size_t i = 0; i < locals.size(); ++i) {
                cursor += round8(locals[i].size);
                plan.local_offsets[i] = -cursor;
            }
            plan.frame_bytes = (cursor + 15) & ~15;
            return plan;
        }

        std::int32_t cursor = 8;
        plan.canaries.push_back({-8, 8, -1});
        for (std::size_t i = 0; i < locals.size(); ++i) {
            cursor += round8(locals[i].size);
            plan.local_offsets[i] = -cursor;
            if (locals[i].is_critical) {
                cursor += 8;
                plan.canaries.push_back({-cursor, 8, static_cast<std::int32_t>(i)});
            }
        }
        plan.frame_bytes = (cursor + 15) & ~15;
        return plan;
    }

    // Algorithm 2: j-1 random canaries, then C_j = C ^ C0 ^ … ^ C_{j-1}.
    // rax accumulates C xor all random canaries; storing it into the last
    // slot makes the full XOR telescope to C exactly.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        f.emit(mov_rm(reg::rax, fs(tls_canary)));
        for (std::size_t k = 0; k + 1 < plan.canaries.size(); ++k) {
            const auto retry = f.new_label();
            f.place(retry);
            f.emit({rdrand(reg::rcx), jnc(retry),
                    mov_mr(mem(reg::rbp, plan.canaries[k].offset), reg::rcx),
                    xor_rr(reg::rax, reg::rcx)});
        }
        f.emit(mov_mr(mem(reg::rbp, plan.canaries.back().offset), reg::rax));
    }

    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        emit_collective_check(f, img, plan);
    }

    // Section V-E2's "timing of canary checking": optionally re-verify the
    // whole frame right after a libc write call, catching local-variable
    // corruption long before the function returns.
    void emit_write_site_check(binfmt::bin_function& f, binfmt::image& img,
                               const frame_plan& plan) const override {
        if (!check_after_write_ || plan.canaries.empty()) return;
        // The write call's return value lives in rax; preserve it.
        f.emit(mov_rr(reg::rsi, reg::rax));
        emit_collective_check(f, img, plan);
        f.emit(mov_rr(reg::rax, reg::rsi));
    }

  private:
    bool check_after_write_;

    // "All stack canaries are collectively consistent with the TLS canary":
    // xor every slot together and against C; ZF=1 iff intact.
    static void emit_collective_check(binfmt::bin_function& f, binfmt::image& img,
                                      const frame_plan& plan) {
        f.emit(mov_rm(reg::rdx, mem(reg::rbp, plan.canaries.front().offset)));
        for (std::size_t k = 1; k < plan.canaries.size(); ++k)
            f.emit(xor_rm(reg::rdx, mem(reg::rbp, plan.canaries[k].offset)));
        f.emit(xor_rm(reg::rdx, fs(tls_canary)));
        emit_check_tail(f, img);
    }
};

}  // namespace

std::unique_ptr<scheme> make_p_ssp_lv(const scheme_options& options) {
    return std::make_unique<p_ssp_lv_scheme>(options);
}

}  // namespace pssp::core::detail
