// The result store's write path, end to end through the real fork/exec
// orchestrator. Pins the three store contracts: (1) the side-channel
// invariant — report bytes are identical with the store on or off, at
// any shard count, fixed or adaptive; (2) the identity oracle — a
// complete store reconstructs the campaign report byte for byte,
// including after chaos faults and a kill/resume; (3) idempotent ingest —
// replays and duplicate deliveries never change what a query sees.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/chaos.hpp"
#include "dist/orchestrator.hpp"
#include "store/query.hpp"
#include "store/store.hpp"

namespace pssp {
namespace {

std::string fresh_dir(const char* tag) {
    static int serial = 0;
    return ::testing::TempDir() + "pssp-store-" + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(serial++);
}

struct scoped_fault_plan {
    explicit scoped_fault_plan(const char* plan) {
        ::setenv(dist::fault_plan_env, plan, /*overwrite=*/1);
    }
    ~scoped_fault_plan() { ::unsetenv(dist::fault_plan_env); }
};

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 6;
    spec.master_seed = 47;
    spec.query_budget = 512;
    return spec;
}

dist::sharded_options base_options(unsigned shards) {
    dist::sharded_options options;
    options.shards = shards;
    options.flight_recorder = false;
    options.postmortem_dir = ::testing::TempDir();
    options.faults.backoff_base_seconds = 0.001;
    options.faults.backoff_cap_seconds = 0.01;
    return options;
}

// The tools/campaign_shard.cpp wiring in miniature: hook a store_writer
// into the orchestrator's block/round side channels and finalize with
// the run's report.
campaign::campaign_report run_with_store(const campaign::campaign_spec& spec,
                                         dist::sharded_options options,
                                         const std::string& dir,
                                         bool resume = false,
                                         std::uint64_t compact_every = 1) {
    store::writer_options wopts;
    wopts.compact_every_rounds = compact_every;
    auto writer = store::store_writer::open(dir, spec, resume, wopts);
    options.block_ingest = [&writer](std::uint64_t round,
                                     std::span<const dist::partial_block> b) {
        writer.ingest_blocks(round, b);
    };
    options.round_observer = [&writer](const obs::round_summary& r) {
        writer.ingest_round(r);
    };
    const auto report = dist::run_sharded(spec, options);
    writer.finalize(report, "{\"test.metric\": 1}");
    return report;
}

TEST(store_store, report_identical_with_store_on_or_off_fixed) {
    const auto spec = small_spec();
    const auto reference = campaign::engine{spec}.run().to_json();
    for (const unsigned shards : {1u, 3u}) {
        const auto dir = fresh_dir("fixed");
        const auto report =
            run_with_store(spec, base_options(shards), dir);
        EXPECT_EQ(report.to_json(), reference)
            << "store ingest moved report bytes at --shards " << shards;

        // The identity oracle: the store alone reproduces the report.
        const auto data = store::load_store(dir);
        EXPECT_TRUE(data.complete);
        EXPECT_EQ(store::reconstruct_report(data).to_json(), reference);
        EXPECT_EQ(data.metrics, "{\"test.metric\": 1}");
    }
}

TEST(store_store, report_identical_with_store_on_or_off_adaptive) {
    auto spec = small_spec();
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.0;  // never converges: runs the budget out
    spec.trials_per_cell = 96;
    spec.round_blocks = 2;
    spec.min_trials_per_cell = 32;
    const auto reference = campaign::engine{spec}.run().to_json();
    for (const unsigned shards : {1u, 2u}) {
        const auto dir = fresh_dir("adaptive");
        const auto report =
            run_with_store(spec, base_options(shards), dir);
        EXPECT_EQ(report.to_json(), reference);

        const auto data = store::load_store(dir);
        EXPECT_TRUE(data.complete);
        EXPECT_GT(data.rounds.size(), 1u) << "expected a multi-round run";
        EXPECT_EQ(store::reconstruct_report(data).to_json(), reference);
        // Every block row carries the adaptive round that produced it.
        for (const auto& row : data.blocks) EXPECT_GE(row.round, 1u);
    }
}

TEST(store_store, chaos_run_ingest_equals_clean_run) {
    // Crash, hang and corrupt faults on first attempts: supervision
    // requeues everything, and the store — fed only *accepted* partials —
    // must end up answering queries identically to a clean run's store.
    const auto spec = small_spec();
    const auto clean_dir = fresh_dir("clean");
    const auto clean_report =
        run_with_store(spec, base_options(2), clean_dir);

    const auto chaos_dir = fresh_dir("chaos");
    std::optional<campaign::campaign_report> chaos_report;
    {
        scoped_fault_plan plan{"crash:0,corrupt:1"};
        auto options = base_options(2);
        options.faults.timeout_seconds = 30.0;
        chaos_report = run_with_store(spec, options, chaos_dir);
    }
    EXPECT_EQ(chaos_report->to_json(), clean_report.to_json());

    const auto clean = store::load_store(clean_dir);
    const auto chaos = store::load_store(chaos_dir);
    EXPECT_EQ(store::reconstruct_report(chaos).to_json(),
              store::reconstruct_report(clean).to_json());
    EXPECT_EQ(store::aggregate_json(chaos,
                                    store::aggregate_cells(chaos, {})),
              store::aggregate_json(clean,
                                    store::aggregate_cells(clean, {})));
}

TEST(store_store, ingest_is_idempotent) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("dedup");
    store::writer_options wopts;
    wopts.compact_every_rounds = 0;
    auto writer = store::store_writer::open(dir, spec, false, wopts);

    // Hand-build one valid block partial per canonical block.
    const auto canonical = campaign::blocks_for(spec);
    std::vector<dist::partial_block> blocks;
    for (const auto& ref : canonical) {
        dist::partial_block b;
        b.index = ref.index;
        b.cell = ref.cell;
        b.partial.trials = ref.trials;
        b.partial.hijacks = ref.trials;
        blocks.push_back(b);
    }
    writer.ingest_blocks(1, blocks);
    EXPECT_EQ(writer.ingested_blocks(), blocks.size());
    // A replayed delivery of the same blocks is skipped wholesale.
    writer.ingest_blocks(1, blocks);
    EXPECT_EQ(writer.ingested_blocks(), blocks.size());
    EXPECT_EQ(writer.skipped_blocks(), blocks.size());

    obs::round_summary summary;
    summary.round = 1;
    summary.blocks = blocks.size();
    writer.ingest_round(summary);
    writer.ingest_round(summary);  // dedup by round number

    const auto data = store::load_store(dir);
    EXPECT_EQ(data.blocks.size(), blocks.size());
    EXPECT_EQ(data.rounds.size(), 1u);
    EXPECT_EQ(store::dedup_blocks(data).size(), blocks.size());
}

TEST(store_store, refuses_existing_store_without_resume) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("refuse");
    { auto writer = store::store_writer::open(dir, spec, false); }
    try {
        auto writer = store::store_writer::open(dir, spec, false);
        FAIL() << "expected refusal to overwrite an existing store";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("refusing to overwrite"),
                  std::string::npos)
            << e.what();
    }
}

TEST(store_store, resume_requires_matching_spec_digest) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("digest");
    { auto writer = store::store_writer::open(dir, spec, false); }
    auto other = spec;
    other.master_seed += 1;
    try {
        auto writer = store::store_writer::open(dir, other, true);
        FAIL() << "expected a spec digest mismatch";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("spec digest mismatch"), std::string::npos)
            << what;
        EXPECT_NE(what.find("different campaign"), std::string::npos) << what;
    }
}

TEST(store_store, complete_store_refuses_further_ingest) {
    const auto spec = small_spec();
    const auto dir = fresh_dir("complete");
    const auto report = run_with_store(spec, base_options(1), dir);
    try {
        auto writer = store::store_writer::open(dir, spec, true);
        FAIL() << "expected the complete store to refuse ingest";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("already complete"),
                  std::string::npos)
            << e.what();
    }
}

TEST(store_store, kill_resume_reconstruction_is_byte_identical) {
    // An orchestrator killed between rounds leaves a store without its
    // completion entry; resuming (checkpoint + store together, the
    // campaign_shard --resume wiring) finishes both, and the final store
    // answers identically to an uninterrupted run.
    auto spec = small_spec();
    spec.adaptive = true;
    spec.target_ci_halfwidth = 0.0;
    spec.trials_per_cell = 96;
    spec.round_blocks = 2;
    spec.min_trials_per_cell = 32;
    const auto reference = campaign::engine{spec}.run().to_json();

    const auto store_dir = fresh_dir("kill");
    const auto ckpt_dir = fresh_dir("kill-ckpt");

    // "Kill" after round 1: run with a round_observer that throws once
    // the first round is ingested — the writer's destructor runs, leaving
    // a durable but incomplete store, exactly like a SIGKILL between
    // rounds would.
    struct stop_run {};
    {
        store::writer_options wopts;
        wopts.compact_every_rounds = 1;
        auto writer = store::store_writer::open(store_dir, spec, false, wopts);
        auto options = base_options(2);
        options.checkpoint_dir = ckpt_dir;
        options.block_ingest =
            [&writer](std::uint64_t round,
                      std::span<const dist::partial_block> b) {
                writer.ingest_blocks(round, b);
            };
        options.round_observer = [&writer](const obs::round_summary& r) {
            writer.ingest_round(r);
            if (r.round == 1) throw stop_run{};
        };
        EXPECT_THROW(dist::run_sharded(spec, options), stop_run);
    }
    {
        const auto partial = store::load_store(store_dir);
        EXPECT_FALSE(partial.complete);
        EXPECT_GT(partial.blocks.size(), 0u);
    }

    // Resume: checkpoint replays round 1 (the store dedups the replayed
    // blocks), the remaining rounds run and ingest, finalize completes.
    {
        auto writer = store::store_writer::open(store_dir, spec, true);
        auto options = base_options(2);
        options.checkpoint_dir = ckpt_dir;
        options.resume = true;
        options.block_ingest =
            [&writer](std::uint64_t round,
                      std::span<const dist::partial_block> b) {
                writer.ingest_blocks(round, b);
            };
        options.round_observer = [&writer](const obs::round_summary& r) {
            writer.ingest_round(r);
        };
        const auto report = dist::run_sharded(spec, options);
        EXPECT_EQ(report.to_json(), reference);
        EXPECT_GT(writer.skipped_blocks(), 0u)
            << "resume should have replayed round 1 into the dedup path";
        writer.finalize(report, "");
    }

    const auto data = store::load_store(store_dir);
    EXPECT_TRUE(data.complete);
    EXPECT_EQ(store::reconstruct_report(data).to_json(), reference);
}

}  // namespace
}  // namespace pssp
