#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pssp::util {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0) throw std::invalid_argument{"geomean requires positive samples"};
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) return 0.0;
    if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile requires 0 <= q <= 1"};
    std::vector<double> sorted{xs.begin(), xs.end()};
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

summary summarize(std::span<const double> xs) {
    summary s;
    s.count = xs.size();
    if (xs.empty()) return s;
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    s.median = quantile(xs, 0.5);
    s.p95 = quantile(xs, 0.95);
    s.p99 = quantile(xs, 0.99);
    return s;
}

double ci95_half_width(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double overhead_percent(double baseline, double measured) {
    if (baseline == 0.0) return 0.0;
    return (measured - baseline) / baseline * 100.0;
}

double chi_square_uniform(std::span<const std::size_t> observed) {
    if (observed.empty()) return 0.0;
    const auto total =
        std::accumulate(observed.begin(), observed.end(), static_cast<std::size_t>(0));
    if (total == 0) return 0.0;
    const double expected =
        static_cast<double>(total) / static_cast<double>(observed.size());
    double stat = 0.0;
    for (std::size_t count : observed) {
        const double diff = static_cast<double>(count) - expected;
        stat += diff * diff / expected;
    }
    return stat;
}

double chi_square_critical_999(std::size_t degrees_of_freedom) {
    if (degrees_of_freedom == 0) return 0.0;
    // Wilson-Hilferty: chi2_k(p) ~= k * (1 - 2/(9k) + z_p * sqrt(2/(9k)))^3
    // with z_0.999 = 3.0902.
    const double k = static_cast<double>(degrees_of_freedom);
    const double z = 3.0902;
    const double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
    return k * term * term * term;
}

interval wilson_interval(std::size_t successes, std::size_t n, double z) {
    // Validate z before the n == 0 early return: an invalid confidence level
    // is a caller bug regardless of the sample size, and letting it slide on
    // empty cells would hide the bug until the first non-empty one.
    if (z <= 0.0) throw std::invalid_argument{"wilson_interval requires z > 0"};
    if (n == 0) return {0.0, 1.0};
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(successes) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double center = p + z2 / (2.0 * nn);
    const double spread = z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
    return {std::max(0.0, (center - spread) / denom),
            std::min(1.0, (center + spread) / denom)};
}

welford_accumulator::state welford_accumulator::save() const noexcept {
    return state{.n = n_,
                 .mean = mean_,
                 .m2 = m2_,
                 .min = min_,
                 .max = max_,
                 .total = total_};
}

welford_accumulator welford_accumulator::restore(const state& s) noexcept {
    welford_accumulator acc;
    acc.n_ = static_cast<std::size_t>(s.n);
    acc.mean_ = s.mean;
    acc.m2_ = s.m2;
    acc.min_ = s.min;
    acc.max_ = s.max;
    acc.total_ = s.total;
    return acc;
}

void welford_accumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    total_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void welford_accumulator::merge(const welford_accumulator& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nab = na + nb;
    mean_ += delta * nb / nab;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    n_ += other.n_;
    total_ += other.total_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double welford_accumulator::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double welford_accumulator::stddev() const noexcept {
    return std::sqrt(variance());
}

}  // namespace pssp::util
