// SHA-1 (FIPS 180-1).
//
// The paper names SHA-1 as the alternative instantiation of the one-way
// function F in P-SSP-OWF ("a hash function (e.g., SHA-1) and a block cipher
// (e.g., AES)"). We implement both so the ablation bench can compare them.
// SHA-1's collision weaknesses are irrelevant here: F only needs one-wayness
// and unforgeability against an adversary who never sees the key input.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pssp::crypto {

inline constexpr std::size_t sha1_digest_size = 20;

class sha1 {
  public:
    sha1() noexcept { reset(); }

    // Resets to the initial state; allows object reuse.
    void reset() noexcept;

    // Absorbs `data` (streaming; may be called repeatedly).
    void update(std::span<const std::uint8_t> data) noexcept;

    // Finalizes and returns the 20-byte digest. The object must be reset()
    // before further use.
    [[nodiscard]] std::array<std::uint8_t, sha1_digest_size> finish() noexcept;

    // One-shot helper.
    [[nodiscard]] static std::array<std::uint8_t, sha1_digest_size> digest(
        std::span<const std::uint8_t> data) noexcept;

    // One-shot helper returning the first 8 digest bytes as a LE word —
    // the form consumed when SHA-1 instantiates a 64-bit canary.
    [[nodiscard]] static std::uint64_t digest64(std::span<const std::uint8_t> data) noexcept;

  private:
    std::array<std::uint32_t, 5> h_{};
    std::array<std::uint8_t, 64> block_{};
    std::size_t block_len_ = 0;
    std::uint64_t total_bits_ = 0;

    void process_block(std::span<const std::uint8_t, 64> block) noexcept;
};

}  // namespace pssp::crypto
